(* Epoch-sealed commit (PROTOCOL.md §11) on one page.

   The same open-loop load runs three ways through the leader's drainer:
   unbatched (one consensus round per transaction), fill-or-timeout
   batching (§9), and epoch sealing — the drainer holds each epoch open
   for a fixed interval and proposes everything admitted as ONE
   multi-record log entry. At saturation the epoch and batched modes
   commit about the same number of transactions, but sealing on the
   clock bounds how long an admitted transaction can sit in the queue,
   so the latency distribution is much tighter.

   The second table shows why epochs compose: with a small fill bound a
   single group is consensus-round bound, and independent per-group logs
   overlap their rounds — aggregate goodput multiplies with the group
   count.

   Run with: dune exec examples/epoch_commit.exe *)

module Throughput = Mdds_harness.Throughput
module Table = Mdds_harness.Table
module Stats = Mdds_harness.Stats

let run ?(rate = 150.0) ?(txns = 150) ~groups mode =
  let p = Throughput.run_point ~seed:11 ~groups ~mode ~rate ~txns () in
  (match p.Throughput.verified with
  | Ok () -> ()
  | Error m -> failwith (mode.Throughput.label ^ ": " ^ m));
  p

let row (p : Throughput.point) =
  [
    p.Throughput.mode.Throughput.label;
    string_of_int p.Throughput.committed;
    Printf.sprintf "%.1f" p.Throughput.committed_per_s;
    Table.fmt_ms p.Throughput.latency.Stats.p50;
    Table.fmt_ms p.Throughput.latency.Stats.p99;
    string_of_int p.Throughput.batches;
    string_of_int p.Throughput.epochs;
  ]

let () =
  let modes =
    [
      Throughput.baseline;
      Throughput.batched ();
      Throughput.epoch ~interval:0.05 ();
    ]
  in
  Table.print
    ~header:
      [ "mode"; "committed"; "goodput/s"; "p50 ms"; "p99 ms"; "batches"; "epochs" ]
    (List.map (fun m -> row (run ~groups:1 m)) modes);
  (* Composition: per-group drainers seal independent epochs. The load
     must actually backlog the drainer — the small fill bound keeps one
     group consensus-round bound so there is headroom for groups to
     multiply. *)
  let compose groups =
    let p = run ~rate:2000.0 ~txns:1000 ~groups (Throughput.epoch ~fill:8 ()) in
    [
      string_of_int groups;
      string_of_int p.Throughput.committed;
      Printf.sprintf "%.1f" p.Throughput.committed_per_s;
      string_of_int p.Throughput.epochs;
    ]
  in
  print_newline ();
  Table.print
    ~header:[ "groups"; "committed"; "aggregate/s"; "epochs" ]
    (List.map compose [ 1; 4 ]);
  print_endline "\nall executions verified one-copy serializable"
