(* The long-term-leader protocol (the paper's §7–§8 sketch) under a
   manager failover, with the protocol trace turned on.

   One site (V1) acts as transaction manager: clients send it whole
   transactions; it orders them, checks conflicts against committed state,
   and replicates each decision with a single Multi-Paxos-style accept
   round. Mid-run the manager goes dark. Clients probe, fail over to the
   next site, and commits continue — the new manager pays one full Paxos
   round to take over, then fast-paths again. The trace shows the
   handover.

   Run with: dune exec examples/leader_failover.exe *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Trace = Mdds_sim.Trace
module Topology = Mdds_net.Topology

let group = "inventory"

let () =
  let cluster = Cluster.create ~seed:41 ~config:Config.leader (Topology.ec2 "VVV") in
  Trace.enable (Cluster.trace cluster);

  let committed = ref 0 and aborted = ref 0 and in_doubt = ref 0 in
  let lost_platform = ref 0 in
  for dc = 0 to 2 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        (try
           for i = 1 to 8 do
             let txn = Client.begin_ client ~group in
             Client.write txn (Printf.sprintf "item-%d-%d" dc i) "stocked";
             (match Client.commit txn with
             | Audit.Committed _ -> incr committed
             | Audit.Aborted _ -> incr aborted
             | Audit.Unknown -> incr in_doubt
             | Audit.Read_only_committed -> ());
             Mdds_sim.Engine.sleep 1.5
           done
         with Client.Unavailable _ ->
           (* This client's whole datacenter is dark: its application
              platform is gone with it (paper §2.2: active transactions
              of an unavailable platform are implicitly aborted). *)
           incr lost_platform))
  done;

  (* The manager (dc0) dies at t=5s and never returns. *)
  Mdds_sim.Engine.schedule (Cluster.engine cluster) ~at:5.0 (fun () ->
      Cluster.take_down cluster 0);

  Cluster.run cluster;

  Printf.printf "outcomes: %d committed, %d aborted, %d in doubt, %d client(s) died with their datacenter\n"
    !committed !aborted !in_doubt !lost_platform;

  (* Show the handover in the protocol trace: the first decisions come
     from prop.dc0 (the manager), then the outage, then prop.dc1 takes
     over — one full-ballot decision, then fast-path decisions again.
     (The dead manager's in-flight submission also keeps retrying its
     prepare into the void until it gives up; elided here.) *)
  print_endline "\nprotocol trace (decisions and the outage):";
  List.iter
    (fun e -> Format.printf "  %a@." Trace.pp_event e)
    (List.filter
       (fun e -> List.mem e.Trace.category [ "decide"; "fault" ])
       (Trace.events (Cluster.trace cluster)));

  (* The surviving majority must agree and the execution must be
     serializable. *)
  (match Cluster.logs_agree cluster ~group with
  | Ok () -> ()
  | Error m -> failwith m);
  Verify.check_exn cluster ~group;
  assert (!committed >= 16);
  print_endline "\nverified: failover preserved serializability and progress"
