module Rng = Mdds_sim.Rng

(* What a [Mid_2pc] trap does to its datacenter once a 2PC prepare
   marker crosses it (PROTOCOL.md §10): a clean or dirty service crash, a
   torn write, or a short bidirectional isolation of the datacenter. *)
type mid_2pc_mode = Mid_restart | Mid_dirty | Mid_torn | Mid_isolate

type fault =
  | Crash of int
  | Recover of int
  | Restart of int
  | Dirty_crash of int
  | Torn_write of int
  | Partition of int list list
  | Heal
  | Storm of { loss : float; jitter : float; until : float }
  | Compact of int
  | One_way_cut of { src : int; dst : int; until : float }
  | Slow_node of { dc : int; factor : float; until : float }
  | Flap of { src : int; dst : int; period : float; until : float }
  | Dup_storm of { prob : float; until : float }
  | Mid_2pc of { dc : int; mode : mid_2pc_mode }
      (** Armed, not timed: the fault fires when the next prepare marker
          crosses [dc] (an Accept or an Apply), aiming it into the
          prepare→decide window of a cross-group commit. *)

type event = { at : float; fault : fault }

type t = event list

(* ------------------------------------------------------------------ *)
(* Generation.                                                         *)

type kind =
  | Crashes
  | Restarts
  | Dirty_crashes
  | Torn_writes
  | Partitions
  | Storms
  | Compactions
  | One_way_cuts
  | Slow_nodes
  | Flaps
  | Dup_storms
  | Mid_2pcs

let all_kinds =
  [ Crashes; Restarts; Dirty_crashes; Torn_writes; Partitions; Storms;
    Compactions; One_way_cuts; Slow_nodes; Flaps; Dup_storms ]

(* [Mid_2pcs] is not in {!all_kinds}: the trap only ever fires on
   cross-group workloads, so single-group schedules stay byte-identical.
   Cross-group runs use this superset. *)
let cross_kinds = all_kinds @ [ Mid_2pcs ]

let kind_to_string = function
  | Crashes -> "crash"
  | Restarts -> "restart"
  | Dirty_crashes -> "dirty-crash"
  | Torn_writes -> "torn-write"
  | Partitions -> "partition"
  | Storms -> "storm"
  | Compactions -> "compact"
  | One_way_cuts -> "one-way-cut"
  | Slow_nodes -> "slow-node"
  | Flaps -> "flap"
  | Dup_storms -> "dup-storm"
  | Mid_2pcs -> "mid-2pc"

let kind_of_string = function
  | "crash" | "crashes" -> Crashes
  | "restart" | "restarts" -> Restarts
  | "dirty-crash" | "dirty-crashes" -> Dirty_crashes
  | "torn-write" | "torn-writes" -> Torn_writes
  | "partition" | "partitions" -> Partitions
  | "storm" | "storms" -> Storms
  | "compact" | "compactions" -> Compactions
  | "one-way-cut" | "one-way-cuts" -> One_way_cuts
  | "slow-node" | "slow-nodes" -> Slow_nodes
  | "flap" | "flaps" -> Flaps
  | "dup-storm" | "dup-storms" -> Dup_storms
  | "mid-2pc" | "mid-2pcs" -> Mid_2pcs
  | s ->
      invalid_arg
        (Printf.sprintf
           "unknown fault kind %S (expected crash, restart, dirty-crash, \
            torn-write, partition, storm, compact, one-way-cut, slow-node, \
            flap, dup-storm or mid-2pc)"
           s)

let round3 x = Float.round (x *. 1000.) /. 1000.

let generate ?(kinds = all_kinds) ~seed ~dcs ~duration () =
  if dcs < 1 then invalid_arg "Schedule.generate: dcs must be positive";
  if kinds = [] then invalid_arg "Schedule.generate: no fault kinds";
  (* Mix the seed so the schedule stream is distinct from the cluster's
     engine stream for the same seed (Engine.create uses the seed raw). *)
  let rng = Rng.create (seed lxor 0x5DEECE66D) in
  let cap = (dcs - 1) / 2 in
  let quorum = (dcs / 2) + 1 in
  let down = Array.make dcs false in
  let minority = ref [] in
  let all = List.init dcs Fun.id in
  let n_down () = Array.fold_left (fun a d -> if d then a + 1 else a) 0 down in
  (* Up datacenters outside the partition minority, were [victim] to
     crash: the connected-majority invariant. *)
  let main_up_without victim =
    List.length
      (List.filter
         (fun i -> (not down.(i)) && i <> victim && not (List.mem i !minority))
         all)
  in
  let choose rng = function
    | [] -> None
    | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let events = ref [] in
  let emit at fault = events := { at; fault } :: !events in
  let mean_gap = duration /. 12.0 in
  let t = ref (1.0 +. Rng.float rng mean_gap) in
  let kinds = Array.of_list kinds in
  while !t < duration -. 1.0 do
    let at = round3 !t in
    (match Rng.pick rng kinds with
    | Crashes ->
        if n_down () > 0 && Rng.bool rng 0.4 then (
          match choose rng (List.filter (fun i -> down.(i)) all) with
          | Some v ->
              down.(v) <- false;
              emit at (Recover v)
          | None -> ())
        else if n_down () < cap then (
          let candidates =
            List.filter
              (fun v -> (not down.(v)) && main_up_without v >= quorum)
              all
          in
          match choose rng candidates with
          | Some v ->
              down.(v) <- true;
              emit at (Crash v)
          | None -> ())
    | Restarts -> emit at (Restart (Rng.int rng dcs))
    | Dirty_crashes -> emit at (Dirty_crash (Rng.int rng dcs))
    | Torn_writes -> emit at (Torn_write (Rng.int rng dcs))
    | Partitions ->
        if !minority <> [] then (
          minority := [];
          emit at Heal)
        else if cap >= 1 then (
          (* Asymmetric split: the minority side absorbs every crashed
             datacenter, so the majority side is fully up and quorate. *)
          let downs = List.filter (fun i -> down.(i)) all in
          let k = List.length downs + Rng.int rng (cap - List.length downs + 1) in
          let k = max 1 k in
          let ups = Array.of_list (List.filter (fun i -> not down.(i)) all) in
          Rng.shuffle rng ups;
          let fill = max 0 (k - List.length downs) in
          let extra = Array.to_list (Array.sub ups 0 (min fill (Array.length ups))) in
          let side = List.sort Int.compare (downs @ extra) in
          let rest = List.filter (fun i -> not (List.mem i side)) all in
          if side <> [] && List.length rest >= quorum then (
            minority := side;
            emit at (Partition [ side; rest ])))
    | Storms ->
        let loss = round3 (0.05 +. Rng.float rng 0.25) in
        let jitter = round3 (0.2 +. Rng.float rng 0.6) in
        let until = round3 (at +. 0.5 +. Rng.float rng 3.5) in
        emit at (Storm { loss; jitter; until })
    | Compactions -> emit at (Compact (Rng.int rng dcs))
    (* The four gray-failure kinds are all self-healing windows, like
       storms: they never mark a datacenter down, so the connected-majority
       invariant is untouched (a one-way cut or flap degrades one directed
       link; a slow node stays alive and correct; duplication only adds
       messages). *)
    | One_way_cuts ->
        if dcs >= 2 then begin
          let src = Rng.int rng dcs in
          let dst = (src + 1 + Rng.int rng (dcs - 1)) mod dcs in
          let until = round3 (at +. 0.5 +. Rng.float rng 3.5) in
          emit at (One_way_cut { src; dst; until })
        end
    | Slow_nodes ->
        let dc = Rng.int rng dcs in
        let factor = round3 (2.0 +. Rng.float rng 6.0) in
        let until = round3 (at +. 0.5 +. Rng.float rng 3.5) in
        emit at (Slow_node { dc; factor; until })
    | Flaps ->
        if dcs >= 2 then begin
          let src = Rng.int rng dcs in
          let dst = (src + 1 + Rng.int rng (dcs - 1)) mod dcs in
          let period = round3 (0.1 +. Rng.float rng 0.7) in
          let until = round3 (at +. 0.5 +. Rng.float rng 3.5) in
          emit at (Flap { src; dst; period; until })
        end
    | Dup_storms ->
        let prob = round3 (0.1 +. Rng.float rng 0.4) in
        let until = round3 (at +. 0.5 +. Rng.float rng 3.5) in
        emit at (Dup_storm { prob; until })
    | Mid_2pcs ->
        (* A clean restart can hit any datacenter; the destructive and
           isolating modes respect the connected-majority invariant like
           their un-aimed counterparts (the isolation is a short
           self-healing window, the crashes restart in place). *)
        let dc = Rng.int rng dcs in
        let mode =
          match Rng.int rng 4 with
          | 0 -> Mid_restart
          | 1 -> Mid_dirty
          | 2 -> Mid_torn
          | _ -> Mid_isolate
        in
        emit at (Mid_2pc { dc; mode }));
    t := !t +. 0.15 +. Rng.exponential rng mean_gap
  done;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* S-expression round-trip (hand-rolled; no parsing dependency).       *)

type sx = A of string | L of sx list

let fstr x = Printf.sprintf "%.12g" x

let fault_to_sx = function
  | Crash d -> L [ A "crash"; A (string_of_int d) ]
  | Recover d -> L [ A "recover"; A (string_of_int d) ]
  | Restart d -> L [ A "restart"; A (string_of_int d) ]
  | Dirty_crash d -> L [ A "dirty-crash"; A (string_of_int d) ]
  | Torn_write d -> L [ A "torn-write"; A (string_of_int d) ]
  | Partition groups ->
      L
        (A "partition"
        :: List.map (fun g -> L (List.map (fun d -> A (string_of_int d)) g)) groups)
  | Heal -> A "heal"
  | Storm { loss; jitter; until } ->
      L [ A "storm"; A (fstr loss); A (fstr jitter); A (fstr until) ]
  | Compact d -> L [ A "compact"; A (string_of_int d) ]
  | One_way_cut { src; dst; until } ->
      L [ A "one-way-cut"; A (string_of_int src); A (string_of_int dst);
          A (fstr until) ]
  | Slow_node { dc; factor; until } ->
      L [ A "slow-node"; A (string_of_int dc); A (fstr factor); A (fstr until) ]
  | Flap { src; dst; period; until } ->
      L [ A "flap"; A (string_of_int src); A (string_of_int dst);
          A (fstr period); A (fstr until) ]
  | Dup_storm { prob; until } ->
      L [ A "dup-storm"; A (fstr prob); A (fstr until) ]
  | Mid_2pc { dc; mode } ->
      L
        [
          A "mid-2pc";
          A (string_of_int dc);
          A
            (match mode with
            | Mid_restart -> "restart"
            | Mid_dirty -> "dirty"
            | Mid_torn -> "torn"
            | Mid_isolate -> "isolate");
        ]

let to_sx t =
  L (List.map (fun { at; fault } -> L [ A (fstr at); fault_to_sx fault ]) t)

let rec sx_to_buf b = function
  | A s -> Buffer.add_string b s
  | L xs ->
      Buffer.add_char b '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ' ';
          sx_to_buf b x)
        xs;
      Buffer.add_char b ')'

let to_string t =
  let b = Buffer.create 256 in
  sx_to_buf b (to_sx t);
  Buffer.contents b

let validate ~dcs t =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let dc_ok d what =
    if d >= 0 && d < dcs then Ok ()
    else err "%s %d out of range for %d datacenters" what d dcs
  in
  List.fold_left
    (fun acc { at; fault } ->
      let* () = acc in
      match fault with
      | Crash d -> dc_ok d "crash"
      | Recover d -> dc_ok d "recover"
      | Restart d -> dc_ok d "restart"
      | Dirty_crash d -> dc_ok d "dirty-crash"
      | Torn_write d -> dc_ok d "torn-write"
      | Compact d -> dc_ok d "compact"
      | Heal -> Ok ()
      | Storm { loss; jitter; until } ->
          if loss < 0. || loss > 1. then err "storm loss %g not in [0,1]" loss
          else if jitter < 0. then err "storm jitter %g negative" jitter
          else if until <= at then err "storm at %g ends at %g" at until
          else Ok ()
      | One_way_cut { src; dst; until } ->
          let* () = dc_ok src "one-way-cut src" in
          let* () = dc_ok dst "one-way-cut dst" in
          if src = dst then err "one-way-cut src = dst %d" src
          else if until <= at then err "one-way-cut at %g ends at %g" at until
          else Ok ()
      | Slow_node { dc; factor; until } ->
          let* () = dc_ok dc "slow-node" in
          if factor < 1. then err "slow-node factor %g < 1" factor
          else if until <= at then err "slow-node at %g ends at %g" at until
          else Ok ()
      | Flap { src; dst; period; until } ->
          let* () = dc_ok src "flap src" in
          let* () = dc_ok dst "flap dst" in
          if src = dst then err "flap src = dst %d" src
          else if period <= 0. then err "flap period %g not positive" period
          else if until <= at then err "flap at %g ends at %g" at until
          else Ok ()
      | Dup_storm { prob; until } ->
          if prob < 0. || prob > 1. then err "dup-storm prob %g not in [0,1]" prob
          else if until <= at then err "dup-storm at %g ends at %g" at until
          else Ok ()
      | Mid_2pc { dc; _ } -> dc_ok dc "mid-2pc"
      | Partition parts ->
          let members = List.concat parts in
          let* () =
            List.fold_left
              (fun acc d ->
                let* () = acc in
                dc_ok d "partition member")
              (Ok ()) members
          in
          if List.length (List.sort_uniq compare members) <> dcs then
            err "partition must cover each of %d datacenters exactly once" dcs
          else if not (List.exists (fun p -> 2 * List.length p > dcs) parts)
          then err "partition has no majority side"
          else Ok ())
    (Ok ()) t

let bad fmt = Printf.ksprintf invalid_arg ("Schedule.of_string: " ^^ fmt)

let tokenize s =
  let tokens = ref [] in
  let atom = Buffer.create 16 in
  let flush () =
    if Buffer.length atom > 0 then (
      tokens := Buffer.contents atom :: !tokens;
      Buffer.clear atom)
  in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char atom c)
    s;
  flush ();
  List.rev !tokens

let parse_sx tokens =
  let rec one = function
    | [] -> bad "unexpected end of input"
    | "(" :: rest ->
        let xs, rest = many rest in
        (L xs, rest)
    | ")" :: _ -> bad "unexpected ')'"
    | atom :: rest -> (A atom, rest)
  and many = function
    | [] -> bad "unclosed '('"
    | ")" :: rest -> ([], rest)
    | tokens ->
        let x, rest = one tokens in
        let xs, rest = many rest in
        (x :: xs, rest)
  in
  match one tokens with
  | x, [] -> x
  | _, t :: _ -> bad "trailing input at %S" t

let int_of_sx = function
  | A s -> ( try int_of_string s with _ -> bad "expected an integer, got %S" s)
  | L _ -> bad "expected an integer, got a list"

let float_of_sx = function
  | A s -> ( try float_of_string s with _ -> bad "expected a float, got %S" s)
  | L _ -> bad "expected a float, got a list"

let fault_of_sx = function
  | A "heal" -> Heal
  | L [ A "crash"; d ] -> Crash (int_of_sx d)
  | L [ A "recover"; d ] -> Recover (int_of_sx d)
  | L [ A "restart"; d ] -> Restart (int_of_sx d)
  | L [ A "dirty-crash"; d ] -> Dirty_crash (int_of_sx d)
  | L [ A "torn-write"; d ] -> Torn_write (int_of_sx d)
  | L [ A "compact"; d ] -> Compact (int_of_sx d)
  | L [ A "storm"; loss; jitter; until ] ->
      Storm
        {
          loss = float_of_sx loss;
          jitter = float_of_sx jitter;
          until = float_of_sx until;
        }
  | L [ A "one-way-cut"; src; dst; until ] ->
      One_way_cut
        { src = int_of_sx src; dst = int_of_sx dst; until = float_of_sx until }
  | L [ A "slow-node"; dc; factor; until ] ->
      Slow_node
        {
          dc = int_of_sx dc;
          factor = float_of_sx factor;
          until = float_of_sx until;
        }
  | L [ A "flap"; src; dst; period; until ] ->
      Flap
        {
          src = int_of_sx src;
          dst = int_of_sx dst;
          period = float_of_sx period;
          until = float_of_sx until;
        }
  | L [ A "dup-storm"; prob; until ] ->
      Dup_storm { prob = float_of_sx prob; until = float_of_sx until }
  | L [ A "mid-2pc"; dc; A mode ] ->
      Mid_2pc
        {
          dc = int_of_sx dc;
          mode =
            (match mode with
            | "restart" -> Mid_restart
            | "dirty" -> Mid_dirty
            | "torn" -> Mid_torn
            | "isolate" -> Mid_isolate
            | s -> bad "unknown mid-2pc mode %S" s);
        }
  | L (A "partition" :: groups) ->
      Partition
        (List.map
           (function
             | L ds -> List.map int_of_sx ds
             | A _ -> bad "partition groups must be lists")
           groups)
  | A s -> bad "unknown fault %S" s
  | L (A s :: _) -> bad "malformed fault %S" s
  | L _ -> bad "malformed fault"

let of_string s =
  match parse_sx (tokenize s) with
  | A _ -> bad "expected a list of events"
  | L events ->
      List.map
        (function
          | L [ at; fault ] -> { at = float_of_sx at; fault = fault_of_sx fault }
          | _ -> bad "expected (time fault) events")
        events

(* ------------------------------------------------------------------ *)

let pp_fault ppf = function
  | Crash d -> Format.fprintf ppf "crash dc%d" d
  | Recover d -> Format.fprintf ppf "recover dc%d" d
  | Restart d -> Format.fprintf ppf "restart dc%d" d
  | Dirty_crash d -> Format.fprintf ppf "dirty-crash dc%d" d
  | Torn_write d -> Format.fprintf ppf "torn-write dc%d" d
  | Partition groups ->
      Format.fprintf ppf "partition %s"
        (String.concat "|"
           (List.map
              (fun g -> String.concat "," (List.map string_of_int g))
              groups))
  | Heal -> Format.fprintf ppf "heal"
  | Storm { loss; jitter; until } ->
      Format.fprintf ppf "storm loss=%g jitter=%g until %gs" loss jitter until
  | Compact d -> Format.fprintf ppf "compact dc%d" d
  | One_way_cut { src; dst; until } ->
      Format.fprintf ppf "one-way-cut dc%d->dc%d until %gs" src dst until
  | Slow_node { dc; factor; until } ->
      Format.fprintf ppf "slow-node dc%d x%g until %gs" dc factor until
  | Flap { src; dst; period; until } ->
      Format.fprintf ppf "flap dc%d->dc%d period %gs until %gs" src dst period
        until
  | Dup_storm { prob; until } ->
      Format.fprintf ppf "dup-storm p=%g until %gs" prob until
  | Mid_2pc { dc; mode } ->
      Format.fprintf ppf "mid-2pc dc%d %s" dc
        (match mode with
        | Mid_restart -> "restart"
        | Mid_dirty -> "dirty"
        | Mid_torn -> "torn"
        | Mid_isolate -> "isolate")

let pp ppf t =
  List.iter
    (fun { at; fault } -> Format.fprintf ppf "  %8.3fs  %a@." at pp_fault fault)
    t
