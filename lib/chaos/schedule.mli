(** Randomized, seed-reproducible fault schedules.

    A schedule is a finite list of timed fault events to be injected into a
    running cluster — the nemesis script of a chaos run. Generation is a
    pure function of [(seed, dcs, duration, kinds)], and a schedule
    round-trips through a printable s-expression, so every run (including a
    shrunk counterexample) is replayable from one line of text.

    The generator is adversarial but keeps one invariant: at every moment a
    majority of datacenters is up and mutually connected (crashes are
    bounded by the minority size, partition minorities absorb the currently
    crashed datacenters). Safety must hold under *any* schedule; the
    invariant is what lets the runner also assert availability. *)

type mid_2pc_mode = Mid_restart | Mid_dirty | Mid_torn | Mid_isolate
(** What a {!fault.Mid_2pc} trap does when it fires: a clean service
    restart, a dirty crash, a torn write, or a short bidirectional
    isolation of the datacenter. *)

type fault =
  | Crash of int  (** Datacenter outage ({!Mdds_core.Cluster.take_down}). *)
  | Recover of int  (** {!Mdds_core.Cluster.bring_up}. *)
  | Restart of int
      (** Service-process restart: volatile state dropped, durable acceptor
          state kept ({!Mdds_core.Service.restart}). *)
  | Dirty_crash of int
      (** Storage-level power loss: the datacenter's unsynced write buffer
          is discarded before the service restarts and runs its recovery
          scan ({!Mdds_core.Cluster.dirty_restart}). *)
  | Torn_write of int
      (** Like {!Dirty_crash}, but the in-flight row write persists only a
          prefix of its attributes — a torn write the recovery scan must
          detect by checksum ({!Mdds_core.Cluster.torn_restart}). *)
  | Partition of int list list  (** Network partition into these groups. *)
  | Heal  (** Remove any partition. *)
  | Storm of { loss : float; jitter : float; until : float }
      (** Degrade every link to this loss/jitter until virtual time
          [until]. *)
  | Compact of int
      (** Checkpoint the datacenter's log prefix that every datacenter has
          already applied (compaction under load; forces snapshot
          catch-up paths). *)
  | One_way_cut of { src : int; dst : int; until : float }
      (** Gray failure: drop messages [src]→[dst] only (replies still
          flow) until virtual time [until]
          ({!Mdds_net.Network.cut_oneway}). *)
  | Slow_node of { dc : int; factor : float; until : float }
      (** Gray failure: multiply every link delay into and out of [dc] by
          [factor] — a slow-but-alive datacenter
          ({!Mdds_net.Network.set_slowdown}). *)
  | Flap of { src : int; dst : int; period : float; until : float }
      (** Gray failure: the [src]→[dst] link alternates up/down with the
          given square-wave period ({!Mdds_net.Network.flap_link}). *)
  | Dup_storm of { prob : float; until : float }
      (** Gray failure: every delivered message is duplicated with
          probability [prob] on all links
          ({!Mdds_net.Network.set_duplication_all}). *)
  | Mid_2pc of { dc : int; mode : mid_2pc_mode }
      (** Aimed fault (PROTOCOL.md §10): at [at] the nemesis arms
          {!Mdds_core.Service.arm_2pc_trap} on [dc]; the [mode] fault
          fires the moment a cross-group prepare marker next crosses
          that service — inside the prepare→decide window where an
          unsound commit protocol would lose atomicity. Inert on
          single-group workloads. *)

type event = { at : float; fault : fault }

type t = event list
(** Sorted by [at], ascending. *)

(** {1 Generation} *)

type kind =
  | Crashes
  | Restarts
  | Dirty_crashes
  | Torn_writes
  | Partitions
  | Storms
  | Compactions
  | One_way_cuts
  | Slow_nodes
  | Flaps
  | Dup_storms
  | Mid_2pcs

val all_kinds : kind list
(** Every kind except {!Mid_2pcs} — the trap only fires on cross-group
    workloads, so single-group schedules never carry it (byte-identical
    repro lines). *)

val cross_kinds : kind list
(** {!all_kinds} plus {!Mid_2pcs}: the default for cross-group chaos. *)

val kind_of_string : string -> kind
(** ["crash"], ["restart"], ["dirty-crash"], ["torn-write"],
    ["partition"], ["storm"], ["compact"], ["one-way-cut"],
    ["slow-node"], ["flap"], ["dup-storm"], ["mid-2pc"]; raises
    [Invalid_argument] otherwise. *)

val kind_to_string : kind -> string

val generate :
  ?kinds:kind list -> seed:int -> dcs:int -> duration:float -> unit -> t
(** Deterministic in every argument. Events land in (1, duration − 1) so a
    run has a clean start and a heal/drain window at the end. The RNG
    stream is independent of the cluster's (same seed, different stream),
    so editing a schedule never perturbs the workload. *)

val validate : dcs:int -> t -> (unit, string) result
(** Check every event against a cluster of [dcs] datacenters: datacenter
    indices in range, partitions a disjoint cover with a majority side,
    storm windows well-formed. Hand-written schedules (repro lines) go
    through this before being injected. *)

(** {1 Round-tripping} *)

val round3 : float -> float
(** Round to the nearest millisecond. Every float in a generated schedule
    is rounded so the textual form is exact ([of_string (to_string t) = t]);
    anything that edits a schedule (the shrinker) must re-round. *)

val to_string : t -> string
(** One-line s-expression, e.g.
    [((1.523 (crash 2)) (2.1 (partition (2) (0 1))) (4.0 heal))]. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on malformed
    input. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable listing. *)

val pp_fault : Format.formatter -> fault -> unit
