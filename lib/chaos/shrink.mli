(** Greedy minimization of a failing fault schedule (ddmin-style).

    Because a run is a pure function of [(spec, schedule)], any candidate
    schedule can be re-run deterministically and judged by the same
    oracle. The shrinker first deletes event chunks (halving the chunk
    size down to single events), then shortens surviving storm windows,
    keeping every candidate that still fails. The result is a locally
    minimal failing schedule: removing any single remaining event makes
    the failure disappear (up to the run budget). *)

val minimize :
  ?max_runs:int ->
  fails:(Schedule.t -> bool) ->
  Schedule.t ->
  Schedule.t * int
(** [minimize ~fails schedule] assumes [fails schedule = true] (the
    caller has already observed the failure) and returns the minimized
    schedule plus the number of re-runs spent. [max_runs] (default 250)
    bounds the work. *)
