let remove_slice l i len =
  List.filteri (fun j _ -> j < i || j >= i + len) l

let minimize ?(max_runs = 250) ~fails schedule =
  let runs = ref 0 in
  let attempt candidate =
    if !runs >= max_runs then false
    else (
      incr runs;
      fails candidate)
  in
  (* Pass 1: chunked deletion. Try dropping [chunk] consecutive events at
     every offset; adopt any candidate that still fails; halve the chunk
     when a full sweep makes no progress. *)
  let current = ref schedule in
  let chunk = ref (max 1 (List.length schedule / 2)) in
  while !chunk >= 1 && !runs < max_runs do
    let progressed = ref false in
    let i = ref 0 in
    while !i + !chunk <= List.length !current && !runs < max_runs do
      let candidate = remove_slice !current !i !chunk in
      if candidate <> [] || !chunk < List.length !current then
        if attempt candidate then (
          current := candidate;
          progressed := true
          (* Same offset now holds the next chunk; do not advance. *))
        else incr i
      else incr i
    done;
    if not !progressed then chunk := !chunk / 2
  done;
  (* Pass 2: shorten surviving windowed faults (storms and the gray
     failures) by halving their remaining window while the schedule still
     fails. *)
  let shorten_storm (ev : Schedule.event) =
    let halved until = Schedule.round3 (ev.at +. ((until -. ev.at) /. 2.)) in
    let wide until = until -. ev.at > 0.3 in
    match ev.fault with
    | Schedule.Storm { loss; jitter; until } when wide until ->
        Some
          { ev with fault = Schedule.Storm { loss; jitter; until = halved until } }
    | Schedule.One_way_cut { src; dst; until } when wide until ->
        Some
          { ev with
            fault = Schedule.One_way_cut { src; dst; until = halved until } }
    | Schedule.Slow_node { dc; factor; until } when wide until ->
        Some
          { ev with
            fault = Schedule.Slow_node { dc; factor; until = halved until } }
    | Schedule.Flap { src; dst; period; until } when wide until ->
        Some
          { ev with
            fault = Schedule.Flap { src; dst; period; until = halved until } }
    | Schedule.Dup_storm { prob; until } when wide until ->
        Some { ev with fault = Schedule.Dup_storm { prob; until = halved until } }
    | _ -> None
  in
  let rec shorten_pass () =
    if !runs >= max_runs then ()
    else
      let progressed = ref false in
      List.iteri
        (fun i ev ->
          match shorten_storm ev with
          | None -> ()
          | Some ev' ->
              let candidate =
                List.mapi (fun j e -> if j = i then ev' else e) !current
              in
              if attempt candidate then (
                current := candidate;
                progressed := true))
        !current;
      if !progressed then shorten_pass ()
  in
  shorten_pass ();
  (!current, !runs)
