(** Applies a fault {!Schedule} to a running cluster.

    All events are registered on the simulation clock up front (the
    schedule is data, not a process), so a run remains a pure function of
    the cluster seed and the schedule. Storms clear themselves at their
    [until] time; overlapping storms keep the weather bad until the last
    one ends.

    Compaction events discard log prefixes, which would blind the
    {!Mdds_core.Verify} oracle: the nemesis therefore archives the target
    datacenter's log entries just before every compaction. Feed
    {!archive} to [Verify.check ~archive] after the run. *)

type t

val create : ?on_fault:(Schedule.fault -> unit) -> unit -> t
(** [on_fault] runs synchronously right after each fault is injected (on
    the simulation clock, at the fault's instant). The chaos runner uses
    it to check the services' cache-coherence oracle at every fault
    boundary; the callback must not mutate cluster state. *)

val apply :
  t -> cluster:Mdds_core.Cluster.t -> groups:string list -> Schedule.t -> unit
(** Register every event of the schedule. [groups] are the transaction
    groups the workload uses (compaction targets them). *)

val heal_all : Mdds_core.Cluster.t -> unit
(** End-of-run cleanup: bring every datacenter up, remove any partition,
    clear link overrides and all gray-failure state (one-way cuts,
    slowdowns, flaps, duplication). Idempotent. *)

val archive : t -> group:string -> (int * Mdds_types.Txn.entry) list
(** Entries discarded by injected compactions, sorted by position. *)

val faults_injected : t -> int
