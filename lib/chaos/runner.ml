module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Service = Mdds_core.Service
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Messages = Mdds_core.Messages
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Trace = Mdds_sim.Trace
module Wal = Mdds_wal.Wal
module Ycsb = Mdds_workload.Ycsb

type spec = {
  seed : int;
  topology : string;
  config : Config.t;
  duration : float;
  kinds : Schedule.kind list;
  workload : Ycsb.config;
  min_commits : int;
}

let default_config protocol =
  { (Config.with_protocol protocol Config.default) with
    rpc_timeout = 0.5;
    max_rounds = 8;
  }

let default_workload ~dcs ~duration =
  let threads = dcs in
  let txns_per_thread = 6 in
  { Ycsb.default with
    total_txns = threads * txns_per_thread;
    threads;
    rate = float_of_int txns_per_thread /. duration;
    ops_per_txn = 4;
    attributes = 20;
    client_dcs = List.init dcs Fun.id;
  }

let spec ?config ?(duration = 20.) ?(kinds = Schedule.all_kinds) ?workload
    ?(min_commits = 1) ~seed topology =
  let config = Option.value config ~default:(default_config Config.Cp) in
  let dcs = Topology.size (Topology.ec2 topology) in
  let workload =
    Option.value workload ~default:(default_workload ~dcs ~duration)
  in
  { seed; topology; config; duration; kinds; workload; min_commits }

type report = {
  run_spec : spec;
  schedule : Schedule.t;
  commits : int;
  aborts : int;
  unknowns : int;
  begin_failures : int;
  faults : int;
  net_stats : Mdds_net.Network.stats;
  recovery : Service.recovery_stats;
  violation : string option;
  trace_tail : string list;
}

let failed r = r.violation <> None

(* Post-heal availability: from every datacenter, a fresh client must be
   able to commit a read-write probe. Retries tolerate transient
   Lost_position races against stragglers still draining. Probing every
   group also drives each group's log head past any "orphan" position
   (decided while its Apply messages were being dropped) via the normal
   promotion path, so the convergence pass below has a meaningful head
   to catch up to. *)
let run_probes cluster ~groups ~dcs =
  let failures = ref [] in
  Cluster.spawn cluster (fun () ->
      List.iter
        (fun group ->
          for dc = 0 to dcs - 1 do
            let client =
              Cluster.client ~id:(Printf.sprintf "probe-%s-%d" group dc) cluster
                ~dc
            in
            (* Each probe owns a private key: probes must not conflict
               with each other (a datacenter still catching up serves
               stale read positions, which would make a shared hot key
               abort with Conflict forever). *)
            let key = Printf.sprintf "chaos-probe-%d" dc in
            let committed = ref false in
            let attempts = ref 0 in
            while (not !committed) && !attempts < 8 do
              incr attempts;
              try
                let txn = Client.begin_ client ~group in
                ignore (Client.read txn key);
                Client.write txn key
                  (Printf.sprintf "probe-%s-%d-%d" group dc !attempts);
                match Client.commit txn with
                | Audit.Committed _ -> committed := true
                | _ -> ()
              with Client.Unavailable _ -> ()
            done;
            if not !committed then failures := (dc, group) :: !failures
          done)
        groups);
  Cluster.run cluster;
  List.rev !failures

(* Post-heal convergence: a Read pinned at the global head forces every
   datacenter's learner (and, for compacted peers, snapshot
   installation) to catch up; any non-Value reply means the datacenter
   failed to converge. *)
let run_convergence cluster ~groups ~dcs =
  let heads =
    List.map
      (fun group ->
        let head = ref 0 in
        for dc = 0 to dcs - 1 do
          head :=
            max !head
              (Wal.last_position (Service.wal (Cluster.service cluster dc)) ~group)
        done;
        (group, !head))
      groups
  in
  let failures = ref [] in
  Cluster.spawn cluster (fun () ->
      List.iter
        (fun (group, head) ->
          for dc = 0 to dcs - 1 do
            let service = Cluster.service cluster dc in
            match
              Service.handle service ~src:dc
                (Messages.Read
                   { group; key = Ycsb.attribute_key 0; position = head })
            with
            | Messages.Value _ -> ()
            | resp ->
                failures :=
                  (dc, group, Format.asprintf "%a" Messages.pp_response resp)
                  :: !failures
          done)
        heads);
  Cluster.run cluster;
  List.rev !failures

let first_error checks =
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let run ?schedule ?extra_oracle spec =
  let topo = Topology.ec2 spec.topology in
  let dcs = Topology.size topo in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        Schedule.generate ~kinds:spec.kinds ~seed:spec.seed ~dcs
          ~duration:spec.duration ()
  in
  (* Explicit sync points so dirty/torn crashes have unsynced state to
     lose: every chaos run exercises the durability layer, even when the
     schedule draws no storage fault. *)
  let cluster =
    Cluster.create ~seed:spec.seed ~config:spec.config
      ~storage:Mdds_kvstore.Store.Sync_explicit topo
  in
  Trace.enable (Cluster.trace cluster);
  let groups = Ycsb.group_keys spec.workload in
  let handle = Ycsb.run cluster spec.workload in
  (* Cache-coherence oracle: after every fault event (and once more after
     the run drains) every service's decoded WAL/acceptor view must equal
     a fresh decode of its durable store. Checked at fault boundaries
     because those are the moments that drop or prune the caches. *)
  let incoherence = ref None in
  let check_coherence context =
    if !incoherence = None then
      for dc = 0 to dcs - 1 do
        List.iter
          (fun group ->
            if !incoherence = None then
              match
                Service.cache_coherent (Cluster.service cluster dc) ~group
              with
              | Ok () -> ()
              | Error e ->
                  incoherence :=
                    Some
                      (Printf.sprintf "cache coherence (%s) at dc%d: %s"
                         context dc e))
          groups
      done
  in
  let nemesis =
    Nemesis.create
      ~on_fault:(fun fault ->
        check_coherence (Format.asprintf "after %a" Schedule.pp_fault fault))
      ()
  in
  Nemesis.apply nemesis ~cluster ~groups schedule;
  Engine.schedule (Cluster.engine cluster) ~at:spec.duration (fun () ->
      Nemesis.heal_all cluster);
  (* A crash anywhere in the simulation (e.g. a learner hitting a log
     conflict) is itself an oracle violation — capture it so a crashing
     schedule can be shrunk like any other failure. *)
  let crashed = ref None in
  (try
     Cluster.run cluster ~until:(spec.duration +. 600.);
     (* Safety net: if the run hit the time bound mid-storm, heal before
        the oracle phase (oracles judge the healed system). *)
     Nemesis.heal_all cluster
   with Failure msg -> crashed := Some (Printf.sprintf "crash: %s" msg));
  let probe_failures =
    if !crashed = None then
      try run_probes cluster ~groups ~dcs
      with Failure msg ->
        crashed := Some (Printf.sprintf "crash: %s" msg);
        []
    else []
  in
  let convergence_failures =
    if !crashed = None then
      try run_convergence cluster ~groups ~dcs
      with Failure msg ->
        crashed := Some (Printf.sprintf "crash: %s" msg);
        []
    else []
  in
  let is_harness_txn (e : Audit.event) =
    let id = e.record.txn_id in
    String.starts_with ~prefix:"probe-" id
    || String.starts_with ~prefix:Ycsb.preload_id id
  in
  let workload_events =
    List.filter
      (fun e -> not (is_harness_txn e))
      (Audit.events (Cluster.audit cluster))
  in
  let count p = List.length (List.filter p workload_events) in
  let commits =
    count (fun (e : Audit.event) ->
        match e.outcome with
        | Audit.Committed _ | Audit.Read_only_committed -> true
        | _ -> false)
  in
  let aborts =
    count (fun (e : Audit.event) ->
        match e.outcome with Audit.Aborted _ -> true | _ -> false)
  in
  let unknowns =
    count (fun (e : Audit.event) ->
        match e.outcome with Audit.Unknown -> true | _ -> false)
  in
  if !crashed = None then check_coherence "after drain";
  let violation =
    first_error
      [
        (fun () -> !crashed);
        (fun () -> !incoherence);
        (fun () ->
          match convergence_failures with
          | [] -> None
          | (dc, group, resp) :: _ ->
              Some
                (Printf.sprintf
                   "convergence: dc%d did not catch up to the head of group \
                    %s after healing (read replied %s)"
                   dc group resp));
        (fun () ->
          match probe_failures with
          | [] -> None
          | (dc, group) :: _ ->
              Some
                (Printf.sprintf
                   "availability: probe client in dc%d could not commit to \
                    group %s after healing"
                   dc group));
        (fun () ->
          if commits >= spec.min_commits then None
          else
            Some
              (Printf.sprintf
                 "progress: only %d workload commits (expected >= %d; a \
                  majority was connected throughout)"
                 commits spec.min_commits));
        (fun () ->
          List.fold_left
            (fun acc group ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let archive = Nemesis.archive nemesis ~group in
                  match Verify.check ~archive cluster ~group with
                  | Ok () -> None
                  | Error e -> Some (Printf.sprintf "group %s: %s" group e)))
            None groups);
        (fun () ->
          match extra_oracle with
          | None -> None
          | Some oracle -> (
              match oracle cluster with Ok () -> None | Error e -> Some e));
      ]
  in
  let trace_tail =
    List.map
      (Format.asprintf "%a" Trace.pp_event)
      (Trace.tail (Cluster.trace cluster) 40)
  in
  let recovery =
    let zero = { Service.recoveries = 0; scrubbed = 0; relearned = 0 } in
    List.fold_left
      (fun (acc : Service.recovery_stats) service ->
        let s = Service.recovery_stats service in
        {
          Service.recoveries = acc.recoveries + s.Service.recoveries;
          scrubbed = acc.scrubbed + s.Service.scrubbed;
          relearned = acc.relearned + s.Service.relearned;
        })
      zero
      (Cluster.services cluster)
  in
  {
    run_spec = spec;
    schedule;
    commits;
    aborts;
    unknowns;
    begin_failures = handle.begin_failures;
    faults = Nemesis.faults_injected nemesis;
    net_stats = Mdds_net.Network.stats (Cluster.network cluster);
    recovery;
    violation;
    trace_tail;
  }

(* Chaos seeds are independent trials like experiment cells: each run owns
   its cluster and engine, so a seed battery fans out across the domain
   pool. Shrinking stays sequential (each ddmin step depends on the last),
   so callers shrink from the returned reports afterwards. *)
let run_many ?schedule ?extra_oracle specs =
  Mdds_parallel.Pool.map (fun spec -> run ?schedule ?extra_oracle spec) specs

let repro r =
  Printf.sprintf
    "mdds chaos --seed %d --topology %s --protocol %s --duration %g \
     --schedule '%s'"
    r.run_spec.seed r.run_spec.topology
    (Config.protocol_name r.run_spec.config.protocol)
    r.run_spec.duration
    (Schedule.to_string r.schedule)

let pp_report ppf r =
  Format.fprintf ppf
    "seed %d  %s/%s  %d faults  %d commits  %d aborts  %d unknown  %d \
     begin-failures  drops %d/%d/%d  recoveries %d (%d scrubbed, %d \
     relearned)  %s"
    r.run_spec.seed r.run_spec.topology
    (Config.protocol_name r.run_spec.config.protocol)
    r.faults r.commits r.aborts r.unknowns r.begin_failures
    r.net_stats.Mdds_net.Network.dropped_loss
    r.net_stats.Mdds_net.Network.dropped_down
    r.net_stats.Mdds_net.Network.dropped_cut r.recovery.Service.recoveries
    r.recovery.Service.scrubbed r.recovery.Service.relearned
    (match r.violation with
    | None -> "OK"
    | Some v -> Printf.sprintf "VIOLATION: %s" v)
