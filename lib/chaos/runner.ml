module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Service = Mdds_core.Service
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Messages = Mdds_core.Messages
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Trace = Mdds_sim.Trace
module Wal = Mdds_wal.Wal
module Ycsb = Mdds_workload.Ycsb

type spec = {
  seed : int;
  topology : string;
  config : Config.t;
  duration : float;
  kinds : Schedule.kind list;
  workload : Ycsb.config;
  min_commits : int;
  probe_window : float;
  max_heal_windows : int;
}

(* Chaos runs turn the adaptive-timeout/hedged-failover machinery on
   (the figure harness keeps the paper's fixed-timeout defaults): gray
   failures are exactly the regime it exists for, and every soak seed
   should exercise it. *)
let default_config protocol =
  { (Config.with_protocol protocol Config.default) with
    rpc_timeout = 0.5;
    max_rounds = 8;
    adaptive_timeouts = true;
    hedged_reads = true;
  }

(* The throughput schedule dimension (PR 8, epoch sealing PR 10):
   batched/pipelined/epoch-sealed commit under chaos. Drawn
   deterministically from the seed on a stream distinct from both the
   engine's (raw seed) and the fault schedule's (seed lxor 0x5DEECE66D);
   never leaves both knobs at 1, because that would silently fall back to
   the single path and test nothing new. The epoch draw comes after the
   batch/depth draws, so seeds keep the batch/depth they had before the
   epoch dimension existed; roughly half the seeds run epoch sealing
   (PROTOCOL.md §11), with [batch_max] as the fill bound. *)
let throughput_config ~seed config =
  let rng = Mdds_sim.Rng.create (seed lxor 0x7F4A7C15) in
  let batch_max = [| 1; 2; 4; 8 |].(Mdds_sim.Rng.int rng 4) in
  let pipeline_depth =
    if batch_max = 1 then [| 2; 4 |].(Mdds_sim.Rng.int rng 2)
    else [| 1; 2; 4 |].(Mdds_sim.Rng.int rng 3)
  in
  let epoch_interval = [| 0.0; 0.0; 0.05; 0.15 |].(Mdds_sim.Rng.int rng 4) in
  { (Config.with_protocol Config.Leader config) with
    batch_max;
    pipeline_depth;
    epoch_interval;
  }

(* Denser than the default soak workload: with the ~90 ms leader commit
   path, arrivals must cluster inside one round-trip for batches to fill
   and pipelined positions to actually overlap under faults. *)
let throughput_workload ~dcs ~duration =
  let threads = dcs * 2 in
  let txns_per_thread = 12 in
  { Ycsb.default with
    total_txns = threads * txns_per_thread;
    threads;
    rate = float_of_int txns_per_thread /. (duration *. 0.75);
    ops_per_txn = 3;
    attributes = 20;
    stagger = 0.01;
    client_dcs = List.init dcs Fun.id;
  }

let default_workload ~dcs ~duration =
  let threads = dcs in
  let txns_per_thread = 6 in
  { Ycsb.default with
    total_txns = threads * txns_per_thread;
    threads;
    rate = float_of_int txns_per_thread /. duration;
    ops_per_txn = 4;
    attributes = 20;
    client_dcs = List.init dcs Fun.id;
  }

let spec ?config ?(duration = 20.) ?(kinds = Schedule.all_kinds) ?workload
    ?(min_commits = 1) ?(probe_window = 1.0) ?(max_heal_windows = 8) ~seed
    topology =
  let config = Option.value config ~default:(default_config Config.Cp) in
  let dcs = Topology.size (Topology.ec2 topology) in
  let workload =
    Option.value workload ~default:(default_workload ~dcs ~duration)
  in
  if probe_window <= 0. then invalid_arg "Runner.spec: probe_window <= 0";
  if max_heal_windows < 1 then invalid_arg "Runner.spec: max_heal_windows < 1";
  if workload.Ycsb.cross_ratio > 0.0 then begin
    if workload.Ycsb.groups < 2 then
      invalid_arg "Runner.spec: cross_ratio > 0 requires groups >= 2";
    if config.Config.protocol <> Config.Leader then
      invalid_arg "Runner.spec: cross_ratio > 0 requires the leader protocol"
  end;
  {
    seed;
    topology;
    config;
    duration;
    kinds;
    workload;
    min_commits;
    probe_window;
    max_heal_windows;
  }

type report = {
  run_spec : spec;
  schedule : Schedule.t;
  commits : int;
  aborts : int;
  unknowns : int;
  begin_failures : int;
  faults : int;
  net_stats : Mdds_net.Network.stats;
  recovery : Service.recovery_stats;
  dedup : Service.dedup_stats;
  throughput : Service.throughput_stats;
  twopc : Service.twopc_stats;
  hedges : int;
  timeline : bool array;
  recovery_times : (Schedule.event * float option) list;
  violation : string option;
  trace_tail : string list;
}

let failed r = r.violation <> None

(* Post-heal availability: from every datacenter, a fresh client must be
   able to commit a read-write probe. Retries tolerate transient
   Lost_position races against stragglers still draining. Probing every
   group also drives each group's log head past any "orphan" position
   (decided while its Apply messages were being dropped) via the normal
   promotion path, so the convergence pass below has a meaningful head
   to catch up to. *)
let run_probes cluster ~groups ~dcs =
  let failures = ref [] in
  Cluster.spawn cluster (fun () ->
      List.iter
        (fun group ->
          for dc = 0 to dcs - 1 do
            let client =
              Cluster.client ~id:(Printf.sprintf "probe-%s-%d" group dc) cluster
                ~dc
            in
            (* Each probe owns a private key: probes must not conflict
               with each other (a datacenter still catching up serves
               stale read positions, which would make a shared hot key
               abort with Conflict forever). *)
            let key = Printf.sprintf "chaos-probe-%d" dc in
            let committed = ref false in
            let attempts = ref 0 in
            while (not !committed) && !attempts < 8 do
              incr attempts;
              try
                let txn = Client.begin_ client ~group in
                ignore (Client.read txn key);
                Client.write txn key
                  (Printf.sprintf "probe-%s-%d-%d" group dc !attempts);
                match Client.commit txn with
                | Audit.Committed _ -> committed := true
                | _ -> ()
              with Client.Unavailable _ -> ()
            done;
            if not !committed then failures := (dc, group) :: !failures
          done)
        groups);
  Cluster.run cluster;
  List.rev !failures

(* Post-heal convergence: a Read pinned at the global head forces every
   datacenter's learner (and, for compacted peers, snapshot
   installation) to catch up; any non-Value reply means the datacenter
   failed to converge. *)
let run_convergence cluster ~groups ~dcs =
  let heads =
    List.map
      (fun group ->
        let head = ref 0 in
        for dc = 0 to dcs - 1 do
          head :=
            max !head
              (Wal.last_position (Service.wal (Cluster.service cluster dc)) ~group)
        done;
        (group, !head))
      groups
  in
  let failures = ref [] in
  Cluster.spawn cluster (fun () ->
      List.iter
        (fun (group, head) ->
          for dc = 0 to dcs - 1 do
            let service = Cluster.service cluster dc in
            match
              Service.handle service ~src:dc
                (Messages.Read
                   { group; key = Ycsb.attribute_key 0; position = head })
            with
            | Messages.Value _ -> ()
            | resp ->
                failures :=
                  (dc, group, Format.asprintf "%a" Messages.pp_response resp)
                  :: !failures
          done)
        heads);
  Cluster.run cluster;
  List.rev !failures

let first_error checks =
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let run ?schedule ?extra_oracle spec =
  let topo = Topology.ec2 spec.topology in
  let dcs = Topology.size topo in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        Schedule.generate ~kinds:spec.kinds ~seed:spec.seed ~dcs
          ~duration:spec.duration ()
  in
  (* Explicit sync points so dirty/torn crashes have unsynced state to
     lose: every chaos run exercises the durability layer, even when the
     schedule draws no storage fault. *)
  let cluster =
    Cluster.create ~seed:spec.seed ~config:spec.config
      ~storage:Mdds_kvstore.Store.Sync_explicit topo
  in
  Trace.enable (Cluster.trace cluster);
  let groups = Ycsb.group_keys spec.workload in
  (* The availability prober's dedicated group (never a workload group,
     so probes and workload threads do not race for log positions); it
     still goes through every oracle. *)
  let av_group = "chaos-av" in
  let all_groups = groups @ [ av_group ] in
  let handle = Ycsb.run cluster spec.workload in
  (* Cache-coherence oracle: after every fault event (and once more after
     the run drains) every service's decoded WAL/acceptor view must equal
     a fresh decode of its durable store. Checked at fault boundaries
     because those are the moments that drop or prune the caches. *)
  let incoherence = ref None in
  let check_coherence context =
    if !incoherence = None then
      for dc = 0 to dcs - 1 do
        List.iter
          (fun group ->
            if !incoherence = None then
              match
                Service.cache_coherent (Cluster.service cluster dc) ~group
              with
              | Ok () -> ()
              | Error e ->
                  incoherence :=
                    Some
                      (Printf.sprintf "cache coherence (%s) at dc%d: %s"
                         context dc e))
          all_groups
      done
  in
  let nemesis =
    Nemesis.create
      ~on_fault:(fun fault ->
        check_coherence (Format.asprintf "after %a" Schedule.pp_fault fault))
      ()
  in
  Nemesis.apply nemesis ~cluster ~groups schedule;
  Engine.schedule (Cluster.engine cluster) ~at:spec.duration (fun () ->
      Nemesis.heal_all cluster);
  (* Availability timeline: one live probe per window throughout the run
     and for [max_heal_windows + 2] windows past the heal at [duration].
     Probes commit to a dedicated group so they never contend with the
     workload's log positions; each owns a private key so they never
     conflict with each other. A window is "up" iff some probe commit
     *completed* inside it; the completion times also give per-fault
     time-to-recovery and the bounded-unavailability oracle below. *)
  let pw = spec.probe_window in
  let stop_probing =
    spec.duration +. (float_of_int (spec.max_heal_windows + 2) *. pw)
  in
  let windows = int_of_float (Float.ceil (stop_probing /. pw)) in
  let successes = ref [] in
  (* newest first *)
  let probe_counter = ref 0 in
  for w = 0 to windows - 1 do
    Cluster.spawn ~at:(float_of_int w *. pw) cluster (fun () ->
        incr probe_counter;
        let n = !probe_counter in
        (* Rotate the probing datacenter by window so a single slow or
           half-cut datacenter cannot bias the whole timeline; skip
           datacenters currently down (their clients cannot even talk to
           the local service). *)
        let dc =
          let rec pick i tries =
            if tries >= dcs then 0
            else if Cluster.is_down cluster i then pick ((i + 1) mod dcs) (tries + 1)
            else i
          in
          pick (w mod dcs) 0
        in
        let client =
          Cluster.client ~id:(Printf.sprintf "probe-live-%d" n) cluster ~dc
        in
        try
          let txn = Client.begin_ client ~group:av_group in
          let key = Printf.sprintf "chaos-live-%d" n in
          ignore (Client.read txn key);
          Client.write txn key (string_of_int w);
          match Client.commit txn with
          | Audit.Committed _ -> successes := Cluster.now cluster :: !successes
          | _ -> ()
        with Client.Unavailable _ -> ())
  done;
  (* A crash anywhere in the simulation (e.g. a learner hitting a log
     conflict) is itself an oracle violation — capture it so a crashing
     schedule can be shrunk like any other failure. *)
  let crashed = ref None in
  (try
     Cluster.run cluster ~until:(spec.duration +. 600.);
     (* Safety net: if the run hit the time bound mid-storm, heal before
        the oracle phase (oracles judge the healed system). *)
     Nemesis.heal_all cluster
   with Failure msg -> crashed := Some (Printf.sprintf "crash: %s" msg));
  let probe_failures =
    if !crashed = None then
      try run_probes cluster ~groups:all_groups ~dcs
      with Failure msg ->
        crashed := Some (Printf.sprintf "crash: %s" msg);
        []
    else []
  in
  let convergence_failures =
    if !crashed = None then
      try run_convergence cluster ~groups:all_groups ~dcs
      with Failure msg ->
        crashed := Some (Printf.sprintf "crash: %s" msg);
        []
    else []
  in
  let is_harness_txn (e : Audit.event) =
    let id = e.record.txn_id in
    String.starts_with ~prefix:"probe-" id
    || String.starts_with ~prefix:Ycsb.preload_id id
  in
  let workload_events =
    List.filter
      (fun e -> not (is_harness_txn e))
      (Audit.events (Cluster.audit cluster))
  in
  let count p = List.length (List.filter p workload_events) in
  let commits =
    count (fun (e : Audit.event) ->
        match e.outcome with
        | Audit.Committed _ | Audit.Read_only_committed -> true
        | _ -> false)
  in
  let aborts =
    count (fun (e : Audit.event) ->
        match e.outcome with Audit.Aborted _ -> true | _ -> false)
  in
  let unknowns =
    count (fun (e : Audit.event) ->
        match e.outcome with Audit.Unknown -> true | _ -> false)
  in
  if !crashed = None then check_coherence "after drain";
  let successes = List.sort Float.compare !successes in
  let timeline = Array.make windows false in
  List.iter
    (fun s ->
      let w = int_of_float (s /. pw) in
      if w >= 0 && w < windows then timeline.(w) <- true)
    successes;
  let first_success_after t = List.find_opt (fun s -> s >= t) successes in
  let recovery_times =
    List.map
      (fun (ev : Schedule.event) ->
        (ev, Option.map (fun s -> s -. ev.Schedule.at) (first_success_after ev.Schedule.at)))
      schedule
  in
  let violation =
    first_error
      [
        (fun () -> !crashed);
        (fun () -> !incoherence);
        (fun () ->
          match convergence_failures with
          | [] -> None
          | (dc, group, resp) :: _ ->
              Some
                (Printf.sprintf
                   "convergence: dc%d did not catch up to the head of group \
                    %s after healing (read replied %s)"
                   dc group resp));
        (fun () ->
          match probe_failures with
          | [] -> None
          | (dc, group) :: _ ->
              Some
                (Printf.sprintf
                   "availability: probe client in dc%d could not commit to \
                    group %s after healing"
                   dc group));
        (fun () ->
          (* Bounded unavailability: heal_all runs at [duration], so from
             there the cluster is fault-free; a probe commit must land
             within [max_heal_windows] probe windows or recovery is
             unbounded. *)
          let deadline =
            spec.duration +. (float_of_int spec.max_heal_windows *. pw)
          in
          if
            List.exists
              (fun s -> s >= spec.duration && s <= deadline)
              successes
          then None
          else
            Some
              (Printf.sprintf
                 "bounded unavailability: no probe commit within %d windows \
                  (%.3gs) of the final heal at %gs"
                 spec.max_heal_windows
                 (float_of_int spec.max_heal_windows *. pw)
                 spec.duration));
        (fun () ->
          if commits >= spec.min_commits then None
          else
            Some
              (Printf.sprintf
                 "progress: only %d workload commits (expected >= %d; a \
                  majority was connected throughout)"
                 commits spec.min_commits));
        (fun () ->
          List.fold_left
            (fun acc group ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let archive = Nemesis.archive nemesis ~group in
                  match Verify.check ~archive cluster ~group with
                  | Ok () -> None
                  | Error e -> Some (Printf.sprintf "group %s: %s" group e)))
            None all_groups);
        (fun () ->
          (* Cross-group atomicity (PROTOCOL.md §10) over the workload
             groups' merged logs. Gated on the workload actually drawing
             cross-group transactions: without them the logs carry no
             marker records and the oracle is vacuous. *)
          if spec.workload.Ycsb.cross_ratio <= 0.0 then None
          else
            let archives =
              List.map (fun g -> (g, Nemesis.archive nemesis ~group:g)) groups
            in
            match Verify.check_cross ~archives cluster ~groups with
            | Ok () -> None
            | Error e -> Some e);
        (fun () ->
          match extra_oracle with
          | None -> None
          | Some oracle -> (
              match oracle cluster with Ok () -> None | Error e -> Some e));
      ]
  in
  let trace_tail =
    List.map
      (Format.asprintf "%a" Trace.pp_event)
      (Trace.tail (Cluster.trace cluster) 40)
  in
  let recovery =
    let zero = { Service.recoveries = 0; scrubbed = 0; relearned = 0 } in
    List.fold_left
      (fun (acc : Service.recovery_stats) service ->
        let s = Service.recovery_stats service in
        {
          Service.recoveries = acc.recoveries + s.Service.recoveries;
          scrubbed = acc.scrubbed + s.Service.scrubbed;
          relearned = acc.relearned + s.Service.relearned;
        })
      zero
      (Cluster.services cluster)
  in
  let dedup =
    List.fold_left
      (fun (acc : Service.dedup_stats) service ->
        let s = Service.dedup_stats service in
        {
          Service.dup_applies = acc.dup_applies + s.Service.dup_applies;
          dup_claims = acc.dup_claims + s.Service.dup_claims;
          dup_submits = acc.dup_submits + s.Service.dup_submits;
        })
      { Service.dup_applies = 0; dup_claims = 0; dup_submits = 0 }
      (Cluster.services cluster)
  in
  let throughput =
    List.fold_left
      (fun (acc : Service.throughput_stats) service ->
        let s = Service.throughput_stats service in
        {
          Service.batches = acc.batches + s.Service.batches;
          batched_txns = acc.batched_txns + s.Service.batched_txns;
          pipelined_rounds = acc.pipelined_rounds + s.Service.pipelined_rounds;
          pipeline_stalls = acc.pipeline_stalls + s.Service.pipeline_stalls;
          epochs_sealed = acc.epochs_sealed + s.Service.epochs_sealed;
          epoch_txns = acc.epoch_txns + s.Service.epoch_txns;
        })
      {
        Service.batches = 0;
        batched_txns = 0;
        pipelined_rounds = 0;
        pipeline_stalls = 0;
        epochs_sealed = 0;
        epoch_txns = 0;
      }
      (Cluster.services cluster)
  in
  let twopc =
    List.fold_left
      (fun (acc : Service.twopc_stats) service ->
        let s = Service.twopc_stats service in
        {
          Service.twopc_prepares = acc.twopc_prepares + s.Service.twopc_prepares;
          twopc_resolved = acc.twopc_resolved + s.Service.twopc_resolved;
          in_doubt_replies = acc.in_doubt_replies + s.Service.in_doubt_replies;
        })
      { Service.twopc_prepares = 0; twopc_resolved = 0; in_doubt_replies = 0 }
      (Cluster.services cluster)
  in
  {
    run_spec = spec;
    schedule;
    commits;
    aborts;
    unknowns;
    begin_failures = handle.begin_failures;
    faults = Nemesis.faults_injected nemesis;
    net_stats = Mdds_net.Network.stats (Cluster.network cluster);
    recovery;
    dedup;
    throughput;
    twopc;
    hedges = Audit.hedges (Cluster.audit cluster);
    timeline;
    recovery_times;
    violation;
    trace_tail;
  }

(* Chaos seeds are independent trials like experiment cells: each run owns
   its cluster and engine, so a seed battery fans out across the domain
   pool. Batteries mix fault windows and cluster sizes, so the cost hint
   (virtual fault-window seconds × sites simulated) lets the pool dispense
   the long soaks first. Shrinking stays sequential (each ddmin step
   depends on the last), so callers shrink from the returned reports
   afterwards. *)
let run_many ?schedule ?extra_oracle specs =
  let cost (s : spec) =
    s.duration *. float_of_int (String.length s.topology)
  in
  Mdds_parallel.Pool.map ~cost (fun spec -> run ?schedule ?extra_oracle spec) specs

let repro r =
  Printf.sprintf
    "mdds chaos --seed %d --topology %s --protocol %s --duration %g%s%s \
     --schedule '%s'"
    r.run_spec.seed r.run_spec.topology
    (Config.protocol_name r.run_spec.config.protocol)
    r.run_spec.duration
    (* --throughput re-derives batch/depth/epoch from the seed, so the
       replay gets the same drainer discipline as the failing run. *)
    (if Config.throughput_mode r.run_spec.config then " --throughput" else "")
    (if r.run_spec.workload.Ycsb.cross_ratio > 0.0 then
       Printf.sprintf " --groups %d --cross-ratio %g"
         r.run_spec.workload.Ycsb.groups r.run_spec.workload.Ycsb.cross_ratio
     else "")
    (Schedule.to_string r.schedule)

let up_windows r =
  Array.fold_left (fun acc up -> if up then acc + 1 else acc) 0 r.timeline

let max_ttr r =
  List.fold_left
    (fun acc (_, ttr) ->
      match ttr with Some t when t > acc -> t | _ -> acc)
    0.0 r.recovery_times

let pp_report ppf r =
  Format.fprintf ppf
    "seed %d  %s/%s  %d faults  %d commits  %d aborts  %d unknown  %d \
     begin-failures  drops %d/%d/%d/%d  dup %d  recoveries %d (%d scrubbed, \
     %d relearned)  dedup %d/%d/%d  hedges %d  avail %d/%d windows  max-ttr \
     %.3gs  %s"
    r.run_spec.seed r.run_spec.topology
    (Config.protocol_name r.run_spec.config.protocol)
    r.faults r.commits r.aborts r.unknowns r.begin_failures
    r.net_stats.Mdds_net.Network.dropped_loss
    r.net_stats.Mdds_net.Network.dropped_down
    r.net_stats.Mdds_net.Network.dropped_cut
    r.net_stats.Mdds_net.Network.dropped_oneway
    r.net_stats.Mdds_net.Network.duplicated r.recovery.Service.recoveries
    r.recovery.Service.scrubbed r.recovery.Service.relearned
    r.dedup.Service.dup_applies r.dedup.Service.dup_claims
    r.dedup.Service.dup_submits r.hedges
    (up_windows r) (Array.length r.timeline) (max_ttr r)
    ((if Config.throughput_mode r.run_spec.config then
        Printf.sprintf "batch%d/depth%d%s %d batches (%d txns, %d pipelined, \
                        %d stalls%s)  "
          r.run_spec.config.batch_max r.run_spec.config.pipeline_depth
          (if Config.epoch_mode r.run_spec.config then
             Printf.sprintf "/epoch%gms"
               (r.run_spec.config.epoch_interval *. 1000.)
           else "")
          r.throughput.Service.batches r.throughput.Service.batched_txns
          r.throughput.Service.pipelined_rounds
          r.throughput.Service.pipeline_stalls
          (if Config.epoch_mode r.run_spec.config then
             Printf.sprintf ", %d epochs sealed carrying %d"
               r.throughput.Service.epochs_sealed
               r.throughput.Service.epoch_txns
           else "")
      else "")
    ^ (if
         r.run_spec.workload.Ycsb.cross_ratio > 0.0
         || r.twopc.Service.twopc_prepares > 0
         || r.twopc.Service.in_doubt_replies > 0
       then
         Printf.sprintf "2pc %d prepares (%d resolved, %d in-doubt replies)  "
           r.twopc.Service.twopc_prepares r.twopc.Service.twopc_resolved
           r.twopc.Service.in_doubt_replies
       else "")
    ^
    match r.violation with
    | None -> "OK"
    | Some v -> Printf.sprintf "VIOLATION: %s" v)

let pp_timeline ppf r =
  let pw = r.run_spec.probe_window in
  Format.fprintf ppf "availability timeline (%gs windows): " pw;
  Array.iter (fun up -> Format.pp_print_char ppf (if up then '#' else '.')) r.timeline;
  Format.pp_print_newline ppf ();
  List.iter
    (fun ((ev : Schedule.event), ttr) ->
      Format.fprintf ppf "  %8.3fs  %-40s ttr %s@."
        ev.Schedule.at
        (Format.asprintf "%a" Schedule.pp_fault ev.Schedule.fault)
        (match ttr with
        | None -> "never"
        | Some t -> Printf.sprintf "%.3fs" t))
    r.recovery_times
