module Cluster = Mdds_core.Cluster
module Service = Mdds_core.Service
module Engine = Mdds_sim.Engine
module Wal = Mdds_wal.Wal

type t = {
  archives : (string, (int, Mdds_types.Txn.entry) Hashtbl.t) Hashtbl.t;
  on_fault : (Schedule.fault -> unit) option;
  mutable storms : int;  (** Active storms (overlaps nest). *)
  mutable dup_storms : int;  (** Active duplication storms (nest). *)
  oneways : (int * int, int) Hashtbl.t;  (** Active cuts per link (nest). *)
  slowdowns : (int, int) Hashtbl.t;  (** Active slowdowns per dc (nest). *)
  flapping : (int * int, int) Hashtbl.t;  (** Active flaps per link (nest). *)
  mutable injected : int;
}

let create ?on_fault () =
  {
    archives = Hashtbl.create 4;
    on_fault;
    storms = 0;
    dup_storms = 0;
    oneways = Hashtbl.create 8;
    slowdowns = Hashtbl.create 8;
    flapping = Hashtbl.create 8;
    injected = 0;
  }

(* Nesting counter per key: overlapping windows on the same link/dc keep
   the fault active until the last one ends (the storm pattern,
   per-key). *)
let enter tbl key = Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let leave tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some 1 ->
      Hashtbl.remove tbl key;
      true
  | Some n ->
      Hashtbl.replace tbl key (n - 1);
      false

let archive_table t ~group =
  match Hashtbl.find_opt t.archives group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.archives group tbl;
      tbl

let archive t ~group =
  match Hashtbl.find_opt t.archives group with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun pos entry acc -> (pos, entry) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let faults_injected t = t.injected

(* Compact [dc]'s applied log prefix — but only the prefix every
   datacenter that is currently up has itself applied, which is the sane
   deployment policy (a further-behind replica would be forced onto the
   snapshot path for entries its peers still hold; a *stale proposer*
   would meet amnesiac acceptors without the Service's compaction
   guard). Down datacenters are ignored: that is exactly what forces
   install_snapshot catch-up when they return. *)
let compact cluster t ~groups dc =
  if not (Cluster.is_down cluster dc) then
    let service = Cluster.service cluster dc in
    List.iter
      (fun group ->
        let upto = ref max_int in
        for peer = 0 to Cluster.size cluster - 1 do
          if not (Cluster.is_down cluster peer) then
            upto :=
              min !upto
                (Wal.applied_position (Service.wal (Cluster.service cluster peer)) ~group)
        done;
        let wal = Service.wal service in
        if !upto > 0 && !upto < max_int && !upto > Wal.compacted_position wal ~group
        then (
          (* Preserve what compaction is about to discard for the oracle. *)
          let tbl = archive_table t ~group in
          List.iter
            (fun (pos, entry) ->
              if pos <= !upto && not (Hashtbl.mem tbl pos) then
                Hashtbl.replace tbl pos entry)
            (Wal.dump wal ~group);
          match Service.compact service ~group ~upto:!upto with
          | Ok () | Error `Not_applied -> ()))
      groups

let inject t ~cluster ~groups fault =
  match (fault : Schedule.fault) with
  | Schedule.Crash dc -> Cluster.take_down cluster dc
  | Schedule.Recover dc -> Cluster.bring_up cluster dc
  | Schedule.Restart dc -> Cluster.restart cluster dc
  | Schedule.Dirty_crash dc -> Cluster.dirty_restart cluster dc
  | Schedule.Torn_write dc -> Cluster.torn_restart cluster dc
  | Schedule.Partition parts -> Cluster.partition cluster parts
  | Schedule.Heal -> Cluster.heal cluster
  | Schedule.Storm { loss; jitter; until } ->
      t.storms <- t.storms + 1;
      Cluster.storm cluster ~loss ~jitter;
      Engine.schedule (Cluster.engine cluster) ~at:until (fun () ->
          t.storms <- t.storms - 1;
          if t.storms = 0 then Cluster.calm cluster)
  | Schedule.Compact dc -> compact cluster t ~groups dc
  | Schedule.One_way_cut { src; dst; until } ->
      enter t.oneways (src, dst);
      Cluster.cut_oneway cluster ~src ~dst;
      Engine.schedule (Cluster.engine cluster) ~at:until (fun () ->
          if leave t.oneways (src, dst) then
            Cluster.heal_oneway cluster ~src ~dst)
  | Schedule.Slow_node { dc; factor; until } ->
      enter t.slowdowns dc;
      (* Overlapping slowdowns on one dc don't compose factors; the last
         injected factor stands until the last window ends. *)
      Cluster.slow_node cluster dc ~factor;
      Engine.schedule (Cluster.engine cluster) ~at:until (fun () ->
          if leave t.slowdowns dc then Cluster.clear_slowdown cluster dc)
  | Schedule.Flap { src; dst; period; until } ->
      enter t.flapping (src, dst);
      Cluster.flap_link cluster ~src ~dst ~period;
      Engine.schedule (Cluster.engine cluster) ~at:until (fun () ->
          if leave t.flapping (src, dst) then
            Cluster.clear_flap cluster ~src ~dst)
  | Schedule.Dup_storm { prob; until } ->
      t.dup_storms <- t.dup_storms + 1;
      Cluster.dup_storm cluster ~prob;
      Engine.schedule (Cluster.engine cluster) ~at:until (fun () ->
          t.dup_storms <- t.dup_storms - 1;
          if t.dup_storms = 0 then Cluster.clear_duplication cluster)
  | Schedule.Mid_2pc { dc; mode } ->
      (* Armed, not timed: the service fires the trap (in a fresh fiber)
         when the next cross-group prepare marker crosses it — aimed at
         the prepare→decide window. One-shot; inert if no cross-group
         transaction ever touches [dc]. *)
      Service.arm_2pc_trap (Cluster.service cluster dc) (fun () ->
          match mode with
          | Schedule.Mid_restart -> Cluster.restart cluster dc
          | Schedule.Mid_dirty -> Cluster.dirty_restart cluster dc
          | Schedule.Mid_torn -> Cluster.torn_restart cluster dc
          | Schedule.Mid_isolate ->
              (* Short bidirectional isolation of [dc], self-healing like
                 the gray-failure windows (majority-side connectivity is
                 untouched, so the availability oracle stands). *)
              let engine = Cluster.engine cluster in
              let peers =
                List.filter (fun p -> p <> dc)
                  (List.init (Cluster.size cluster) Fun.id)
              in
              List.iter
                (fun peer ->
                  enter t.oneways (dc, peer);
                  enter t.oneways (peer, dc);
                  Cluster.cut_oneway cluster ~src:dc ~dst:peer;
                  Cluster.cut_oneway cluster ~src:peer ~dst:dc)
                peers;
              Engine.schedule engine
                ~at:(Engine.now engine +. 0.75)
                (fun () ->
                  List.iter
                    (fun peer ->
                      if leave t.oneways (dc, peer) then
                        Cluster.heal_oneway cluster ~src:dc ~dst:peer;
                      if leave t.oneways (peer, dc) then
                        Cluster.heal_oneway cluster ~src:peer ~dst:dc)
                    peers))

let exec t ~cluster ~groups fault =
  t.injected <- t.injected + 1;
  inject t ~cluster ~groups fault;
  (* Fault boundaries are where volatile caches are most likely to drift
     from durable state (restart drops them, compact prunes them): give the
     runner's coherence oracle a hook right after each injection. *)
  match t.on_fault with None -> () | Some check -> check fault

let apply t ~cluster ~groups schedule =
  let engine = Cluster.engine cluster in
  List.iter
    (fun { Schedule.at; fault } ->
      Engine.schedule engine ~at (fun () -> exec t ~cluster ~groups fault))
    schedule

let heal_all cluster =
  for dc = 0 to Cluster.size cluster - 1 do
    if Cluster.is_down cluster dc then Cluster.bring_up cluster dc
  done;
  Cluster.heal cluster;
  Cluster.calm cluster;
  (* Gray-failure state; the windows' own scheduled clears may still fire
     later, but on an already-clean network they are no-ops. *)
  Cluster.heal_oneways cluster;
  Cluster.clear_slowdowns cluster;
  Cluster.clear_flaps cluster;
  Cluster.clear_duplication cluster
