(** One chaos run: randomized workload + fault schedule + oracle suite.

    A run builds a cluster from [(seed, topology, protocol)], starts a
    YCSB workload spread over every datacenter, injects a generated (or
    supplied) {!Schedule}, heals everything at [duration], drains, and
    then checks, in order:

    + {b availability} — after healing, a client in every datacenter can
      commit a probe transaction;
    + {b bounded unavailability} — a live prober samples commit success
      in [probe_window]-second windows throughout the run (the
      availability timeline); after the final heal at [duration], some
      probe commit must complete within [max_heal_windows] windows;
    + {b convergence} — every datacenter catches up to the global log
      head (snapshot installation included);
    + {b progress} — the workload committed at least [min_commits]
      transactions (the generator keeps a connected majority at all
      times, so this must hold);
    + {b safety} — the full {!Mdds_core.Verify} oracle suite per group
      (logs agree, outcome honesty, unique transaction per slot, no
      stale reads, value-level one-copy serializability), with entries
      archived by the nemesis before compactions merged back in;
    + {b cross-group atomicity} — when the workload's [cross_ratio]
      draws cross-group transactions, {!Mdds_core.Verify.check_cross}
      over the workload groups' merged logs: every prepare resolved per
      its coordinator's logged decision, commits applied atomically in
      every participant group, prepare windows exclusive, client
      reports honest against logged decisions.

    In addition, a {b cache-coherence} oracle
    ({!Mdds_core.Service.cache_coherent}) runs after {e every} injected
    fault and once more after the drain: each service's decoded WAL and
    acceptor-state caches must equal a fresh decode of its durable store,
    and the decoded view must never claim an entry the durable store
    could not re-produce after a dirty crash
    ({!Mdds_wal.Wal.durable_coherent}), proving the storage fast path is
    rebuildable from durable state across
    crash/restart/dirty-crash/torn-write/partition/compaction schedules.
    Clusters are created with {!Mdds_kvstore.Store.Sync_explicit} storage,
    so every run exercises the write-buffer/checksum layer even when the
    schedule draws no storage fault.

    Everything is driven by the deterministic simulator: the same spec
    (and optional explicit schedule) gives byte-identical results. *)

type spec = {
  seed : int;
  topology : string;  (** {!Mdds_net.Topology.ec2} name, e.g. ["VVV"]. *)
  config : Mdds_core.Config.t;
  duration : float;  (** Fault window; healing starts here. *)
  kinds : Schedule.kind list;
  workload : Mdds_workload.Ycsb.config;
  min_commits : int;
  probe_window : float;
      (** Width (seconds) of one availability-timeline sampling window. *)
  max_heal_windows : int;
      (** Bounded-unavailability budget: a probe commit must land within
          this many probe windows of the final heal at [duration]. *)
}

val spec :
  ?config:Mdds_core.Config.t ->
  ?duration:float ->
  ?kinds:Schedule.kind list ->
  ?workload:Mdds_workload.Ycsb.config ->
  ?min_commits:int ->
  ?probe_window:float ->
  ?max_heal_windows:int ->
  seed:int ->
  string ->
  spec
(** [spec ~seed topology]. Defaults: Paxos-CP with chaos-friendly
    timeouts ([rpc_timeout = 0.5], [max_rounds = 8]) and the adaptive
    timeout + hedged failover machinery enabled, 20 s duration, all fault
    kinds, a workload with one thread per datacenter spread across all
    datacenters, [min_commits = 1], 1 s probe windows, an 8-window
    bounded-unavailability budget. *)

val default_config : Mdds_core.Config.protocol -> Mdds_core.Config.t
(** The chaos-friendly config for a protocol (shorter timeouts than
    {!Mdds_core.Config.default} so runs drain quickly; adaptive timeouts
    and hedged reads on, so every soak seed exercises the gray-failure
    client machinery). *)

val throughput_config : seed:int -> Mdds_core.Config.t -> Mdds_core.Config.t
(** The throughput schedule dimension (DESIGN.md §14–§15): force the
    leader protocol and draw [batch_max ∈ {1,2,4,8}],
    [pipeline_depth ∈ {1,2,4}] and [epoch_interval ∈ {0, 0, 0.05, 0.15}]
    deterministically from [seed] (on a stream distinct from the engine's
    and the fault schedule's; the epoch draw is appended after the
    batch/depth draws, so pre-epoch seeds keep their historical
    batch/depth), never all off — so a soak over a seed range exercises
    every batching/pipelining/epoch-sealing combination under every
    fault kind. *)

val throughput_workload :
  dcs:int -> duration:float -> Mdds_workload.Ycsb.config
(** A denser soak workload for the throughput dimension: arrivals cluster
    inside one commit round-trip, so batches fill and pipelined positions
    overlap while faults land. *)

val default_workload : dcs:int -> duration:float -> Mdds_workload.Ycsb.config
(** The workload {!spec} builds when none is supplied: one thread per
    datacenter, paced to finish inside the fault window. Exposed so
    callers (the CLI) can override fields — e.g. [groups] and
    [cross_ratio] for cross-group soaks — without changing the
    single-group byte-identical default. *)

type report = {
  run_spec : spec;
  schedule : Schedule.t;
  commits : int;  (** Workload transactions committed (incl. read-only). *)
  aborts : int;
  unknowns : int;
  begin_failures : int;
  faults : int;  (** Fault events actually injected. *)
  net_stats : Mdds_net.Network.stats;
      (** Transport counters, including messages dropped to loss, outages
          and partitions. *)
  recovery : Mdds_core.Service.recovery_stats;
      (** Crash-recovery counters summed over all services: recovery scans
          that found damage, torn versions scrubbed, quarantined positions
          re-learned. *)
  dedup : Mdds_core.Service.dedup_stats;
      (** Duplicate-delivery counters summed over all services: replayed
          applies absorbed, replayed claims answered from the register,
          replayed submissions answered with their original position. *)
  throughput : Mdds_core.Service.throughput_stats;
      (** Batched-path counters summed over all services (all zero unless
          the spec's config enables {!Mdds_core.Config.throughput_mode},
          e.g. via {!throughput_config}): positions proposed by the
          batched path, transactions they carried, pipelined rounds,
          window stalls, and — when the seed drew epoch sealing — epochs
          sealed and the transactions they admitted. *)
  twopc : Mdds_core.Service.twopc_stats;
      (** Multi-shot-commit counters summed over all services (all zero
          unless the workload's [cross_ratio] draws cross-group
          transactions): prepare markers absorbed into in-doubt tables,
          in-doubt transactions settled by resolvers, and honest
          [In_doubt] submit replies returned to clients. *)
  hedges : int;
      (** Service requests answered by a fallback datacenter
          ({!Mdds_core.Audit.hedges}): hedged failovers under the default
          chaos config. *)
  timeline : bool array;
      (** Availability timeline: element [w] is true iff a live probe
          commit completed inside window
          [[w·probe_window, (w+1)·probe_window)]. Covers the fault window
          plus [max_heal_windows + 2] windows past the heal. *)
  recovery_times : (Schedule.event * float option) list;
      (** Per injected fault: seconds from injection to the first probe
          commit completed at-or-after it ([None] = none ever did). *)
  violation : string option;  (** [None] = every oracle passed. *)
  trace_tail : string list;  (** Last trace events, for repros. *)
}

val run :
  ?schedule:Schedule.t ->
  ?extra_oracle:(Mdds_core.Cluster.t -> (unit, string) result) ->
  spec ->
  report
(** Execute one chaos run. [?schedule] replays an explicit schedule
    (repro/shrinking) instead of generating one; [?extra_oracle] runs
    after the built-in suite (tests use it to inject failures for the
    shrinker). *)

val run_many :
  ?schedule:Schedule.t ->
  ?extra_oracle:(Mdds_core.Cluster.t -> (unit, string) result) ->
  spec list ->
  report list
(** Run independent specs (typically a seed battery) on the
    {!Mdds_parallel.Pool} domain pool, reports in input order. Results are
    identical to mapping {!run} sequentially — every run is deterministic
    in its spec. Shrinking is inherently sequential; do it on the returned
    failing reports. *)

val failed : report -> bool

val repro : report -> string
(** A copy-pastable [mdds chaos ...] command line replaying this exact
    run, explicit schedule included. *)

val pp_report : Format.formatter -> report -> unit

val up_windows : report -> int
(** Number of timeline windows with a completed probe commit. *)

val max_ttr : report -> float
(** Largest per-fault time-to-recovery (0 if no faults or no probes). *)

val pp_timeline : Format.formatter -> report -> unit
(** The availability timeline as a [#]/[.] strip plus one
    time-to-recovery line per injected fault. *)
