module Store = Mdds_kvstore.Store
module Row = Mdds_kvstore.Row
module Txn = Mdds_types.Txn
module Codec = Mdds_codec.Codec

(* The durable representation — encoded rows in the key-value store — is
   the sole source of truth; everything in [group_cache] is a volatile,
   write-through decoded view of it. Every mutation writes the store first
   and then updates the cache, so at any instant the cache equals a fresh
   decode of the store ([coherence] below checks exactly that, and the
   chaos engine checks it after every fault event). [invalidate] drops the
   whole view (a process restart); it is rebuilt lazily from the store. *)
type group_cache = {
  log_prefix : string;  (* "log/<group>/" *)
  data_prefix : string;  (* "data/<group>/" *)
  meta_key : string;  (* "logmeta/<group>" *)
  entries : (int, Txn.entry) Hashtbl.t;  (* decoded log entries by position *)
  mutable contiguous : int;
      (* Watermark: every position in [compacted+1 .. contiguous] is known
         present (decoded in [entries]), so gap scans start after it
         instead of re-probing from position 1. Always >= [compacted]. *)
  mutable last : int;
  mutable applied : int;
  mutable compacted : int;
  mutable meta_loaded : bool;  (* the three ints mirror the store *)
  data_rows : (string, Row.t) Hashtbl.t;  (* data key -> store row handle *)
  mutable data_indexed : bool;
      (* [data_rows] holds *every* data key of the group, so snapshots and
         negative lookups need not scan [Store.keys]. *)
}

type t = { store : Store.t; groups : (string, group_cache) Hashtbl.t }

let create store = { store; groups = Hashtbl.create 4 }
let store t = t.store

let cache t ~group =
  match Hashtbl.find_opt t.groups group with
  | Some c -> c
  | None ->
      let c =
        {
          log_prefix = "log/" ^ group ^ "/";
          data_prefix = "data/" ^ group ^ "/";
          meta_key = "logmeta/" ^ group;
          entries = Hashtbl.create 64;
          contiguous = 0;
          last = 0;
          applied = 0;
          compacted = 0;
          meta_loaded = false;
          data_rows = Hashtbl.create 64;
          data_indexed = false;
        }
      in
      Hashtbl.replace t.groups group c;
      c

let invalidate t = Hashtbl.reset t.groups

let log_key c pos = c.log_prefix ^ string_of_int pos

let meta_attr t c name =
  match Store.attribute t.store ~key:c.meta_key name with
  | None -> 0
  | Some s -> int_of_string s

let load_meta t c =
  if not c.meta_loaded then begin
    c.last <- meta_attr t c "last";
    c.applied <- meta_attr t c "applied";
    c.compacted <- meta_attr t c "compacted";
    if c.contiguous < c.compacted then c.contiguous <- c.compacted;
    c.meta_loaded <- true
  end

let flush_meta t c =
  match
    Store.write t.store ~key:c.meta_key
      [
        ("last", string_of_int c.last);
        ("applied", string_of_int c.applied);
        ("compacted", string_of_int c.compacted);
      ]
  with
  | Ok _ -> ()
  | Error `Stale -> assert false (* auto-stamped writes cannot be stale *)

(* Presence discovered through the cache advances the gap-scan watermark. *)
let rec advance c =
  if Hashtbl.mem c.entries (c.contiguous + 1) then begin
    c.contiguous <- c.contiguous + 1;
    advance c
  end

let entry_in t c pos =
  match Hashtbl.find_opt c.entries pos with
  | Some _ as hit -> hit
  | None -> (
      match Store.attribute t.store ~key:(log_key c pos) "entry" with
      | None -> None
      | Some encoded ->
          let e = Codec.decode_exn Txn.entry_codec encoded in
          Hashtbl.replace c.entries pos e;
          advance c;
          Some e)

let entry t ~group ~pos = entry_in t (cache t ~group) pos

let append t ~group ~pos e =
  let c = cache t ~group in
  load_meta t c;
  (match entry_in t c pos with
  | Some existing when not (Txn.equal_entry existing e) ->
      failwith
        (Printf.sprintf
           "Wal.append: conflicting entry for %s position %d (R1 violation)"
           group pos)
  | Some _ -> () (* duplicate apply: idempotent *)
  | None -> (
      let encoded = Codec.encode Txn.entry_codec e in
      match Store.write t.store ~key:(log_key c pos) [ ("entry", encoded) ] with
      | Ok _ ->
          Hashtbl.replace c.entries pos e;
          advance c
      | Error `Stale -> assert false));
  if pos > c.last then begin
    c.last <- pos;
    flush_meta t c
  end;
  (* Log entries are where the paper requires durability (L1): a decided
     entry must survive any crash, so the append is a sync point. *)
  Store.sync t.store

let last_position t ~group =
  let c = cache t ~group in
  load_meta t c;
  c.last

let first_gap t ~group ~upto =
  let c = cache t ~group in
  load_meta t c;
  let rec go pos =
    if pos > upto then None
    else if pos > c.compacted && pos <= c.contiguous then
      (* Known-present prefix: skip to the first unknown position. *)
      go (c.contiguous + 1)
    else
      match entry_in t c pos with None -> Some pos | Some _ -> go (pos + 1)
  in
  go 1

let applied_position t ~group =
  let c = cache t ~group in
  load_meta t c;
  c.applied

let compacted_position t ~group =
  let c = cache t ~group in
  load_meta t c;
  c.compacted

(* Write path for data rows: resolves (and indexes) the row handle, so the
   per-write cost is one small-hashtable probe instead of key sprintf +
   store lookup. *)
let data_row t c key =
  match Hashtbl.find_opt c.data_rows key with
  | Some row -> row
  | None ->
      let row = Store.row t.store ~key:(c.data_prefix ^ key) in
      Hashtbl.replace c.data_rows key row;
      row

(* Read path: must not create rows for absent keys. Once the group is
   fully indexed, negative lookups are answered from the index alone. *)
let find_data_row t c key =
  match Hashtbl.find_opt c.data_rows key with
  | Some _ as hit -> hit
  | None ->
      if c.data_indexed then None
      else (
        match Store.row_handle t.store ~key:(c.data_prefix ^ key) with
        | Some row ->
            Hashtbl.replace c.data_rows key row;
            Some row
        | None -> None)

let ensure_data_index t c =
  if not c.data_indexed then begin
    List.iter
      (fun key ->
        if String.starts_with ~prefix:c.data_prefix key then
          let data_key =
            String.sub key
              (String.length c.data_prefix)
              (String.length key - String.length c.data_prefix)
          in
          if not (Hashtbl.mem c.data_rows data_key) then
            match Store.row_handle t.store ~key with
            | Some row -> Hashtbl.replace c.data_rows data_key row
            | None -> ())
      (Store.keys t.store);
    c.data_indexed <- true
  end

(* Multi-shot commit markers (keys under "__2pc/") are write-once: the
   first record in log order to write a given marker applies in full;
   any later record carrying the same marker (a racing resolver's
   duplicate outcome or decision) is skipped *entirely*, real writes
   included, so apply stays all-or-nothing per record. Log order is
   identical on every replica and under {!recover}'s replay, so all
   copies agree on which record applied. *)
let twopc_prefix = "__2pc/"

let marker_applied t c (record : Txn.record) =
  List.exists
    (fun (w : Txn.write) ->
      String.starts_with ~prefix:twopc_prefix w.Txn.key
      &&
      match find_data_row t c w.Txn.key with
      | Some row -> Row.latest row <> None
      | None -> false)
    record.Txn.writes

(* Data-row applies are lazy: they go through the store's write buffer
   (so a dirty crash can lose them) and are re-derived from the log by
   {!recover} — the log entry, not the data row, is the durable truth. *)
let apply_entry t c ~pos e =
  List.iter
    (fun (record : Txn.record) ->
      if marker_applied t c record then ()
      else
      List.iter
        (fun (w : Txn.write) ->
          match
            Store.write_row t.store (data_row t c w.key) ~timestamp:pos
              [ ("v", w.value) ]
          with
          | Ok _ -> ()
          | Error `Stale ->
              (* A higher-versioned write exists: this entry was already
                 applied past this point; per-position overwrite keeps the
                 operation idempotent, stale means a *later* position wrote
                 the key, which only happens on re-apply. Safe to skip. *)
              ())
        record.writes)
    e

let apply t ~group ~upto =
  let c = cache t ~group in
  load_meta t c;
  let rec go pos =
    if pos > upto then Ok ()
    else
      match entry_in t c pos with
      | None -> Error (`Gap pos)
      | Some e ->
          apply_entry t c ~pos e;
          c.applied <- pos;
          go (pos + 1)
  in
  let from = max c.applied c.compacted + 1 in
  let result = go from in
  if c.applied >= from then flush_meta t c;
  result

(* Advance the apply watermark as far as contiguity allows and report it.
   The throughput-mode batcher calls this between pipelined proposals: a
   gap is expected there (one of its own in-flight positions, or a rival's
   out-of-order apply) and must not trigger the learner — learning one of
   our own undecided positions would have this manager racing itself. *)
let apply_available t ~group =
  (match apply t ~group ~upto:(last_position t ~group) with
  | Ok () | Error (`Gap _) -> ());
  applied_position t ~group

let compact t ~group ~upto =
  let c = cache t ~group in
  load_meta t c;
  if upto > c.applied then Error `Not_applied
  else begin
    for pos = c.compacted + 1 to upto do
      Store.delete t.store ~key:(log_key c pos);
      Hashtbl.remove c.entries pos
    done;
    if upto > c.compacted then begin
      c.compacted <- upto;
      if c.contiguous < c.compacted then c.contiguous <- c.compacted;
      flush_meta t c
    end;
    (* Compaction discards the only durable source of the applied prefix,
       so the data rows it checkpoints into must be durable first. *)
    Store.sync t.store;
    Ok ()
  end

let snapshot t ~group =
  let c = cache t ~group in
  load_meta t c;
  ensure_data_index t c;
  let rows =
    Hashtbl.fold
      (fun data_key row acc ->
        match Row.latest row with
        | Some (version, attrs) -> (
            match Row.attribute attrs "v" with
            | Some value -> (data_key, version, value) :: acc
            | None -> acc)
        | None -> acc)
      c.data_rows []
  in
  (c.applied, rows)

let install_snapshot t ~group ~applied rows =
  let c = cache t ~group in
  load_meta t c;
  List.iter
    (fun (key, version, value) ->
      match
        Store.write_row t.store (data_row t c key) ~timestamp:version
          [ ("v", value) ]
      with
      | Ok _ | Error `Stale -> () (* local state already newer: keep it *))
    rows;
  if applied > c.applied || applied > c.compacted || applied > c.last then begin
    if applied > c.applied then c.applied <- applied;
    if applied > c.compacted then begin
      c.compacted <- applied;
      if c.contiguous < c.compacted then c.contiguous <- c.compacted
    end;
    if applied > c.last then c.last <- applied;
    flush_meta t c
  end;
  (* The snapshot replaces log entries this replica can never learn: it
     must not be lost to a crash, so installation is a sync point. *)
  Store.sync t.store

let read_data t ~group ~key ~at =
  let c = cache t ~group in
  match find_data_row t c key with
  | None -> None
  | Some row -> (
      match Row.read row ~timestamp:at () with
      | None -> None
      | Some (_, attrs) -> Row.attribute attrs "v")

let data_version t ~group ~key ~at =
  let c = cache t ~group in
  match find_data_row t c key with
  | None -> None
  | Some row -> (
      match Row.read row ~timestamp:at () with
      | None -> None
      | Some (ts, _) -> Some ts)

let dump t ~group =
  let c = cache t ~group in
  load_meta t c;
  let rec go pos acc =
    if pos < 1 then acc
    else
      match entry_in t c pos with
      | None -> go (pos - 1) acc
      | Some e -> go (pos - 1) ((pos, e) :: acc)
  in
  go c.last []

(* ------------------------------------------------------------------ *)
(* Cache-coherence oracle: cache = decode(durable store).               *)

exception Incoherent of string

let coherence t ~group =
  match Hashtbl.find_opt t.groups group with
  | None -> Ok () (* no cached view: trivially coherent *)
  | Some c -> (
      let fail fmt =
        Printf.ksprintf (fun m -> raise (Incoherent ("wal/" ^ group ^ ": " ^ m))) fmt
      in
      try
        if c.meta_loaded then begin
          let check name cached =
            let stored = meta_attr t c name in
            if stored <> cached then
              fail "meta %s: cached %d, store %d" name cached stored
          in
          check "last" c.last;
          check "applied" c.applied;
          check "compacted" c.compacted
        end;
        if c.contiguous < c.compacted then
          fail "contiguous %d below compacted %d" c.contiguous c.compacted;
        for pos = c.compacted + 1 to c.contiguous do
          if not (Hashtbl.mem c.entries pos) then
            fail "position %d inside the contiguous watermark is not cached" pos
        done;
        Hashtbl.iter
          (fun pos cached ->
            match Store.attribute t.store ~key:(log_key c pos) "entry" with
            | None -> fail "cached entry at %d has no durable row" pos
            | Some encoded ->
                if
                  not
                    (Txn.equal_entry cached
                       (Codec.decode_exn Txn.entry_codec encoded))
                then fail "cached entry at %d differs from durable decode" pos)
          c.entries;
        Hashtbl.iter
          (fun data_key row ->
            match Store.row_handle t.store ~key:(c.data_prefix ^ data_key) with
            | Some stored when stored == row -> ()
            | Some _ -> fail "data index for %s aliases a replaced row" data_key
            | None -> fail "data index for %s has no durable row" data_key)
          c.data_rows;
        if c.data_indexed then
          List.iter
            (fun key ->
              if String.starts_with ~prefix:c.data_prefix key then
                let data_key =
                  String.sub key
                    (String.length c.data_prefix)
                    (String.length key - String.length c.data_prefix)
                in
                if not (Hashtbl.mem c.data_rows data_key) then
                  fail "durable data row %s missing from the index" data_key)
            (Store.keys t.store);
        Ok ()
      with Incoherent msg -> Error msg)

let coherent t =
  Hashtbl.fold
    (fun group _ acc ->
      match acc with Ok () -> coherence t ~group | Error _ -> acc)
    t.groups (Ok ())

(* ------------------------------------------------------------------ *)
(* Durable-coherence oracle: the decoded view never claims an entry the
   durable store cannot re-produce. "Durable" is what a dirty crash would
   leave: the write buffer rolled back and checksum-invalid versions
   dropped ([Store.durable_versions]). Every cached log entry, and the
   cached [last]/[compacted] watermarks, must be re-derivable from that
   state — [applied] is exempt because data applies are lazy by design
   and re-derived from the log on recovery. *)

let durable_coherent t ~group =
  match Hashtbl.find_opt t.groups group with
  | None -> Ok ()
  | Some c -> (
      let fail fmt =
        Printf.ksprintf
          (fun m -> raise (Incoherent ("wal-durable/" ^ group ^ ": " ^ m)))
          fmt
      in
      try
        if c.meta_loaded then begin
          let durable = Store.durable_versions t.store ~key:c.meta_key in
          let attr name =
            match durable with
            | [] -> 0
            | (_, v) :: _ -> (
                match Row.attribute v name with
                | None -> 0
                | Some s -> int_of_string s)
          in
          if attr "last" <> c.last then
            fail "meta last: cached %d, durable %d" c.last (attr "last");
          if attr "compacted" <> c.compacted then
            fail "meta compacted: cached %d, durable %d" c.compacted
              (attr "compacted")
        end;
        Hashtbl.iter
          (fun pos cached ->
            let durable = Store.durable_versions t.store ~key:(log_key c pos) in
            let reproducible =
              List.exists
                (fun (_, v) ->
                  match Row.attribute v "entry" with
                  | None -> false
                  | Some encoded ->
                      Txn.equal_entry cached
                        (Codec.decode_exn Txn.entry_codec encoded))
                durable
            in
            if not reproducible then
              fail "entry at %d is not re-producible from durable state" pos)
          c.entries;
        Ok ()
      with Incoherent msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Crash-recovery scan (PROTOCOL §7, step 0): scrub checksum-invalid
   versions from the group's rows, re-derive the watermarks from what
   survived, truncate the decoded view to the longest valid durable
   prefix, and re-apply it to the data rows (lazy applies may have been
   lost with the write buffer; the log is the durable truth they are
   re-derived from). Runs on the post-crash store, before the service
   serves anything for the group. *)

type recovery = {
  scrubbed : int;  (* checksum-invalid versions dropped *)
  truncated : int option;
      (* First position the durable log cannot produce, if the log
         claimed (or still holds entries past) such a position. *)
  reapplied : int;  (* entries re-applied to the data rows *)
}

let recover t ~group =
  (* Decode from scratch: recovery must trust nothing volatile. *)
  Hashtbl.remove t.groups group;
  let c = cache t ~group in
  let scrubbed = ref 0 in
  let positions = ref [] in
  let log_len = String.length c.log_prefix in
  List.iter
    (fun key ->
      let is_log = String.starts_with ~prefix:c.log_prefix key in
      if
        is_log || key = c.meta_key
        || String.starts_with ~prefix:c.data_prefix key
      then begin
        scrubbed := !scrubbed + Store.scrub t.store ~key;
        if is_log && Store.row_handle t.store ~key <> None then
          match
            int_of_string_opt
              (String.sub key log_len (String.length key - log_len))
          with
          | Some pos -> positions := pos :: !positions
          | None -> ()
      end)
    (Store.keys t.store);
  load_meta t c;
  let claimed = c.last in
  (* [last] re-derived from the surviving entries: a torn meta row may
     over- or under-state it. *)
  let last = List.fold_left max c.compacted !positions in
  c.last <- last;
  (* Longest valid durable prefix, and the lazy data state re-derived
     from it (idempotent per-position overwrites). The surviving applied
     watermark is a safe starting point, not just a hint: every sync
     flushes the whole write buffer, so the meta version that survived
     the crash was flushed together with the data rows it counts — the
     replay only has to cover what was applied after the last sync. In
     [Sync_always] mode that makes the scan a no-op. *)
  c.applied <- max c.compacted (min c.applied last);
  let reapplied = ref 0 in
  let rec go pos =
    if pos <= last then
      match entry_in t c pos with
      | None -> ()
      | Some e ->
          apply_entry t c ~pos e;
          c.applied <- pos;
          incr reapplied;
          go (pos + 1)
  in
  go (c.applied + 1);
  flush_meta t c;
  (* Recovery's repairs are themselves durable from here on. *)
  Store.sync t.store;
  let truncated =
    if c.applied < max last claimed then Some (c.applied + 1) else None
  in
  { scrubbed = !scrubbed; truncated; reapplied = !reapplied }
