(** Per-datacenter write-ahead log, stored in the key-value store.

    Every transaction group has its own log (§3.2): a sequence of positions
    numbered from 1, each holding the committed transaction(s) decided by
    the Paxos instance for that position. The log and its metadata live in
    ordinary key-value rows, so the transaction tier keeps no private
    durable state.

    Log entries are written at commit time; the data writes they contain
    are applied to versioned data rows later — by {!apply} — with the log
    position as the version timestamp (§3.2: "the commit log position
    serves as the timestamp"). [applied_position] tracks the background
    application watermark.

    Row layout (one store, many groups):
    - ["log/<group>/<pos>"]: attribute ["entry"] = encoded {!Mdds_types.Txn.entry};
    - ["logmeta/<group>"]: attributes ["last"], ["applied"], ["compacted"];
    - ["data/<group>/<key>"]: attribute ["v"], versioned by log position.

    {b Decoded view vs durable truth.} The encoded rows are the sole source
    of truth; on top of them the WAL keeps a volatile, write-through decoded
    view per group — log entries decoded once and cached by position, the
    [last]/[applied]/[compacted] watermarks as plain ints, a
    contiguous-prefix watermark that lets gap scans skip the known-present
    prefix, and an index of the group's data rows (store row handles) so
    snapshots and stale-read checks never scan the full store key set.
    Every mutation writes the store first, so the view always equals a
    fresh decode of the store; {!coherence} checks that invariant and the
    chaos engine asserts it after every fault event. {!invalidate} models a
    process restart: the view is dropped and rebuilt lazily from the
    store. *)

type t

val create : Mdds_kvstore.Store.t -> t
val store : t -> Mdds_kvstore.Store.t

val invalidate : t -> unit
(** Drop the decoded view (all groups): what a service-process restart does
    to volatile memory. The next access rebuilds it from the durable rows.
    Must also be called if the underlying store is mutated behind the WAL's
    back (tests forging corruption do this; the protocol never does). *)

(** {1 The log} *)

val append : t -> group:string -> pos:int -> Mdds_types.Txn.entry -> unit
(** Record the decided entry for a position. Idempotent for equal entries.
    Raises [Failure] if a *different* entry is already present — that would
    be a violation of replication property (R1) and indicates a protocol
    bug, so it must not be silently absorbed. *)

val entry : t -> group:string -> pos:int -> Mdds_types.Txn.entry option

val last_position : t -> group:string -> int
(** Highest position with a locally known entry (0 if none). This is the
    "position of the last written log entry" a client's [begin] asks for. *)

val first_gap : t -> group:string -> upto:int -> int option
(** Lowest position in [1..upto] with no local entry. *)

(** {1 Applying entries to data rows} *)

val applied_position : t -> group:string -> int

val apply : t -> group:string -> upto:int -> (unit, [ `Gap of int ]) result
(** Apply all entries from the watermark up to [upto] to the data rows, in
    log order (writes within an entry in record order, so later records of
    a combined entry win). Stops at the first missing entry, returning its
    position; the caller (Transaction Service) must learn it via Paxos. *)

val apply_available : t -> group:string -> int
(** Apply every entry the contiguous prefix allows (up to
    {!last_position}) and return the resulting applied watermark. Unlike
    the Transaction Service's catch-up, a gap is tolerated silently — the
    throughput-mode batcher uses this between pipelined proposals, where a
    gap is one of its own still-in-flight positions and must not be
    "learned". *)

val read_data : t -> group:string -> key:string -> at:int -> string option
(** Value of [key] as of log position [at] — the most recent applied write
    with position ≤ [at]. Requires the log to be applied through [at] to be
    meaningful; the Transaction Service guarantees that before reading. *)

val data_version : t -> group:string -> key:string -> at:int -> int option
(** Position of the write that {!read_data} would return (test oracle). *)

(** {1 Compaction and snapshots}

    Once a prefix of the log has been applied to the data rows, the rows
    themselves are the checkpoint: the prefix can be discarded
    (Megastore-style checkpointing). A replica that fell behind a
    compaction point can no longer learn those entries through Paxos — it
    installs a snapshot of the data rows instead and resumes the log from
    the snapshot's position. *)

val compacted_position : t -> group:string -> int
(** Highest discarded log position (0 = nothing compacted). *)

val compact : t -> group:string -> upto:int -> (unit, [ `Not_applied ]) result
(** Discard log entries 1..[upto]. Refused unless the prefix has been
    applied — compaction must never lose unapplied writes. *)

val snapshot : t -> group:string -> int * (string * int * string) list
(** [(applied, rows)]: the applied watermark and, for every data key of
    the group, its latest [(key, version, value)] as of that watermark. *)

val install_snapshot :
  t -> group:string -> applied:int -> (string * int * string) list -> unit
(** Install a peer's snapshot: write each row version (keeping newer local
    data if any) and advance the applied/compacted watermarks to
    [applied]. The local log then starts after the snapshot. *)

(** {1 Introspection} *)

val dump : t -> group:string -> (int * Mdds_types.Txn.entry) list
(** All locally known entries, sorted by position (for checkers/tests). *)

val coherence : t -> group:string -> (unit, string) result
(** Cache-coherence oracle: check that the group's decoded view equals a
    fresh decode of the durable rows — cached watermarks match the meta
    row, every cached entry decodes identically from its log row, the
    contiguous watermark only covers cached positions, and the data index
    holds exactly the group's live row handles. Reads the store directly
    (never through the cache) and mutates nothing. *)

val coherent : t -> (unit, string) result
(** {!coherence} over every group with a cached view. *)

val durable_coherent : t -> group:string -> (unit, string) result
(** Durable-coherence oracle: the decoded view never claims an entry the
    durable store cannot re-produce — every cached log entry, and the
    cached [last]/[compacted] watermarks, must be re-derivable from the
    state a dirty crash would leave (write buffer rolled back,
    checksum-invalid versions dropped; see
    {!Mdds_kvstore.Store.durable_versions}). [applied] is exempt: data
    applies are lazy by design and re-derived from the log by {!recover}.
    Mutates nothing; the chaos engine checks it after every fault. *)

(** {1 Crash recovery} *)

type recovery = {
  scrubbed : int;  (** Checksum-invalid (torn) versions dropped. *)
  truncated : int option;
      (** First position the durable log could not produce ([None] if the
          valid durable prefix reaches everything the log claimed). *)
  reapplied : int;  (** Entries re-applied to the data rows. *)
}

val recover : t -> group:string -> recovery
(** Crash-recovery scan (PROTOCOL.md §7): drop checksum-invalid versions
    from the group's log/meta/data rows, re-derive the
    [last]/[applied] watermarks from the surviving entries, truncate the
    decoded view to the longest valid durable prefix and re-apply it to
    the data rows (lazy applies lost with the write buffer are re-derived
    from the log), then sync. {!Mdds_core.Service.restart} runs this for
    every group before serving; entries past a gap stay durable and are
    re-entered through the learn/snapshot ladder, not invented locally. *)
