(** Pure acceptor transitions for one Paxos (Synod) instance.

    This is Algorithm 1's Transaction Service logic with the storage layer
    factored out: the Transaction Service persists the state in its
    key-value store (via [check_and_write]) and applies these pure
    transition functions, so the acceptor rules can be tested — including
    property-based safety tests over arbitrary message schedules — in
    isolation from the network and store.

    Deviation from Algorithm 1, documented in DESIGN.md: [on_accept]
    follows Lamport's rule (accept iff [ballot ≥ nextBal]) rather than the
    equality test of line 18. Equality assumes every accept is preceded by
    that proposer's prepare at the same ballot, which the leader fast path
    (§4.1) deliberately skips; [≥] admits the fast round-0 accept and is
    the classical, provably safe condition — with one extra guard: an
    acceptor casts at most {e one} round-0 vote per instance. Round-0
    accepts skipped prepare, so ballot order cannot arbitrate between two
    of them; without the guard, rival fast-path proposers with divergent
    views of the position's leader (possible after an outage) could each
    assemble a quorum for a different value. *)

type 'v state = {
  next_bal : Ballot.t;  (** Highest prepare answered ([nextBal]). *)
  vote : (Ballot.t * 'v) option;  (** Last vote cast ([ballotNumber, value]). *)
}

val initial : 'v state
(** [⟨−1, −1, ⊥⟩] — no promise, no vote. *)

type 'v prepare_reply =
  | Promise of (Ballot.t * 'v) option
      (** The last vote (or [None]); the acceptor promises to ignore
          ballots below the prepared one. *)
  | Reject of Ballot.t
      (** Already promised the returned (higher or equal) ballot. *)

val on_prepare : 'v state -> Ballot.t -> 'v state * 'v prepare_reply
(** Handle a [prepare propNum] message (Algorithm 1, lines 3–15). *)

val on_accept : 'v state -> Ballot.t -> 'v -> 'v state * bool
(** Handle an [accept propNum value] message; [true] iff the vote was
    cast (Algorithm 1, lines 16–19, with the [≥] rule above). *)

val pp : (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v state -> unit
