type t = { round : int; proposer : int }

let bottom = { round = -1; proposer = -1 }

let fast ~proposer = { round = 0; proposer }

let make ~round ~proposer =
  if round < 1 then invalid_arg "Ballot.make: round must be >= 1";
  { round; proposer }

let compare a b =
  match Int.compare a.round b.round with
  | 0 -> Int.compare a.proposer b.proposer
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0

let next ~after ~proposer =
  let round = Stdlib.max 1 (after.round + 1) in
  let candidate = { round; proposer } in
  if compare candidate after > 0 then candidate
  else { round = after.round + 1; proposer }

let is_bottom t = equal t bottom
let is_fast t = t.round = 0

let pp ppf t = Format.fprintf ppf "%d.%d" t.round t.proposer
let to_string t = Printf.sprintf "%d.%d" t.round t.proposer

let of_string s =
  match String.index_opt s '.' with
  | None -> invalid_arg "Ballot.of_string"
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some round, Some proposer -> { round; proposer }
      | _ -> invalid_arg "Ballot.of_string")

let codec =
  Mdds_codec.Codec.map
    (fun (round, proposer) -> { round; proposer })
    (fun { round; proposer } -> (round, proposer))
    Mdds_codec.Codec.(pair int int)
