(** Paxos proposal numbers (ballots).

    A ballot is a [(round, proposer)] pair ordered lexicographically, which
    makes proposal numbers unique per proposer and totally ordered — the
    two properties Algorithm 2 requires of [propNum]. Round [0] is reserved
    for the leader fast path (§4.1's per-position leader optimization): the
    first client blessed by the position's leader proposes directly at a
    round-0 ballot, skipping the prepare phase. *)

type t = { round : int; proposer : int }

val bottom : t
(** The initial [nextBal = −1] of Algorithm 1: smaller than every real
    ballot; no prepare has been answered. *)

val fast : proposer:int -> t
(** The round-0 ballot used by the leader fast path. *)

val make : round:int -> proposer:int -> t
(** Requires [round ≥ 1] (rounds 0 and below are reserved). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val next : after:t -> proposer:int -> t
(** Smallest ballot of [proposer] strictly greater than [after] with
    [round ≥ 1] — how a client picks "a larger proposal number" when
    retrying (Algorithm 2, line 41). *)

val is_bottom : t -> bool

val is_fast : t -> bool
(** Round-0 ballot (a fast-path accept that skipped prepare). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on bad input.
    Used to persist acceptor state as key-value attributes. *)

val codec : t Mdds_codec.Codec.t
