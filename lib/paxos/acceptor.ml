type 'v state = {
  next_bal : Ballot.t;
  vote : (Ballot.t * 'v) option;
}

let initial = { next_bal = Ballot.bottom; vote = None }

type 'v prepare_reply =
  | Promise of (Ballot.t * 'v) option
  | Reject of Ballot.t

let on_prepare state ballot =
  if Ballot.compare ballot state.next_bal > 0 then
    ({ state with next_bal = ballot }, Promise state.vote)
  else (state, Reject state.next_bal)

(* Round-0 (fast-path) accepts skipped prepare, so ballot order alone
   cannot arbitrate between them: two proposers with divergent views of
   who leads the position may both send round-0 accepts for different
   values, and letting {0,q} displace a vote cast at {0,p} would give
   both a chance at a quorum. Rule (Fast Paxos's any-value round): an
   acceptor casts at most one round-0 vote per instance; any later
   proposal must go through prepare, where the earlier vote is visible. *)
let on_accept state ballot value =
  if
    Ballot.(ballot >= state.next_bal)
    && not (Ballot.is_fast ballot && state.vote <> None)
  then ({ next_bal = ballot; vote = Some (ballot, value) }, true)
  else (state, false)

let pp pp_v ppf state =
  Format.fprintf ppf "@[<h>{nextBal=%a; vote=%a}@]" Ballot.pp state.next_bal
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.fprintf ppf "⊥")
       (fun ppf (b, v) -> Format.fprintf ppf "(%a,%a)" Ballot.pp b pp_v v))
    state.vote
