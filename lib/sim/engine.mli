(** Discrete-event simulation engine with lightweight processes.

    The engine replaces the paper's EC2 testbed: datacenters, transaction
    services, clients and the network are all processes interleaved over a
    single virtual clock. A process is an ordinary OCaml function; when it
    blocks ([sleep], [suspend], mailbox receive) an OCaml 5 effect captures
    its continuation and the engine resumes it later from the event queue.

    Determinism: events fire in (time, insertion-order) order and all
    randomness comes from the engine's {!Rng.t}, so a run is a pure function
    of the seed.

    Domain safety: the "engine of the currently-running process" registry is
    domain-local, so independent engines may run concurrently on separate
    domains (the parallel trial runner does exactly that). A single engine
    must not be shared across domains: all interaction with one engine —
    [spawn], [run], processes — must happen on the domain that runs it. *)

type t

(** {1 Construction and running} *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes an engine whose clock starts at [0.]. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The engine's root random stream ({!Rng.split} it per component). *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty (all processes finished or
    blocked forever) or the clock would pass [until]. Can be called again
    after adding more work. *)

val processed : t -> int
(** Number of events executed so far (debugging/telemetry). *)

val pending : t -> int
(** Live events currently queued — cancelled timers whose heap slot has
    not yet drained are excluded. Used by tests guarding against timer
    leaks: a component that cancels its one-shot timers when the awaited
    event arrives keeps this bounded by its in-flight window, instead of
    growing with every call whose long timeout has not yet expired. *)

(** {1 Processes and scheduling} *)

val spawn : ?at:float -> t -> (unit -> unit) -> unit
(** [spawn t f] starts process [f] at time [max at (now t)]. Exceptions
    escaping a process abort the simulation ([run] re-raises them). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Low-level: run a callback (not a blocking process) at the given time. *)

type timer
(** Handle to a pending one-shot callback. *)

val after : t -> float -> (unit -> unit) -> timer
(** [after t d f] runs [f] once, [d] seconds from now, unless cancelled. *)

val cancel : timer -> unit
(** Cancel a pending timer; harmless if it already fired. *)

(** {1 Blocking operations — valid only inside a process} *)

val sleep : float -> unit
(** Suspend the calling process for the given virtual duration. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the calling process and calls
    [register wake]. Some other event must eventually call [wake v], which
    resumes the process with value [v] (at the then-current time). Calling
    [wake] more than once is a programming error; guard with a flag when
    racing a timer against another waker. *)

val yield : unit -> unit
(** Let other events scheduled for the current instant run first. *)
