open Effect
open Effect.Deep

type t = {
  mutable clock : float;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  random : Rng.t;
  mutable executed : int;
  mutable dead : int;  (* cancelled timers still occupying heap slots *)
}

type _ Effect.t +=
  | Sleep : (t * float) -> unit Effect.t
  | Suspend : (t * (('a -> unit) -> unit)) -> 'a Effect.t

(* The engine the currently-executing process belongs to. Processes only
   run from inside [run], which maintains this; effects need it to schedule
   their continuations. Domain-local so that independent engines can run
   concurrently on separate domains (one trial per domain): each domain has
   its own "currently running engine" slot and engines never migrate
   between domains mid-run. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create ?(seed = 42) () =
  { clock = 0.0; seq = 0; events = Heap.create (); random = Rng.create seed;
    executed = 0; dead = 0 }

let now t = t.clock
let rng t = t.random
let processed t = t.executed
let pending t = Heap.length t.events - t.dead

let schedule t ~at f =
  let at = if at < t.clock then t.clock else at in
  t.seq <- t.seq + 1;
  Heap.push t.events ~time:at ~seq:t.seq f

type timer = { mutable cancelled : bool; mutable fired : bool; owner : t }

let after t d f =
  let tm = { cancelled = false; fired = false; owner = t } in
  schedule t ~at:(t.clock +. d) (fun () ->
      tm.fired <- true;
      if tm.cancelled then t.dead <- t.dead - 1 else f ());
  tm

let cancel tm =
  if not (tm.cancelled || tm.fired) then begin
    tm.cancelled <- true;
    tm.owner.dead <- tm.owner.dead + 1
  end

let engine_of_process () =
  match Domain.DLS.get current with
  | Some t -> t
  | None -> failwith "Engine: blocking operation outside a running process"

(* Run a process step under the effect handler. Continuations re-enter
   through the event queue, so the handler installs itself only once per
   process: [continue] resumes under the same (deep) handler. *)
let start_process _t f =
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep (t, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t ~at:(t.clock +. d) (fun () -> continue k ()))
          | Suspend (t, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun v -> schedule t ~at:t.clock (fun () -> continue k v)))
          | _ -> None);
    }

let spawn ?at t f =
  let at = match at with None -> t.clock | Some x -> x in
  schedule t ~at (fun () -> start_process t f)

let sleep d =
  let t = engine_of_process () in
  perform (Sleep (t, d))

let suspend register =
  let t = engine_of_process () in
  perform (Suspend (t, register))

let yield () = sleep 0.0

let run ?(until = infinity) t =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some t);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current saved)
    (fun () ->
      let rec loop () =
        match Heap.peek t.events with
        | None -> ()
        | Some (time, _, _) when time > until -> t.clock <- until
        | Some _ ->
            (match Heap.pop t.events with
            | None -> assert false
            | Some (time, _, f) ->
                t.clock <- time;
                t.executed <- t.executed + 1;
                f ());
            loop ()
      in
      loop ())
