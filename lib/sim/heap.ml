type 'a entry = { time : float; seq : int; item : 'a }

(* Slots past [size] must not retain popped entries (their items are
   executed-event closures that would otherwise live until the end of the
   run), so the array holds an explicit [Empty] that vacated slots are
   reset to. *)
type 'a slot = Empty | Slot of 'a entry

type 'a t = { mutable data : 'a slot array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let get t i =
  match t.data.(i) with Slot e -> e | Empty -> assert false

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (cap * 2) in
    let nd = Array.make ncap Empty in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let push t ~time ~seq item =
  let e = { time; seq; item } in
  grow t;
  t.data.(t.size) <- Slot e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less (get t !i) (get t parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let peek t =
  if t.size = 0 then None
  else
    let e = get t 0 in
    Some (e.time, e.seq, e.item)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- Empty;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less (get t l) (get t !smallest) then smallest := l;
        if r < t.size && less (get t r) (get t !smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end
    else t.data.(0) <- Empty;
    Some (top.time, top.seq, top.item)
  end

let clear t =
  Array.fill t.data 0 t.size Empty;
  t.size <- 0
