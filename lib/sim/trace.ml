type level = Debug | Info | Warn

type event = {
  time : float;
  level : level;
  source : string;
  category : string;
  message : string;
}

type t = {
  engine : Engine.t;
  capacity : int;
  buffer : event Queue.t;
  mutable on : bool;
  mutable recorded : int;
}

let create ?(capacity = 10_000) engine =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { engine; capacity; buffer = Queue.create (); on = false; recorded = 0 }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let push t event =
  t.recorded <- t.recorded + 1;
  Queue.push event t.buffer;
  if Queue.length t.buffer > t.capacity then ignore (Queue.pop t.buffer)

let record t ?(level = Info) ~source ~category fmt =
  (* Disabled tracing must not pay for formatting: [ifprintf] consumes the
     format arguments without ever building the message string, so the hot
     paths only pay one branch when the trace is off. *)
  if t.on then
    Printf.ksprintf
      (fun message ->
        push t { time = Engine.now t.engine; level; source; category; message })
      fmt
  else Printf.ifprintf () fmt

let events t = List.of_seq (Queue.to_seq t.buffer)

let tail t n =
  let all = events t in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let count t ~category =
  Queue.fold (fun acc e -> if e.category = category then acc + 1 else acc) 0 t.buffer

let total t = t.recorded

let clear t = Queue.clear t.buffer

let pp_event ppf e =
  let level = match e.level with Debug -> "·" | Info -> " " | Warn -> "!" in
  Format.fprintf ppf "[%9.4fs]%s %-12s %-10s %s" e.time level e.source e.category
    e.message
