(** Structured execution traces.

    A bounded in-memory record of interesting protocol events — message
    rounds, commit outcomes, learner activity, fault injections — stamped
    with virtual time and source. Tracing is off by default and costs one
    branch when disabled; when enabled it is the primary debugging tool for
    protocol runs (`mdds run --trace` prints the tail of the trace).

    Events are plain data; rendering is the caller's business
    ({!pp_event} gives the standard one-line form). *)

type level = Debug | Info | Warn

type event = {
  time : float;  (** Virtual time of the event. *)
  level : level;
  source : string;  (** Component, e.g. ["svc.V1"], ["client.c3.O1"]. *)
  category : string;  (** Event kind, e.g. ["prepare"], ["commit"]. *)
  message : string;
}

type t

val create : ?capacity:int -> Engine.t -> t
(** A disabled trace buffer keeping at most [capacity] (default 10_000)
    most recent events. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val record :
  t -> ?level:level -> source:string -> category:string ->
  ('a, unit, string, unit) format4 -> 'a
(** [record t ~source ~category fmt …] appends an event. When tracing is
    disabled this is a no-op that skips the [Printf] formatting entirely
    (the arguments themselves are still evaluated, so avoid computing
    expensive values inline at call sites on hot paths). *)

val events : t -> event list
(** Retained events, oldest first. *)

val tail : t -> int -> event list
(** The [n] most recent events, oldest first. *)

val count : t -> category:string -> int
(** Events of a category among the retained ones. *)

val total : t -> int
(** Events recorded since creation (including evicted ones). *)

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
(** ["[  1.234s] svc.V1 prepare: …"]. *)
