type value = Row.value

type t = { rows : (string, Row.t) Hashtbl.t }

let create () = { rows = Hashtbl.create 256 }

let find_row t key = Hashtbl.find_opt t.rows key

let find_or_create_row t key =
  match Hashtbl.find_opt t.rows key with
  | Some row -> row
  | None ->
      let row = Row.create () in
      Hashtbl.replace t.rows key row;
      row

let row_handle t ~key = find_row t key

let row t ~key = find_or_create_row t key

let read t ~key ?timestamp () =
  match find_row t key with
  | None -> None
  | Some row -> Row.read row ?timestamp ()

let write t ~key ?timestamp value =
  Row.write (find_or_create_row t key) ?timestamp value

let check_and_write t ~key ~test_attribute ~test_value value =
  let current =
    match find_row t key with
    | None -> None
    | Some row -> (
        match Row.latest row with
        | None -> None
        | Some (_, v) -> Row.attribute v test_attribute)
  in
  if current = test_value then
    match write t ~key value with Ok _ -> true | Error `Stale -> false
  else false

let attribute t ~key name =
  match read t ~key () with
  | None -> None
  | Some (_, v) -> Row.attribute v name

let delete t ~key = Hashtbl.remove t.rows key

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.rows []

let row_count t = Hashtbl.length t.rows

let reset t = Hashtbl.reset t.rows
