type value = Row.value

type mode = Sync_always | Sync_explicit

(* Undo log for the volatile write buffer: each record captures the state
   of one key *before* the first buffered operation that touched it, so
   replaying the journal newest-first rewinds the store to exactly its
   state at the last sync point. *)
type undo =
  | Mutated of Row.t * (int * value) list  (* row existed: restore versions *)
  | Created of string  (* row did not exist: remove it *)
  | Deleted of string * Row.t * (int * value) list  (* row removed: re-insert *)

type t = {
  rows : (string, Row.t) Hashtbl.t;
  mode : mode;
  mutable journal : undo list;  (* newest first; empty in Sync_always *)
  mutable epoch : int;  (* bumped at each sync point (journal dedup) *)
  mutable inflight : Row.t option;  (* most recent buffered row write *)
}

let create ?(mode = Sync_always) () =
  { rows = Hashtbl.create 256; mode; journal = []; epoch = 1; inflight = None }

let mode t = t.mode

(* ------------------------------------------------------------------ *)
(* Checksums. Every version written in [Sync_explicit] mode carries a
   ["#sum"] attribute — an FNV-1a digest of the other attributes — so a
   torn write (a version that persisted only a prefix of its attributes)
   is detectable on read. '#' sorts before every attribute name the
   transaction tier uses, so ["#sum"] is always the first attribute of a
   normalized value and survives in any non-empty torn prefix. *)

let checksum_attr = "#sum"

let checksum_body value =
  (* FNV-1a (32-bit constants), attribute and value bytes separated by a
     sentinel so ("ab","c") and ("a","bc") digest differently. *)
  let h = ref 0x811c9dc5 in
  let feed s =
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x01000193 land 0xffffffff)
      s;
    h := !h lxor 0xff;
    h := !h * 0x01000193 land 0xffffffff
  in
  List.iter
    (fun (k, v) ->
      if k <> checksum_attr then begin
        feed k;
        feed v
      end)
    value;
  Printf.sprintf "%08x" !h

let checksum_valid value =
  match Row.attribute value checksum_attr with
  | None -> true (* written in Sync_always mode: no torn-write arm *)
  | Some sum -> String.equal sum (checksum_body value)

let stamp t value =
  match t.mode with
  | Sync_always -> value
  | Sync_explicit ->
      let value = Row.normalize value in
      (checksum_attr, checksum_body value) :: value

(* ------------------------------------------------------------------ *)
(* Journaling. Each key is snapshotted at most once per epoch: rows carry
   the epoch of their last journal entry, so the hot path pays one integer
   compare. [Created]/[Deleted] records need the key (they change the row
   table); [Mutated] records are matched by row handle, which is what lets
   the WAL's handle-based fast path write through the buffer without
   rebuilding key strings. *)

let note_mutation t row =
  if t.mode <> Sync_always && Row.epoch row <> t.epoch then begin
    Row.set_epoch row t.epoch;
    t.journal <- Mutated (row, Row.versions row) :: t.journal
  end

let find_row t key = Hashtbl.find_opt t.rows key

let find_or_create_row t key =
  match Hashtbl.find_opt t.rows key with
  | Some row -> row
  | None ->
      let row = Row.create () in
      if t.mode <> Sync_always then begin
        Row.set_epoch row t.epoch;
        t.journal <- Created key :: t.journal
      end;
      Hashtbl.replace t.rows key row;
      row

let row_handle t ~key = find_row t key

let row t ~key = find_or_create_row t key

let read t ~key ?timestamp () =
  match find_row t key with
  | None -> None
  | Some row -> Row.read row ?timestamp ()

(* Write through a row handle: same per-row atomic write as {!write}, used
   by the WAL fast path. In Sync_always mode this is exactly [Row.write]. *)
let write_row t row ?timestamp value =
  if t.mode = Sync_always then Row.write row ?timestamp value
  else begin
    note_mutation t row;
    let result = Row.write row ?timestamp (stamp t value) in
    (match result with Ok _ -> t.inflight <- Some row | Error `Stale -> ());
    result
  end

let write t ~key ?timestamp value =
  if t.mode = Sync_always then Row.write (find_or_create_row t key) ?timestamp value
  else begin
    let row = find_or_create_row t key in
    note_mutation t row;
    let result = Row.write row ?timestamp (stamp t value) in
    (match result with Ok _ -> t.inflight <- Some row | Error `Stale -> ());
    result
  end

let check_and_write t ~key ~test_attribute ~test_value value =
  let current =
    match find_row t key with
    | None -> None
    | Some row -> (
        match Row.latest row with
        | None -> None
        | Some (_, v) -> Row.attribute v test_attribute)
  in
  if current = test_value then
    match write t ~key value with Ok _ -> true | Error `Stale -> false
  else false

let attribute t ~key name =
  match read t ~key () with
  | None -> None
  | Some (_, v) -> Row.attribute v name

let delete t ~key =
  (if t.mode <> Sync_always then
     match Hashtbl.find_opt t.rows key with
     | None -> ()
     | Some row ->
         Row.set_epoch row t.epoch;
         t.journal <- Deleted (key, row, Row.versions row) :: t.journal);
  Hashtbl.remove t.rows key

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.rows []

let row_count t = Hashtbl.length t.rows

let reset t =
  Hashtbl.reset t.rows;
  t.journal <- [];
  t.inflight <- None;
  t.epoch <- t.epoch + 1

(* ------------------------------------------------------------------ *)
(* Sync points and crashes.                                            *)

let sync t =
  if t.mode <> Sync_always then begin
    t.journal <- [];
    t.inflight <- None;
    t.epoch <- t.epoch + 1
  end

let unsynced t = List.length t.journal

(* Rewind to the state at the last sync point: replay the undo journal
   newest-first. *)
let rollback t =
  List.iter
    (function
      | Mutated (row, versions) -> Row.restore row versions
      | Created key -> Hashtbl.remove t.rows key
      | Deleted (key, row, versions) ->
          Row.restore row versions;
          Hashtbl.replace t.rows key row)
    t.journal

(* Tear the in-flight write: its newest version keeps only a prefix of its
   (sorted) attributes. The checksum attribute sorts first, so any
   non-empty strict prefix keeps ["#sum"] while losing body attributes —
   the mismatch is what {!checksum_valid} detects. The prefix length is a
   fixed function of the attribute count, keeping chaos runs a pure
   function of (seed, schedule). *)
let tear row =
  match Row.versions row with
  | [] -> ()
  | (ts, value) :: rest ->
      let n = List.length value in
      if n >= 2 then begin
        let keep = max 1 (n / 2) in
        let torn = List.filteri (fun i _ -> i < keep) value in
        Row.restore row ((ts, torn) :: rest)
      end

let crash ?(torn = false) t ~lose_unsynced =
  if t.mode <> Sync_always then begin
    let inflight = t.inflight in
    if lose_unsynced then begin
      (* The torn victim is the most recent buffered write: record what it
         would have written, rewind, then persist the torn prefix. *)
      let victim =
        if not torn then None
        else
          match inflight with
          | None -> None
          | Some row -> (
              match Row.versions row with
              | (ts, value) :: _ -> Some (row, ts, value)
              | [] -> None)
      in
      rollback t;
      match victim with
      | None -> ()
      | Some (row, ts, value) -> (
          (* Re-write the in-flight version (as the disk controller did,
             mid-flush), then truncate it to a prefix. Rows rolled back to
             absent stay absent — their key is gone from the table, which
             models the row write itself never reaching the disk. *)
          match Row.write row ~timestamp:ts value with
          | Ok _ -> tear row
          | Error `Stale -> ())
    end;
    t.journal <- [];
    t.inflight <- None;
    t.epoch <- t.epoch + 1
  end

(* ------------------------------------------------------------------ *)
(* Durable view: what a [crash ~lose_unsynced:true] would leave for one
   key — the journal rolled back, checksum-invalid versions dropped. Used
   by the {!Mdds_wal.Wal.durable_coherent} oracle; mutates nothing. *)

let durable_versions t ~key =
  let state =
    ref
      (match Hashtbl.find_opt t.rows key with
      | None -> None
      | Some row -> Some (row, Row.versions row))
  in
  List.iter
    (fun u ->
      match u with
      | Created k when String.equal k key -> state := None
      | Deleted (k, row, versions) when String.equal k key ->
          state := Some (row, versions)
      | Mutated (row, versions) -> (
          match !state with
          | Some (r, _) when r == row -> state := Some (row, versions)
          | _ -> ())
      | Created _ | Deleted _ -> ())
    t.journal;
  match !state with
  | None -> []
  | Some (_, versions) -> List.filter (fun (_, v) -> checksum_valid v) versions

(* ------------------------------------------------------------------ *)
(* Recovery-time scrub: drop checksum-invalid versions of a row, deleting
   the row if nothing survives. Runs right after a crash (empty journal);
   the repair is authoritative — it is not journaled, and becomes durable
   at the recovery scan's closing {!sync}. *)

let scrub t ~key =
  match Hashtbl.find_opt t.rows key with
  | None -> 0
  | Some row ->
      let versions = Row.versions row in
      let valid = List.filter (fun (_, v) -> checksum_valid v) versions in
      let dropped = List.length versions - List.length valid in
      if dropped > 0 then
        if valid = [] then Hashtbl.remove t.rows key
        else Row.restore row valid;
      dropped
