(** Per-datacenter multi-version key-value store.

    Implements exactly the three-operation contract the paper requires of
    the underlying store (§2.2): atomic per-row [read], [write] and
    [check_and_write]. The transaction tier builds everything else —
    write-ahead log, Paxos acceptor state, data versions — on top of these.

    Atomicity note: within the simulator each operation runs without
    interleaving (processes only yield at blocking points), which models
    the per-row atomicity of HBase/BigTable. *)

type t

type value = Row.value

val create : unit -> t

val read : t -> key:string -> ?timestamp:int -> unit -> (int * value) option
(** Most recent version of the row with timestamp ≤ [timestamp] (latest if
    omitted); [None] if the row does not exist or has no such version. *)

val write : t -> key:string -> ?timestamp:int -> value -> (int, [ `Stale ]) result
(** Create a new version of the row (see {!Row.write}). *)

val check_and_write :
  t ->
  key:string ->
  test_attribute:string ->
  test_value:string option ->
  value ->
  bool
(** Atomic conditional write: if the latest version's [test_attribute]
    equals [test_value] ([None] means "attribute absent or row missing"),
    write [value] as a new auto-stamped version and return [true];
    otherwise return [false] and write nothing. This is the primitive that
    lets stateless service processes update Paxos state safely
    (Algorithm 1, lines 9 and 18). *)

val attribute : t -> key:string -> string -> string option
(** Latest version's attribute, if any. *)

(** {1 Row handles (fast path)}

    A row handle is a stable reference to a row's version chain: reads and
    writes through it are the same per-row atomic operations as
    {!read}/{!write}, minus the key hash on every access. The write-through
    caches of the transaction tier ({!Mdds_wal.Wal}'s data index) hold
    handles so hot-path reads skip both key construction and the store
    lookup. A handle stays valid until the row is {!delete}d or the store
    is {!reset}; holders that cache handles must invalidate with the same
    events that delete rows. *)

val row_handle : t -> key:string -> Row.t option
(** The row's handle, if the row exists. *)

val row : t -> key:string -> Row.t
(** The row's handle, creating an empty row (no versions) if absent. *)

val delete : t -> key:string -> unit
(** Drop a row and all its versions (used by log compaction). *)

val keys : t -> string list
(** All row keys (unordered). *)

val row_count : t -> int

val reset : t -> unit
(** Drop all rows (simulates a datacenter losing and re-provisioning its
    store; used by recovery tests). *)
