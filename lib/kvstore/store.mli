(** Per-datacenter multi-version key-value store.

    Implements exactly the three-operation contract the paper requires of
    the underlying store (§2.2): atomic per-row [read], [write] and
    [check_and_write]. The transaction tier builds everything else —
    write-ahead log, Paxos acceptor state, data versions — on top of these.

    Atomicity note: within the simulator each operation runs without
    interleaving (processes only yield at blocking points), which models
    the per-row atomicity of HBase/BigTable.

    {b Durability model.} The store has a write-buffer/sync-point layer:
    in [Sync_explicit] mode, writes land in a volatile buffer (they are
    visible to reads immediately, like an OS page cache) and become
    durable only when {!sync} is called — the transaction tier syncs
    where the paper requires durability: after acceptor writes and WAL
    appends, while data-row applies remain lazy. {!crash} models losing
    power: with [~lose_unsynced:true] the buffer is discarded (the store
    rewinds to its state at the last sync point) and the torn arm
    additionally persists only a prefix of the attributes of the
    in-flight row write. Every version written in [Sync_explicit] mode
    carries a checksum attribute so torn writes are detectable on read
    ({!checksum_valid}, {!scrub}). The default mode [Sync_always] makes
    the whole layer a no-op — every write is durable as it lands, exactly
    the pre-existing behaviour, so ordinary experiments are unaffected. *)

type t

type value = Row.value

type mode = Sync_always | Sync_explicit

val create : ?mode:mode -> unit -> t
(** Default mode is [Sync_always]. *)

val mode : t -> mode

val read : t -> key:string -> ?timestamp:int -> unit -> (int * value) option
(** Most recent version of the row with timestamp ≤ [timestamp] (latest if
    omitted); [None] if the row does not exist or has no such version. *)

val write : t -> key:string -> ?timestamp:int -> value -> (int, [ `Stale ]) result
(** Create a new version of the row (see {!Row.write}). *)

val check_and_write :
  t ->
  key:string ->
  test_attribute:string ->
  test_value:string option ->
  value ->
  bool
(** Atomic conditional write: if the latest version's [test_attribute]
    equals [test_value] ([None] means "attribute absent or row missing"),
    write [value] as a new auto-stamped version and return [true];
    otherwise return [false] and write nothing. This is the primitive that
    lets stateless service processes update Paxos state safely
    (Algorithm 1, lines 9 and 18). *)

val attribute : t -> key:string -> string -> string option
(** Latest version's attribute, if any. *)

(** {1 Row handles (fast path)}

    A row handle is a stable reference to a row's version chain: reads and
    writes through it are the same per-row atomic operations as
    {!read}/{!write}, minus the key hash on every access. The write-through
    caches of the transaction tier ({!Mdds_wal.Wal}'s data index) hold
    handles so hot-path reads skip both key construction and the store
    lookup. A handle stays valid until the row is {!delete}d or the store
    is {!reset}; holders that cache handles must invalidate with the same
    events that delete rows. *)

val row_handle : t -> key:string -> Row.t option
(** The row's handle, if the row exists. *)

val row : t -> key:string -> Row.t
(** The row's handle, creating an empty row (no versions) if absent. *)

val write_row :
  t -> Row.t -> ?timestamp:int -> value -> (int, [ `Stale ]) result
(** {!write} through a row handle obtained from {!row}/{!row_handle} of
    this store: same per-row atomic semantics, same buffer journaling and
    checksum stamping, minus the key hash. The WAL's data-apply fast path
    uses this so lazy applies still flow through the write buffer. *)

val delete : t -> key:string -> unit
(** Drop a row and all its versions (used by log compaction). *)

val keys : t -> string list
(** All row keys (unordered). *)

val row_count : t -> int

val reset : t -> unit
(** Drop all rows (simulates a datacenter losing and re-provisioning its
    store; used by recovery tests). *)

(** {1 Sync points and crashes (crash-consistency model)} *)

val sync : t -> unit
(** Make every buffered write durable (an [fsync] of the whole store).
    No-op in [Sync_always] mode, where writes are durable as they land. *)

val unsynced : t -> int
(** Number of keys with buffered (not yet durable) changes. *)

val crash : ?torn:bool -> t -> lose_unsynced:bool -> unit
(** Power-loss at the storage level. With [~lose_unsynced:true] the store
    rewinds to its state at the last {!sync}; with [~torn:true] the most
    recent buffered row write additionally persists a strict prefix of
    its attributes (its checksum no longer matches — a {e torn} write,
    detectable by {!scrub}). With [~lose_unsynced:false] the buffer
    survives, as when the OS flushed before the process died. No-op in
    [Sync_always] mode. Callers restart the service process afterwards;
    the recovery scan must run before the store is trusted again. *)

(** {1 Checksums and recovery} *)

val checksum_valid : value -> bool
(** A version value's checksum attribute matches its attributes (values
    without a checksum — written in [Sync_always] mode — are valid). *)

val scrub : t -> key:string -> int
(** Recovery-time repair: drop every checksum-invalid version of the row
    (deleting the row if nothing survives) and return how many versions
    were dropped. The caller syncs once its scan completes. *)

val durable_versions : t -> key:string -> (int * value) list
(** The versions a [crash ~lose_unsynced:true] would leave for this key:
    the write buffer rolled back, checksum-invalid versions dropped.
    Mutates nothing (the {!Mdds_wal.Wal.durable_coherent} oracle). *)
