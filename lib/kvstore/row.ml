type value = (string * string) list

(* Versions kept as a list sorted by decreasing timestamp; rows have few
   versions relative to accesses and reads want the newest first.
   [epoch] belongs to {!Mdds_kvstore.Store}'s write-buffer journal: it
   marks the last sync epoch in which the row was journaled, so the store
   snapshots each row at most once per epoch with one integer compare. *)
type t = { mutable versions : (int * value) list; mutable epoch : int }

let create () = { versions = []; epoch = 0 }

let epoch t = t.epoch
let set_epoch t e = t.epoch <- e

let normalize value =
  (* Later bindings win: keep the last occurrence of each attribute.
     [Hashtbl.replace] in list order leaves exactly the last binding per
     key, and the final sort fixes the order, so this is O(n log n) where
     the old [List.mem]-over-a-growing-seen-list walk was O(n²). *)
  match value with
  | [] -> []
  | [ (_, _) ] as v -> v
  | value ->
      let tbl = Hashtbl.create (List.length value) in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) value;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let latest t = match t.versions with [] -> None | v :: _ -> Some v

let read t ?timestamp () =
  match timestamp with
  | None -> latest t
  | Some ts -> List.find_opt (fun (vts, _) -> vts <= ts) t.versions

let write t ?timestamp value =
  let value = normalize value in
  match timestamp with
  | None ->
      let ts = match t.versions with [] -> 1 | (vts, _) :: _ -> vts + 1 in
      t.versions <- (ts, value) :: t.versions;
      Ok ts
  | Some ts -> (
      match t.versions with
      | (vts, _) :: _ when vts > ts -> Error `Stale
      | (vts, _) :: rest when vts = ts ->
          t.versions <- (ts, value) :: rest;
          Ok ts
      | _ ->
          t.versions <- (ts, value) :: t.versions;
          Ok ts)

let attribute value name = List.assoc_opt name value

let versions t = t.versions

let restore t versions = t.versions <- versions

let version_count t = List.length t.versions
