(** A single multi-versioned row.

    A row value is a set of named attributes (columns), as in BigTable or
    HBase. Each write creates a new version stamped with a logical
    timestamp; in the transaction tier, the timestamp of a data write is
    the log position of the committing transaction (§3.2). Versions are
    totally ordered by timestamp and never overwritten. *)

type value = (string * string) list
(** Attribute name/value pairs. Construction normalizes: attributes are
    sorted, later bindings win. *)

type t

val create : unit -> t
(** An empty row (no versions). *)

val normalize : value -> value
(** Sort attributes and drop duplicate names (last binding wins). *)

val latest : t -> (int * value) option
(** Most recent version with its timestamp. *)

val read : t -> ?timestamp:int -> unit -> (int * value) option
(** Most recent version with timestamp ≤ [timestamp] (latest if omitted). *)

val write : t -> ?timestamp:int -> value -> (int, [ `Stale ]) result
(** Append a version. With an explicit [timestamp], fails with [`Stale] if a
    version with a strictly greater timestamp exists (the key-value-store
    contract of §2.2). Without one, stamps [latest + 1]. Writing the same
    timestamp twice overwrites that version (idempotent re-apply of a log
    entry). Returns the timestamp used. *)

val attribute : value -> string -> string option
(** Look up one attribute in a version value. *)

val versions : t -> (int * value) list
(** All versions, newest first (for debugging and tests). *)

val restore : t -> (int * value) list -> unit
(** Replace the whole version chain (newest first). Only
    {!Mdds_kvstore.Store}'s crash/recovery machinery may call this: it
    rewinds a row to a previously captured {!versions} snapshot. *)

(**/**)

val epoch : t -> int
val set_epoch : t -> int -> unit
(** Sync-epoch mark for {!Mdds_kvstore.Store}'s write-buffer journal;
    not for general use. *)

(**/**)

val version_count : t -> int
