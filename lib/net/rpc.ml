module Engine = Mdds_sim.Engine
module Mailbox = Mdds_sim.Mailbox

type ('req, 'resp) packet =
  | Request of { id : int; reply_to : int; src : int; oneway : bool; payload : 'req }
  | Response of { id : int; payload : 'resp }

type 'resp pending = { mutable active : bool; deliver : 'resp -> unit }

type ('req, 'resp) t = {
  net : ('req, 'resp) packet Network.t;
  pending : (int, 'resp pending) Hashtbl.t;
  mutable next_id : int;
}

let service_port = "svc"
let client_port = "cli"

let network t = t.net
let engine t = Network.engine t.net

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

(* Per-node dispatcher routing responses to their waiting caller. *)
let start_dispatcher t node =
  let box = Network.endpoint t.net ~node ~port:client_port in
  Engine.spawn (Network.engine t.net) (fun () ->
      let rec loop () =
        (match Mailbox.recv box with
        | Response { id; payload } -> (
            match Hashtbl.find_opt t.pending id with
            | Some p when p.active ->
                p.active <- false;
                Hashtbl.remove t.pending id;
                p.deliver payload
            | _ -> () (* late or duplicate reply: drop *))
        | Request _ -> () (* misrouted: drop, like a stray datagram *));
        loop ()
      in
      loop ())

let create net =
  let t = { net; pending = Hashtbl.create 64; next_id = 0 } in
  for node = 0 to Network.size net - 1 do
    start_dispatcher t node
  done;
  t

let serve t ~node ?(processing = 0.0) handler =
  let box = Network.endpoint t.net ~node ~port:service_port in
  let rng = Mdds_sim.Rng.split (Engine.rng (Network.engine t.net)) in
  Engine.spawn (Network.engine t.net) (fun () ->
      let rec loop () =
        (match Mailbox.recv box with
        | Request { id; reply_to; src; oneway; payload } ->
            Engine.spawn (Network.engine t.net) (fun () ->
                (* Store/OS work per request varies in practice; +/-50%
                   jitter around the mean spreads acceptor vote times. *)
                if processing > 0.0 then
                  Engine.sleep (Mdds_sim.Rng.uniform rng (0.5 *. processing) (1.5 *. processing));
                let resp = handler ~src payload in
                if not oneway then
                  Network.send t.net ~src:node ~dst:reply_to ~port:client_port
                    (Response { id; payload = resp }))
        | Response _ -> ());
        loop ()
      in
      loop ())

let register t id deliver =
  let p = { active = true; deliver } in
  Hashtbl.replace t.pending id p;
  p

let expire t id p =
  if p.active then begin
    p.active <- false;
    Hashtbl.remove t.pending id
  end

let call t ~src ~dst ~timeout req =
  let id = fresh_id t in
  Engine.suspend (fun wake ->
      (* The timeout timer dies with the call: a response must cancel it,
         or every completed call leaves a live timer in the event heap
         until its deadline (the heap then grows with the call rate ×
         timeout window instead of the in-flight window). *)
      let timer = ref None in
      let p =
        register t id (fun resp ->
            Option.iter Engine.cancel !timer;
            wake (Some resp))
      in
      timer :=
        Some
          (Engine.after (engine t) timeout (fun () ->
               if p.active then begin
                 expire t id p;
                 wake None
               end));
      Network.send t.net ~src ~dst ~port:service_port
        (Request { id; reply_to = src; src; oneway = false; payload = req }))

let broadcast t ~src ~dsts ~timeout ?(linger = 0.0) ?(enough = fun _ -> false)
    ?observe req =
  let results = ref [] in
  let finished = ref false in
  let lingering = ref false in
  let started = Engine.now (engine t) in
  Engine.suspend (fun wake ->
      let ids = List.map (fun _ -> fresh_id t) dsts in
      let timers = ref [] in
      let cleanup () =
        List.iter
          (fun id ->
            match Hashtbl.find_opt t.pending id with
            | Some p -> expire t id p
            | None -> ())
          ids
      in
      let finish () =
        if not !finished then begin
          finished := true;
          cleanup ();
          (* Fired timers ignore cancel; the others must not outlive the
             broadcast (same heap-growth argument as in {!call}). *)
          List.iter Engine.cancel !timers;
          wake (List.rev !results)
        end
      in
      (* Once the quorum predicate holds, harvest near-simultaneous
         stragglers for [linger] seconds before returning — the paper's
         clients see "more than a simple majority" of responses because
         replies from equidistant datacenters arrive together. *)
      let satisfied () =
        if List.length !results = List.length dsts then finish ()
        else if linger <= 0.0 then finish ()
        else if not !lingering then begin
          lingering := true;
          timers := Engine.after (engine t) linger (fun () -> finish ()) :: !timers
        end
      in
      List.iter2
        (fun dst id ->
          ignore
            (register t id (fun resp ->
                 if not !finished then begin
                   (match observe with
                   | None -> ()
                   | Some f -> f ~dst ~rtt:(Engine.now (engine t) -. started));
                   results := (dst, resp) :: !results;
                   if List.length !results = List.length dsts || enough !results
                   then satisfied ()
                 end));
          Network.send t.net ~src ~dst ~port:service_port
            (Request { id; reply_to = src; src; oneway = false; payload = req }))
        dsts ids;
      timers := Engine.after (engine t) timeout (fun () -> finish ()) :: !timers;
      (* Degenerate broadcast: nothing to wait for. *)
      if dsts = [] then finish ())

let notify t ~src ~dst req =
  let id = fresh_id t in
  Network.send t.net ~src ~dst ~port:service_port
    (Request { id; reply_to = src; src; oneway = true; payload = req })
