(** Request/response messaging over the lossy datagram {!Network}.

    This is the shape of the paper's client↔service communication: the
    Transaction Client sends a request to the Transaction Service of one or
    all datacenters and waits for replies until a timeout (2 s in the
    paper's prototype) — there are no connections, retransmissions or
    ordering guarantees. {!broadcast} implements the Paxos message rounds:
    send to every datacenter in parallel and collect replies until a quorum
    predicate is satisfied or the timeout fires (Algorithm 2).

    ['req] and ['resp] are the application's request/response payloads. *)

type ('req, 'resp) packet
(** Wire format (opaque; exposed so the underlying network is typed). *)

type ('req, 'resp) t

val create : ('req, 'resp) packet Network.t -> ('req, 'resp) t
(** Wrap a network carrying RPC packets and start the per-node response
    dispatchers. *)

val network : ('req, 'resp) t -> ('req, 'resp) packet Network.t
val engine : ('req, 'resp) t -> Mdds_sim.Engine.t

val serve :
  ('req, 'resp) t ->
  node:int ->
  ?processing:float ->
  (src:int -> 'req -> 'resp) ->
  unit
(** Start a service loop at [node]. Each incoming request is handled in its
    own spawned process (the paper's stateless per-request service
    processes), after an optional randomized delay of mean [processing]
    (uniform within +/-50%, modelling store/OS work). The handler may
    block (e.g. perform nested RPCs). *)

val call :
  ('req, 'resp) t -> src:int -> dst:int -> timeout:float -> 'req -> 'resp option
(** Send one request and wait for its reply; [None] on timeout (request or
    reply lost, destination down, or slow). *)

val broadcast :
  ('req, 'resp) t ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  ?linger:float ->
  ?enough:((int * 'resp) list -> bool) ->
  ?observe:(dst:int -> rtt:float -> unit) ->
  'req ->
  (int * 'resp) list
(** Send the request to every destination in parallel and collect
    [(dst, reply)] pairs until all have answered, [enough] is satisfied, or
    the timeout fires; returns whatever was collected (possibly early).
    [linger] keeps collecting for that many extra seconds after [enough]
    first holds, so near-simultaneous responses beyond the quorum are still
    seen (Paxos-CP's tally wants more than a bare majority, §5).
    [observe] is invoked once per counted reply with the destination and
    its observed round-trip time (the adaptive timeout estimator's feed);
    late or duplicate replies are never observed. *)

val notify : ('req, 'resp) t -> src:int -> dst:int -> 'req -> unit
(** One-way message: no reply is sent or awaited (used for the apply phase,
    Algorithm 2 lines 58–61). *)
