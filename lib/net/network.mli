(** Simulated datagram transport between datacenters.

    Matches the paper's communication model (§2.2): messages are
    UDP-like — unordered across links, possibly lost, never corrupted;
    "either the message arrives before a known timeout or it is lost".
    Datacenters can go offline and come back without notice, and the
    network can be partitioned; both drop traffic silently.

    Beyond the paper's clean-failure model, the transport can also inject
    {e gray failures}: one-way (directed) link cuts, flapping links that
    alternate up/down half-periods, slow-but-alive datacenters (per-node
    delay multipliers) and duplicate delivery (per-link probability of a
    second, independently delayed copy). All of these compose with
    outages, partitions and link-quality overrides; with none active, the
    transport's RNG stream is byte-identical to the clean model.

    Messages are addressed to a (node, port) pair; each such pair owns a
    {!Mdds_sim.Mailbox}. *)

type 'msg t

type stats = {
  sent : int;  (** Messages submitted to the transport. *)
  delivered : int;  (** Messages pushed into a destination mailbox. *)
  dropped_loss : int;  (** Lost to random link loss. *)
  dropped_down : int;  (** Dropped because an endpoint was offline. *)
  dropped_cut : int;  (** Dropped by a partition. *)
  dropped_oneway : int;
      (** Dropped by a directed cut or a flapping link's down
          half-period. *)
  duplicated : int;  (** Extra copies injected by duplicate delivery. *)
}

val create : Mdds_sim.Engine.t -> Topology.t -> 'msg t

val engine : 'msg t -> Mdds_sim.Engine.t
val topology : 'msg t -> Topology.t
val size : 'msg t -> int

val endpoint : 'msg t -> node:int -> port:string -> 'msg Mdds_sim.Mailbox.t
(** The mailbox for [(node, port)], created on first use. *)

val send : 'msg t -> src:int -> dst:int -> port:string -> 'msg -> unit
(** Fire-and-forget send. Sampled delay; silently dropped on loss, outage
    of either endpoint, partition, directed cut or flap down-phase (all
    checked at send *and* delivery time). May deliver twice under an
    active duplication probability. *)

(** {1 Fault injection} *)

val set_down : 'msg t -> int -> unit
(** Take a datacenter offline: its traffic is dropped and queued mail in
    all its mailboxes is discarded (volatile state loss). *)

val set_up : 'msg t -> int -> unit
val is_down : 'msg t -> int -> bool

val partition : 'msg t -> int list list -> unit
(** [partition net groups] cuts every link between nodes of different
    groups (a node absent from all groups forms its own singleton). *)

val heal : 'msg t -> unit
(** Remove any partition. *)

(** {2 Link-quality overrides (loss/jitter storms)}

    A degraded-weather knob for chaos testing: an override replaces the
    topology's delay/jitter/loss for one directed link until cleared.
    Overrides compose with outages and partitions (those still drop
    first). *)

val link : 'msg t -> src:int -> dst:int -> Topology.link
(** The link parameters currently in effect for [src → dst]. *)

val override_link : 'msg t -> src:int -> dst:int -> Topology.link -> unit
val clear_link_override : 'msg t -> src:int -> dst:int -> unit

val clear_overrides : 'msg t -> unit
(** Drop every link override (end of a storm). *)

(** {2 Gray failures}

    The degraded-network regime that dominates real multi-datacenter
    outages: routes that fail in one direction only, links that flap,
    datacenters that are slow but alive, and duplicate delivery. None of
    these mark a node down — [is_down] stays false — which is exactly
    what makes them gray. *)

val cut_oneway : 'msg t -> src:int -> dst:int -> unit
(** Drop all traffic [src → dst]; the reverse direction is untouched
    (asymmetric route failure). Counted in [dropped_oneway]. *)

val heal_oneway : 'msg t -> src:int -> dst:int -> unit
val clear_oneway_cuts : 'msg t -> unit

val set_slowdown : 'msg t -> int -> float -> unit
(** Multiply the delay of every message into {e and} out of this node by
    [factor >= 1] (slow-but-alive datacenter). Composes multiplicatively
    when both endpoints are slowed. *)

val clear_slowdown : 'msg t -> int -> unit
val clear_slowdowns : 'msg t -> unit

val flap_link : 'msg t -> src:int -> dst:int -> period:float -> unit
(** Make the directed link alternate up/down half-periods of
    [period / 2] seconds, phase-anchored at the call (starts up).
    Messages sent or in flight during a down half-period are dropped and
    counted in [dropped_oneway]. Deterministic in the clock — no RNG. *)

val clear_flap : 'msg t -> src:int -> dst:int -> unit
val clear_flaps : 'msg t -> unit

val set_duplication : 'msg t -> src:int -> dst:int -> float -> unit
(** With probability [p], a message on this directed link is delivered
    twice, the second copy with an independently sampled delay (counted
    in [duplicated]). [p = 0] clears the link. The duplication RNG draw
    only happens while some link has [p > 0], so runs without duplication
    keep a byte-identical RNG stream. *)

val set_duplication_all : 'msg t -> float -> unit
(** Set the duplication probability on every directed link. *)

val clear_duplication : 'msg t -> unit

val stats : 'msg t -> stats

val sent_by : 'msg t -> int -> int
(** Messages this datacenter submitted (load it generated). *)

val delivered_to : 'msg t -> int -> int
(** Messages delivered into this datacenter's mailboxes (load it served) —
    used to quantify the single-site bottleneck of leader-based designs. *)
