(** Simulated datagram transport between datacenters.

    Matches the paper's communication model (§2.2): messages are
    UDP-like — unordered across links, possibly lost, never corrupted or
    duplicated; "either the message arrives before a known timeout or it is
    lost". Datacenters can go offline and come back without notice, and
    the network can be partitioned; both drop traffic silently.

    Messages are addressed to a (node, port) pair; each such pair owns a
    {!Mdds_sim.Mailbox}. *)

type 'msg t

type stats = {
  sent : int;  (** Messages submitted to the transport. *)
  delivered : int;  (** Messages pushed into a destination mailbox. *)
  dropped_loss : int;  (** Lost to random link loss. *)
  dropped_down : int;  (** Dropped because an endpoint was offline. *)
  dropped_cut : int;  (** Dropped by a partition. *)
}

val create : Mdds_sim.Engine.t -> Topology.t -> 'msg t

val engine : 'msg t -> Mdds_sim.Engine.t
val topology : 'msg t -> Topology.t
val size : 'msg t -> int

val endpoint : 'msg t -> node:int -> port:string -> 'msg Mdds_sim.Mailbox.t
(** The mailbox for [(node, port)], created on first use. *)

val send : 'msg t -> src:int -> dst:int -> port:string -> 'msg -> unit
(** Fire-and-forget send. Sampled delay; silently dropped on loss, outage
    of either endpoint (checked at send *and* delivery time) or partition. *)

(** {1 Fault injection} *)

val set_down : 'msg t -> int -> unit
(** Take a datacenter offline: its traffic is dropped and queued mail in
    all its mailboxes is discarded (volatile state loss). *)

val set_up : 'msg t -> int -> unit
val is_down : 'msg t -> int -> bool

val partition : 'msg t -> int list list -> unit
(** [partition net groups] cuts every link between nodes of different
    groups (a node absent from all groups forms its own singleton). *)

val heal : 'msg t -> unit
(** Remove any partition. *)

(** {2 Link-quality overrides (loss/jitter storms)}

    A degraded-weather knob for chaos testing: an override replaces the
    topology's delay/jitter/loss for one directed link until cleared.
    Overrides compose with outages and partitions (those still drop
    first). *)

val link : 'msg t -> src:int -> dst:int -> Topology.link
(** The link parameters currently in effect for [src → dst]. *)

val override_link : 'msg t -> src:int -> dst:int -> Topology.link -> unit
val clear_link_override : 'msg t -> src:int -> dst:int -> unit

val clear_overrides : 'msg t -> unit
(** Drop every link override (end of a storm). *)

val stats : 'msg t -> stats

val sent_by : 'msg t -> int -> int
(** Messages this datacenter submitted (load it generated). *)

val delivered_to : 'msg t -> int -> int
(** Messages delivered into this datacenter's mailboxes (load it served) —
    used to quantify the single-site bottleneck of leader-based designs. *)
