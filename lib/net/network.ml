module Engine = Mdds_sim.Engine
module Mailbox = Mdds_sim.Mailbox
module Rng = Mdds_sim.Rng

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_down : int;
  dropped_cut : int;
  dropped_oneway : int;
  duplicated : int;
}

type flap = { period : float; since : float }

type 'msg t = {
  engine : Engine.t;
  topo : Topology.t;
  rng : Rng.t;
  boxes : (int * string, 'msg Mailbox.t) Hashtbl.t;
  down : bool array;
  overrides : (int * int, Topology.link) Hashtbl.t;
  mutable group_of : int array option; (* partition group per node, if any *)
  oneway_cuts : (int * int, unit) Hashtbl.t; (* directed src -> dst cuts *)
  flaps : (int * int, flap) Hashtbl.t; (* directed flapping links *)
  slowdown : float array; (* per-node delay multiplier; 1.0 = healthy *)
  dup_links : (int * int, float) Hashtbl.t; (* directed dup probability *)
  mutable dup_active : int; (* links with dup > 0: gates the extra RNG draw *)
  mutable sent : int;
  mutable delivered : int;
  sent_by : int array;
  delivered_to : int array;
  mutable dropped_loss : int;
  mutable dropped_down : int;
  mutable dropped_cut : int;
  mutable dropped_oneway : int;
  mutable duplicated : int;
}

let create engine topo =
  {
    engine;
    topo;
    rng = Rng.split (Engine.rng engine);
    boxes = Hashtbl.create 64;
    down = Array.make (Topology.size topo) false;
    overrides = Hashtbl.create 16;
    oneway_cuts = Hashtbl.create 8;
    flaps = Hashtbl.create 8;
    slowdown = Array.make (Topology.size topo) 1.0;
    dup_links = Hashtbl.create 8;
    dup_active = 0;
    sent_by = Array.make (Topology.size topo) 0;
    delivered_to = Array.make (Topology.size topo) 0;
    group_of = None;
    sent = 0;
    delivered = 0;
    dropped_loss = 0;
    dropped_down = 0;
    dropped_cut = 0;
    dropped_oneway = 0;
    duplicated = 0;
  }

let engine t = t.engine
let topology t = t.topo
let size t = Topology.size t.topo

let endpoint t ~node ~port =
  match Hashtbl.find_opt t.boxes (node, port) with
  | Some box -> box
  | None ->
      let box = Mailbox.create t.engine in
      Hashtbl.replace t.boxes (node, port) box;
      box

let cut t src dst =
  match t.group_of with
  | None -> false
  | Some groups -> groups.(src) <> groups.(dst)

(* A flapping link alternates between up and down half-periods, phase
   anchored at injection time (deterministic in the clock, no RNG). The
   first half-period is up, so traffic right at injection still passes. *)
let flap_down t src dst =
  match Hashtbl.find_opt t.flaps (src, dst) with
  | None -> false
  | Some { period; since } ->
      let phase = (Engine.now t.engine -. since) /. (period /. 2.0) in
      int_of_float phase land 1 = 1

let oneway_blocked t src dst =
  Hashtbl.mem t.oneway_cuts (src, dst) || flap_down t src dst

let link t ~src ~dst =
  match Hashtbl.find_opt t.overrides (src, dst) with
  | Some link -> link
  | None -> Topology.link t.topo src dst

let override_link t ~src ~dst link = Hashtbl.replace t.overrides (src, dst) link

let clear_link_override t ~src ~dst = Hashtbl.remove t.overrides (src, dst)

let clear_overrides t = Hashtbl.reset t.overrides

let dup_prob t src dst =
  if t.dup_active = 0 then 0.0
  else Option.value (Hashtbl.find_opt t.dup_links (src, dst)) ~default:0.0

(* Sample a one-way flight and schedule the delivery. Every gray-failure
   state is re-checked at delivery time: the destination may have failed,
   a partition or a directed cut may have appeared, or a flapping link
   may be in a down half-period, while the message was in flight. *)
let deliver t ~src ~dst link box msg =
  let jitter = Rng.uniform t.rng (1.0 -. link.Topology.jitter) (1.0 +. link.Topology.jitter) in
  let delay = link.Topology.delay *. jitter *. t.slowdown.(src) *. t.slowdown.(dst) in
  Engine.schedule t.engine
    ~at:(Engine.now t.engine +. delay)
    (fun () ->
      if t.down.(dst) then t.dropped_down <- t.dropped_down + 1
      else if cut t src dst then t.dropped_cut <- t.dropped_cut + 1
      else if oneway_blocked t src dst then
        t.dropped_oneway <- t.dropped_oneway + 1
      else begin
        t.delivered <- t.delivered + 1;
        t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
        Mailbox.push box msg
      end)

let send t ~src ~dst ~port msg =
  t.sent <- t.sent + 1;
  t.sent_by.(src) <- t.sent_by.(src) + 1;
  if t.down.(src) || t.down.(dst) then t.dropped_down <- t.dropped_down + 1
  else if cut t src dst then t.dropped_cut <- t.dropped_cut + 1
  else if oneway_blocked t src dst then
    t.dropped_oneway <- t.dropped_oneway + 1
  else
    let link = link t ~src ~dst in
    if Rng.bool t.rng link.loss then t.dropped_loss <- t.dropped_loss + 1
    else begin
      let box = endpoint t ~node:dst ~port in
      deliver t ~src ~dst link box msg;
      (* Duplicate delivery: an independently delayed second copy. The
         extra RNG draw only happens while some link has a non-zero dup
         probability, so fault-free runs keep a byte-identical stream. *)
      let p = dup_prob t src dst in
      if p > 0.0 && Rng.bool t.rng p then begin
        t.duplicated <- t.duplicated + 1;
        deliver t ~src ~dst link box msg
      end
    end

let set_down t node =
  t.down.(node) <- true;
  Hashtbl.iter (fun (n, _) box -> if n = node then Mailbox.clear box) t.boxes

let set_up t node = t.down.(node) <- false

let is_down t node = t.down.(node)

let partition t groups =
  let n = Topology.size t.topo in
  let group_of = Array.init n (fun i -> -1 - i) in
  List.iteri
    (fun gi members -> List.iter (fun node -> group_of.(node) <- gi) members)
    groups;
  t.group_of <- Some group_of

let heal t = t.group_of <- None

(* --- gray failures ------------------------------------------------- *)

let cut_oneway t ~src ~dst = Hashtbl.replace t.oneway_cuts (src, dst) ()

let heal_oneway t ~src ~dst = Hashtbl.remove t.oneway_cuts (src, dst)

let clear_oneway_cuts t = Hashtbl.reset t.oneway_cuts

let set_slowdown t node factor =
  if factor < 1.0 then invalid_arg "Network.set_slowdown: factor < 1";
  t.slowdown.(node) <- factor

let clear_slowdown t node = t.slowdown.(node) <- 1.0

let clear_slowdowns t = Array.fill t.slowdown 0 (Array.length t.slowdown) 1.0

let flap_link t ~src ~dst ~period =
  if period <= 0.0 then invalid_arg "Network.flap_link: period <= 0";
  Hashtbl.replace t.flaps (src, dst) { period; since = Engine.now t.engine }

let clear_flap t ~src ~dst = Hashtbl.remove t.flaps (src, dst)

let clear_flaps t = Hashtbl.reset t.flaps

let set_duplication t ~src ~dst p =
  if p < 0.0 || p > 1.0 then invalid_arg "Network.set_duplication: p not in [0,1]";
  let had = Hashtbl.mem t.dup_links (src, dst) in
  if p = 0.0 then begin
    if had then begin
      Hashtbl.remove t.dup_links (src, dst);
      t.dup_active <- t.dup_active - 1
    end
  end
  else begin
    Hashtbl.replace t.dup_links (src, dst) p;
    if not had then t.dup_active <- t.dup_active + 1
  end

let set_duplication_all t p =
  let n = Topology.size t.topo in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then set_duplication t ~src ~dst p
    done
  done

let clear_duplication t =
  Hashtbl.reset t.dup_links;
  t.dup_active <- 0

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped_loss = t.dropped_loss;
    dropped_down = t.dropped_down;
    dropped_cut = t.dropped_cut;
    dropped_oneway = t.dropped_oneway;
    duplicated = t.duplicated;
  }

let sent_by t node = t.sent_by.(node)
let delivered_to t node = t.delivered_to.(node)
