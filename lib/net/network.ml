module Engine = Mdds_sim.Engine
module Mailbox = Mdds_sim.Mailbox
module Rng = Mdds_sim.Rng

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_down : int;
  dropped_cut : int;
}

type 'msg t = {
  engine : Engine.t;
  topo : Topology.t;
  rng : Rng.t;
  boxes : (int * string, 'msg Mailbox.t) Hashtbl.t;
  down : bool array;
  overrides : (int * int, Topology.link) Hashtbl.t;
  mutable group_of : int array option; (* partition group per node, if any *)
  mutable sent : int;
  mutable delivered : int;
  sent_by : int array;
  delivered_to : int array;
  mutable dropped_loss : int;
  mutable dropped_down : int;
  mutable dropped_cut : int;
}

let create engine topo =
  {
    engine;
    topo;
    rng = Rng.split (Engine.rng engine);
    boxes = Hashtbl.create 64;
    down = Array.make (Topology.size topo) false;
    overrides = Hashtbl.create 16;
    sent_by = Array.make (Topology.size topo) 0;
    delivered_to = Array.make (Topology.size topo) 0;
    group_of = None;
    sent = 0;
    delivered = 0;
    dropped_loss = 0;
    dropped_down = 0;
    dropped_cut = 0;
  }

let engine t = t.engine
let topology t = t.topo
let size t = Topology.size t.topo

let endpoint t ~node ~port =
  match Hashtbl.find_opt t.boxes (node, port) with
  | Some box -> box
  | None ->
      let box = Mailbox.create t.engine in
      Hashtbl.replace t.boxes (node, port) box;
      box

let cut t src dst =
  match t.group_of with
  | None -> false
  | Some groups -> groups.(src) <> groups.(dst)

let link t ~src ~dst =
  match Hashtbl.find_opt t.overrides (src, dst) with
  | Some link -> link
  | None -> Topology.link t.topo src dst

let override_link t ~src ~dst link = Hashtbl.replace t.overrides (src, dst) link

let clear_link_override t ~src ~dst = Hashtbl.remove t.overrides (src, dst)

let clear_overrides t = Hashtbl.reset t.overrides

let send t ~src ~dst ~port msg =
  t.sent <- t.sent + 1;
  t.sent_by.(src) <- t.sent_by.(src) + 1;
  if t.down.(src) || t.down.(dst) then t.dropped_down <- t.dropped_down + 1
  else if cut t src dst then t.dropped_cut <- t.dropped_cut + 1
  else
    let link = link t ~src ~dst in
    if Rng.bool t.rng link.loss then t.dropped_loss <- t.dropped_loss + 1
    else begin
      let jitter = Rng.uniform t.rng (1.0 -. link.jitter) (1.0 +. link.jitter) in
      let delay = link.delay *. jitter in
      let box = endpoint t ~node:dst ~port in
      Engine.schedule t.engine
        ~at:(Engine.now t.engine +. delay)
        (fun () ->
          (* Re-check at delivery: the destination may have failed, or a
             partition appeared, while the message was in flight. *)
          if t.down.(dst) then t.dropped_down <- t.dropped_down + 1
          else if cut t src dst then t.dropped_cut <- t.dropped_cut + 1
          else begin
            t.delivered <- t.delivered + 1;
            t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
            Mailbox.push box msg
          end)
    end

let set_down t node =
  t.down.(node) <- true;
  Hashtbl.iter (fun (n, _) box -> if n = node then Mailbox.clear box) t.boxes

let set_up t node = t.down.(node) <- false

let is_down t node = t.down.(node)

let partition t groups =
  let n = Topology.size t.topo in
  let group_of = Array.init n (fun i -> -1 - i) in
  List.iteri
    (fun gi members -> List.iter (fun node -> group_of.(node) <- gi) members)
    groups;
  t.group_of <- Some group_of

let heal t = t.group_of <- None

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped_loss = t.dropped_loss;
    dropped_down = t.dropped_down;
    dropped_cut = t.dropped_cut;
  }

let sent_by t node = t.sent_by.(node)
let delivered_to t node = t.delivered_to.(node)
