(** Open-loop throughput measurement (DESIGN.md §14.4).

    A closed-loop workload (every thread waits for its commit before
    submitting the next) can never expose a saturation point: offered
    load collapses to match capacity. This harness instead spawns one
    client fiber per transaction at fixed virtual-time arrivals
    ([i / rate] seconds), so the offered rate is independent of service
    latency and queues actually build when the system saturates.

    Each measured point runs a fresh deterministic cluster, drives
    [txns] single-shot transactions over a mostly-disjoint keyspace
    (a small fraction contend on one shared counter so the conflict
    path stays exercised), drains, runs the full {!Mdds_core.Verify}
    oracle suite, and reports committed throughput and the commit
    latency distribution. A {!sweep} repeats that over a list of
    offered rates for both the baseline ([batch_max = 1],
    [pipeline_depth = 1]) and a batched/pipelined mode, giving the
    throughput/latency-to-saturation curves of the PR-8 benchmark. *)

type mode = {
  label : string;
  batch_max : int;
  pipeline_depth : int;
  epoch_interval : float;
}

val baseline : mode
(** [batch_max = 1], [pipeline_depth = 1], [epoch_interval = 0]: the
    verbatim pre-PR-8 path. *)

val batched : ?batch_max:int -> ?pipeline_depth:int -> unit -> mode
(** Throughput mode (defaults [batch_max = 8], [pipeline_depth = 4]). *)

val epoch : ?fill:int -> ?pipeline_depth:int -> ?interval:float -> unit -> mode
(** Epoch-sealed commit mode (PROTOCOL.md §11; defaults [fill = 64],
    [pipeline_depth = 1], [interval = 0.05] s): the drainer holds each
    epoch open for [interval] virtual seconds (sealing early at [fill]
    queued transactions) and proposes it as one multi-record entry. *)

type point = {
  mode : mode;
  rate : float;  (** Offered load, transactions per virtual second. *)
  txns : int;  (** Transactions offered. *)
  committed : int;
  aborted : int;
  unknown : int;
  committed_per_s : float;
      (** Committed transactions divided by the virtual time of the last
          commit — the measured goodput at this offered rate. *)
  latency : Stats.summary;  (** Commit latency of committed txns. *)
  batches : int;  (** Log positions proposed by the batched path. *)
  pipelined_rounds : int;
  epochs : int;  (** Epochs sealed (epoch mode only; each is one entry). *)
  sim_duration : float;  (** Virtual seconds until full drain. *)
  wall_seconds : float;
  verified : (unit, string) result;
}

val run_point :
  ?seed:int ->
  ?topology:string ->
  ?conflict_every:int ->
  ?groups:int ->
  mode:mode ->
  rate:float ->
  txns:int ->
  unit ->
  point
(** One cluster, one offered rate. [conflict_every] (default 16): every
    n-th transaction also reads-and-writes the shared counter key.
    [groups] (default 1) spreads transactions round-robin over that many
    independent transaction groups — the per-group-log scaling axis of
    the aggregate-throughput figure; [groups = 1] keeps the historical
    single group name, so existing sweeps are byte-identical.
    Deterministic in [(seed, topology, groups, mode, rate, txns)]. *)

val sweep :
  ?seed:int ->
  ?topology:string ->
  ?conflict_every:int ->
  ?groups:int ->
  ?modes:mode list ->
  rates:float list ->
  txns:int ->
  unit ->
  point list
(** Every mode at every rate (default modes: [baseline] and
    [batched ()]), in order — the saturation curves. *)

val saturation : point list -> mode -> point option
(** The point of peak committed throughput for a mode within a sweep. *)

val pp_point : Format.formatter -> point -> unit
val pp_table : Format.formatter -> point list -> unit

val to_json : point list -> string
(** The sweep as a JSON array (schema used by [mdds throughput --out]
    and the ["throughput"] section of BENCH_harness.json). *)

val knob_sweep :
  ?seed:int ->
  ?conflict_every:int ->
  ?groups:int ->
  ?topologies:string list ->
  ?batch_maxes:int list ->
  ?depths:int list ->
  ?epoch_intervals:float list ->
  rate:float ->
  txns:int ->
  unit ->
  (string * point) list
(** The batch_max x pipeline_depth x epoch_interval x topology grid at
    one offered rate ([mdds throughput --sweep], figure [ext-knobs]),
    tagged with the topology of each cell. [epoch_interval = 0] cells
    run fill-or-timeout batching (the verbatim baseline when batch and
    depth are both 1); [> 0] cells run epoch sealing with [batch_max]
    as the fill bound. Defaults: topologies [VVV; VVVOC], batch_maxes
    [1; 8], depths [1; 4], epoch_intervals [0.0; 0.05]. Deterministic
    and byte-identical at any job count. *)

val pp_knob_table : Format.formatter -> (string * point) list -> unit

val knob_to_json : (string * point) list -> string
(** The grid as a JSON array, one object per cell (topology included). *)

val knob_to_csv : (string * point) list -> string
(** The grid as CSV with a header row — the CI sweep artifact. *)
