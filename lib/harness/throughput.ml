module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Service = Mdds_core.Service
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology

type mode = {
  label : string;
  batch_max : int;
  pipeline_depth : int;
  epoch_interval : float;
}

let baseline =
  { label = "baseline"; batch_max = 1; pipeline_depth = 1; epoch_interval = 0.0 }

let batched ?(batch_max = 8) ?(pipeline_depth = 4) () =
  {
    label = Printf.sprintf "batch%d/depth%d" batch_max pipeline_depth;
    batch_max;
    pipeline_depth;
    epoch_interval = 0.0;
  }

let epoch ?(fill = 64) ?(pipeline_depth = 1) ?(interval = 0.05) () =
  {
    label =
      (if pipeline_depth = 1 then
         Printf.sprintf "epoch%.0fms/f%d" (interval *. 1000.) fill
       else
         Printf.sprintf "ep%.0fms/f%d/d%d" (interval *. 1000.) fill
           pipeline_depth);
    batch_max = fill;
    pipeline_depth;
    epoch_interval = interval;
  }

type point = {
  mode : mode;
  rate : float;
  txns : int;
  committed : int;
  aborted : int;
  unknown : int;
  committed_per_s : float;
  latency : Stats.summary;
  batches : int;
  pipelined_rounds : int;
  epochs : int;
  sim_duration : float;
  wall_seconds : float;
  verified : (unit, string) result;
}

let group = "tp"

(* Scaling runs spread transactions round-robin over [groups] independent
   logs; [groups = 1] keeps the historical single group name so existing
   sweeps stay byte-identical. *)
let group_name ~groups gi =
  if groups = 1 then group else Printf.sprintf "%s-%d" group gi

(* All modes run the leader protocol so the comparison isolates
   batching/pipelining/epoch sealing; the baseline's
   [batch_max = pipeline_depth = 1, epoch_interval = 0] keeps
   [Config.throughput_mode] off, i.e. the verbatim single path. *)
let config_of_mode mode =
  {
    Config.leader with
    batch_max = mode.batch_max;
    pipeline_depth = mode.pipeline_depth;
    epoch_interval = mode.epoch_interval;
  }

let run_point ?(seed = 42) ?(topology = "VVV") ?(conflict_every = 16)
    ?(groups = 1) ~mode ~rate ~txns () =
  if rate <= 0.0 then invalid_arg "Throughput.run_point: rate must be positive";
  if txns < 1 then invalid_arg "Throughput.run_point: txns must be positive";
  if groups < 1 then invalid_arg "Throughput.run_point: groups must be positive";
  let started = Unix.gettimeofday () in
  let topo = Topology.ec2 topology in
  let config = config_of_mode mode in
  let cluster = Cluster.create ~seed ~config topo in
  let dcs = Cluster.size cluster in
  (* Open loop: arrival [i] fires at [i / rate] virtual seconds no matter
     how far behind the service is — queues build at saturation instead of
     the offered load silently adapting. *)
  for i = 0 to txns - 1 do
    let at = float_of_int i /. rate in
    let dc = i mod dcs in
    Cluster.spawn ~at cluster (fun () ->
        let client = Cluster.client ~id:(Printf.sprintf "tp%06d" i) cluster ~dc in
        let txn = Client.begin_ client ~group:(group_name ~groups (i mod groups)) in
        if conflict_every > 0 && i mod conflict_every = 0 then (
          (* Shared-counter RMW: keeps the conflict/abort path honest. *)
          let v =
            match Client.read txn "ctr" with
            | None -> 1
            | Some s -> int_of_string s + 1
          in
          Client.write txn "ctr" (string_of_int v))
        else begin
          let key = Printf.sprintf "k%06d" i in
          ignore (Client.read txn key);
          Client.write txn key (string_of_int i)
        end;
        ignore (Client.commit txn))
  done;
  Cluster.run cluster;
  let audit = Cluster.audit cluster in
  let events = Audit.events audit in
  let committed, aborted, unknown, last_commit =
    List.fold_left
      (fun (c, a, u, last) (e : Audit.event) ->
        match e.outcome with
        | Audit.Committed _ | Audit.Read_only_committed ->
            (c + 1, a, u, Float.max last e.committed_at)
        | Audit.Aborted _ -> (c, a + 1, u, last)
        | Audit.Unknown -> (c, a, u + 1, last))
      (0, 0, 0, 0.0) events
  in
  let committed_per_s =
    if committed = 0 then 0.0 else float_of_int committed /. last_commit
  in
  let batches, pipelined_rounds, epochs =
    List.fold_left
      (fun (b, p, e) service ->
        let s = Service.throughput_stats service in
        ( b + s.Service.batches,
          p + s.Service.pipelined_rounds,
          e + s.Service.epochs_sealed ))
      (0, 0, 0) (Cluster.services cluster)
  in
  {
    mode;
    rate;
    txns;
    committed;
    aborted;
    unknown;
    committed_per_s;
    latency = Stats.summarize (Audit.commit_latencies audit ~promotions:None);
    batches;
    pipelined_rounds;
    epochs;
    sim_duration = Cluster.now cluster;
    wall_seconds = Unix.gettimeofday () -. started;
    verified =
      (let rec check_all gi =
         if gi >= groups then Ok ()
         else
           match Verify.check cluster ~group:(group_name ~groups gi) with
           | Ok () -> check_all (gi + 1)
           | Error e ->
               Error (Printf.sprintf "group %s: %s" (group_name ~groups gi) e)
       in
       check_all 0);
  }

let sweep ?seed ?topology ?conflict_every ?groups
    ?(modes = [ baseline; batched () ]) ~rates ~txns () =
  (* Independent cells fan out over the domain pool; each point is
     deterministic in its parameters and results come back in input
     order, so output is byte-identical whatever the job count. *)
  let cells =
    List.concat_map (fun mode -> List.map (fun rate -> (mode, rate)) rates) modes
  in
  Mdds_parallel.Pool.map
    (fun (mode, rate) ->
      run_point ?seed ?topology ?conflict_every ?groups ~mode ~rate ~txns ())
    cells

let saturation points mode =
  List.fold_left
    (fun best p ->
      if p.mode.label <> mode.label then best
      else
        match best with
        | Some b when b.committed_per_s >= p.committed_per_s -> best
        | _ -> Some p)
    None points

let pp_point ppf p =
  Format.fprintf ppf
    "%-14s rate %7.1f/s  committed %d/%d  goodput %7.1f/s  p50 %a p99 %a  \
     batches %d  pipelined %d  epochs %d  %s"
    p.mode.label p.rate p.committed p.txns p.committed_per_s Stats.pp_ms
    p.latency.Stats.p50 Stats.pp_ms p.latency.Stats.p99 p.batches
    p.pipelined_rounds p.epochs
    (match p.verified with Ok () -> "ok" | Error e -> "VIOLATION: " ^ e)

let pp_table ppf points =
  Format.fprintf ppf "%-14s %9s %9s %9s %10s %9s %9s %8s %9s %6s  %s@."
    "mode" "rate/s" "offered" "committed" "goodput/s" "p50(ms)" "p99(ms)"
    "batches" "pipelined" "epochs" "verify";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "%-14s %9.1f %9d %9d %10.1f %9.1f %9.1f %8d %9d %6d  %s@."
        p.mode.label p.rate p.txns p.committed p.committed_per_s
        (p.latency.Stats.p50 *. 1000.) (p.latency.Stats.p99 *. 1000.)
        p.batches p.pipelined_rounds p.epochs
        (match p.verified with Ok () -> "ok" | Error e -> "VIOLATION: " ^ e))
    points

let to_json points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"batch_max\": %d, \"pipeline_depth\": %d, \
            \"epoch_interval\": %.3f, \"rate\": %.3f, \"txns\": %d, \
            \"committed\": %d, \"aborted\": %d, \
            \"unknown\": %d, \"committed_per_s\": %.3f, \"p50_ms\": %.3f, \
            \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f, \
            \"batches\": %d, \"pipelined_rounds\": %d, \"epochs\": %d, \
            \"sim_duration\": %.3f, \"verified\": %b}"
           p.mode.label p.mode.batch_max p.mode.pipeline_depth
           p.mode.epoch_interval p.rate p.txns
           p.committed p.aborted p.unknown p.committed_per_s
           (p.latency.Stats.p50 *. 1000.) (p.latency.Stats.p95 *. 1000.)
           (p.latency.Stats.p99 *. 1000.) (p.latency.Stats.mean *. 1000.)
           p.batches p.pipelined_rounds p.epochs p.sim_duration
           (match p.verified with Ok () -> true | Error _ -> false)))
    points;
  Buffer.add_string buf "\n  ]";
  Buffer.contents buf

(* The knob-sweep family (ext-knobs / `mdds throughput --sweep`): the
   full batch_max x pipeline_depth x epoch_interval x topology grid at
   one offered rate. [epoch_interval = 0] cells run the fill-or-timeout
   batch discipline (or the verbatim baseline when batch and depth are
   both 1); [> 0] cells run epoch sealing with [batch_max] as the fill
   bound. Cells are deterministic and fan out over the domain pool in
   input order, so output is byte-identical whatever the job count. *)
let knob_mode ~batch_max ~pipeline_depth ~epoch_interval =
  if epoch_interval > 0.0 then
    epoch ~fill:batch_max ~pipeline_depth ~interval:epoch_interval ()
  else if batch_max = 1 && pipeline_depth = 1 then baseline
  else batched ~batch_max ~pipeline_depth ()

let knob_sweep ?seed ?conflict_every ?groups
    ?(topologies = [ "VVV"; "VVVOC" ]) ?(batch_maxes = [ 1; 8 ])
    ?(depths = [ 1; 4 ]) ?(epoch_intervals = [ 0.0; 0.05 ]) ~rate ~txns () =
  let cells =
    List.concat_map
      (fun topology ->
        List.concat_map
          (fun epoch_interval ->
            List.concat_map
              (fun batch_max ->
                List.map
                  (fun pipeline_depth ->
                    ( topology,
                      knob_mode ~batch_max ~pipeline_depth ~epoch_interval ))
                  depths)
              batch_maxes)
          epoch_intervals)
      topologies
  in
  Mdds_parallel.Pool.map
    (fun (topology, mode) ->
      ( topology,
        run_point ?seed ~topology ?conflict_every ?groups ~mode ~rate ~txns ()
      ))
    cells

let pp_knob_table ppf cells =
  Format.fprintf ppf "%-6s %-14s %5s %5s %9s %9s %9s %10s %9s %9s  %s@."
    "topo" "mode" "batch" "depth" "epoch(s)" "offered" "committed"
    "goodput/s" "p50(ms)" "p99(ms)" "verify";
  List.iter
    (fun (topology, p) ->
      Format.fprintf ppf
        "%-6s %-14s %5d %5d %9.3f %9d %9d %10.1f %9.1f %9.1f  %s@." topology
        p.mode.label p.mode.batch_max p.mode.pipeline_depth
        p.mode.epoch_interval p.txns p.committed p.committed_per_s
        (p.latency.Stats.p50 *. 1000.) (p.latency.Stats.p99 *. 1000.)
        (match p.verified with Ok () -> "ok" | Error e -> "VIOLATION: " ^ e))
    cells

let knob_to_json cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (topology, p) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"topology\": %S, \"mode\": %S, \"batch_max\": %d, \
            \"pipeline_depth\": %d, \"epoch_interval\": %.3f, \
            \"rate\": %.3f, \"txns\": %d, \"committed\": %d, \
            \"committed_per_s\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
            \"batches\": %d, \"epochs\": %d, \"verified\": %b}"
           topology p.mode.label p.mode.batch_max p.mode.pipeline_depth
           p.mode.epoch_interval p.rate p.txns p.committed p.committed_per_s
           (p.latency.Stats.p50 *. 1000.) (p.latency.Stats.p99 *. 1000.)
           p.batches p.epochs
           (match p.verified with Ok () -> true | Error _ -> false)))
    cells;
  Buffer.add_string buf "\n]";
  Buffer.contents buf

let knob_to_csv cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "topology,mode,batch_max,pipeline_depth,epoch_interval,rate,txns,\
     committed,committed_per_s,p50_ms,p99_ms,batches,epochs,verified\n";
  List.iter
    (fun (topology, p) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%.3f,%.3f,%d,%d,%.3f,%.3f,%.3f,%d,%d,%b\n"
           topology p.mode.label p.mode.batch_max p.mode.pipeline_depth
           p.mode.epoch_interval p.rate p.txns p.committed p.committed_per_s
           (p.latency.Stats.p50 *. 1000.) (p.latency.Stats.p99 *. 1000.)
           p.batches p.epochs
           (match p.verified with Ok () -> true | Error _ -> false)))
    cells;
  Buffer.contents buf
