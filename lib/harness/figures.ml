module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Ycsb = Mdds_workload.Ycsb
module Pool = Mdds_parallel.Pool

let default_seeds = [ 11; 22; 33 ]

(* Every trial (one Experiment.run) owns its engine, cluster and RNG, so
   independent cells of a figure's (config × seed) grid run in parallel on
   the domain pool; Pool.map preserves input order and each trial is a pure
   function of its spec, so figures are byte-identical to a sequential run
   whatever the domain count.

   Trials within one batch differ widely in wall time (a 1500-txn fig8
   trial vs a 400-txn groups trial), so each spec carries a cost estimate —
   transactions to decide × topology size, a proxy for messages simulated —
   and the pool dispenses longest-estimated-first. Dispatch order never
   affects results, only tail latency of the batch. *)
let trial_cost (s : Experiment.spec) =
  float_of_int s.Experiment.workload.Ycsb.total_txns
  *. float_of_int (String.length s.Experiment.topology)

let run_trials specs = Pool.map ~cost:trial_cost Experiment.run specs

(* Run several groups of specs as ONE pool batch and slice the results
   back per group. Figures used to put each cell (or each protocol) on the
   pool separately, which serialized a figure into many small barriers;
   flattening the whole grid lets the cost-aware scheduler fill every
   domain across cell boundaries. Order within and across groups is
   preserved, so aggregation sees exactly the sequences it used to. *)
let run_grouped groups =
  let flat = run_trials (List.concat groups) in
  let rec slice flat = function
    | [] -> []
    | g :: rest ->
        let k = List.length g in
        List.filteri (fun i _ -> i < k) flat
        :: slice (List.filteri (fun i _ -> i >= k) flat) rest
  in
  slice flat groups

(* ------------------------------------------------------------------ *)
(* Aggregation over seeds.                                              *)

type agg = {
  runs : Experiment.result list;
  commits : float;
  total : float;
  by_round : float array;  (* mean commits with exactly r promotions *)
  aborts_conflict : float;
  combined : float;
  combined_max : int;
  max_promotions : int;
  lat_all : Stats.summary;  (* pooled over runs *)
  lat_by_round : Stats.summary array;
  txn_lat : Stats.summary;
}

let mean_of f runs =
  List.fold_left (fun acc r -> acc +. f r) 0. runs
  /. float_of_int (List.length runs)

let aggregate runs =
  List.iter
    (fun (r : Experiment.result) ->
      match r.verified with
      | Ok () -> ()
      | Error msg ->
          failwith
            (Printf.sprintf "experiment %s: serializability violated: %s"
               r.spec.Experiment.name msg))
    runs;
  let rounds =
    1 + List.fold_left (fun m (r : Experiment.result) -> max m r.max_promotions) 0 runs
  in
  let by_round =
    Array.init rounds (fun i ->
        mean_of
          (fun (r : Experiment.result) ->
            if i < Array.length r.commits_by_round then
              float_of_int r.commits_by_round.(i)
            else 0.)
          runs)
  in
  (* One pass over all events builds the pooled all-rounds, per-round and
     transaction latency lists together (the per-round rescan was
     O(rounds × events)). Accumulate newest-first, reverse at the end: the
     lists come out in the exact order the old per-round scans produced,
     which keeps float summations — and hence printed tables — identical. *)
  let lat_all = ref [] in
  let lat_round = Array.make rounds [] in
  let txn_lats = ref [] in
  List.iter
    (fun (r : Experiment.result) ->
      List.iter
        (fun (e : Audit.event) ->
          (match e.outcome with
          | Audit.Committed { promotions; _ } ->
              let l = e.committed_at -. e.commit_started_at in
              lat_all := l :: !lat_all;
              if promotions < rounds then
                lat_round.(promotions) <- l :: lat_round.(promotions)
          | _ -> ());
          txn_lats := (e.committed_at -. e.began_at) :: !txn_lats)
        r.events)
    runs;
  {
    runs;
    commits = mean_of (fun r -> float_of_int r.Experiment.commits) runs;
    total = mean_of (fun r -> float_of_int r.Experiment.total) runs;
    by_round;
    aborts_conflict =
      mean_of (fun r -> float_of_int r.Experiment.aborts_conflict) runs;
    combined = mean_of (fun r -> float_of_int r.Experiment.combined_entries) runs;
    combined_max =
      List.fold_left (fun m (r : Experiment.result) -> max m r.combined_entries) 0 runs;
    max_promotions =
      List.fold_left (fun m (r : Experiment.result) -> max m r.max_promotions) 0 runs;
    lat_all = Stats.summarize (List.rev !lat_all);
    lat_by_round =
      Array.init rounds (fun i -> Stats.summarize (List.rev lat_round.(i)));
    txn_lat = Stats.summarize (List.rev !txn_lats);
  }

(* One (topology, workload, loss) cell of a figure grid -> (basic, cp)
   aggregates. All cells of the list become a single pool batch: per cell,
   basic's seeds then CP's, cells in input order. *)
let run_pairs ?(seeds = default_seeds) cells =
  let cp = { Config.default with protocol = Config.Cp } in
  let groups =
    List.concat_map
      (fun (topology, workload, loss) ->
        let specs config =
          List.map
            (fun seed -> Experiment.spec ~seed ~config ~workload ?loss topology)
            seeds
        in
        [ specs Config.basic; specs cp ])
      cells
  in
  let rec pair_up = function
    | basic :: cp :: rest -> (aggregate basic, aggregate cp) :: pair_up rest
    | [] -> []
    | [ _ ] -> assert false
  in
  pair_up (run_grouped groups)

(* Commits with >= 3 promotions, for compact "r3+" columns. *)
let late_commits agg =
  let n = Array.length agg.by_round in
  let rec sum i acc = if i >= n then acc else sum (i + 1) (acc +. agg.by_round.(i)) in
  sum 3 0.

let round_col agg r =
  if r < Array.length agg.by_round then Table.fmt_f agg.by_round.(r) else "0.0"

let heading id what =
  Printf.printf "\n== %s: %s ==\n" id what

let footnote fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* ------------------------------------------------------------------ *)
(* Figure 4: replica count sweep.                                       *)

let replica_clusters = [ ("2", "VV"); ("3", "VVV"); ("4", "VVVO"); ("5", "VVVOC") ]

let fig4 ?seeds () =
  let pairs =
    run_pairs ?seeds
      (List.map (fun (_, t) -> (t, Ycsb.default, None)) replica_clusters)
  in
  List.map2
    (fun (label, topology) (basic, cp) -> (label, topology, basic, cp))
    replica_clusters pairs

let fig4a ?seeds () =
  heading "Figure 4(a)" "commits out of 500 vs number of replicas";
  let rows =
    List.map
      (fun (label, topology, basic, cp) ->
        [
          label; topology;
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          round_col cp 0; round_col cp 1; round_col cp 2;
          Table.fmt_f (late_commits cp);
        ])
      (fig4 ?seeds ())
  in
  Table.print
    ~header:[ "replicas"; "cluster"; "paxos"; "paxos-cp"; "cp r0"; "cp r1"; "cp r2"; "cp r3+" ]
    rows;
  footnote
    "paper: basic 284..292 of 500 across replica counts; Paxos-CP total 434..445;\n\
     replica count has little effect on either; CP first-round commits below basic total."

let fig4b ?seeds () =
  heading "Figure 4(b)" "commit latency (ms) of committed transactions, by promotion round";
  let rows =
    List.map
      (fun (label, topology, basic, cp) ->
        let r summary = Table.fmt_ms summary.Stats.mean in
        [
          label; topology;
          r basic.lat_all;
          r cp.lat_all;
          (if Array.length cp.lat_by_round > 0 then r cp.lat_by_round.(0) else "-");
          (if Array.length cp.lat_by_round > 1 then r cp.lat_by_round.(1) else "-");
          (if Array.length cp.lat_by_round > 2 then r cp.lat_by_round.(2) else "-");
        ])
      (fig4 ?seeds ())
  in
  Table.print
    ~header:[ "replicas"; "cluster"; "paxos"; "cp all"; "cp r0"; "cp r1"; "cp r2" ]
    rows;
  footnote
    "paper: first CP round comparable to basic; each promotion adds rounds of\n\
     messaging; latency grows mildly with replica count (more messages per round)."

(* ------------------------------------------------------------------ *)
(* Figure 5: datacenter combinations.                                   *)

let combo_clusters = [ "VV"; "OV"; "VVV"; "COV"; "VVVO"; "VVVOC" ]

let fig5 ?seeds () =
  let pairs =
    run_pairs ?seeds
      (List.map (fun t -> (t, Ycsb.default, None)) combo_clusters)
  in
  List.map2 (fun topology (basic, cp) -> (topology, basic, cp)) combo_clusters
    pairs

let fig5a ?seeds () =
  heading "Figure 5(a)" "commits out of 500 for different datacenter combinations";
  let rows =
    List.map
      (fun (topology, basic, cp) ->
        [
          topology;
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          round_col cp 0; round_col cp 1;
          Table.fmt_f (late_commits cp +. (if Array.length cp.by_round > 2 then cp.by_round.(2) else 0.));
        ])
      (fig5 ?seeds ())
  in
  Table.print
    ~header:[ "cluster"; "paxos"; "paxos-cp"; "cp r0"; "cp r1"; "cp r2+" ]
    rows;
  footnote
    "paper: CP improvement over basic roughly constant across combinations,\n\
     despite location-induced latency differences (VV vs OV, VVV vs COV)."

let fig5b ?seeds () =
  heading "Figure 5(b)" "average transaction latency (ms) per datacenter combination";
  let rows =
    List.map
      (fun (topology, basic, cp) ->
        [
          topology;
          Table.fmt_ms basic.txn_lat.Stats.mean;
          Table.fmt_ms cp.txn_lat.Stats.mean;
          Table.fmt_ms basic.lat_all.Stats.mean;
          Table.fmt_ms cp.lat_all.Stats.mean;
          (if Array.length cp.lat_by_round > 0 then
             Table.fmt_ms cp.lat_by_round.(0).Stats.mean
           else "-");
        ])
      (fig5 ?seeds ())
  in
  Table.print
    ~header:
      [ "cluster"; "txn paxos"; "txn cp"; "commit paxos"; "commit cp"; "commit cp r0" ]
    rows;
  footnote
    "paper: Virginia-only clusters (VV, VVV) significantly faster; quorums that\n\
     must cross regions (OV, COV) pay wide-area round trips."

(* ------------------------------------------------------------------ *)
(* Figure 6: data contention.                                           *)

let fig6 ?seeds () =
  heading "Figure 6" "commits out of 500 vs total attributes (data contention), VVV";
  let attrs = [ 20; 50; 100; 200; 500 ] in
  let pairs =
    run_pairs ?seeds
      (List.map
         (fun attributes -> ("VVV", { Ycsb.default with attributes }, None))
         attrs)
  in
  let rows =
    List.map2
      (fun attributes (basic, cp) ->
        [
          string_of_int attributes;
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          round_col cp 0; round_col cp 1;
          Table.fmt_f (late_commits cp +. (if Array.length cp.by_round > 2 then cp.by_round.(2) else 0.));
          Table.fmt_f cp.aborts_conflict;
        ])
      attrs pairs
  in
  Table.print
    ~header:[ "attributes"; "paxos"; "paxos-cp"; "cp r0"; "cp r1"; "cp r2+"; "cp conflicts" ]
    rows;
  footnote
    "paper: basic flat (290..295) regardless of contention; CP from 370 (20 attrs,\n\
     heavy contention) up to 494 (500 attrs, minimal contention) — 27.5%% above\n\
     basic even in the worst case."

(* ------------------------------------------------------------------ *)
(* Figure 7: increasing concurrency.                                    *)

let fig7 ?seeds () =
  heading "Figure 7" "commits out of 500 vs target throughput (single YCSB instance), VVV";
  let rates = [ 1.; 2.; 4.; 8.; 16. ] in
  let pairs =
    run_pairs ?seeds
      (List.map
         (fun rate_total ->
           ( "VVV",
             { Ycsb.default with
               rate = rate_total /. float_of_int Ycsb.default.threads },
             None ))
         rates)
  in
  let rows =
    List.map2
      (fun rate_total (basic, cp) ->
        [
          Printf.sprintf "%.0f tps" rate_total;
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          round_col cp 0; round_col cp 1;
          Table.fmt_f (late_commits cp +. (if Array.length cp.by_round > 2 then cp.by_round.(2) else 0.));
        ])
      rates pairs
  in
  Table.print
    ~header:[ "throughput"; "paxos"; "paxos-cp"; "cp r0"; "cp r1"; "cp r2+" ]
    rows;
  footnote
    "paper: both protocols lose commits as throughput grows; CP consistently ahead,\n\
     with promotions doing more of the work at higher concurrency."

(* ------------------------------------------------------------------ *)
(* Figure 8: one YCSB instance per datacenter.                          *)

let fig8 ?(seeds = default_seeds) () =
  heading "Figure 8" "per-datacenter commits (of 500) and latency, one YCSB instance each, VOC";
  (* Workers spread over all three datacenters; 500 transactions per
     datacenter at an aggregate 1 txn/s per instance. *)
  let workload =
    {
      Ycsb.default with
      total_txns = 1500;
      threads = 6;
      rate = 0.5;
      client_dcs = [ 0; 1; 2 ];
    }
  in
  let specs config =
    List.map (fun seed -> Experiment.spec ~seed ~config ~workload "VOC") seeds
  in
  let results = run_trials (specs Config.basic @ specs Config.default) in
  let n = List.length seeds in
  let basic_runs = List.filteri (fun i _ -> i < n) results in
  let cp_runs = List.filteri (fun i _ -> i >= n) results in
  List.iter
    (fun (r : Experiment.result) ->
      match r.verified with
      | Ok () -> ()
      | Error m -> failwith ("fig8: serializability violated: " ^ m))
    (basic_runs @ cp_runs);
  let per_dc runs =
    let commits = Hashtbl.create 4 and lats = Hashtbl.create 4 in
    List.iter
      (fun r ->
        List.iter
          (fun (dc, c, t) ->
            let c0, t0 = Option.value (Hashtbl.find_opt commits dc) ~default:(0, 0) in
            Hashtbl.replace commits dc (c0 + c, t0 + t))
          (Experiment.commits_by_dc r);
        List.iter
          (fun (dc, (s : Stats.summary)) ->
            let prev = Option.value (Hashtbl.find_opt lats dc) ~default:[] in
            Hashtbl.replace lats dc (s.Stats.mean :: prev))
          (Experiment.commit_latency_by_dc r))
      runs;
    (commits, lats)
  in
  let b_commits, b_lats = per_dc basic_runs in
  let c_commits, c_lats = per_dc cp_runs in
  let n_seeds = List.length seeds in
  let rows =
    List.map
      (fun (dc, name) ->
        let avg tbl =
          let c, _ = Option.value (Hashtbl.find_opt tbl dc) ~default:(0, 0) in
          float_of_int c /. float_of_int n_seeds
        in
        let lat tbl =
          match Hashtbl.find_opt tbl dc with
          | Some xs -> Table.fmt_ms (Stats.mean xs)
          | None -> "-"
        in
        [
          name;
          Table.fmt_f (avg b_commits);
          Table.fmt_f (avg c_commits);
          lat b_lats;
          lat c_lats;
        ])
      [ (0, "V"); (1, "O"); (2, "C") ]
  in
  Table.print
    ~header:[ "datacenter"; "paxos commits"; "cp commits"; "paxos lat"; "cp lat" ]
    rows;
  footnote
    "paper: O and C (20ms apart) form quorums more easily and commit slightly more;\n\
     CP commits at least 200%% more than basic at every datacenter, costing ~100%%\n\
     extra average latency (~50%% extra for first-round commits)."

(* ------------------------------------------------------------------ *)
(* In-text Paxos-CP statistics.                                         *)

let text_stats ?(seeds = default_seeds) () =
  heading "Text (§6)" "Paxos-CP combination and promotion profile, VVV, 100 attributes";
  let runs =
    run_trials
      (List.map
         (fun seed ->
           Experiment.spec ~seed ~config:Config.default ~workload:Ycsb.default "VVV")
         seeds)
  in
  let agg = aggregate runs in
  Printf.printf "combined log entries per experiment: mean %.1f, max %d (paper: 6.8, 24)\n"
    agg.combined agg.combined_max;
  Printf.printf "max promotions before outcome: %d (paper: 7)\n" agg.max_promotions;
  let within2 =
    (if Array.length agg.by_round > 0 then agg.by_round.(0) else 0.)
    +. (if Array.length agg.by_round > 1 then agg.by_round.(1) else 0.)
    +. if Array.length agg.by_round > 2 then agg.by_round.(2) else 0.
  in
  Printf.printf "commits within two promotions: %.1f of %.1f committed (paper: the majority)\n"
    within2 agg.commits;
  Printf.printf "promotion histogram (commits by round):";
  Array.iteri (fun i n -> if n > 0. then Printf.printf " r%d=%.1f" i n) agg.by_round;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* In-text claim: same per-instance message complexity (§5).             *)

let text_messages ?(seeds = default_seeds) () =
  heading "Text (§5)"
    "message complexity: Paxos-CP requires no extra messages per log position";
  let grouped =
    run_grouped
      (List.map
         (fun config ->
           List.map
             (fun seed ->
               Experiment.spec ~seed ~config ~workload:Ycsb.default "VVV")
             seeds)
         [ Config.basic; Config.default ])
  in
  let per_position runs =
    (* Messages per decided log position: total datagrams divided by log
       entries; CP decides more transactions per run, so also report
       messages per *committed transaction*, plus the measured broadcast
       rounds and fast-path attempt rate. *)
    let msgs = mean_of (fun (r : Experiment.result) -> float_of_int r.messages_sent) runs in
    let commits = mean_of (fun (r : Experiment.result) -> float_of_int r.commits) runs in
    let rounds = mean_of (fun (r : Experiment.result) -> r.mean_rounds) runs in
    let fast = mean_of (fun (r : Experiment.result) -> r.fast_path_rate) runs in
    (msgs, msgs /. commits, rounds, fast)
  in
  let basic_runs, cp_runs =
    match grouped with [ b; c ] -> (b, c) | _ -> assert false
  in
  let b_msgs, b_per, b_rounds, b_fast = per_position basic_runs in
  let c_msgs, c_per, c_rounds, c_fast = per_position cp_runs in
  Table.print
    ~header:[ "protocol"; "messages"; "messages/commit"; "rounds/commit"; "fast-path" ]
    [
      [ "paxos"; Table.fmt_f b_msgs; Table.fmt_f b_per; Table.fmt_f b_rounds;
        Printf.sprintf "%.0f%%" (100. *. b_fast) ];
      [ "paxos-cp"; Table.fmt_f c_msgs; Table.fmt_f c_per; Table.fmt_f c_rounds;
        Printf.sprintf "%.0f%%" (100. *. c_fast) ];
    ];
  footnote
    "paper claim: Paxos-CP has the same per-instance message complexity as basic\n\
     Paxos; it wins by committing more transactions with those messages, so its\n\
     messages-per-commit should be no worse (promotions re-run instances, but each\n\
     aborted basic transaction wasted a full instance too)."

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's evaluation.                             *)

(* The long-term-leader design the paper leaves as future work (§8),
   compared against both published protocols on a local-quorum cluster and
   a spread one. *)
let ext_leader ?(seeds = default_seeds) () =
  heading "Extension (§8)"
    "long-term leader vs basic Paxos vs Paxos-CP (paper's future work)";
  (* Clients spread evenly over the three datacenters, so any excess load
     at dc0 is the manager's own concentration, not client co-location. *)
  let workload =
    { Ycsb.default with threads = 6; client_dcs = [ 0; 1; 2 ] }
  in
  let protocols =
    [
      ("paxos", Config.basic);
      ("paxos-cp", Config.default);
      ("leader", Config.leader);
    ]
  in
  let grid =
    List.concat_map
      (fun topology ->
        List.map (fun (name, config) -> (topology, name, config)) protocols)
      [ "VVV"; "VOC" ]
  in
  let grouped =
    run_grouped
      (List.map
         (fun (topology, _, config) ->
           List.map
             (fun seed -> Experiment.spec ~seed ~config ~workload topology)
             seeds)
         grid)
  in
  let rows =
    List.map2
      (fun (topology, name, _) runs ->
        let agg = aggregate runs in
            let msgs_per_commit =
              mean_of
                (fun (r : Experiment.result) ->
                  float_of_int r.messages_sent /. float_of_int (max 1 r.commits))
                runs
            in
            let leader_share =
              mean_of (fun (r : Experiment.result) -> r.leader_share) runs
            in
            [
              topology;
              name;
              Table.fmt_f agg.commits;
              Table.fmt_ms agg.lat_all.Stats.mean;
              Table.fmt_f msgs_per_commit;
              Printf.sprintf "%.0f%%" (100. *. leader_share);
            ])
      grid grouped
  in
  Table.print
    ~header:
      [ "cluster"; "protocol"; "commits"; "commit ms"; "msgs/commit"; "dc0 load share" ]
    rows;
  footnote
    "the paper (S7) predicts: fewer message rounds per transaction, but 'a greater\n\
     amount of work would fall on a single site' - visible in dc0's share of\n\
     delivered messages - and remote clients pay a wide-area hop to the manager."

(* Ablation of Paxos-CP's mechanisms: what do combination, promotion and
   the fast path each contribute? *)
let ablation_configs =
  [
    ("basic paxos", Config.basic);
    ("cp: promotion only", { Config.default with enable_combination = false });
    ("cp: promotions <= 1", { Config.default with max_promotions = Some 1 });
    ("cp: promotions <= 2", { Config.default with max_promotions = Some 2 });
    ("cp: no fast path", { Config.default with enable_fast_path = false });
    ("paxos-cp (full)", Config.default);
  ]

let ext_ablation ?(seeds = default_seeds) () =
  heading "Extension" "Paxos-CP mechanism ablation, VVV, 100 attributes";
  let grouped =
    run_grouped
      (List.map
         (fun (_, config) ->
           List.map
             (fun seed ->
               Experiment.spec ~seed ~config ~workload:Ycsb.default "VVV")
             seeds)
         ablation_configs)
  in
  let rows =
    List.map2
      (fun (name, _) runs ->
        let agg = aggregate runs in
        [
          name;
          Table.fmt_f agg.commits;
          Table.fmt_f agg.aborts_conflict;
          Table.fmt_f agg.combined;
          string_of_int agg.max_promotions;
          Table.fmt_ms agg.lat_all.Stats.mean;
        ])
      ablation_configs grouped
  in
  Table.print
    ~header:[ "configuration"; "commits"; "conflicts"; "combined"; "max-prom"; "commit ms" ]
    rows;
  footnote
    "promotion does most of CP's work; combination adds a little on top (the paper\n\
     observes the same: 6.8 combinations on average, 'little effect'); capping\n\
     promotions at 2 keeps most of the benefit (most txns settle within 2)."

(* Sensitivity to message loss: the protocols under degrading networks. *)
let ext_loss ?(seeds = default_seeds) () =
  heading "Extension" "sensitivity to message loss, VVV";
  let losses = [ 0.0; 0.01; 0.05; 0.1 ] in
  let pairs =
    run_pairs ~seeds
      (List.map (fun loss -> ("VVV", Ycsb.default, Some loss)) losses)
  in
  let rows =
    List.map2
      (fun loss (basic, cp) ->
        [
          Printf.sprintf "%.1f%%" (100. *. loss);
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          Table.fmt_ms basic.lat_all.Stats.mean;
          Table.fmt_ms cp.lat_all.Stats.mean;
        ])
      losses pairs
  in
  Table.print
    ~header:[ "loss"; "paxos"; "paxos-cp"; "paxos ms"; "cp ms" ]
    rows;
  footnote
    "loss costs retries (latency) before it costs commits: both protocols keep\n\
     committing as long as quorums eventually answer within the 2s timeout."

(* The in-text claim that promotion beats application-level retry (§6):
   run the same intents as retry loops under basic Paxos vs as single
   CP commits, and compare eventual success and time-to-success. *)
let ext_retry ?(seeds = default_seeds) () =
  heading "Extension (§6 claim)"
    "promotion vs application-level retry: time until a transaction's intent commits";
  let module Cluster = Mdds_core.Cluster in
  let module Client = Mdds_core.Client in
  let module Runner = Mdds_core.Runner in
  let module Engine = Mdds_sim.Engine in
  let module Rng = Mdds_sim.Rng in
  let intents = 125 and threads = 4 in
  let run_one config seed =
    let cluster = Cluster.create ~seed ~config (Mdds_net.Topology.ec2 "VVV") in
    let committed = ref 0 and failed = ref 0 in
    let durations = ref [] and attempts_total = ref 0 in
    for worker = 0 to threads - 1 do
      let client = Cluster.client cluster ~dc:0 in
      let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
      Cluster.spawn cluster ~at:(0.25 *. float_of_int worker) (fun () ->
          let scheduled = ref (Engine.now (Cluster.engine cluster)) in
          for _i = 1 to intents do
            scheduled := !scheduled +. Rng.exponential rng 1.0;
            let now = Engine.now (Cluster.engine cluster) in
            if !scheduled > now then Engine.sleep (!scheduled -. now);
            let started = Engine.now (Cluster.engine cluster) in
            let outcome =
              Runner.run client ~group:"retry" ~max_attempts:10 (fun txn ->
                  for op = 0 to 9 do
                    let key = Printf.sprintf "a%03d" (Rng.int rng 100) in
                    if Rng.bool rng 0.5 then ignore (Client.read txn key)
                    else
                      Client.write txn key
                        (Printf.sprintf "%s#%d" (Client.txn_id txn) op)
                  done)
            in
            attempts_total := !attempts_total + outcome.Runner.attempts;
            (match outcome.Runner.final with
            | Mdds_core.Audit.Committed _ | Mdds_core.Audit.Read_only_committed ->
                incr committed;
                durations :=
                  (Engine.now (Cluster.engine cluster) -. started) :: !durations
            | _ -> incr failed)
          done)
    done;
    Cluster.run cluster;
    (match Mdds_core.Verify.check cluster ~group:"retry" with
    | Ok () -> ()
    | Error m -> failwith ("ext-retry: " ^ m));
    ( float_of_int !committed,
      float_of_int !attempts_total /. float_of_int (intents * threads),
      Stats.mean !durations )
  in
  let strategies =
    [ ("paxos + app retries", Config.basic); ("paxos-cp", Config.default) ]
  in
  (* Both strategies' seeds go to the pool as one batch; every trial has
     the same intents × threads load, so no cost estimate is needed. *)
  let flat =
    Pool.map
      (fun (config, seed) -> run_one config seed)
      (List.concat_map
         (fun (_, config) -> List.map (fun seed -> (config, seed)) seeds)
         strategies)
  in
  let n = List.length seeds in
  let rows =
    List.mapi
      (fun i (name, _) ->
        let runs =
          List.filteri (fun j _ -> j >= i * n && j < (i + 1) * n) flat
        in
        let avg f = Stats.mean (List.map f runs) in
        [
          name;
          Table.fmt_f (avg (fun (c, _, _) -> c));
          Table.fmt_f (avg (fun (_, a, _) -> a));
          Table.fmt_ms (avg (fun (_, _, d) -> d));
        ])
      strategies
  in
  Table.print
    ~header:[ "strategy"; "eventual commits"; "attempts/intent"; "time-to-commit ms" ]
    rows;
  footnote
    "paper claim (S6): promotion costs less than an application retry, which must\n\
     re-read the data items and restart the commit protocol; here both strategies\n\
     eventually commit nearly everything, and CP gets there in fewer attempts and\n\
     less time per intent."

(* Scalability across transaction groups (§2.1): groups have independent
   logs and no cross-group coordination, so spreading a fixed load over
   more groups removes log-position contention. *)
let ext_groups ?seeds () =
  heading "Extension (§2.1)"
    "independent transaction groups: fixed 8 tps load spread over N groups";
  let group_counts = [ 1; 2; 4; 8 ] in
  let pairs =
    run_pairs ?seeds
      (List.map
         (fun groups ->
           ( "VVV",
             { Ycsb.default with
               groups; rate = 2.0; threads = 4; total_txns = 400 },
             None ))
         group_counts)
  in
  let rows =
    List.map2
      (fun groups (basic, cp) ->
        [
          string_of_int groups;
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          Table.fmt_ms basic.lat_all.Stats.mean;
          Table.fmt_ms cp.lat_all.Stats.mean;
        ])
      group_counts pairs
  in
  Table.print
    ~header:[ "groups"; "paxos (of 400)"; "paxos-cp"; "paxos ms"; "cp ms" ]
    rows;
  footnote
    "the paper's §2.1 scalability argument measured: each group has its own log,\n\
     so the same aggregate load spread over more groups collides on log positions\n\
     less; even basic Paxos approaches full commits with enough groups."

(* Cross-group transactions (PROTOCOL.md §10): the paper's §2.1 design
   deliberately has no cross-group coordination; the multi-shot atomic
   commit is the extension that adds it. This figure measures what that
   coordination costs: the same load with a growing fraction of
   transactions spanning two groups. *)
let ext_cross ?(seeds = default_seeds) () =
  heading "Extension (PROTOCOL.md §10)"
    "multi-shot atomic commit: commit rate vs cross-group fraction, VVV, 4 groups";
  let module Cluster = Mdds_core.Cluster in
  let module Verify = Mdds_core.Verify in
  let module Twopc = Mdds_core.Twopc in
  let ratios = [ 0.0; 0.1; 0.3; 0.5 ] in
  let workload ratio =
    { Ycsb.default with
      groups = 4;
      cross_ratio = ratio;
      total_txns = 200;
      threads = 4;
      rate = 2.0;
      ops_per_txn = 4;
      attributes = 40;
    }
  in
  let run_one (ratio, seed) =
    let cluster =
      Cluster.create ~seed ~config:Config.leader (Mdds_net.Topology.ec2 "VVV")
    in
    let wl = workload ratio in
    ignore (Ycsb.run cluster wl);
    Cluster.run cluster;
    let groups = Ycsb.group_keys wl in
    List.iter (fun group -> Verify.check_exn cluster ~group) groups;
    Verify.check_cross_exn cluster ~groups;
    let events =
      List.filter
        (fun (e : Audit.event) ->
          not (String.starts_with ~prefix:Ycsb.preload_id e.record.txn_id))
        (Audit.events (Cluster.audit cluster))
    in
    let count p = List.length (List.filter p events) in
    let is_cross (e : Audit.event) = Twopc.is_audit_group e.group in
    let committed (e : Audit.event) =
      match e.outcome with
      | Audit.Committed _ | Audit.Read_only_committed -> true
      | _ -> false
    in
    let lats =
      List.filter_map
        (fun (e : Audit.event) ->
          if is_cross e && committed e then
            Some (e.committed_at -. e.commit_started_at)
          else None)
        events
    in
    ( count is_cross,
      count (fun e -> is_cross e && committed e),
      count (fun e -> not (is_cross e)),
      count (fun e -> (not (is_cross e)) && committed e),
      lats )
  in
  let cells =
    List.concat_map (fun r -> List.map (fun s -> (r, s)) seeds) ratios
  in
  let flat = Pool.map run_one cells in
  let n = List.length seeds in
  let rows =
    List.mapi
      (fun i ratio ->
        let runs =
          List.filteri (fun j _ -> j >= i * n && j < (i + 1) * n) flat
        in
        let avg f = Stats.mean (List.map (fun x -> float_of_int (f x)) runs) in
        let cross_lats = List.concat_map (fun (_, _, _, _, l) -> l) runs in
        [
          Printf.sprintf "%.0f%%" (100. *. ratio);
          Table.fmt_f (avg (fun (c, _, _, _, _) -> c));
          Table.fmt_f (avg (fun (_, cc, _, _, _) -> cc));
          Table.fmt_f (avg (fun (_, _, s, _, _) -> s));
          Table.fmt_f (avg (fun (_, _, _, sc, _) -> sc));
          (if cross_lats = [] then "-" else Table.fmt_ms (Stats.mean cross_lats));
        ])
      ratios
  in
  Table.print
    ~header:
      [ "cross fraction"; "cross txns"; "cross commits"; "single txns";
        "single commits"; "cross commit ms" ]
    rows;
  footnote
    "a cross-group commit is multi-shot — one durable prepare per participant\n\
     log plus a decision and outcomes — so it pays a small multiple of the\n\
     single-group commit latency, and its prepare windows block conflicting\n\
     single-group admissions; both costs grow with the cross fraction."

(* Composition with the PR-8 throughput mode: aggregate goodput as the same
   offered load is spread over more independent group logs. *)
let ext_cross_tp ?(seed = 42) () =
  heading "Extension (PROTOCOL.md §10 x DESIGN.md §14)"
    "aggregate throughput vs transaction-group count, VVV, open loop at 60/s";
  let counts = [ 1; 2; 4; 8 ] in
  let modes = [ Throughput.baseline; Throughput.batched () ] in
  let cells =
    List.concat_map (fun g -> List.map (fun m -> (g, m)) modes) counts
  in
  let points =
    Pool.map
      (fun (groups, mode) ->
        (groups, Throughput.run_point ~seed ~groups ~mode ~rate:60.0 ~txns:300 ()))
      cells
  in
  List.iter
    (fun (groups, (p : Throughput.point)) ->
      match p.Throughput.verified with
      | Ok () -> ()
      | Error m ->
          failwith (Printf.sprintf "ext-cross-tp: groups=%d: %s" groups m))
    points;
  let find groups mode =
    List.assoc groups
      (List.filter_map
         (fun (g, (p : Throughput.point)) ->
           if g = groups && p.Throughput.mode.Throughput.label = mode.Throughput.label
           then Some (g, p)
           else None)
         points)
  in
  let rows =
    List.map
      (fun groups ->
        let base = find groups Throughput.baseline in
        let batched = find groups (Throughput.batched ()) in
        [
          string_of_int groups;
          Printf.sprintf "%.1f" base.Throughput.committed_per_s;
          Printf.sprintf "%.1f" batched.Throughput.committed_per_s;
          string_of_int batched.Throughput.batches;
          string_of_int batched.Throughput.pipelined_rounds;
        ])
      counts
  in
  Table.print
    ~header:
      [ "groups"; "baseline goodput/s"; "batched goodput/s"; "batches";
        "pipelined" ]
    rows;
  footnote
    "groups have independent logs (§2.1), so aggregate goodput scales with the\n\
     group count on both paths; batching/pipelining (§14) and group-level\n\
     parallelism compose — each group's leader batches its own admissions."

(* Epoch-sealed commit (PROTOCOL.md §11) vs per-position batching (§9) vs
   the unbatched baseline: the honest head-to-head the roadmap asked for. *)
let ext_epoch ?(seed = 42) () =
  heading "Extension (PROTOCOL.md §11 x DESIGN.md §15)"
    "epoch-sealed commit vs per-position batching, VVV, open loop";
  let rates = [ 40.0; 80.0; 160.0 ] in
  let modes =
    [ Throughput.baseline; Throughput.batched (); Throughput.epoch () ]
  in
  let points = Throughput.sweep ~seed ~modes ~rates ~txns:300 () in
  List.iter
    (fun (p : Throughput.point) ->
      match p.Throughput.verified with
      | Ok () -> ()
      | Error m ->
          failwith
            (Printf.sprintf "ext-epoch: %s rate=%.0f: %s"
               p.Throughput.mode.Throughput.label p.Throughput.rate m))
    points;
  let find mode rate =
    List.find
      (fun (p : Throughput.point) ->
        p.Throughput.mode.Throughput.label = mode.Throughput.label
        && p.Throughput.rate = rate)
      points
  in
  let rows =
    List.map
      (fun rate ->
        let base = find Throughput.baseline rate in
        let batched = find (Throughput.batched ()) rate in
        let ep = find (Throughput.epoch ()) rate in
        [
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.1f" base.Throughput.committed_per_s;
          Printf.sprintf "%.1f" batched.Throughput.committed_per_s;
          Printf.sprintf "%.1f" ep.Throughput.committed_per_s;
          Printf.sprintf "%.1f" (ep.Throughput.latency.Stats.p50 *. 1000.);
          string_of_int ep.Throughput.epochs;
        ])
      rates
  in
  Table.print
    ~header:
      [ "offered/s"; "baseline goodput/s"; "batched goodput/s";
        "epoch goodput/s"; "epoch p50(ms)"; "epochs" ]
    rows;
  footnote
    "one consensus round per sealed epoch amortizes the cross-DC round trip\n\
     over everything admitted in the window (§11); at saturation both\n\
     disciplines multiply the baseline, and the table reports which one wins\n\
     at each offered rate honestly — batching pipelines k positions, epochs\n\
     put the whole window in one entry."

(* The knob grid: batch_max x pipeline_depth x epoch_interval x topology. *)
let ext_knobs ?(seed = 42) () =
  heading "Extension (DESIGN.md §15.3)"
    "throughput knob grid: batch x depth x epoch x topology, open loop at \
     120/s";
  let cells =
    Throughput.knob_sweep ~seed ~topologies:[ "VVV"; "VVVOC" ]
      ~batch_maxes:[ 1; 8 ] ~depths:[ 1; 4 ] ~epoch_intervals:[ 0.0; 0.05 ]
      ~rate:120.0 ~txns:240 ()
  in
  List.iter
    (fun (topology, (p : Throughput.point)) ->
      match p.Throughput.verified with
      | Ok () -> ()
      | Error m ->
          failwith
            (Printf.sprintf "ext-knobs: %s %s: %s" topology
               p.Throughput.mode.Throughput.label m))
    cells;
  let rows =
    List.map
      (fun (topology, (p : Throughput.point)) ->
        [
          topology;
          string_of_int p.Throughput.mode.Throughput.batch_max;
          string_of_int p.Throughput.mode.Throughput.pipeline_depth;
          Printf.sprintf "%.2f" p.Throughput.mode.Throughput.epoch_interval;
          Printf.sprintf "%.1f" p.Throughput.committed_per_s;
          Printf.sprintf "%.1f" (p.Throughput.latency.Stats.p50 *. 1000.);
        ])
      cells
  in
  Table.print
    ~header:
      [ "topology"; "batch"; "depth"; "epoch(s)"; "goodput/s"; "p50(ms)" ]
    rows;
  footnote
    "every knob combination is measured at the same offered rate, so the grid\n\
     shows which discipline pays where: depth without batching, batching\n\
     without depth, epoch sealing with and without pipelining, and how the\n\
     wide-area topology (VVVOC) moves the trade-off."

(* Access skew: the paper evaluates uniform access; YCSB's zipfian knob is
   the natural extension (hot keys sharpen read/write conflicts). *)
let ext_skew ?seeds () =
  heading "Extension" "access skew (YCSB zipfian) vs commits, VVV, 100 attributes";
  let dists =
    [
      ("uniform", Mdds_workload.Distribution.Uniform);
      ("zipfian 0.5", Mdds_workload.Distribution.Zipfian 0.5);
      ("zipfian 0.9", Mdds_workload.Distribution.Zipfian 0.9);
      ("zipfian 0.99", Mdds_workload.Distribution.Zipfian 0.99);
    ]
  in
  let pairs =
    run_pairs ?seeds
      (List.map
         (fun (_, distribution) ->
           ("VVV", { Ycsb.default with distribution }, None))
         dists)
  in
  let rows =
    List.map2
      (fun (label, _) (basic, cp) ->
        [
          label;
          Table.fmt_f basic.commits;
          Table.fmt_f cp.commits;
          Table.fmt_f cp.aborts_conflict;
        ])
      dists pairs
  in
  Table.print ~header:[ "distribution"; "paxos"; "paxos-cp"; "cp conflicts" ] rows;
  footnote
    "skew does not move basic Paxos (it aborts on position collisions, not data\n\
     conflicts) but erodes Paxos-CP's advantage: hot keys turn position losers\n\
     into true read-write conflicts that promotion cannot save."

(* ------------------------------------------------------------------ *)

let all =
  [
    ("fig4a", "commits vs replica count", fun () -> fig4a ());
    ("fig4b", "commit latency vs replica count", fun () -> fig4b ());
    ("fig5a", "commits per datacenter combination", fun () -> fig5a ());
    ("fig5b", "latency per datacenter combination", fun () -> fig5b ());
    ("fig6", "commits vs data contention", fun () -> fig6 ());
    ("fig7", "commits vs concurrency", fun () -> fig7 ());
    ("fig8", "per-datacenter instances", fun () -> fig8 ());
    ("text-cp", "combination/promotion profile", fun () -> text_stats ());
    ("text-msgs", "message complexity per commit", fun () -> text_messages ());
    ("ext-leader", "long-term-leader protocol (future work, §8)", fun () -> ext_leader ());
    ("ext-ablation", "Paxos-CP mechanism ablation", fun () -> ext_ablation ());
    ("ext-loss", "message-loss sensitivity", fun () -> ext_loss ());
    ("ext-retry", "promotion vs application retry (§6 claim)", fun () -> ext_retry ());
    ("ext-skew", "access-skew sensitivity (zipfian)", fun () -> ext_skew ());
    ("ext-groups", "scalability across transaction groups (§2.1)", fun () -> ext_groups ());
    ("ext-cross", "cross-group commit rate vs cross fraction (PROTOCOL.md §10)", fun () -> ext_cross ());
    ("ext-cross-tp", "aggregate throughput vs group count (§10 x §14)", fun () -> ext_cross_tp ());
    ("ext-epoch", "epoch-sealed commit vs batching (PROTOCOL.md §11)", fun () -> ext_epoch ());
    ("ext-knobs", "throughput knob grid: batch x depth x epoch x topology", fun () -> ext_knobs ());
  ]

let run_ids ids =
  let ids = if ids = [] then List.map (fun (id, _, _) -> id) all else ids in
  List.iter
    (fun id ->
      match List.find_opt (fun (id', _, _) -> id = id') all with
      | Some (_, _, run) -> run ()
      | None -> invalid_arg ("Figures.run_ids: unknown figure " ^ id))
    ids
