module Codec = Mdds_codec.Codec

type key = string

type write = { key : key; value : string }

(* ------------------------------------------------------------------ *)
(* Key interning: data-item names -> dense int ids.

   Conflict predicates are the hottest pure computation in the stack
   (combination admission, promotion admission, the committed-state check,
   the 1SR oracle), and every one of them is ultimately a set operation
   over key names. Interning each distinct key once turns those string
   comparisons into int comparisons over small sorted arrays.

   The table is process-global and *sharded*: records are built on
   whatever domain runs the trial (the harness fans trials out over a
   domain pool), and a footprint must mean the same thing on every domain
   that can observe the record, so ids come from one global atomic counter
   — dense, unique, identical on every domain. The original single
   mutex-protected table serialized every concurrent [make_record]; keys
   now hash to one of 64 stripes, and each stripe serves repeat lookups
   (the overwhelmingly common case — key universes are small and hot)
   from a *frozen snapshot* table read without any lock: the snapshot
   hashtable is never mutated after its pointer is published through an
   [Atomic], so concurrent readers race with nobody. Misses fall back to
   the stripe's small mutex-protected pending table; when the pending
   table grows past a threshold it is merged into a fresh snapshot and
   republished (geometric, so total copying is O(K log K) over K keys).

   Ids are assigned in first-intern order, so they are not deterministic
   across runs — nothing may ever derive *output* from an id, only set
   membership and equality, which are assignment-independent. Key-name
   iteration happens over the footprint's own sorted string arrays, never
   via reverse lookup, for the same reason. *)
module Intern = struct
  let stripe_count = 64 (* power of two *)

  type stripe = {
    mutex : Mutex.t;
    snapshot : (string, int) Hashtbl.t Atomic.t;
        (* Frozen: never mutated once published. Lock-free read path. *)
    mutable pending : (string, int) Hashtbl.t;  (* under [mutex] *)
  }

  let stripes =
    Array.init stripe_count (fun _ ->
        {
          mutex = Mutex.create ();
          snapshot = Atomic.make (Hashtbl.create 1);
          pending = Hashtbl.create 8;
        })

  let next = Atomic.make 0

  (* Reverse table for [name]: ids are dense, so an array, grown under its
     own mutex. Never on the hot path — [name] is diagnostics only. *)
  let names_mutex = Mutex.create ()
  let names : string array ref = ref (Array.make 1024 "")

  let record_name id key =
    Mutex.lock names_mutex;
    if id >= Array.length !names then begin
      let grown = Array.make (max (2 * Array.length !names) (id + 1)) "" in
      Array.blit !names 0 grown 0 (Array.length !names);
      names := grown
    end;
    !names.(id) <- key;
    Mutex.unlock names_mutex

  let stripe_of key = stripes.(Hashtbl.hash key land (stripe_count - 1))

  let id_slow s key =
    Mutex.lock s.mutex;
    let r =
      match Hashtbl.find_opt s.pending key with
      | Some id -> id
      | None -> (
          (* Re-probe the snapshot under the lock: a merge may have moved
             the key out of pending while we waited. *)
          match Hashtbl.find_opt (Atomic.get s.snapshot) key with
          | Some id -> id
          | None ->
              let id = Atomic.fetch_and_add next 1 in
              Hashtbl.replace s.pending key id;
              record_name id key;
              let snap = Atomic.get s.snapshot in
              if Hashtbl.length s.pending >= 16 + (Hashtbl.length snap / 4)
              then begin
                let merged =
                  Hashtbl.create
                    (2 * (Hashtbl.length snap + Hashtbl.length s.pending))
                in
                Hashtbl.iter (Hashtbl.replace merged) snap;
                Hashtbl.iter (Hashtbl.replace merged) s.pending;
                Atomic.set s.snapshot merged;
                s.pending <- Hashtbl.create 8
              end;
              id)
    in
    Mutex.unlock s.mutex;
    r

  let id key =
    let s = stripe_of key in
    match Hashtbl.find_opt (Atomic.get s.snapshot) key with
    | Some id -> id
    | None -> id_slow s key

  let ids_of_list keys = List.map id keys

  let name id =
    Mutex.lock names_mutex;
    let r =
      if id >= 0 && id < Array.length !names && !names.(id) <> "" then
        Some !names.(id)
      else None
    in
    Mutex.unlock names_mutex;
    r

  let count () = Atomic.get next
end

(* ------------------------------------------------------------------ *)
(* Conflict footprints: the record's read and write sets, deduplicated
   once at construction, carried both as sorted interned-id arrays (for
   the predicates) and as string arrays sorted by name (so [read_set] and
   every message that names a key keeps the exact pre-footprint order). *)

type footprint = {
  read_ids : int array;  (* deduped, sorted ascending *)
  write_ids : int array;  (* deduped, sorted ascending *)
  read_keys : key array;  (* deduped, sorted by name *)
  write_keys : key array;  (* deduped, sorted by name *)
}

let sorted_ids_of_keys keys =
  let ids = Intern.ids_of_list keys in
  let arr = Array.of_list (List.sort_uniq Int.compare ids) in
  arr

let footprint_of ~reads ~write_keys:wkeys =
  let read_keys = Array.of_list (List.sort_uniq String.compare reads) in
  let write_keys = Array.of_list (List.sort_uniq String.compare wkeys) in
  {
    read_ids = sorted_ids_of_keys reads;
    write_ids = sorted_ids_of_keys wkeys;
    read_keys;
    write_keys;
  }

(* Sorted-array intersection test: O(|a| + |b|). *)
let arrays_intersect (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la || j >= lb then false
    else
      let d = compare a.(i) b.(j) in
      if d = 0 then true else if d < 0 then go (i + 1) j else go i (j + 1)
  in
  go 0 0

type record = {
  txn_id : string;
  origin : int;
  read_position : int;
  reads : key list;
  writes : write list;
  fp : footprint;
}

type entry = record list

let make_record ~txn_id ~origin ~read_position ~reads ~writes =
  let fp =
    footprint_of ~reads ~write_keys:(List.map (fun w -> w.key) writes)
  in
  { txn_id; origin; read_position; reads; writes; fp }

let dedup keys = List.sort_uniq String.compare keys

let footprint r = r.fp
let read_set r = Array.to_list r.fp.read_keys
let write_set r = Array.to_list r.fp.write_keys
let read_keys r = r.fp.read_keys
let write_keys r = r.fp.write_keys

let entry_write_set e = dedup (List.concat_map write_set e)

let is_read_only r = r.writes = []

let reads_from t s = arrays_intersect t.fp.read_ids s.fp.write_ids

let conflicts_with_any t winners = List.exists (reads_from t) winners

(* A mutable union of write footprints, for threading through a prefix of
   an entry instead of rebuilding the union per probe. *)
module Write_union = struct
  type t = (int, unit) Hashtbl.t

  let create () : t = Hashtbl.create 16
  let add t (r : record) = Array.iter (fun id -> Hashtbl.replace t id ()) r.fp.write_ids
  let reads_overlap t (r : record) = Array.exists (Hashtbl.mem t) r.fp.read_ids
end

let valid_combination entry =
  match entry with
  | [] | [ _ ] -> true
  | first :: rest ->
      let preceding = Write_union.create () in
      Write_union.add preceding first;
      let rec go = function
        | [] -> true
        | r :: rest ->
            (not (Write_union.reads_overlap preceding r))
            && begin
                 Write_union.add preceding r;
                 go rest
               end
      in
      go rest

let mem_entry ~txn_id entry = List.exists (fun r -> r.txn_id = txn_id) entry

let equal_write a b = a.key = b.key && a.value = b.value

(* The footprint is derived data: two records with equal reads/writes have
   equal footprints, so equality (and the codec below) ignore it. *)
let equal_record a b =
  a.txn_id = b.txn_id && a.origin = b.origin
  && a.read_position = b.read_position
  && List.equal String.equal a.reads b.reads
  && List.equal equal_write a.writes b.writes

let equal_entry = List.equal equal_record

let pp_write ppf w = Format.fprintf ppf "%s:=%S" w.key w.value

let pp_record ppf r =
  Format.fprintf ppf "@[<h>{%s@@dc%d rp=%d r=[%a] w=[%a]}@]" r.txn_id r.origin
    r.read_position
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Format.pp_print_string)
    r.reads
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp_write)
    r.writes

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_record)
    e

let write_codec =
  Codec.map
    (fun (key, value) -> { key; value })
    (fun { key; value } -> (key, value))
    Codec.(pair string string)

let record_codec =
  Codec.map
    (fun ((txn_id, origin), (read_position, reads, writes)) ->
      make_record ~txn_id ~origin ~read_position ~reads ~writes)
    (fun { txn_id; origin; read_position; reads; writes; fp = _ } ->
      ((txn_id, origin), (read_position, reads, writes)))
    Codec.(pair (pair string int) (triple int (list string) (list write_codec)))

let entry_codec = Codec.list record_codec
