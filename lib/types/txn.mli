(** Transaction-tier value types shared across the stack.

    A committed read/write transaction is summarized by a {!record}: its
    identity, the datacenter of the client that executed it, the keys it
    read (with the log position each read was served at — property (A2))
    and the writes it performed. A write-ahead-log {!entry} is an ordered
    list of such records: basic Paxos always writes singleton lists, while
    Paxos-CP's combination enhancement writes longer ones (§5).

    Everything here is immutable plain data with codecs, so records can be
    shipped in Paxos messages and persisted in the key-value store.

    Every record also carries a precomputed conflict {!footprint} — its
    deduplicated read and write sets as sorted arrays of interned key ids —
    built once at construction. All conflict predicates run on footprints,
    so a validity probe costs a sorted-array intersection instead of
    re-deriving sets with [List.sort_uniq] and [List.mem] scans. *)

type key = string
(** A data item identifier, unique within its transaction group. *)

(** Process-global key interner: data-item name -> dense int id. Ids are
    stable for the lifetime of the process but their numeric values depend
    on first-intern order, which is not deterministic under the domain
    pool — use them only for equality and set membership, never to derive
    output (ordering of printed keys, messages, figures).

    The table is sharded 64 ways by key hash; repeat lookups (the hot
    path) read a frozen snapshot without taking any lock, so concurrent
    [make_record] calls on different domains no longer serialize on one
    mutex. Ids come from a single atomic counter, so a key's id is
    globally consistent: footprints built on different domains compare
    correctly. *)
module Intern : sig
  val id : key -> int
  (** The id of [key], interning it on first use. Safe to call from any
      domain concurrently; lock-free when [key] is already in the calling
      stripe's published snapshot. *)

  val name : int -> key option
  (** Reverse lookup; [None] if the id was never assigned. *)

  val count : unit -> int
  (** Number of distinct keys interned so far. *)
end

type write = { key : key; value : string }
(** One buffered write operation. *)

type footprint = private {
  read_ids : int array;  (** Interned read set, deduped, sorted ascending. *)
  write_ids : int array;  (** Interned write set, deduped, sorted ascending. *)
  read_keys : key array;  (** Read set, deduped, sorted by name. *)
  write_keys : key array;  (** Write set, deduped, sorted by name. *)
}
(** A record's conflict footprint. [private]: obtained only from
    {!make_record}/the codecs, so the arrays are guaranteed consistent
    with the record's [reads]/[writes] — treat them as read-only. *)

type record = {
  txn_id : string;  (** Globally unique transaction identifier. *)
  origin : int;  (** Datacenter of the client that ran the transaction. *)
  read_position : int;  (** Log position all its reads were served at. *)
  reads : key list;  (** Keys read from the datastore (read set). *)
  writes : write list;  (** Buffered writes applied at commit. *)
  fp : footprint;  (** Precomputed conflict footprint (derived data). *)
}

type entry = record list
(** The value decided for one log position: transactions in serialization
    order. Invariant (enforced by combination): no record reads a key
    written by an earlier record of the same entry. *)

(** {1 Construction and accessors} *)

val make_record :
  txn_id:string -> origin:int -> read_position:int ->
  reads:key list -> writes:write list -> record

val footprint : record -> footprint

val read_set : record -> key list
(** Keys read, deduplicated, sorted by name. *)

val write_set : record -> key list
(** Keys written, deduplicated, sorted by name. *)

val read_keys : record -> key array
(** The footprint's read-set array (deduped, sorted by name). Shared, not
    copied: do not mutate. Allocation-free alternative to {!read_set}. *)

val write_keys : record -> key array
(** The footprint's write-set array; same caveats as {!read_keys}. *)

val entry_write_set : entry -> key list
(** Union of the write sets of all records in the entry. *)

val is_read_only : record -> bool

(** {1 Conflict predicates (the heart of Paxos-CP's admission tests)} *)

val reads_from : record -> record -> bool
(** [reads_from t s] iff [t] read some key that [s] wrote — serializing [t]
    after [s] at a later position would give [t] a stale read. A sorted
    intersection probe over the two footprints: O(|reads| + |writes|). *)

val conflicts_with_any : record -> record list -> bool
(** [conflicts_with_any t winners] iff [t] reads a key written by any
    record in [winners] (the promotion admission test, §5). *)

(** A mutable union of write footprints: the running "everything written by
    the prefix" state threaded through incremental combination checks
    instead of rebuilding the union at every probe. *)
module Write_union : sig
  type t

  val create : unit -> t
  val add : t -> record -> unit
  (** Fold the record's write footprint into the union. *)

  val reads_overlap : t -> record -> bool
  (** Whether the record reads any key currently in the union. *)
end

val valid_combination : entry -> bool
(** Checks the combination invariant: no record reads a key written by any
    record preceding it in the list (§5, Combination). One pass threading
    a {!Write_union} through the entry. *)

val mem_entry : txn_id:string -> entry -> bool
(** Whether the entry contains the transaction with the given id. *)

(** {1 Equality, formatting, codecs}

    All ignore the footprint: it is derived data, equal whenever the
    [reads]/[writes] it came from are equal, and rebuilt on decode. *)

val equal_record : record -> record -> bool
val equal_entry : entry -> entry -> bool

val pp_record : Format.formatter -> record -> unit
val pp_entry : Format.formatter -> entry -> unit

val write_codec : write Mdds_codec.Codec.t
val record_codec : record Mdds_codec.Codec.t
val entry_codec : entry Mdds_codec.Codec.t
