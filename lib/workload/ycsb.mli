(** YCSB-like transactional workload generator.

    Reproduces the workload of the paper's evaluation (§6), which used an
    extended Yahoo! Cloud Serving Benchmark with transaction support: a
    single entity group of [attributes] attributes; transactions of
    [ops_per_txn] operations, each a read or a write of an attribute chosen
    uniformly at random; a fixed number of worker threads with staggered
    starts, each pacing itself to a target transaction rate.

    Workers are open-loop up to back-pressure: transaction [k] of a thread
    starts at [offset + k / rate] or as soon as the previous one finished,
    whichever is later (a thread never runs two transactions at once —
    "each application instance has at most one active transaction per
    transaction group", §2.2). *)

type config = {
  group : string;  (** Transaction group (entity group) key (or prefix). *)
  groups : int;
      (** Number of independent transaction groups the workload spreads
          over round-robin (default 1; group keys are [<group>-<i>]).
          Groups have independent logs and no cross-group coordination
          (§2.1), so goodput should scale with them. *)
  total_txns : int;  (** Transactions across all threads (paper: 500). *)
  threads : int;  (** Concurrent worker threads (paper: 4). *)
  rate : float;  (** Target transactions/second per thread (paper: 1). *)
  ops_per_txn : int;  (** Operations per transaction (paper: 10). *)
  read_fraction : float;  (** Probability an operation is a read (0.5). *)
  attributes : int;  (** Total attributes in the entity group. *)
  distribution : Distribution.t;
      (** Attribute selection: the paper uses uniform; Zipfian skew is an
          extension knob (YCSB's default workloads use 0.99). *)
  stagger : float;  (** Start-time offset between threads, seconds. *)
  client_dcs : int list;
      (** Datacenters hosting the workers, round-robin. [[0]] = all workers
          in datacenter 0 (one YCSB instance); [[0;1;2]] spreads them. *)
  preload : bool;
      (** Populate every attribute with an initial committed transaction
          before the workers start. *)
  cross_ratio : float;
      (** Fraction of transactions that span two transaction groups and
          commit with the multi-shot atomic commit (PROTOCOL.md §10;
          requires [groups > 1] and the leader protocol). [0.0]
          (default) draws no RNG for the feature, keeping single-group
          runs byte-identical. *)
}

val default : config
(** The paper's defaults: 500 txns, 4 threads at 1 txn/s, 10 ops, 50%
    reads, 100 attributes, workers in datacenter 0, preloaded. *)

type handle = {
  mutable begin_failures : int;
      (** Transactions that could not even start (no service reachable). *)
  mutable finished : int;  (** Transactions that ran to an outcome. *)
}

val attribute_key : int -> string
(** Key of the [i]-th attribute. *)

val group_keys : config -> string list
(** The group keys this workload touches (for verification/reporting). *)

val preload_id : string
(** Client id of the preload transaction (its audit events carry
    transaction ids prefixed [preload/]; harnesses exclude them from
    workload statistics). *)

val run : Mdds_core.Cluster.t -> config -> handle
(** Spawn the preload (if any) and all worker processes; the caller then
    drives the simulation with {!Mdds_core.Cluster.run}. Outcomes land in
    the cluster's audit trail. *)
