module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng

type config = {
  group : string;
  groups : int;
  total_txns : int;
  threads : int;
  rate : float;
  ops_per_txn : int;
  read_fraction : float;
  attributes : int;
  distribution : Distribution.t;
  stagger : float;
  client_dcs : int list;
  preload : bool;
  cross_ratio : float;
}

let default =
  {
    group = "ycsb";
    groups = 1;
    total_txns = 500;
    threads = 4;
    rate = 1.0;
    ops_per_txn = 10;
    read_fraction = 0.5;
    attributes = 100;
    distribution = Distribution.Uniform;
    stagger = 0.25;
    client_dcs = [ 0 ];
    preload = true;
    cross_ratio = 0.0;
  }

type handle = { mutable begin_failures : int; mutable finished : int }

let attribute_key i = Printf.sprintf "a%03d" i

let group_keys config =
  if config.groups <= 1 then [ config.group ]
  else List.init config.groups (fun i -> Printf.sprintf "%s-%d" config.group i)

let group_key config i =
  if config.groups <= 1 then config.group
  else Printf.sprintf "%s-%d" config.group (i mod config.groups)

(* Preload: one transaction writing every attribute, committed before any
   worker starts; gives reads a defined initial value at log position 1. *)
let preload_duration = 1.0

let preload_id = "preload"

let run_preload cluster config =
  let client = Cluster.client cluster ~id:preload_id ~dc:(List.hd config.client_dcs) in
  Cluster.spawn cluster (fun () ->
      for g = 0 to max 0 (config.groups - 1) do
        let txn = Client.begin_ client ~group:(group_key config g) in
        for i = 0 to config.attributes - 1 do
          Client.write txn (attribute_key i) "init"
        done;
        match Client.commit txn with
        | Mdds_core.Audit.Committed _ -> ()
        | _ -> failwith "Ycsb: preload transaction failed to commit"
      done)

let run_worker cluster config handle ~index ~txns =
  let dc =
    List.nth config.client_dcs (index mod List.length config.client_dcs)
  in
  let client = Cluster.client cluster ~dc in
  let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
  let start =
    (if config.preload then preload_duration else 0.0)
    +. (float_of_int index *. config.stagger)
  in
  Cluster.spawn cluster ~at:start (fun () ->
      let scheduled = ref (Engine.now (Cluster.engine cluster)) in
      for _k = 1 to txns do
        (* Poisson arrivals at the target rate (exponential inter-arrival
           times), but never overlap own transactions. *)
        scheduled := !scheduled +. Rng.exponential rng (1.0 /. config.rate);
        let now = Engine.now (Cluster.engine cluster) in
        if !scheduled > now then Engine.sleep (!scheduled -. now);
        (try
           (* The cross-ratio guard draws no RNG when the feature is off,
              so [cross_ratio = 0.0] leaves the single-group stream — and
              every paper figure — byte-identical. *)
           if
             config.cross_ratio > 0.0 && config.groups > 1
             && Rng.float rng 1.0 < config.cross_ratio
           then begin
             (* Cross-group transaction: the round-robin group plus one
                other, operations alternating between them. *)
             let gi = _k mod config.groups in
             let gj = (gi + 1 + Rng.int rng (config.groups - 1)) mod config.groups in
             let g1 = group_key config gi and g2 = group_key config gj in
             let m = Client.begin_multi client ~groups:[ g1; g2 ] in
             for op = 0 to config.ops_per_txn - 1 do
               let group = if op land 1 = 0 then g1 else g2 in
               let key =
                 attribute_key
                   (Distribution.sample config.distribution rng config.attributes)
               in
               if Rng.bool rng config.read_fraction then
                 ignore (Client.read_in m ~group key)
               else
                 Client.write_in m ~group key
                   (Printf.sprintf "%s#%d" (Client.mtxn_id m) op)
             done;
             ignore (Client.commit_multi m)
           end
           else begin
             let txn = Client.begin_ client ~group:(group_key config _k) in
             for op = 0 to config.ops_per_txn - 1 do
               let key =
                 attribute_key (Distribution.sample config.distribution rng config.attributes)
               in
               if Rng.bool rng config.read_fraction then
                 ignore (Client.read txn key)
               else
                 Client.write txn key
                   (Printf.sprintf "%s#%d" (Client.txn_id txn) op)
             done;
             ignore (Client.commit txn)
           end
         with Client.Unavailable _ -> handle.begin_failures <- handle.begin_failures + 1);
        handle.finished <- handle.finished + 1
      done)

let run cluster config =
  if config.threads <= 0 then invalid_arg "Ycsb.run: threads must be positive";
  if config.client_dcs = [] then invalid_arg "Ycsb.run: client_dcs empty";
  let handle = { begin_failures = 0; finished = 0 } in
  if config.preload then run_preload cluster config;
  let base = config.total_txns / config.threads in
  let extra = config.total_txns mod config.threads in
  for index = 0 to config.threads - 1 do
    let txns = base + if index < extra then 1 else 0 in
    if txns > 0 then run_worker cluster config handle ~index ~txns
  done;
  handle
