module Checker = Mdds_serial.Checker
module Txn = Mdds_types.Txn

(* Merge an archived log (entries captured before compaction discarded
   them) with the live union log. An archived entry must agree with any
   surviving live entry at the same position — (R1) extended across
   time. *)
let merge_archive ~archive live =
  let ( let* ) = Result.bind in
  let by_pos = Hashtbl.create 64 in
  List.iter (fun (pos, entry) -> Hashtbl.replace by_pos pos entry) live;
  let* () =
    List.fold_left
      (fun acc (pos, entry) ->
        let* () = acc in
        match Hashtbl.find_opt by_pos pos with
        | Some live_entry when not (Txn.equal_entry live_entry entry) ->
            Error
              (Printf.sprintf
                 "R1: archived entry for position %d differs from the live log"
                 pos)
        | Some _ -> Ok ()
        | None ->
            Hashtbl.replace by_pos pos entry;
            Ok ())
      (Ok ()) archive
  in
  Ok
    (Hashtbl.fold (fun pos entry acc -> (pos, entry) :: acc) by_pos []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b))

let check ?(archive = []) cluster ~group =
  let ( let* ) = Result.bind in
  let of_violation what = function
    | Ok () -> Ok ()
    | Error v -> Error (Format.asprintf "%s: %a" what Checker.pp_violation v)
  in
  let* () = Cluster.logs_agree cluster ~group in
  let* log = merge_archive ~archive (Cluster.committed_log cluster ~group) in
  let* () = of_violation "L2" (Checker.unique_txn_ids log) in
  let events =
    List.filter
      (fun (e : Audit.event) -> String.equal e.group group)
      (Audit.events (Cluster.audit cluster))
  in
  let committed, aborted =
    List.fold_left
      (fun (cs, abs) (e : Audit.event) ->
        match e.outcome with
        | Audit.Committed { position; _ } ->
            ((e.record.txn_id, position) :: cs, abs)
        | Audit.Aborted _ -> (cs, e.record.txn_id :: abs)
        | Audit.Read_only_committed | Audit.Unknown -> (cs, abs))
      ([], []) events
  in
  let* () = of_violation "L1" (Checker.check_audit ~log ~committed ~aborted) in
  let* () = of_violation "L3" (Checker.check_log log) in
  let observed_tbl = Hashtbl.create 256 in
  List.iter
    (fun (e : Audit.event) -> Hashtbl.replace observed_tbl e.record.txn_id e.observed)
    events;
  let* () =
    of_violation "replay" (Checker.replay log ~observed:(Hashtbl.find_opt observed_tbl))
  in
  let readers =
    List.filter_map
      (fun (e : Audit.event) ->
        match e.outcome with
        | Audit.Read_only_committed ->
            Some (e.record.txn_id, e.record.read_position, e.observed)
        | _ -> None)
      events
  in
  of_violation "read-only" (Checker.check_read_only log ~readers)

let check_exn ?archive cluster ~group =
  match check ?archive cluster ~group with Ok () -> () | Error msg -> failwith msg
