module Checker = Mdds_serial.Checker
module Txn = Mdds_types.Txn

(* Merge an archived log (entries captured before compaction discarded
   them) with the live union log. An archived entry must agree with any
   surviving live entry at the same position — (R1) extended across
   time. *)
let merge_archive ~archive live =
  let ( let* ) = Result.bind in
  let by_pos = Hashtbl.create 64 in
  List.iter (fun (pos, entry) -> Hashtbl.replace by_pos pos entry) live;
  let* () =
    List.fold_left
      (fun acc (pos, entry) ->
        let* () = acc in
        match Hashtbl.find_opt by_pos pos with
        | Some live_entry when not (Txn.equal_entry live_entry entry) ->
            Error
              (Printf.sprintf
                 "R1: archived entry for position %d differs from the live log"
                 pos)
        | Some _ -> Ok ()
        | None ->
            Hashtbl.replace by_pos pos entry;
            Ok ())
      (Ok ()) archive
  in
  Ok
    (Hashtbl.fold (fun pos entry acc -> (pos, entry) :: acc) by_pos []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b))

(* Mirror the WAL's write-once rule (PROTOCOL.md §10) before handing the
   log to the serial checkers: a 2PC marker record whose marker key was
   already written by an earlier record (log order, then entry order)
   applied nothing — first decision/outcome wins, duplicates are inert —
   so the checkers must not count its writes either. Identity on logs
   without marker records, i.e. on every single-group run. *)
let marker_key (r : Txn.record) =
  match Twopc.classify r with
  | Twopc.Plain -> None
  | Twopc.Prepare _ | Twopc.Outcome _ | Twopc.Decision _ -> (
      (* Marker records carry the marker as their first write. *)
      match r.Txn.writes with w :: _ -> Some w.Txn.key | [] -> None)

let effective_log log =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (pos, entry) ->
      ( pos,
        List.filter
          (fun (r : Txn.record) ->
            match marker_key r with
            | None -> true
            | Some key ->
                if Hashtbl.mem seen key then false
                else begin
                  Hashtbl.add seen key ();
                  true
                end)
          entry ))
    log

let check ?(archive = []) cluster ~group =
  let ( let* ) = Result.bind in
  let of_violation what = function
    | Ok () -> Ok ()
    | Error v -> Error (Format.asprintf "%s: %a" what Checker.pp_violation v)
  in
  let* () = Cluster.logs_agree cluster ~group in
  let* log = merge_archive ~archive (Cluster.committed_log cluster ~group) in
  let* () = of_violation "L2" (Checker.unique_txn_ids log) in
  let log = effective_log log in
  let events =
    List.filter
      (fun (e : Audit.event) -> String.equal e.group group)
      (Audit.events (Cluster.audit cluster))
  in
  let committed, aborted =
    List.fold_left
      (fun (cs, abs) (e : Audit.event) ->
        match e.outcome with
        | Audit.Committed { position; _ } ->
            ((e.record.txn_id, position) :: cs, abs)
        | Audit.Aborted _ -> (cs, e.record.txn_id :: abs)
        | Audit.Read_only_committed | Audit.Unknown -> (cs, abs))
      ([], []) events
  in
  let* () = of_violation "L1" (Checker.check_audit ~log ~committed ~aborted) in
  let* () = of_violation "L3" (Checker.check_log log) in
  let observed_tbl = Hashtbl.create 256 in
  List.iter
    (fun (e : Audit.event) -> Hashtbl.replace observed_tbl e.record.txn_id e.observed)
    events;
  let* () =
    of_violation "replay" (Checker.replay log ~observed:(Hashtbl.find_opt observed_tbl))
  in
  let readers =
    List.filter_map
      (fun (e : Audit.event) ->
        match e.outcome with
        | Audit.Read_only_committed ->
            Some (e.record.txn_id, e.record.read_position, e.observed)
        | _ -> None)
      events
  in
  of_violation "read-only" (Checker.check_read_only log ~readers)

let check_exn ?archive cluster ~group =
  match check ?archive cluster ~group with Ok () -> () | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Cross-group atomicity oracle (PROTOCOL.md §10).

   Works from the participant groups' merged logs alone — the marker
   records ({!Twopc}) are the protocol's only durable state — plus the
   pseudo-group audit events for outcome honesty. The effective
   (write-once, first-wins) marker per key is the one that took. *)

let check_cross ?(archives = []) cluster ~groups =
  let ( let* ) = Result.bind in
  let errf fmt = Printf.ksprintf (fun s -> Error ("cross: " ^ s)) fmt in
  let* logs =
    List.fold_left
      (fun acc group ->
        let* acc = acc in
        let* () = Cluster.logs_agree cluster ~group in
        let archive =
          Option.value (List.assoc_opt group archives) ~default:[]
        in
        let* log = merge_archive ~archive (Cluster.committed_log cluster ~group) in
        Ok ((group, log) :: acc))
      (Ok []) groups
  in
  let logs = List.rev logs in
  (* Effective (first in log order) marker record per (txid, group). *)
  let prepares = Hashtbl.create 64 in (* -> pos, record, payload *)
  let outcomes = Hashtbl.create 64 in (* -> pos, verdict, record *)
  let decisions = Hashtbl.create 64 in (* -> verdict *)
  List.iter
    (fun (group, log) ->
      List.iter
        (fun (pos, entry) ->
          List.iter
            (fun (r : Txn.record) ->
              match Twopc.classify r with
              | Twopc.Prepare { txid; payload } ->
                  if not (Hashtbl.mem prepares (txid, group)) then
                    Hashtbl.add prepares (txid, group) (pos, r, payload)
              | Twopc.Outcome { txid; verdict } ->
                  if not (Hashtbl.mem outcomes (txid, group)) then
                    Hashtbl.add outcomes (txid, group) (pos, verdict, r)
              | Twopc.Decision { txid; verdict } ->
                  if not (Hashtbl.mem decisions (txid, group)) then
                    Hashtbl.add decisions (txid, group) verdict
              | Twopc.Plain -> ())
            entry)
        log)
    logs;
  let fold_tbl tbl f = Hashtbl.fold (fun k v acc -> let* () = acc in f k v) tbl (Ok ()) in
  (* Every logged prepare is resolved, by an outcome agreeing with the
     decision logged in its coordinator's group — never an invented one. *)
  let* () =
    fold_tbl prepares (fun (txid, group) (pos, _, payload) ->
        match Hashtbl.find_opt outcomes (txid, group) with
        | None ->
            errf "prepare %s in %s (pos %d) left unresolved: no outcome logged"
              txid group pos
        | Some (opos, verdict, _) -> (
            match Hashtbl.find_opt decisions (txid, payload.Twopc.coordinator) with
            | None ->
                errf
                  "outcome %s for %s in %s (pos %d) without a decision in \
                   coordinator %s"
                  verdict txid group opos payload.Twopc.coordinator
            | Some dverdict when not (String.equal dverdict verdict) ->
                errf "outcome %s for %s in %s (pos %d) contradicts decision %s"
                  verdict txid group opos dverdict
            | Some _ -> Ok ()))
  in
  (* Prepares of one transaction agree on coordinator and participants;
     a committed transaction prepared — and committed — everywhere, with
     the outcome applying exactly the prepared writes. *)
  let* () =
    fold_tbl prepares (fun (txid, group) (_, _, payload) ->
        let* () =
          List.fold_left
            (fun acc g ->
              let* () = acc in
              match Hashtbl.find_opt prepares (txid, g) with
              | Some (_, _, other)
                when other.Twopc.coordinator <> payload.Twopc.coordinator
                     || other.Twopc.participants <> payload.Twopc.participants
                ->
                  errf "prepares for %s in %s and %s disagree on the payload"
                    txid group g
              | _ -> Ok ())
            (Ok ()) groups
        in
        let* () =
          match Hashtbl.find_opt decisions (txid, payload.Twopc.coordinator) with
          | Some d when String.equal d Twopc.commit_verdict ->
              List.fold_left
                (fun acc g ->
                  let* () = acc in
                  match
                    ( Hashtbl.find_opt prepares (txid, g),
                      Hashtbl.find_opt outcomes (txid, g) )
                  with
                  | None, _ ->
                      errf "%s committed but participant %s has no prepare"
                        txid g
                  | _, None ->
                      errf "%s committed but participant %s has no outcome"
                        txid g
                  | Some (_, _, pl), Some (opos, verdict, o) ->
                      if not (String.equal verdict Twopc.commit_verdict) then
                        errf "%s committed but %s logged outcome %s" txid g
                          verdict
                      else
                        let applied =
                          List.filter_map
                            (fun (w : Txn.write) ->
                              if
                                String.starts_with
                                  ~prefix:Twopc.reserved_prefix w.Txn.key
                              then None
                              else Some (w.Txn.key, w.Txn.value))
                            o.Txn.writes
                        in
                        if applied <> pl.Twopc.writes then
                          errf
                            "%s commit outcome in %s (pos %d) does not apply \
                             the prepared writes"
                            txid g opos
                        else Ok ())
                (Ok ()) payload.Twopc.participants
          | _ -> Ok ()
        in
        if not (List.mem group payload.Twopc.participants) then
          errf "prepare %s logged in %s, not a listed participant" txid group
        else Ok ())
  in
  (* Window exclusivity — the 1SR linchpin: between a prepare and its
     first outcome, no other effective record may touch the prepared
     footprint in that group (the in-doubt table's admission blocking,
     verified from the log after the fact). *)
  let* () =
    fold_tbl prepares (fun (txid, group) (ppos, prep, _) ->
        match Hashtbl.find_opt outcomes (txid, group) with
        | Some (opos, _, _) when opos > ppos + 1 ->
            let footprint = Txn.read_keys prep in
            let in_footprint key = Array.exists (String.equal key) footprint in
            let log = List.assoc group logs in
            List.fold_left
              (fun acc (pos, entry) ->
                let* () = acc in
                if pos <= ppos || pos >= opos then Ok ()
                else
                  List.fold_left
                    (fun acc (r : Txn.record) ->
                      let* () = acc in
                      let effective =
                        match Twopc.classify r with
                        | Twopc.Plain -> true
                        | Twopc.Prepare { txid = id; _ } ->
                            (match Hashtbl.find_opt prepares (id, group) with
                            | Some (p, _, _) -> p = pos
                            | None -> false)
                        | Twopc.Outcome { txid = id; _ } ->
                            (match Hashtbl.find_opt outcomes (id, group) with
                            | Some (p, _, _) -> p = pos
                            | None -> false)
                        | Twopc.Decision _ -> false (* marker-only writes *)
                      in
                      if not effective then Ok ()
                      else
                        let touched =
                          Array.exists in_footprint (Txn.read_keys r)
                          || List.exists
                               (fun (w : Txn.write) ->
                                 (not
                                    (String.starts_with
                                       ~prefix:Twopc.reserved_prefix w.Txn.key))
                                 && in_footprint w.Txn.key)
                               r.Txn.writes
                        in
                        if touched then
                          errf
                            "record %s at pos %d in %s inside the in-doubt \
                             window of %s (prepare %d, outcome %d)"
                            r.Txn.txn_id pos group txid ppos opos
                        else Ok ())
                    (Ok ()) entry)
              (Ok ()) log
        | _ -> Ok ())
  in
  (* Outcome honesty against the pseudo-group audit events, and
     value-level verification of every cross-group read: each group's
     effective log, replayed serially, must reproduce the values the
     client observed at its per-group read position (the prepare record
     in that log carries the footprint and read position). *)
  let events =
    List.filter
      (fun (e : Audit.event) -> Twopc.is_audit_group e.group)
      (Audit.events (Cluster.audit cluster))
  in
  let* () =
    List.fold_left
      (fun acc (e : Audit.event) ->
        let* () = acc in
        let txid = e.record.Txn.txn_id in
        let committed_somewhere =
          List.exists
            (fun g ->
              Hashtbl.find_opt decisions (txid, g)
              = Some Twopc.commit_verdict)
            groups
        in
        match e.outcome with
        | Audit.Committed _ when not committed_somewhere ->
            errf "client reported %s committed but no commit decision is logged"
              txid
        | Audit.Aborted _ when committed_somewhere ->
            errf "client reported %s aborted but a commit decision is logged"
              txid
        | _ -> Ok ())
      (Ok ()) events
  in
  let observed_in group =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (e : Audit.event) ->
        let prefix = group ^ "/" in
        let mine =
          List.filter_map
            (fun (qkey, v) ->
              if String.starts_with ~prefix qkey then
                Some
                  ( String.sub qkey (String.length prefix)
                      (String.length qkey - String.length prefix),
                    v )
              else None)
            e.observed
        in
        if mine <> [] then Hashtbl.replace tbl e.record.Txn.txn_id mine)
      events;
    tbl
  in
  List.fold_left
    (fun acc (group, log) ->
      let* () = acc in
      let tbl = observed_in group in
      match Checker.replay (effective_log log) ~observed:(Hashtbl.find_opt tbl) with
      | Ok () -> Ok ()
      | Error v ->
          Error
            (Format.asprintf "cross: replay in %s: %a" group Checker.pp_violation
               v))
    (Ok ()) logs

let check_cross_exn ?archives cluster ~groups =
  match check_cross ?archives cluster ~groups with
  | Ok () -> ()
  | Error msg -> failwith msg
