module Txn = Mdds_types.Txn

(* Distinct records by txn id, first-seen order, excluding [own] — the one
   dedup pass shared by [candidates_of_votes] and [best]. *)
let distinct_candidates ~(own : Txn.record) records =
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen own.Txn.txn_id ();
  List.filter
    (fun (r : Txn.record) ->
      if Hashtbl.mem seen r.txn_id then false
      else begin
        Hashtbl.replace seen r.txn_id ();
        true
      end)
    records

let candidates_of_votes ~own entries =
  distinct_candidates ~own (List.concat entries)

(* Exhaustive search: maximum-length valid ordering of [own] plus any
   subset of [candidates]. Candidate sets are small (the paper observes
   lists of two or three in practice), so enumerating insertions is
   affordable: extend partial orderings one candidate at a time, pruning
   invalid prefixes.

   The search is an incremental planner over record *indices*: the
   pairwise reads-from matrix over own + candidates is computed once, and
   because every ordering reached is already valid, inserting candidate
   [x] at position [p] keeps it valid iff

     (a) [x] reads from nothing before [p]   (prefix scan over the matrix)
     (b) nothing at or after [p] reads from [x]  (suffix scan)

   so one O(len) pass over the ordering prices all len+1 insertion points,
   instead of re-deriving read/write sets per probe. The enumeration order
   — candidates in [remaining] order, insertion positions left to right,
   first strictly-longer ordering wins — is exactly the pre-planner
   order, which keeps the selected ordering (and every figure downstream
   of it) byte-identical. *)
exception Budget_exhausted

(* Probe budget actually exceeded at a position (the paper's own greedy
   fallback, §4.2/§5, then takes over). Cumulative and domain-safe: the
   harness and the CLIs report it so a figure workload silently leaning on
   the fallback is visible. *)
let cutover_count = Atomic.make 0

let cutovers () = Atomic.get cutover_count

(* Sized from the planner's true worst case at the production
   [exhaustive_limit = 4]: four mutually independent candidates price
   3536 insertion probes (every subset in every insertion sequence stays
   valid), so 8192 gives a >2x margin — figure workloads never cut over —
   while still rejecting the ~10^7-probe trees that 8 independent
   candidates at a raised limit produce. *)
let default_probe_budget = 8192

(* Worst-case probe count for [n] candidates: every partial ordering
   valid, so level k has nodes(k) = nodes(k-1)·(n-k+1)·(k+1) insertion
   sequences, each pricing (n-k)·(k+2) probes. Conflicts only prune, so
   the actual search never exceeds this — which makes it a sound
   cut-over predictor: if the worst case fits the budget, the search is
   guaranteed to finish within it and [Budget_exhausted] cannot fire.
   Computed in float (the count is factorial in [n]) and compared
   against the budget by the caller. *)
let worst_case_probes n =
  let total = ref 0.0 and nodes = ref 1.0 in
  for k = 0 to n - 1 do
    total := !total +. (!nodes *. float_of_int ((n - k) * (k + 2)));
    nodes := !nodes *. float_of_int ((n - k) * (k + 1))
  done;
  !total

let exhaustive ?(budget = max_int) ~own candidates =
  let all = Array.of_list (own :: candidates) in
  let n = Array.length all in
  (* rf.(i).(j): all.(i) reads a key all.(j) wrote. The diagonal is forced
     false (a record never precedes itself in an ordering). *)
  let rf =
    Array.init n (fun i ->
        Array.init n (fun j -> j <> i && Txn.reads_from all.(i) all.(j)))
  in
  (* Insertion probes priced so far; raising [Budget_exhausted] abandons
     the search tree wholesale — partial results are useless because the
     enumeration order is load-bearing (first maximal ordering wins). *)
  let probes = ref 0 in
  let best = ref [ 0 ] in
  let best_len = ref 1 in
  let rec go ordering len remaining =
    if len > !best_len then begin
      best := ordering;
      best_len := len
    end;
    List.iteri
      (fun i x ->
        let rest = List.filteri (fun j _ -> j <> i) remaining in
        let rf_x = rf.(x) in
        (* bad_after.(p): some element at index >= p of [ordering] reads
           from [x] — condition (b) for every position in one backward
           pass. *)
        let bad_after = Array.make (len + 1) false in
        List.iteri
          (fun p y -> if rf.(y).(x) then bad_after.(p) <- true)
          ordering;
        for p = len - 1 downto 0 do
          bad_after.(p) <- bad_after.(p) || bad_after.(p + 1)
        done;
        (* Forward pass: thread condition (a) incrementally, recursing at
           each admissible position in left-to-right order. *)
        let rec probe p prefix suffix =
          incr probes;
          if !probes > budget then raise Budget_exhausted;
          if not bad_after.(p) then
            go (List.rev_append prefix (x :: suffix)) (len + 1) rest;
          match suffix with
          | y :: ys when not rf_x.(y) -> probe (p + 1) (y :: prefix) ys
          | _ -> () (* x would read from y: every later position is out *)
        in
        probe 0 [] ordering)
      remaining
  in
  go [ 0 ] 1 (List.init (n - 1) (fun i -> i + 1));
  List.map (fun i -> all.(i)) !best

(* Greedy single pass (§5): append each candidate if the list stays valid.
   The list is valid by construction, so appending [c] keeps it valid iff
   [c] reads nothing the list already writes — one probe against the
   running write union instead of re-validating the whole list. *)
let greedy ~own candidates =
  let union = Txn.Write_union.create () in
  Txn.Write_union.add union own;
  let kept =
    List.fold_left
      (fun acc candidate ->
        if Txn.Write_union.reads_overlap union candidate then acc
        else begin
          Txn.Write_union.add union candidate;
          candidate :: acc
        end)
      [] candidates
  in
  own :: List.rev kept

let best ?(probe_budget = default_probe_budget) ~own ~candidates
    ~exhaustive_limit () =
  let candidates = distinct_candidates ~own candidates in
  let n = List.length candidates in
  if n > exhaustive_limit then greedy ~own candidates
  else if worst_case_probes n > float_of_int probe_budget then begin
    (* Predicted cutover: don't pay for a search that could blow the
       budget — commit paths must not stall on adversarial conflict
       shapes, and a search abandoned mid-tree is wasted work anyway
       (the enumeration order is load-bearing, partial results are
       unusable). *)
    Atomic.incr cutover_count;
    greedy ~own candidates
  end
  else
    (* The worst case fits the budget, so the in-search guard cannot
       fire; it stays as a backstop against the predictor rotting. *)
    try exhaustive ~budget:probe_budget ~own candidates
    with Budget_exhausted ->
      Atomic.incr cutover_count;
      greedy ~own candidates
