module Txn = Mdds_types.Txn
module Codec = Mdds_codec.Codec

(* Reserved key prefix: no workload key may start with it. Everything the
   multi-shot commit protocol persists rides inside ordinary log records
   as writes to these keys, so the per-group Paxos machinery (durability,
   replication, dedup, recovery) applies to 2PC state unchanged. *)
let reserved_prefix = "__2pc/"
let prepare_prefix = "__2pc/p/"
let outcome_prefix = "__2pc/o/"
let decision_prefix = "__2pc/d/"

let prepare_key txid = prepare_prefix ^ txid
let outcome_key txid = outcome_prefix ^ txid
let decision_key txid = decision_prefix ^ txid

let commit_verdict = "commit"
let abort_verdict = "abort"

type payload = {
  coordinator : string;
  participants : string list;
  writes : (string * string) list;
}

let payload_codec =
  Codec.(
    map
      (fun (coordinator, participants, writes) ->
        { coordinator; participants; writes })
      (fun { coordinator; participants; writes } ->
        (coordinator, participants, writes))
      (triple string (list string) (list (pair string string))))

type kind =
  | Prepare of { txid : string; payload : payload }
  | Outcome of { txid : string; verdict : string }
  | Decision of { txid : string; verdict : string }
  | Plain

let strip prefix key =
  String.sub key (String.length prefix) (String.length key - String.length prefix)

(* Marker records carry their marker as the first write (constructors
   below), so classification is one prefix test on the hot path. *)
let classify (r : Txn.record) =
  match r.Txn.writes with
  | { Txn.key; value } :: _ when String.starts_with ~prefix:reserved_prefix key
    ->
      if String.starts_with ~prefix:prepare_prefix key then
        Prepare
          {
            txid = strip prepare_prefix key;
            payload = Codec.decode_exn payload_codec value;
          }
      else if String.starts_with ~prefix:outcome_prefix key then
        Outcome { txid = strip outcome_prefix key; verdict = value }
      else Decision { txid = strip decision_prefix key; verdict = value }
  | _ -> Plain

let is_marker (r : Txn.record) =
  match r.Txn.writes with
  | { Txn.key; _ } :: _ -> String.starts_with ~prefix:reserved_prefix key
  | [] -> false

(* The prepare both locks the transaction's footprint in this group and
   re-uses the single-group admission predicate: its read set is the
   union of the transaction's real reads *and* write keys, so the
   manager's staleness check ("was any of these keys overwritten after
   the read position?") validates the whole footprint at the prepare's
   log position. The real writes travel in the payload; they are applied
   only by a commit outcome. *)
let prepare_record ~txid ~origin ~read_position ~reads ~payload =
  Txn.make_record ~txn_id:txid ~origin ~read_position ~reads
    ~writes:
      [ { Txn.key = prepare_key txid; value = Codec.encode payload_codec payload } ]

(* Outcome and decision records get origin-tagged transaction ids so
   racing resolvers never propose the same id twice (an L2 violation);
   the duplicate *effects* are suppressed by the WAL's write-once rule
   for [__2pc/] keys — the first logged outcome applies, later ones are
   inert. *)
let outcome_record ~txid ~tag ~origin ~prepare_position ~verdict ~writes =
  let writes =
    { Txn.key = outcome_key txid; value = verdict }
    :: (if String.equal verdict commit_verdict then
          List.map (fun (key, value) -> { Txn.key; value }) writes
        else [])
  in
  Txn.make_record
    ~txn_id:(txid ^ "/o@" ^ tag)
    ~origin ~read_position:prepare_position ~reads:[] ~writes

let decision_record ~txid ~tag ~origin ~verdict =
  Txn.make_record
    ~txn_id:(txid ^ "/d@" ^ tag)
    ~origin ~read_position:0 ~reads:[]
    ~writes:[ { Txn.key = decision_key txid; value = verdict } ]

(* Pseudo-group under which a cross-group transaction's audit event is
   recorded. It never matches a real group, so the per-group oracles
   ignore cross events; {!Verify.check_cross} reads them explicitly. *)
let audit_group groups = "cross:" ^ String.concat "+" groups

let is_audit_group g = String.starts_with ~prefix:"cross:" g
