module Txn = Mdds_types.Txn

type abort_reason = Conflict | Lost_position | Promotion_limit | Unavailable

type outcome =
  | Committed of { position : int; promotions : int; combined : bool }
  | Aborted of { reason : abort_reason; promotions : int }
  | Read_only_committed
  | Unknown

type protocol_stats = {
  prepare_rounds : int;
  accept_rounds : int;
  fast_path : bool;
  instances : int;
}

let no_stats = { prepare_rounds = 0; accept_rounds = 0; fast_path = false; instances = 0 }

type event = {
  group : string;
  record : Txn.record;
  observed : (Txn.key * string option) list;
  outcome : outcome;
  began_at : float;
  committed_at : float;
  commit_started_at : float;
  client_dc : int;
  stats : protocol_stats;
}

(* All statistics are maintained incrementally by [record]: the harness
   reads each of them once per experiment (and the latency ones once per
   promotion round), which used to cost one full pass over the event list
   per statistic. Lists accumulate newest-first and are reversed on read so
   accessors return the exact (chronological) order the fold-based
   implementation did — float sums depend on order, so this keeps outputs
   bit-identical. *)
type t = {
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable commits : int; (* Committed + Read_only_committed *)
  mutable aborts : int;
  mutable unknowns : int;
  mutable max_promotions : int; (* over Committed and Aborted *)
  commits_by_promotions : (int, int) Hashtbl.t;
  aborts_by_reason : (abort_reason, int) Hashtbl.t;
  mutable commit_lats : float list; (* Committed only, newest first *)
  commit_lats_by_promotions : (int, float list) Hashtbl.t;
  mutable txn_lats : float list; (* all events, newest first *)
  mutable rounds_total : int; (* prepare+accept over Committed *)
  mutable committed_rw : int; (* Committed only (not read-only) *)
  mutable fast_paths : int; (* Committed with fast_path *)
  mutable hedges : int; (* service requests answered by a fallback dc *)
}

let create () =
  {
    events = [];
    count = 0;
    commits = 0;
    aborts = 0;
    unknowns = 0;
    max_promotions = 0;
    commits_by_promotions = Hashtbl.create 8;
    aborts_by_reason = Hashtbl.create 4;
    commit_lats = [];
    commit_lats_by_promotions = Hashtbl.create 8;
    txn_lats = [];
    rounds_total = 0;
    committed_rw = 0;
    fast_paths = 0;
    hedges = 0;
  }

let note_hedge t = t.hedges <- t.hedges + 1

let hedges t = t.hedges

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let record t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1;
  t.txn_lats <- (e.committed_at -. e.began_at) :: t.txn_lats;
  match e.outcome with
  | Committed { promotions; _ } ->
      t.commits <- t.commits + 1;
      t.committed_rw <- t.committed_rw + 1;
      t.max_promotions <- max t.max_promotions promotions;
      bump t.commits_by_promotions promotions 1;
      let lat = e.committed_at -. e.commit_started_at in
      t.commit_lats <- lat :: t.commit_lats;
      Hashtbl.replace t.commit_lats_by_promotions promotions
        (lat
        :: Option.value
             (Hashtbl.find_opt t.commit_lats_by_promotions promotions)
             ~default:[]);
      t.rounds_total <-
        t.rounds_total + e.stats.prepare_rounds + e.stats.accept_rounds;
      if e.stats.fast_path then t.fast_paths <- t.fast_paths + 1
  | Read_only_committed -> t.commits <- t.commits + 1
  | Aborted { reason; promotions } ->
      t.aborts <- t.aborts + 1;
      t.max_promotions <- max t.max_promotions promotions;
      bump t.aborts_by_reason reason 1
  | Unknown -> t.unknowns <- t.unknowns + 1

let events t = List.rev t.events

let total t = t.count

let commits t = t.commits

let unknowns t = t.unknowns

let aborts t = t.aborts

let commits_with_promotions t n =
  Option.value (Hashtbl.find_opt t.commits_by_promotions n) ~default:0

let max_promotions_seen t = t.max_promotions

let abort_count t reason =
  Option.value (Hashtbl.find_opt t.aborts_by_reason reason) ~default:0

let commit_latencies t ~promotions =
  match promotions with
  | None -> List.rev t.commit_lats
  | Some p ->
      List.rev
        (Option.value (Hashtbl.find_opt t.commit_lats_by_promotions p) ~default:[])

let txn_latencies t = List.rev t.txn_lats

let pp_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Conflict -> "conflict"
    | Lost_position -> "lost-position"
    | Promotion_limit -> "promotion-limit"
    | Unavailable -> "unavailable")

let mean_rounds t =
  if t.committed_rw = 0 then 0.0
  else float_of_int t.rounds_total /. float_of_int t.committed_rw

let fast_path_rate t =
  if t.committed_rw = 0 then 0.0
  else float_of_int t.fast_paths /. float_of_int t.committed_rw
