type protocol = Basic | Cp | Leader

type t = {
  protocol : protocol;
  rpc_timeout : float;
  processing_delay : float;
  max_promotions : int option;
  enable_combination : bool;
  enable_fast_path : bool;
  exhaustive_combination_limit : int;
  combine_probe_budget : int;
  max_rounds : int;
  backoff_min : float;
  backoff_max : float;
  backoff_decorrelated : bool;
  prepare_linger : float;
  read_attempts : int;
  initial_leader : int;
  adaptive_timeouts : bool;
  adaptive_floor : float;
  adaptive_multiplier : float;
  hedged_reads : bool;
  batch_max : int;
  batch_fill : float;
  pipeline_depth : int;
}

let default =
  {
    protocol = Cp;
    rpc_timeout = 2.0;
    processing_delay = 0.02;
    max_promotions = None;
    enable_combination = true;
    enable_fast_path = true;
    exhaustive_combination_limit = 4;
    combine_probe_budget = Combine.default_probe_budget;
    max_rounds = 25;
    backoff_min = 0.002;
    backoff_max = 0.040;
    backoff_decorrelated = false;
    prepare_linger = 0.01;
    read_attempts = 3;
    initial_leader = 0;
    adaptive_timeouts = false;
    adaptive_floor = 0.05;
    adaptive_multiplier = 3.0;
    hedged_reads = false;
    batch_max = 1;
    batch_fill = 0.005;
    pipeline_depth = 1;
  }

let basic = { default with protocol = Basic }

let with_protocol protocol t = { t with protocol }

let leader = { default with protocol = Leader }

let throughput_mode t = t.batch_max > 1 || t.pipeline_depth > 1

let throughput ?(batch_max = 8) ?(pipeline_depth = 4) t =
  { t with protocol = Leader; batch_max; pipeline_depth }

let protocol_name = function
  | Basic -> "paxos"
  | Cp -> "paxos-cp"
  | Leader -> "leader"

let pp_protocol ppf p = Format.pp_print_string ppf (protocol_name p)
