type protocol = Basic | Cp | Leader

type t = {
  protocol : protocol;
  rpc_timeout : float;
  processing_delay : float;
  max_promotions : int option;
  enable_combination : bool;
  enable_fast_path : bool;
  exhaustive_combination_limit : int;
  combine_probe_budget : int;
  max_rounds : int;
  backoff_min : float;
  backoff_max : float;
  backoff_decorrelated : bool;
  prepare_linger : float;
  read_attempts : int;
  initial_leader : int;
  adaptive_timeouts : bool;
  adaptive_floor : float;
  adaptive_multiplier : float;
  hedged_reads : bool;
  batch_max : int;
  batch_fill : float;
  pipeline_depth : int;
  epoch_interval : float;
}

let default =
  {
    protocol = Cp;
    rpc_timeout = 2.0;
    processing_delay = 0.02;
    max_promotions = None;
    enable_combination = true;
    enable_fast_path = true;
    exhaustive_combination_limit = 4;
    combine_probe_budget = Combine.default_probe_budget;
    max_rounds = 25;
    backoff_min = 0.002;
    backoff_max = 0.040;
    backoff_decorrelated = false;
    prepare_linger = 0.01;
    read_attempts = 3;
    initial_leader = 0;
    adaptive_timeouts = false;
    adaptive_floor = 0.05;
    adaptive_multiplier = 3.0;
    hedged_reads = false;
    batch_max = 1;
    batch_fill = 0.005;
    pipeline_depth = 1;
    epoch_interval = 0.0;
  }

let basic = { default with protocol = Basic }

let with_protocol protocol t = { t with protocol }

let leader = { default with protocol = Leader }

let epoch_mode t = t.epoch_interval > 0.0

let throughput_mode t =
  t.batch_max > 1 || t.pipeline_depth > 1 || epoch_mode t

(* Knob validation at construction: each of these combinations is not a
   tuning choice but a contradiction (a batcher that can hold no
   transaction, a pipeline with no slots, a backoff window of negative
   width, an adaptive floor above the cap it feeds). Catching them here
   turns undefined downstream behavior — infinite defer loops, empty
   windows, [Rng.uniform] on an inverted interval — into an immediate,
   descriptive error. *)
let validate t =
  let fail fmt = Printf.ksprintf invalid_arg ("Config.make: " ^^ fmt) in
  if t.batch_max < 1 then fail "batch_max = %d (must be >= 1)" t.batch_max;
  if t.pipeline_depth < 1 then
    fail "pipeline_depth = %d (must be >= 1)" t.pipeline_depth;
  if t.epoch_interval < 0.0 then
    fail "epoch_interval = %g (must be >= 0; 0 disables epoch sealing)"
      t.epoch_interval;
  if t.backoff_min > t.backoff_max then
    fail "backoff_min = %g > backoff_max = %g" t.backoff_min t.backoff_max;
  if t.adaptive_floor > t.rpc_timeout then
    fail "adaptive_floor = %g > rpc_timeout = %g (the floor feeds a timeout capped at rpc_timeout)"
      t.adaptive_floor t.rpc_timeout;
  t

let make ?(base = default) ?rpc_timeout ?backoff_min ?backoff_max
    ?adaptive_floor ?batch_max ?pipeline_depth ?epoch_interval () =
  let field v = function Some v -> v | None -> v in
  validate
    {
      base with
      rpc_timeout = field base.rpc_timeout rpc_timeout;
      backoff_min = field base.backoff_min backoff_min;
      backoff_max = field base.backoff_max backoff_max;
      adaptive_floor = field base.adaptive_floor adaptive_floor;
      batch_max = field base.batch_max batch_max;
      pipeline_depth = field base.pipeline_depth pipeline_depth;
      epoch_interval = field base.epoch_interval epoch_interval;
    }

let throughput ?(batch_max = 8) ?(pipeline_depth = 4) t =
  validate { t with protocol = Leader; batch_max; pipeline_depth }

let epoch ?(fill = 64) ?(pipeline_depth = 1) ?(interval = 0.05) t =
  validate
    {
      t with
      protocol = Leader;
      batch_max = fill;
      pipeline_depth;
      epoch_interval = interval;
    }

let protocol_name = function
  | Basic -> "paxos"
  | Cp -> "paxos-cp"
  | Leader -> "leader"

let pp_protocol ppf p = Format.pp_print_string ppf (protocol_name p)
