module Store = Mdds_kvstore.Store
module Row = Mdds_kvstore.Row
module Wal = Mdds_wal.Wal
module Txn = Mdds_types.Txn
module Ballot = Mdds_paxos.Ballot
module Acceptor = Mdds_paxos.Acceptor
module Rpc = Mdds_net.Rpc
module Codec = Mdds_codec.Codec

(* Decoded acceptor state as cached per position: the durable row's
   attributes are the truth; [nb] keeps the raw nextBal attribute so the
   next conditional save tests against exactly what the store holds. *)
type acceptor_cached = {
  acc_state : Txn.entry Acceptor.state;
  acc_nb : string option;
}

(* Interned row-key prefixes per group (replaces per-message sprintf). *)
type group_keys = { paxos_prefix : string; claim_prefix : string }

(* ------------------------------------------------------------------ *)
(* Throughput mode (DESIGN.md §14): the manager's pending queue and
   pipelined proposal window. All volatile — a restart drops it, exactly
   like the submission locks; clients of orphaned submissions time out as
   they would against a down manager. *)

(* One queued submission. The handler fiber that received the Submit
   suspends on [p_wakers]; whichever fiber resolves the outcome (a
   pipelined slot completing, the drainer's window resolution, or the
   batch admission check) wakes every waiter — including duplicate
   Submits for the same txn id that attached while it was in flight. *)
type pending = {
  p_record : Txn.record;
  mutable p_result : Messages.submit_result option;
  mutable p_wakers : (unit -> unit) list;
  mutable p_tries : int;  (* log positions lost before giving up *)
  mutable p_exposed : bool;  (* an accept carrying this record went out *)
}

type slot_state = Sl_pending | Sl_won | Sl_failed

(* One in-flight pipelined log position. *)
type slot = {
  sl_pos : int;
  sl_entry : Txn.entry;
  sl_pendings : pending list;
  mutable sl_state : slot_state;
}

type batcher = {
  bt_group : string;
  bt_queue : pending Queue.t;  (* fresh submissions, FIFO *)
  bt_requeue : pending Queue.t;  (* lost-position retries, drained first *)
  bt_by_id : (string, pending) Hashtbl.t;  (* queued or in flight *)
  mutable bt_window : slot list;  (* in-flight positions, ascending *)
  mutable bt_next_pos : int;  (* next position while the window is open *)
  mutable bt_prev : Txn.entry option;
      (* Entry launched at [bt_next_pos - 1], carried in the next
         sequenced accept so acceptors can match the predecessor
         (see {!sequenced_ok}). Kept here because the predecessor's slot
         may already have completed and left the window. Invariant:
         [bt_window <> []] implies [bt_prev = Some _]. *)
  mutable bt_running : bool;  (* drainer fiber alive *)
  mutable bt_wake : (unit -> unit) option;  (* drainer's parked wakeup *)
  mutable bt_stopped : bool;  (* set by restart; orphaned drainer exits *)
}

(* One prepared-but-undecided cross-group transaction (PROTOCOL.md §10),
   as derived from the group's log: a Prepare marker record without a
   later Outcome marker. Its footprint excludes conflicting admissions
   until resolved. *)
type indoubt = {
  ind_footprint : string array;
      (* The prepare record's read set — reads ∪ write keys by
         construction (see {!Twopc.prepare_record}). *)
  ind_payload : Twopc.payload;
  ind_pos : int;  (* log position of the prepare *)
}

type t = {
  dc : int;
  source : string;  (* "svc.dc<N>", interned for trace calls *)
  config : Config.t;
  store : Store.t;
  wal : Wal.t;
  env : Proposer.env;
  submit_locks : (string, Mdds_sim.Semaphore.t) Hashtbl.t;
  won : (string, int) Hashtbl.t;  (* last position this manager decided *)
  acceptors : (string, (int, acceptor_cached) Hashtbl.t) Hashtbl.t;
      (* Write-through decoded view of the paxos/ rows, per group; dropped
         on restart (volatile) and pruned with compaction. *)
  group_keys : (string, group_keys) Hashtbl.t;
  suspect : (string, (int, unit) Hashtbl.t) Hashtbl.t;
      (* Positions whose durable acceptor/claim state was damaged by a
         crash (checksum-invalid versions scrubbed at restart). The
         service must not vote at these from its reverted state — that
         would be the PR-1 double-vote bug at the storage level — so they
         are quarantined until re-learned from peers. *)
  relearning : (string * int, unit) Hashtbl.t;
      (* Quarantined positions whose re-learn ladder is currently running.
         The learner's own prepare broadcast reaches this service too; if
         that re-entrant message started another ladder, each round would
         spawn a new learner and the recursion would never bottom out
         while peers are unreachable. Re-entrant messages for a position
         already being re-learned are refused immediately instead. *)
  mutable learns : int;
  mutable snapshots : int;
  mutable recoveries : int;
  mutable scrubbed : int;
  mutable relearned : int;
  mutable dup_applies : int;
  mutable dup_claims : int;
  mutable dup_submits : int;
  batchers : (string, batcher) Hashtbl.t;
      (* Throughput mode only (Config.throughput_mode): per-group pending
         queue + pipelined window. Untouched — never even allocated into —
         when the mode is off, so the default path stays byte-identical. *)
  mutable batches : int;
  mutable batched_txns : int;
  mutable pipelined_rounds : int;
  mutable pipeline_stalls : int;
  mutable epochs_sealed : int;
  mutable epoch_txns : int;
  twopc : (string, (string, indoubt) Hashtbl.t) Hashtbl.t;
      (* In-doubt table per group, volatile: re-derived from the log by
         an incremental scan ({!scan_2pc}); reset and rebuilt on restart.
         Never allocated into when no cross-group transactions run. *)
  twopc_scanned : (string, int) Hashtbl.t;
      (* Contiguous log prefix already absorbed into the in-doubt table. *)
  twopc_resolving : (string * string, unit) Hashtbl.t;
      (* (group, txid) pairs with a live resolver fiber (spawn dedup). *)
  mutable twopc_epoch : int;
      (* Bumped by restart so orphaned resolver fibers exit quietly. *)
  mutable trap_2pc : (unit -> unit) option;
      (* One-shot chaos trap: fired when a prepare marker crosses this
         service (accept or apply) — the nemesis arms it to aim faults at
         the prepare→decide window. *)
  mutable twopc_prepares : int;
  mutable twopc_resolved : int;
  mutable in_doubt_replies : int;
}

type recovery_stats = { recoveries : int; scrubbed : int; relearned : int }

type dedup_stats = { dup_applies : int; dup_claims : int; dup_submits : int }

type throughput_stats = {
  batches : int;
  batched_txns : int;
  pipelined_rounds : int;
  pipeline_stalls : int;
  epochs_sealed : int;
  epoch_txns : int;
}

type twopc_stats = {
  twopc_prepares : int;
  twopc_resolved : int;
  in_doubt_replies : int;
}

let dc t = t.dc
let store t = t.store
let wal t = t.wal
let learns t = t.learns

let dedup_stats (t : t) =
  {
    dup_applies = t.dup_applies;
    dup_claims = t.dup_claims;
    dup_submits = t.dup_submits;
  }

let throughput_stats (t : t) =
  {
    batches = t.batches;
    batched_txns = t.batched_txns;
    pipelined_rounds = t.pipelined_rounds;
    pipeline_stalls = t.pipeline_stalls;
    epochs_sealed = t.epochs_sealed;
    epoch_txns = t.epoch_txns;
  }

let twopc_stats (t : t) =
  {
    twopc_prepares = t.twopc_prepares;
    twopc_resolved = t.twopc_resolved;
    in_doubt_replies = t.in_doubt_replies;
  }

let keys_of t ~group =
  match Hashtbl.find_opt t.group_keys group with
  | Some k -> k
  | None ->
      let k =
        {
          paxos_prefix = "paxos/" ^ group ^ "/";
          claim_prefix = "claim/" ^ group ^ "/";
        }
      in
      Hashtbl.replace t.group_keys group k;
      k

let paxos_key t ~group ~pos = (keys_of t ~group).paxos_prefix ^ string_of_int pos
let claim_key t ~group ~pos = (keys_of t ~group).claim_prefix ^ string_of_int pos

(* ------------------------------------------------------------------ *)
(* Acceptor state persistence (Algorithm 1's datastore state).         *)

let vote_codec = Codec.(option (pair Ballot.codec Txn.entry_codec))

let acceptor_table t ~group =
  match Hashtbl.find_opt t.acceptors group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.acceptors group tbl;
      tbl

let decode_acceptor attrs =
  let next_bal =
    match Row.attribute attrs "nb" with
    | None -> Ballot.bottom
    | Some s -> Ballot.of_string s
  in
  let vote =
    match Row.attribute attrs "vote" with
    | None -> None
    | Some s -> Codec.decode_exn vote_codec s
  in
  { acc_state = { Acceptor.next_bal; vote }; acc_nb = Row.attribute attrs "nb" }

let load_acceptor_fresh t ~group ~pos =
  match Store.read t.store ~key:(paxos_key t ~group ~pos) () with
  | None -> { acc_state = Acceptor.initial; acc_nb = None }
  | Some (_, attrs) -> decode_acceptor attrs

let load_acceptor t ~group ~pos =
  let tbl = acceptor_table t ~group in
  match Hashtbl.find_opt tbl pos with
  | Some cached -> (cached.acc_state, cached.acc_nb)
  | None ->
      let cached = load_acceptor_fresh t ~group ~pos in
      Hashtbl.replace tbl pos cached;
      (cached.acc_state, cached.acc_nb)

(* Conditional save keyed on the nextBal attribute, mirroring Algorithm 1
   lines 9 and 18: the write goes through only if nextBal has not changed
   since we read the state. The cache follows the store: updated only when
   the conditional write lands, dropped when it does not (someone else owns
   the row's current value). *)
let save_acceptor t ~group ~pos ~expected_nb (state : Txn.entry Acceptor.state) =
  let nb = Ballot.to_string state.next_bal in
  let attrs = [ ("nb", nb); ("vote", Codec.encode vote_codec state.vote) ] in
  let ok =
    Store.check_and_write t.store ~key:(paxos_key t ~group ~pos)
      ~test_attribute:"nb" ~test_value:expected_nb attrs
  in
  (* Promises and votes are the durability the whole protocol rests on
     (§4.1: an acceptor must come back remembering them): sync before the
     reply leaves this datacenter. *)
  if ok then Store.sync t.store;
  let tbl = acceptor_table t ~group in
  if ok then
    Hashtbl.replace tbl pos { acc_state = state; acc_nb = Some nb }
  else Hashtbl.remove tbl pos;
  ok

let rec handle_prepare t ~group ~pos ~ballot =
  let state, nb = load_acceptor t ~group ~pos in
  let state', reply = Acceptor.on_prepare state ballot in
  match reply with
  | Acceptor.Reject next_bal -> Messages.Prepare_reject { next_bal }
  | Acceptor.Promise vote ->
      if save_acceptor t ~group ~pos ~expected_nb:nb state' then
        Messages.Promise { vote }
      else handle_prepare t ~group ~pos ~ballot (* state changed: retry *)

(* Grant condition for a sequenced (pipelined) round-0 accept: our current
   vote at the previous position is the very same round-0 ballot *for the
   very entry the leader says it proposed there* ([prev], carried in the
   Accept). Acceptors cast at most one round-0 vote per position, so a
   quorum of sequenced grants at [pos] is a quorum of round-0 votes at
   [pos - 1] for one value — i.e. proof the leader's previous in-flight
   entry is chosen. That induction is what lets the manager keep
   [pipeline_depth] positions open and still report completions out of
   order (DESIGN.md §14). The entry match is load-bearing: the round-0
   ballot is NOT single-use per position (after a given-up
   exposed-but-undecided round the manager re-proposes a different batch
   at the same position and ballot 0, and pre-restart accepts linger on
   slow/duplicating links), so ballot-equal votes for different entries
   can coexist at [pos - 1] and ballot equality alone would prove
   nothing chosen. Anything else — no vote yet, an overwritten vote, a
   different entry, a compacted predecessor — is refused; refusal costs
   only the fast round, the window resolution recovers through the full
   protocol. *)
let sequenced_ok t ~group ~pos ~ballot ~prev =
  pos > 1
  && pos - 1 > Wal.compacted_position t.wal ~group
  &&
  match (fst (load_acceptor t ~group ~pos:(pos - 1))).Acceptor.vote with
  | Some (pb, pe) -> Ballot.equal pb ballot && Txn.equal_entry pe prev
  | None -> false

let rec handle_accept t ~group ~pos ~ballot ~entry ~sequenced =
  let refused =
    match sequenced with
    | None -> false
    | Some prev -> not (sequenced_ok t ~group ~pos ~ballot ~prev)
  in
  if refused then
    let state, _ = load_acceptor t ~group ~pos in
    Messages.Accept_reply { ok = false; next_bal = state.Acceptor.next_bal }
  else
    let state, nb = load_acceptor t ~group ~pos in
    let state', ok = Acceptor.on_accept state ballot entry in
    if not ok then Messages.Accept_reply { ok = false; next_bal = state.next_bal }
    else if save_acceptor t ~group ~pos ~expected_nb:nb state' then
      Messages.Accept_reply { ok = true; next_bal = state'.next_bal }
    else handle_accept t ~group ~pos ~ballot ~entry ~sequenced

(* ------------------------------------------------------------------ *)
(* Log catch-up (§4.1 Fault Tolerance and Recovery).                   *)

(* Catch-up past a compaction point: the entries cannot be learned through
   Paxos any more (peers discarded them and their acceptor state), so fetch
   a peer's applied data state instead. *)
let fetch_snapshot t ~group ~at_least =
  let peers = List.filter (fun d -> d <> t.dc) t.env.Proposer.dcs in
  let rec try_peers = function
    | [] -> false
    | peer :: rest -> (
        match
          Rpc.call t.env.Proposer.rpc ~src:t.dc ~dst:peer
            ~timeout:t.config.Config.rpc_timeout
            (Messages.Get_snapshot { group })
        with
        | Some (Messages.Snapshot_reply { applied; rows }) when applied >= at_least ->
            Wal.install_snapshot t.wal ~group ~applied rows;
            t.snapshots <- t.snapshots + 1;
            Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
              ~category:"snapshot"
              "installed snapshot from dc%d (applied=%d, %d rows)" peer applied
              (List.length rows);
            true
        | _ -> try_peers rest)
  in
  try_peers peers

let ensure_applied t ~group ~upto =
  let rec go attempts =
    match Wal.apply t.wal ~group ~upto with
    | Ok () -> Ok ()
    | Error (`Gap pos) ->
        if attempts <= 0 then Error pos
        else (
          match Proposer.learn t.env ~group ~pos with
          | Some entry ->
              t.learns <- t.learns + 1;
              Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
                ~category:"learn" "learned entry for pos %d" pos;
              Wal.append t.wal ~group ~pos entry;
              go attempts
          | None ->
              (* Unlearnable: possibly compacted away everywhere. *)
              if fetch_snapshot t ~group ~at_least:pos then go (attempts - 1)
              else Error pos)
  in
  go 3

(* ------------------------------------------------------------------ *)
(* Leadership of the next log position (§4.1 optimization).            *)

let leader_of_position t ~group ~pos =
  if pos < 1 then None
  else
    match Wal.entry t.wal ~group ~pos with
    | Some (first :: _) -> Some first.Txn.origin
    | Some [] | None -> None

(* The claim registry is protocol-critical state, not a cache: the fast
   path is only safe if at most one value is ever proposed at round 0 of
   a position, and that uniqueness rests entirely on the registrar
   granting [first] once. (The registrar's identity is view-consistent —
   every claimant derives it from the decided entry at [pos - 1] — so a
   durable first-wins register here is sufficient.) Keeping it in a
   volatile table would let a service restart re-grant a claim and allow
   two rival round-0 votes, which ballot order cannot arbitrate. *)
let handle_claim t ~group ~pos ~claimant =
  let key = claim_key t ~group ~pos in
  let owner () =
    match Store.read t.store ~key () with
    | Some (_, attrs) -> Row.attribute attrs "owner"
    | None -> None
  in
  match owner () with
  | Some winner ->
      (* A replayed claim from the registered owner (duplicated link or
         client retry) re-reads the durable register; the answer is the
         original grant, never a second one. *)
      if String.equal winner claimant then t.dup_claims <- t.dup_claims + 1;
      Messages.Claim_reply { first = String.equal winner claimant }
  | None ->
      if
        Store.check_and_write t.store ~key ~test_attribute:"owner"
          ~test_value:None
          [ ("owner", claimant) ]
      then begin
        (* The claim is a durable first-wins register (see above): a grant
           lost at a crash boundary could be re-granted to a rival. *)
        Store.sync t.store;
        Messages.Claim_reply { first = true }
      end
      else Messages.Claim_reply { first = owner () = Some claimant }

(* ------------------------------------------------------------------ *)
(* Long-term-leader transaction manager (§7–§8 future work).            *)

(* Commit decisions for a group are serialized: the manager orders
   transactions, so two concurrent submissions must not race for the same
   log position. *)
let submit_lock t ~group =
  match Hashtbl.find_opt t.submit_locks group with
  | Some lock -> lock
  | None ->
      let lock =
        Mdds_sim.Semaphore.create (Mdds_net.Rpc.engine t.env.Proposer.rpc) 1
      in
      Hashtbl.replace t.submit_locks group lock;
      lock

(* ------------------------------------------------------------------ *)
(* Multi-shot atomic commit, manager side (PROTOCOL.md §10): the in-doubt
   table, admission blocking, and resolver arming. All state here is
   volatile and re-derived from the log's marker records ({!Twopc}) —
   the per-group Paxos log is the only durable truth the protocol has. *)

let indoubt_table t ~group =
  match Hashtbl.find_opt t.twopc group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.twopc group tbl;
      tbl

(* Forward reference: the resolver ladder needs [handle_submit] (defined
   below) to drive decision/outcome records through Paxos, while the
   scan below must arm resolvers. Tied together after [handle_submit]. *)
let watch_2pc_cell : (t -> group:string -> string -> unit) ref =
  ref (fun _ ~group:_ _ -> ())

let watch_2pc t ~group txid = !watch_2pc_cell t ~group txid

let scanned_2pc t ~group =
  match Hashtbl.find_opt t.twopc_scanned group with
  | Some p -> p
  | None -> Wal.compacted_position t.wal ~group

let note_record_2pc t ~group ~pos (r : Txn.record) =
  match Twopc.classify r with
  | Twopc.Prepare { txid; payload } ->
      let tbl = indoubt_table t ~group in
      if not (Hashtbl.mem tbl txid) then begin
        Hashtbl.replace tbl txid
          {
            ind_footprint = Txn.read_keys r;
            ind_payload = payload;
            ind_pos = pos;
          };
        t.twopc_prepares <- t.twopc_prepares + 1;
        watch_2pc t ~group txid
      end
  | Twopc.Outcome { txid; _ } -> Hashtbl.remove (indoubt_table t ~group) txid
  | Twopc.Decision _ | Twopc.Plain -> ()

(* Incremental, contiguous scan of the group's log for 2PC markers: the
   in-doubt table is exactly "prepares without a later outcome" over the
   scanned prefix. Deliberately cheap when the feature is idle — each
   entry is classified once per service lifetime, and classification is
   one prefix test per record. *)
let scan_2pc t ~group =
  let scanned =
    max (scanned_2pc t ~group) (Wal.compacted_position t.wal ~group)
  in
  let last = Wal.last_position t.wal ~group in
  let rec go pos =
    if pos > last then pos - 1
    else
      match Wal.entry t.wal ~group ~pos with
      | None -> pos - 1 (* gap: resume once it is learned *)
      | Some entry ->
          List.iter (note_record_2pc t ~group ~pos) entry;
          go (pos + 1)
  in
  Hashtbl.replace t.twopc_scanned group (go (scanned + 1))

let footprint_conflict ~footprint (r : Txn.record) =
  let mem key = Array.exists (String.equal key) footprint in
  Array.exists mem (Txn.read_keys r)
  || List.exists (fun (w : Txn.write) -> mem w.Txn.key) r.Txn.writes

(* Admission blocking: a prepared-but-undecided footprint excludes every
   conflicting record until the transaction's outcome is logged —
   cross-group 1SR rests on the (prepare, outcome] window being
   exclusive in each participant group. The predicate is conservative
   (any footprint intersection blocks); outcome/decision records are
   exempt, since they are what resolves the window. *)
let blocked_in tbl ~own record =
  Hashtbl.fold
    (fun txid ind acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if String.equal txid own then None
          else if footprint_conflict ~footprint:ind.ind_footprint record then
            Some txid
          else None)
    tbl None

let blocked_by_2pc t ~group (record : Txn.record) =
  match Hashtbl.find_opt t.twopc group with
  | None -> None
  | Some tbl when Hashtbl.length tbl = 0 -> None
  | Some tbl -> (
      match Twopc.classify record with
      | Twopc.Outcome _ | Twopc.Decision _ -> None
      | Twopc.Prepare { txid = own; _ } -> blocked_in tbl ~own record
      | Twopc.Plain -> blocked_in tbl ~own:"" record)

(* Prepares sitting in not-yet-scanned overhang entries (decided or
   in-flight positions above the applied watermark, throughput mode)
   block the same way; outcomes in the overhang release them. *)
let blocked_by_overhang (record : Txn.record) overhang =
  match Twopc.classify record with
  | Twopc.Outcome _ | Twopc.Decision _ -> None
  | Twopc.Prepare _ | Twopc.Plain ->
      let own =
        match Twopc.classify record with
        | Twopc.Prepare { txid; _ } -> txid
        | _ -> ""
      in
      let resolved =
        List.concat_map
          (fun (_, entry) ->
            List.filter_map
              (fun r ->
                match Twopc.classify r with
                | Twopc.Outcome { txid; _ } -> Some txid
                | _ -> None)
              entry)
          overhang
      in
      List.fold_left
        (fun acc (_, entry) ->
          match acc with
          | Some _ -> acc
          | None ->
              List.fold_left
                (fun acc r ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      match Twopc.classify r with
                      | Twopc.Prepare { txid; _ }
                        when (not (String.equal txid own))
                             && (not (List.mem txid resolved))
                             && footprint_conflict
                                  ~footprint:(Txn.read_keys r) record ->
                          Some txid
                      | _ -> None))
                None entry)
        None overhang

let arm_2pc_trap t f = t.trap_2pc <- Some f

let fire_2pc_trap t entry =
  match t.trap_2pc with
  | None -> ()
  | Some f ->
      if
        List.exists
          (fun r ->
            match Twopc.classify r with Twopc.Prepare _ -> true | _ -> false)
          entry
      then begin
        t.trap_2pc <- None;
        Mdds_sim.Engine.spawn (Rpc.engine t.env.Proposer.rpc) f
      end

let handle_submit_single t ~group (record : Txn.record) =
  Mdds_sim.Semaphore.with_permit (submit_lock t ~group) (fun () ->
      let rec attempt tries =
        if tries <= 0 then Messages.Submit_reply { result = Messages.No_quorum }
        else
          (* Bring the manager's view of the log up to date first. *)
          let last = Wal.last_position t.wal ~group in
          match ensure_applied t ~group ~upto:last with
          | Error _ -> Messages.Submit_reply { result = Messages.No_quorum }
          | Ok () -> (
              (* A duplicated or replayed submission (duplicating link,
                 client retry) must not be sequenced a second time — the
                 same transaction at two positions is an L2 violation
                 (found by gray-failure chaos seed 2: dup-storm under the
                 leader protocol). The log is the durable record of what
                 was already sequenced: answer from it. A committed record
                 always sits above its read position (positions up to it
                 were decided when it was built), so the scan is short. *)
              let already_at =
                let lo =
                  1
                  + max record.Txn.read_position
                      (Wal.compacted_position t.wal ~group)
                in
                let rec find pos =
                  if pos > last then None
                  else
                    match Wal.entry t.wal ~group ~pos with
                    | Some entry
                      when Txn.mem_entry ~txn_id:record.Txn.txn_id entry ->
                        Some pos
                    | _ -> find (pos + 1)
                in
                find lo
              in
              match already_at with
              | Some pos ->
                  t.dup_submits <- t.dup_submits + 1;
                  Messages.Submit_reply { result = Messages.Accepted_at pos }
              | None ->
              (* Prepared-but-undecided cross-group footprints exclude
                 conflicting admissions (PROTOCOL.md §10). The refusal
                 also re-arms the resolver for the blocking transaction,
                 so a dead coordinator cannot wedge a key range forever. *)
              scan_2pc t ~group;
              (match blocked_by_2pc t ~group record with
              | Some blocker ->
                  watch_2pc t ~group blocker;
                  Messages.Submit_reply { result = Messages.Stale_read }
              | None ->
              (* Fine-grained conflict check against committed state: a
                 read is stale if its key was overwritten after the
                 transaction's read position (the §7 sketch: "check each
                 new transaction against previously committed
                 transactions"). *)
              let stale =
                (* Probe the footprint's deduped read-set array directly:
                   no per-submit List.sort_uniq allocation. *)
                Array.exists
                  (fun key ->
                    match Wal.data_version t.wal ~group ~key ~at:last with
                    | Some version -> version > record.Txn.read_position
                    | None -> false)
                  (Txn.read_keys record)
              in
              if stale then Messages.Submit_reply { result = Messages.Stale_read }
              else
                let pos = last + 1 in
                (* Multi-Paxos steady state: having decided the previous
                   position, the manager is the position's leader and
                   skips the prepare phase; after a failover the first
                   decision pays a full round. *)
                let fast =
                  if Hashtbl.find_opt t.won group = Some last then Some [ record ]
                  else None
                in
                let exposed = ref (fast <> None) in
                let choose votes =
                  let entry =
                    Mdds_paxos.Tally.find_winning votes ~own:[ record ]
                  in
                  if Txn.mem_entry ~txn_id:record.Txn.txn_id entry then
                    exposed := true;
                  Proposer.Propose entry
                in
                let result, _stats =
                  Proposer.run t.env ~group ~pos ?fast ~choose ()
                in
                (match result with
                | Proposer.Decided entry
                  when Txn.mem_entry ~txn_id:record.Txn.txn_id entry ->
                    Hashtbl.replace t.won group pos;
                    (* A decided prepare enters the in-doubt table (and
                       arms its resolver) immediately — the scan would
                       catch it on the next submission, but there may
                       never be one. The whole entry is absorbed so the
                       scan watermark can advance past it without a
                       second pass. *)
                    List.iter (note_record_2pc t ~group ~pos) entry;
                    if scanned_2pc t ~group = pos - 1 then
                      Hashtbl.replace t.twopc_scanned group pos;
                    Messages.Submit_reply { result = Messages.Accepted_at pos }
                | Proposer.Decided _ | Proposer.Observed _ ->
                    (* Another proposer (a rival manager after a failover,
                       or a learner) took the position: refresh and retry
                       at the next one. *)
                    attempt (tries - 1)
                | Proposer.Unavailable ->
                    (* Gave up; if our accepts went out the transaction may
                       still be completed by someone else. *)
                    if !exposed then
                      Messages.Submit_reply { result = Messages.In_doubt }
                    else Messages.Submit_reply { result = Messages.No_quorum })))
      in
      attempt 5)

(* ------------------------------------------------------------------ *)
(* Throughput mode (DESIGN.md §14): the batched/pipelined submit path.

   One drainer fiber per group owns proposal order. Submissions queue;
   the drainer drains them (fill-or-timeout) into Combine-valid batches,
   one batch per log position, and — in the Multi-Paxos steady state —
   keeps up to [pipeline_depth] positions in flight at once via
   {!Proposer.run_fast}'s sequenced round-0 accepts. A failed round
   stalls the pipeline: every open position is resolved in log order
   through the full protocol before new positions open. Data applies
   always stay in log order behind the WAL watermark regardless of the
   order rounds complete in. *)

let batcher t ~group =
  match Hashtbl.find_opt t.batchers group with
  | Some b -> b
  | None ->
      let b =
        {
          bt_group = group;
          bt_queue = Queue.create ();
          bt_requeue = Queue.create ();
          bt_by_id = Hashtbl.create 32;
          bt_window = [];
          bt_next_pos = 0;
          bt_prev = None;
          bt_running = false;
          bt_wake = None;
          bt_stopped = false;
        }
      in
      Hashtbl.replace t.batchers group b;
      b

let wake_batcher b =
  match b.bt_wake with
  | Some w ->
      b.bt_wake <- None;
      w ()
  | None -> ()

(* Park the drainer until a slot completes or a submission arrives. *)
let wait_batcher b =
  Mdds_sim.Engine.suspend (fun wake -> b.bt_wake <- Some wake)

let resolve_pending b p result =
  if p.p_result = None then begin
    p.p_result <- Some result;
    Hashtbl.remove b.bt_by_id p.p_record.Txn.txn_id;
    let wakers = List.rev p.p_wakers in
    p.p_wakers <- [];
    List.iter (fun w -> w ()) wakers
  end

(* The submit handler's side: block until some drainer/slot fiber
   resolves the outcome. The client's own timeout bounds the wait. *)
let await_pending p =
  (match p.p_result with
  | None -> Mdds_sim.Engine.suspend (fun wake -> p.p_wakers <- wake :: p.p_wakers)
  | Some _ -> ());
  match p.p_result with
  | Some result -> Messages.Submit_reply { result }
  | None -> Messages.Submit_reply { result = Messages.No_quorum }

(* Outcomes for a decided position: members commit at it; the rest lost
   the position and go back to the queue, where the next admission pass
   decides between retry and a truthful Stale_read. *)
let deliver_decided b ~pos entry pendings =
  List.iter
    (fun p ->
      if Txn.mem_entry ~txn_id:p.p_record.Txn.txn_id entry then
        resolve_pending b p (Messages.Accepted_at pos)
      else begin
        p.p_tries <- p.p_tries + 1;
        if p.p_tries >= 5 then resolve_pending b p Messages.No_quorum
        else Queue.push p b.bt_requeue
      end)
    pendings

(* Admission: drain the queues (lost-position retries first) into the next
   batch. Replayed submissions are answered from the log (the PR-6 dedup
   rule); stale reads are checked against the applied state *plus* every
   not-yet-applied entry above the watermark — in-flight window slots
   included, since their writes are ahead of any position this batch can
   get; and the combination invariant (no record reads a key an earlier
   batch member writes) is enforced with the PR-5 write-union. A record
   failing only the combination rule is deferred to a later position, not
   aborted — exactly the outcome it would get submitting alone. *)
let build_batch (t : t) b =
  let group = b.bt_group in
  let wal_last = Wal.last_position t.wal ~group in
  let watermark = Wal.apply_available t.wal ~group in
  scan_2pc t ~group;
  let overhang =
    let rec collect pos acc =
      if pos > wal_last then acc
      else
        collect (pos + 1)
          (match Wal.entry t.wal ~group ~pos with
          | Some e -> (pos, e) :: acc
          | None -> acc)
    in
    collect (watermark + 1)
      (List.map (fun s -> (s.sl_pos, s.sl_entry)) b.bt_window)
  in
  let union = Txn.Write_union.create () in
  let batch = ref [] in
  let size = ref 0 in
  let deferred = ref [] in
  let take () =
    match Queue.take_opt b.bt_requeue with
    | Some p -> Some p
    | None -> Queue.take_opt b.bt_queue
  in
  let exception Full in
  (try
     let rec admit () =
       if !size >= t.config.Config.batch_max then raise Full;
       match take () with
       | None -> ()
       | Some p ->
           let r = p.p_record in
           let already_at =
             let lo =
               1 + max r.Txn.read_position (Wal.compacted_position t.wal ~group)
             in
             let rec find pos =
               if pos > wal_last then None
               else
                 match Wal.entry t.wal ~group ~pos with
                 | Some entry when Txn.mem_entry ~txn_id:r.Txn.txn_id entry ->
                     Some pos
                 | _ -> find (pos + 1)
             in
             find lo
           in
           (match already_at with
           | Some pos ->
               t.dup_submits <- t.dup_submits + 1;
               resolve_pending b p (Messages.Accepted_at pos)
           | None ->
               let blocked =
                 match blocked_by_2pc t ~group r with
                 | Some blocker ->
                     watch_2pc t ~group blocker;
                     true
                 | None -> blocked_by_overhang r overhang <> None
               in
               let stale =
                 blocked
                 || Array.exists
                      (fun key ->
                        match
                          Wal.data_version t.wal ~group ~key ~at:watermark
                        with
                        | Some version -> version > r.Txn.read_position
                        | None -> false)
                      (Txn.read_keys r)
                 || List.exists
                      (fun (pos, entry) ->
                        pos > r.Txn.read_position
                        && List.exists (fun s -> Txn.reads_from r s) entry)
                      overhang
               in
               if stale then resolve_pending b p Messages.Stale_read
               else if Txn.Write_union.reads_overlap union r then
                 deferred := p :: !deferred
               else begin
                 Txn.Write_union.add union r;
                 batch := p :: !batch;
                 incr size
               end);
           admit ()
     in
     admit ()
   with Full -> ());
  List.iter (fun p -> Queue.push p b.bt_requeue) (List.rev !deferred);
  List.rev !batch

(* No leadership streak: the single-position path, synchronous in the
   drainer, with the batch as the proposed value — the same full protocol
   (and the same exposure accounting) as the unbatched manager. *)
let propose_sync (t : t) b ~pos batch =
  let group = b.bt_group in
  let entry = List.map (fun p -> p.p_record) batch in
  let choose votes =
    let winning = Mdds_paxos.Tally.find_winning votes ~own:entry in
    List.iter
      (fun p ->
        if Txn.mem_entry ~txn_id:p.p_record.Txn.txn_id winning then
          p.p_exposed <- true)
      batch;
    Proposer.Propose winning
  in
  match Proposer.run t.env ~group ~pos ~choose () with
  | Proposer.Decided entry', _ ->
      if Txn.equal_entry entry' entry then Hashtbl.replace t.won group pos;
      deliver_decided b ~pos entry' batch
  | Proposer.Observed entry', _ -> deliver_decided b ~pos entry' batch
  | Proposer.Unavailable, _ ->
      List.iter
        (fun p ->
          resolve_pending b p
            (if p.p_exposed then Messages.In_doubt else Messages.No_quorum))
        batch

(* A pipelined round failed (refused sequenced accept, timeout, or a rival
   bumped nextBal): stall the pipeline and resolve every open position in
   log order through the full protocol. Each resolution adopts whatever
   the prepare quorum reveals — except our own sequenced round-0 vote once
   the prefix has diverged. Such a vote is provably unchosen: a sequenced
   round-0 quorum at the position would need a round-0 quorum at the
   previous position for the same leader, which the divergence rules out
   (any rival decision's prepare quorum intersects every round-0 quorum
   and would have adopted our value). Proposing it verbatim would commit
   transactions whose stale-read checks ran against a prefix that never
   committed, so we propose a re-validated subset instead — possibly the
   empty no-op entry — at the higher ballot. This is the one deliberate
   deviation from adopt-the-highest-vote, justified by the sequenced
   invariant (PROTOCOL.md, "Batching and pipelining"). *)
let resolve_window (t : t) b =
  t.pipeline_stalls <- t.pipeline_stalls + 1;
  let group = b.bt_group in
  let slots = List.sort (fun a b -> Int.compare a.sl_pos b.sl_pos) b.bt_window in
  b.bt_window <- [];
  let prefix_ok = ref true in
  let unavailable = ref false in
  List.iter
    (fun slot ->
      match slot.sl_state with
      | Sl_won -> () (* completed concurrently; outcomes already delivered *)
      | Sl_pending | Sl_failed ->
          if !unavailable then
            (* No quorum below this position: everything above is exposed
               and unknowable, like any post-accept give-up. *)
            List.iter
              (fun p -> resolve_pending b p Messages.In_doubt)
              slot.sl_pendings
          else begin
            ignore (ensure_applied t ~group ~upto:(slot.sl_pos - 1));
            let fast_ballot = Ballot.fast ~proposer:t.dc in
            let revalidated () =
              let watermark = Wal.apply_available t.wal ~group in
              let union = Txn.Write_union.create () in
              List.filter
                (fun (r : Txn.record) ->
                  let stale =
                    Array.exists
                      (fun key ->
                        match
                          Wal.data_version t.wal ~group ~key ~at:watermark
                        with
                        | Some version -> version > r.Txn.read_position
                        | None -> false)
                      (Txn.read_keys r)
                  in
                  let ok =
                    (not stale) && not (Txn.Write_union.reads_overlap union r)
                  in
                  if ok then Txn.Write_union.add union r;
                  ok)
                slot.sl_entry
            in
            let choose votes =
              let highest =
                List.fold_left
                  (fun acc (r : Txn.entry Mdds_paxos.Tally.response) ->
                    match (acc, r.Mdds_paxos.Tally.vote) with
                    | None, v -> v
                    | Some _, None -> acc
                    | Some (bb, _), (Some (bv, _) as v) ->
                        if Ballot.compare bv bb > 0 then v else acc)
                  None votes
              in
              match highest with
              | Some (bb, e)
                when not
                       (Ballot.equal bb fast_ballot
                       && Txn.equal_entry e slot.sl_entry) ->
                  Proposer.Propose e
              | _ ->
                  if !prefix_ok then Proposer.Propose slot.sl_entry
                  else Proposer.Propose (revalidated ())
            in
            match Proposer.run t.env ~group ~pos:slot.sl_pos ~choose () with
            | Proposer.Decided entry, _ | Proposer.Observed entry, _ ->
                if Txn.equal_entry entry slot.sl_entry then
                  Hashtbl.replace t.won group slot.sl_pos
                else prefix_ok := false;
                deliver_decided b ~pos:slot.sl_pos entry slot.sl_pendings
            | Proposer.Unavailable, _ ->
                unavailable := true;
                List.iter
                  (fun p -> resolve_pending b p Messages.In_doubt)
                  slot.sl_pendings
          end)
    slots

let rec drain (t : t) b =
  if b.bt_stopped then b.bt_running <- false
  else begin
    (* Completed slots leave the window as soon as their outcome is
       delivered; their entries are in the WAL (synchronous local apply in
       [run_fast]) and keep feeding admission's overhang checks. *)
    b.bt_window <- List.filter (fun s -> s.sl_state <> Sl_won) b.bt_window;
    if List.exists (fun s -> s.sl_state = Sl_failed) b.bt_window then begin
      resolve_window t b;
      drain t b
    end
    else begin
      let inflight = List.length b.bt_window in
      let queued = Queue.length b.bt_queue + Queue.length b.bt_requeue in
      if queued = 0 && inflight = 0 then b.bt_running <- false
      else if queued = 0 || inflight >= t.config.Config.pipeline_depth then begin
        wait_batcher b;
        drain t b
      end
      else begin
        (* Two sealing disciplines share the drainer. Batch mode
           (fill-or-timeout): wait briefly for a fuller batch. Epoch mode
           (PROTOCOL.md §11): hold the epoch open for the full
           [epoch_interval] — submissions arriving during the sleep join
           it — and seal early only when a whole fill bound ([batch_max])
           is already waiting, so one consensus round amortizes over
           everything admitted in the window. *)
        (if Config.epoch_mode t.config then begin
           if queued < t.config.Config.batch_max then
             Mdds_sim.Engine.sleep t.config.Config.epoch_interval
         end
         else if
           t.config.Config.batch_max > 1
           && queued < t.config.Config.batch_max
           && t.config.Config.batch_fill > 0.
         then Mdds_sim.Engine.sleep t.config.Config.batch_fill);
        (* A restart during the fill sleep orphaned this batcher: the
           post-restart batcher owns the group's positions now, so one
           more launch from the pre-restart queues would race it at
           overlapping positions with the same round-0 ballot. Bail out
           (the loop head below observes bt_stopped and exits). *)
        if not b.bt_stopped then launch t b;
        drain t b
      end
    end
  end

and launch (t : t) b =
  let group = b.bt_group in
  if b.bt_stopped then ()
  else begin
  (* Slots may have completed (or failed) during the fill wait: re-settle
     the window first. A failure means resolution must run before any new
     position opens — launching over an unresolved gap through the full
     protocol would decide a position whose admission checks assumed a
     prefix that may never commit. *)
  b.bt_window <- List.filter (fun s -> s.sl_state <> Sl_won) b.bt_window;
  if List.exists (fun s -> s.sl_state = Sl_failed) b.bt_window then ()
  else begin
    (* Only catch up through the learner when nothing of ours is in
       flight — learning one of our own open positions would race this
       manager against itself (a round-1 prepare killing its own
       round-0 accepts). *)
    if b.bt_window = [] then
      ignore (ensure_applied t ~group ~upto:(Wal.last_position t.wal ~group));
    let batch = build_batch t b in
    if batch <> [] then begin
      let entry = List.map (fun p -> p.p_record) batch in
      assert (Txn.valid_combination entry);
      let pos =
        if b.bt_window = [] then Wal.last_position t.wal ~group + 1
        else b.bt_next_pos
      in
      b.bt_next_pos <- pos + 1;
      t.batches <- t.batches + 1;
      t.batched_txns <- t.batched_txns + List.length entry;
      if Config.epoch_mode t.config then begin
        t.epochs_sealed <- t.epochs_sealed + 1;
        t.epoch_txns <- t.epoch_txns + List.length entry
      end;
      (* The window holds only Sl_pending slots here, so: non-empty window
         ⇒ pipelined sequenced round; empty window ⇒ round-0 only on the
         Multi-Paxos streak, else the synchronous single-position path.
         A sequenced accept carries the entry launched at [pos - 1]
         (tracked in [bt_prev] — the predecessor's slot may already have
         completed and left the window) so acceptors can require their
         round-0 vote there to match it exactly. *)
      let sequenced = if b.bt_window = [] then None else b.bt_prev in
      assert (b.bt_window = [] || sequenced <> None);
      let streak = Hashtbl.find_opt t.won group = Some (pos - 1) in
      if sequenced <> None || streak then begin
        let slot =
          {
            sl_pos = pos;
            sl_entry = entry;
            sl_pendings = batch;
            sl_state = Sl_pending;
          }
        in
        b.bt_window <- b.bt_window @ [ slot ];
        b.bt_prev <- Some entry;
        if sequenced <> None then t.pipelined_rounds <- t.pipelined_rounds + 1;
        List.iter (fun p -> p.p_exposed <- true) batch;
        Mdds_sim.Engine.spawn (Rpc.engine t.env.Proposer.rpc) (fun () ->
            let ok = Proposer.run_fast t.env ~group ~pos ~sequenced entry in
            (match slot.sl_state with
            | Sl_pending -> slot.sl_state <- (if ok then Sl_won else Sl_failed)
            | Sl_won | Sl_failed -> ());
            if ok && not b.bt_stopped then begin
              (* Out-of-order success is safe to report: a sequenced quorum
                 at this position proves every earlier open position is
                 chosen with this manager's entry (see {!sequenced_ok}). *)
              (match Hashtbl.find_opt t.won group with
              | Some w when w >= pos -> ()
              | _ -> Hashtbl.replace t.won group pos);
              List.iter
                (fun p -> resolve_pending b p (Messages.Accepted_at pos))
                slot.sl_pendings
            end;
            wake_batcher b)
      end
      else propose_sync t b ~pos batch
    end
  end
  end

let handle_submit_batched t ~group (record : Txn.record) =
  let b = batcher t ~group in
  match Hashtbl.find_opt b.bt_by_id record.Txn.txn_id with
  | Some p ->
      (* Duplicate Submit while the original is queued or in flight
         (duplicating link, or a client retrying into the same manager):
         attach as an extra waiter; the one resolution answers both. *)
      t.dup_submits <- t.dup_submits + 1;
      await_pending p
  | None ->
      let p =
        {
          p_record = record;
          p_result = None;
          p_wakers = [];
          p_tries = 0;
          p_exposed = false;
        }
      in
      Queue.push p b.bt_queue;
      Hashtbl.replace b.bt_by_id record.Txn.txn_id p;
      if not b.bt_running then begin
        b.bt_running <- true;
        Mdds_sim.Engine.spawn (Rpc.engine t.env.Proposer.rpc) (fun () ->
            drain t b)
      end
      else wake_batcher b;
      await_pending p

let handle_submit t ~group record =
  let reply =
    if Config.throughput_mode t.config then
      handle_submit_batched t ~group record
    else handle_submit_single t ~group record
  in
  (match reply with
  | Messages.Submit_reply { result = Messages.In_doubt } ->
      t.in_doubt_replies <- t.in_doubt_replies + 1
  | _ -> ());
  reply

(* ------------------------------------------------------------------ *)
(* In-doubt resolution (PROTOCOL.md §10). A resolver presumes abort for
   an aged prepare — but never silently: it first logs an Abort decision
   through the *coordinator* group's own Paxos log, then reads the
   decision key back. The WAL's write-once rule for 2PC markers means
   whatever decision was logged first (the client's Commit, or any
   resolver's Abort) is the one the read returns, so every resolver and
   the client converge on a single verdict; the outcome records they
   then write to the participant groups all agree. A logged prepare is
   therefore never presumed-aborted unilaterally — abort becomes true by
   being decided in the coordinator's log, exactly like commit. *)

let twopc_grace t = 4.0 *. t.config.Config.rpc_timeout

(* Resolvers stagger by datacenter: one usually settles the transaction
   before the rest wake, and they then find it resolved and log
   nothing. *)
let twopc_delay t =
  twopc_grace t +. (float_of_int t.dc *. t.config.Config.rpc_timeout)

let twopc_retry t = 2.0 *. t.config.Config.rpc_timeout
let twopc_attempts = 100

(* Authoritative check: refresh the table from the log first. The scan,
   not the table, is the truth — a late duplicated apply may have left a
   stale entry (see the Apply handler). *)
let still_indoubt_2pc t ~group txid =
  ignore (Wal.apply_available t.wal ~group);
  scan_2pc t ~group;
  match Hashtbl.find_opt t.twopc group with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl txid

let resolve_2pc t ~group txid ind =
  let coord = ind.ind_payload.Twopc.coordinator in
  let tag = "dc" ^ string_of_int t.dc in
  let drec =
    Twopc.decision_record ~txid ~tag ~origin:t.dc ~verdict:Twopc.abort_verdict
  in
  (* Any service can drive a record through a group's Paxos log — the
     submit path below is the manager path run in-process, so resolution
     does not depend on reaching a remote manager. *)
  match handle_submit t ~group:coord drec with
  | Messages.Submit_reply { result = Messages.Accepted_at dpos } -> (
      match ensure_applied t ~group:coord ~upto:dpos with
      | Error _ -> false
      | Ok () ->
          let verdict =
            match
              Wal.read_data t.wal ~group:coord ~key:(Twopc.decision_key txid)
                ~at:dpos
            with
            | Some v -> v
            | None -> Twopc.abort_verdict (* unreachable: own marker applied *)
          in
          let orec =
            Twopc.outcome_record ~txid ~tag ~origin:t.dc
              ~prepare_position:ind.ind_pos ~verdict
              ~writes:ind.ind_payload.Twopc.writes
          in
          (match handle_submit t ~group orec with
          | Messages.Submit_reply { result = Messages.Accepted_at _ } ->
              Hashtbl.remove (indoubt_table t ~group) txid;
              t.twopc_resolved <- t.twopc_resolved + 1;
              Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
                ~category:"2pc" "resolved in-doubt %s in %s: %s" txid group
                verdict;
              true
          | _ -> false))
  | _ -> false

let spawn_watch_2pc t ~group txid =
  let key = (group, txid) in
  if not (Hashtbl.mem t.twopc_resolving key) then begin
    Hashtbl.add t.twopc_resolving key ();
    let epoch = t.twopc_epoch in
    Mdds_sim.Engine.spawn (Rpc.engine t.env.Proposer.rpc) (fun () ->
        Fun.protect
          ~finally:(fun () -> Hashtbl.remove t.twopc_resolving key)
          (fun () ->
            Mdds_sim.Engine.sleep (twopc_delay t);
            (* Bounded, RNG-free ladder: the run quiesces even if the
               transaction can never be resolved (permanent partition). *)
            let rec loop attempts =
              if attempts > 0 && t.twopc_epoch = epoch then
                match still_indoubt_2pc t ~group txid with
                | None -> ()
                | Some ind ->
                    if not (resolve_2pc t ~group txid ind) then begin
                      Mdds_sim.Engine.sleep (twopc_retry t);
                      loop (attempts - 1)
                    end
            in
            loop twopc_attempts))
  end

let () = watch_2pc_cell := spawn_watch_2pc

(* ------------------------------------------------------------------ *)

(* A compacted position is by definition decided and applied; its acceptor
   state is gone. Answering Paxos messages for it from a blank state could
   let a stale proposer get a *different* value accepted at a position the
   rest of the system already executed — an (R1) violation. Such instances
   are closed: the stale proposer is refused and gives up (its client
   aborts or retries at a fresh position). *)
let compacted t ~group ~pos = pos <= Wal.compacted_position t.wal ~group

(* ------------------------------------------------------------------ *)
(* Quarantine of storage-damaged acceptor positions.                    *)

let suspect_table t ~group =
  match Hashtbl.find_opt t.suspect group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.suspect group tbl;
      tbl

(* The quarantine set survives restarts in its own durable row — the
   scrub that detects damage also removes its evidence, so a second
   restart could not re-detect it from the paxos rows alone. *)
let quarantine_key group = "recover/" ^ group

let load_quarantine t ~group =
  match Store.read t.store ~key:(quarantine_key group) () with
  | None -> []
  | Some (_, attrs) -> List.filter_map (fun (k, _) -> int_of_string_opt k) attrs

let save_quarantine t ~group tbl =
  let key = quarantine_key group in
  if Hashtbl.length tbl = 0 then Store.delete t.store ~key
  else
    ignore
      (Store.write t.store ~key
         (Hashtbl.fold (fun pos () acc -> (string_of_int pos, "1") :: acc) tbl []));
  Store.sync t.store

(* True while the position must still be refused: its durable promise or
   claim may understate what this acceptor once said (a crash damaged the
   row), so answering Paxos from the reverted state could cast a second,
   conflicting vote. The position is re-entered only once its decided
   value is known — re-learned from peers, or checkpointed past — via the
   recovery ladder; the service never invents a value locally. *)
let quarantined t ~group ~pos =
  match Hashtbl.find_opt t.suspect group with
  | None -> false
  | Some tbl ->
      if not (Hashtbl.mem tbl pos) then false
      else
        let resolved () =
          Wal.entry t.wal ~group ~pos <> None
          || pos <= Wal.compacted_position t.wal ~group
        in
        let release () =
          Hashtbl.remove tbl pos;
          t.relearned <- t.relearned + 1;
          save_quarantine t ~group tbl;
          Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
            ~category:"recover" "re-entered quarantined position %d" pos;
          false
        in
        if resolved () then release ()
        else if Hashtbl.mem t.relearning (group, pos) then
          (* A ladder for this position is already in flight (this message
             may well be that ladder's own prepare echoed back). Refuse
             now; the running ladder will release the position. *)
          true
        else begin
          Hashtbl.add t.relearning (group, pos) ();
          Fun.protect
            ~finally:(fun () -> Hashtbl.remove t.relearning (group, pos))
            (fun () ->
              match Proposer.learn t.env ~group ~pos with
              | Some entry ->
                  t.learns <- t.learns + 1;
                  Wal.append t.wal ~group ~pos entry
              | None ->
                  (* Unlearnable: possibly compacted away everywhere. *)
                  ignore (fetch_snapshot t ~group ~at_least:pos));
          if resolved () then release () else true
        end

let handle t ~src:_ request =
  match request with
  | Messages.Get_read_position { group } ->
      let position = Wal.last_position t.wal ~group in
      Messages.Read_position
        { position; leader = leader_of_position t ~group ~pos:position }
  | Messages.Read { group; key; position } -> (
      match ensure_applied t ~group ~upto:position with
      | Ok () -> Messages.Value { value = Wal.read_data t.wal ~group ~key ~at:position }
      | Error pos ->
          Messages.Failed (Printf.sprintf "cannot learn log position %d" pos))
  | Messages.Prepare { group; pos; _ } when compacted t ~group ~pos ->
      Messages.Failed (Printf.sprintf "position %d compacted" pos)
  | Messages.Accept { group; pos; _ } when compacted t ~group ~pos ->
      Messages.Failed (Printf.sprintf "position %d compacted" pos)
  | Messages.Prepare { group; pos; _ } when quarantined t ~group ~pos ->
      Messages.Failed (Printf.sprintf "position %d recovering" pos)
  | Messages.Accept { group; pos; _ } when quarantined t ~group ~pos ->
      Messages.Failed (Printf.sprintf "position %d recovering" pos)
  | Messages.Prepare { group; pos; ballot } -> handle_prepare t ~group ~pos ~ballot
  | Messages.Accept { group; pos; ballot; entry; sequenced } ->
      (* The chaos trap fires on the first prepare marker that crosses
         this service — here, possibly before the entry is decided: the
         rawest point of the prepare→decide window. *)
      fire_2pc_trap t entry;
      handle_accept t ~group ~pos ~ballot ~entry ~sequenced
  | Messages.Apply { group; pos; entry } ->
      (* An apply at or below the compaction point is stale news: the
         entry's effects are already part of the checkpoint. Above it,
         [Wal.append] is idempotent — a duplicated or replayed apply for
         an already-recorded position is counted and absorbed, never
         applied twice (safety under duplicating links). *)
      if not (compacted t ~group ~pos) then begin
        if Wal.entry t.wal ~group ~pos <> None then
          t.dup_applies <- t.dup_applies + 1;
        Wal.append t.wal ~group ~pos entry;
        fire_2pc_trap t entry;
        (* Every replica tracks in-doubt prepares from the applies it
           sees, so resolution does not depend on the manager that
           admitted them surviving. Out-of-order or duplicated applies
           at or below the scan watermark are already absorbed (the
           scan is the authority; a late prepare must not resurrect a
           resolved transaction). *)
        if pos > scanned_2pc t ~group then
          List.iter (note_record_2pc t ~group ~pos) entry
      end;
      Messages.Applied
  | Messages.Claim_leadership { group; pos; _ } when compacted t ~group ~pos ->
      (* Compaction deleted this position's claim row, and the claim is a
         first-wins register that must never be granted twice (see
         [handle_claim]): answering from the now-blank row would re-grant
         round-0 rights at a decided position. A recovered replica whose
         log ends before the cluster's compaction point would then cast a
         unilateral round-0 self-vote whose ballot (0.dc) can outrank the
         original fast-path vote (0.dc') in a later prepare tally — and a
         prepare quorum that misses the surviving original voter would
         adopt the new value over the decided one (R1 violation; found by
         chaos seed 21: crash + compact). Refused, the claimant falls back
         to the full protocol, whose prepare quorum must intersect the
         original accept quorum in a non-compacted voter. *)
      Messages.Failed (Printf.sprintf "position %d compacted" pos)
  | Messages.Claim_leadership { group; pos; _ } when quarantined t ~group ~pos
    ->
      Messages.Failed (Printf.sprintf "position %d recovering" pos)
  | Messages.Claim_leadership { group; pos; claimant } ->
      handle_claim t ~group ~pos ~claimant
  | Messages.Submit { group; record } -> handle_submit t ~group record
  | Messages.Get_snapshot { group } ->
      let applied, rows = Wal.snapshot t.wal ~group in
      Messages.Snapshot_reply { applied; rows }

(* Groups present in the durable store, recovered from the row-key layout
   (restart cannot trust any volatile group list). *)
let durable_groups t =
  let groups = Hashtbl.create 8 in
  let note key prefix =
    if String.starts_with ~prefix key then begin
      let rest =
        String.sub key (String.length prefix)
          (String.length key - String.length prefix)
      in
      let group =
        match String.index_opt rest '/' with
        | Some i -> String.sub rest 0 i
        | None -> rest
      in
      if group <> "" then Hashtbl.replace groups group ()
    end
  in
  List.iter
    (fun key ->
      List.iter (note key)
        [ "logmeta/"; "log/"; "data/"; "paxos/"; "claim/"; "recover/" ])
    (Store.keys t.store);
  Hashtbl.fold (fun g () acc -> g :: acc) groups [] |> List.sort String.compare

(* Scrub the group's Paxos and claim rows; positions whose rows held
   checksum-invalid versions are the damage set — their durable state
   reverted to an older promise/grant and must not be voted from. *)
let recover_acceptors t ~group =
  let keys = keys_of t ~group in
  let dropped = ref 0 in
  let damaged = ref [] in
  let scan prefix key =
    if String.starts_with ~prefix key then begin
      let n = Store.scrub t.store ~key in
      if n > 0 then begin
        dropped := !dropped + n;
        match
          int_of_string_opt
            (String.sub key (String.length prefix)
               (String.length key - String.length prefix))
        with
        | Some pos -> damaged := pos :: !damaged
        | None -> ()
      end
    end
  in
  List.iter
    (fun key ->
      scan keys.paxos_prefix key;
      scan keys.claim_prefix key)
    (Store.keys t.store);
  (!dropped, List.sort_uniq Int.compare !damaged)

(* Restart the service processes of this datacenter: volatile state (the
   leadership-claim table, the manager's winning streak, submission locks,
   and the decoded WAL/acceptor caches) is lost; everything durable lives
   in the key-value store and survives — in particular Paxos promises and
   votes, which is why Algorithm 1 keeps them there. The caches are
   rebuilt lazily from the durable rows, which the chaos coherence oracle
   exercises.

   Before serving, the crash-consistency scan of PROTOCOL.md §7 runs for
   every durable group: torn (checksum-invalid) versions are scrubbed,
   the WAL re-derives its watermarks and lazily-applied data from the
   surviving log ({!Mdds_wal.Wal.recover}), and positions whose acceptor
   or claim rows were damaged are quarantined — re-entered only after
   re-learning from peers, never re-voted from the reverted state. *)
let restart t =
  Hashtbl.reset t.won;
  Hashtbl.reset t.submit_locks;
  Hashtbl.reset t.acceptors;
  Hashtbl.reset t.suspect;
  Hashtbl.reset t.relearning;
  (* 2PC state is volatile and log-derived: drop it, orphan every
     resolver fiber (the epoch bump makes them exit at their next wake),
     and rebuild from the recovered log below. *)
  t.twopc_epoch <- t.twopc_epoch + 1;
  Hashtbl.reset t.twopc;
  Hashtbl.reset t.twopc_scanned;
  Hashtbl.reset t.twopc_resolving;
  t.trap_2pc <- None;
  (* Batchers are volatile: orphan every drainer and resolve every
     pending so the submit-handler fibers blocked in [await_pending]
     unwind instead of staying suspended for the rest of the run. The
     outcome must stay honest: a pending still sitting in the queues was
     never handed to a proposal and gets No_quorum; anything else in
     [bt_by_id] is attached to an in-flight proposal — a pipelined slot,
     or a [propose_sync] batch whose proposer fiber survives the restart
     and may yet drive it to a decision — so only In_doubt is truthful
     (answering No_quorum there was a real L1 violation: the surviving
     fiber committed the batch after the client was told it aborted;
     chaos seed 134, storm + torn-write). Clients treat both as a
     down-manager window (Unknown/retry); decided-but-unreported
     positions are recovered from the durable log like any other
     entry. *)
  Hashtbl.iter
    (fun _ b ->
      b.bt_stopped <- true;
      let queued = Hashtbl.create 16 in
      Queue.iter
        (fun (p : pending) -> Hashtbl.replace queued p.p_record.Txn.txn_id ())
        b.bt_queue;
      Queue.iter
        (fun (p : pending) -> Hashtbl.replace queued p.p_record.Txn.txn_id ())
        b.bt_requeue;
      let orphans = Hashtbl.fold (fun _ p acc -> p :: acc) b.bt_by_id [] in
      List.iter
        (fun p ->
          resolve_pending b p
            (if
               p.p_exposed
               || not (Hashtbl.mem queued p.p_record.Txn.txn_id)
             then Messages.In_doubt
             else Messages.No_quorum))
        orphans;
      wake_batcher b)
    t.batchers;
  Hashtbl.reset t.batchers;
  Wal.invalidate t.wal;
  List.iter
    (fun group ->
      let r = Wal.recover t.wal ~group in
      ignore (Store.scrub t.store ~key:(quarantine_key group));
      let dropped, damaged = recover_acceptors t ~group in
      let repaired = r.Wal.scrubbed + dropped in
      t.scrubbed <- t.scrubbed + repaired;
      (* [reapplied] counts only entries the surviving watermark could not
         vouch for (the replay starts at the last synced applied point), so
         a positive count is genuine crash repair, not routine re-derivation. *)
      if repaired > 0 || r.Wal.truncated <> None || r.Wal.reapplied > 0 then begin
        t.recoveries <- t.recoveries + 1;
        Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
          ~category:"recover"
          "recovery scan for %s: %d torn versions scrubbed, %d entries \
           re-applied%s"
          group repaired r.Wal.reapplied
          (match r.Wal.truncated with
          | None -> ""
          | Some pos -> Printf.sprintf ", log truncated at %d" pos)
      end;
      let carried = load_quarantine t ~group in
      if damaged <> [] || carried <> [] then begin
        let tbl = suspect_table t ~group in
        List.iter (fun pos -> Hashtbl.replace tbl pos ()) damaged;
        List.iter (fun pos -> Hashtbl.replace tbl pos ()) carried;
        save_quarantine t ~group tbl;
        Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
          ~category:"recover" "quarantined %d damaged positions in %s"
          (Hashtbl.length tbl) group
      end;
      (* Rebuild the in-doubt table from the recovered log; the scan
         re-arms a resolver for every prepare still lacking an outcome,
         so restart resolves in-doubt transactions by consulting the
         participant logs — never by inventing or forgetting an
         outcome. *)
      scan_2pc t ~group)
    (durable_groups t);
  Store.sync t.store

let acceptor_state t ~group ~pos = fst (load_acceptor t ~group ~pos)

let snapshots t = t.snapshots

let recovery_stats (t : t) =
  { recoveries = t.recoveries; scrubbed = t.scrubbed; relearned = t.relearned }

(* Checkpoint: discard the applied log prefix together with its Paxos
   acceptor state (a compacted position can never be proposed again, so
   the state is dead weight). The decoded acceptor cache is pruned with
   the rows it mirrors. *)
let compact t ~group ~upto =
  (* Never compact past an in-doubt prepare: the prepare record is what
     a restarted replica rebuilds its in-doubt table from, and what a
     resolver's outcome refers back to. Resolution is quick, so the
     clamp is short-lived. *)
  scan_2pc t ~group;
  let upto =
    Hashtbl.fold
      (fun _ ind acc -> min acc (ind.ind_pos - 1))
      (indoubt_table t ~group) upto
  in
  match Wal.compact t.wal ~group ~upto with
  | Error `Not_applied -> Error `Not_applied
  | Ok () ->
      let acceptors = acceptor_table t ~group in
      for pos = 1 to upto do
        Store.delete t.store ~key:(paxos_key t ~group ~pos);
        Store.delete t.store ~key:(claim_key t ~group ~pos);
        Hashtbl.remove acceptors pos
      done;
      (* The checkpoint's data rows must be durable before the acceptor
         state that could re-derive the prefix is gone for good. *)
      Store.sync t.store;
      Ok ()

(* ------------------------------------------------------------------ *)
(* Cache-coherence oracle: every decoded view this service keeps equals
   a fresh decode of its durable rows. Mutates nothing (checked by the
   chaos engine after each fault event). *)

let equal_vote a b =
  match (a, b) with
  | None, None -> true
  | Some (ba, va), Some (bb, vb) -> Ballot.equal ba bb && Txn.equal_entry va vb
  | _ -> false

let equal_acceptor_state (a : Txn.entry Acceptor.state)
    (b : Txn.entry Acceptor.state) =
  Ballot.equal a.next_bal b.next_bal && equal_vote a.vote b.vote

let acceptor_cache_coherent t ~group =
  (
      match Hashtbl.find_opt t.acceptors group with
      | None -> Ok ()
      | Some tbl ->
          Hashtbl.fold
            (fun pos (cached : acceptor_cached) acc ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let fresh = load_acceptor_fresh t ~group ~pos in
                  if not (equal_acceptor_state cached.acc_state fresh.acc_state)
                  then
                    Error
                      (Printf.sprintf
                         "acceptor/%s/%d: cached state differs from durable \
                          decode"
                         group pos)
                  else if cached.acc_nb <> fresh.acc_nb then
                    Error
                      (Printf.sprintf
                         "acceptor/%s/%d: cached nextBal attribute %s, store %s"
                         group pos
                         (Option.value cached.acc_nb ~default:"<absent>")
                         (Option.value fresh.acc_nb ~default:"<absent>"))
                  else Ok ())
            tbl (Ok ()))

let cache_coherent t ~group =
  match Wal.coherence t.wal ~group with
  | Error _ as e -> e
  | Ok () -> (
      match Wal.durable_coherent t.wal ~group with
      | Error _ as e -> e
      | Ok () -> acceptor_cache_coherent t ~group)

let start ?(storage = Store.Sync_always) ~rpc ~config ~dc ~dcs ~trace () =
  let store = Store.create ~mode:storage () in
  let env =
    Proposer.make_env ~rpc ~config ~dc ~dcs
      ~rng:(Mdds_sim.Rng.split (Mdds_sim.Engine.rng (Rpc.engine rpc)))
      ~trace
  in
  let t =
    {
      dc;
      source = Printf.sprintf "svc.dc%d" dc;
      config;
      store;
      wal = Wal.create store;
      env;
      submit_locks = Hashtbl.create 8;
      won = Hashtbl.create 8;
      acceptors = Hashtbl.create 4;
      group_keys = Hashtbl.create 4;
      suspect = Hashtbl.create 4;
      relearning = Hashtbl.create 4;
      learns = 0;
      snapshots = 0;
      recoveries = 0;
      scrubbed = 0;
      relearned = 0;
      dup_applies = 0;
      dup_claims = 0;
      dup_submits = 0;
      batchers = Hashtbl.create 4;
      batches = 0;
      batched_txns = 0;
      pipelined_rounds = 0;
      pipeline_stalls = 0;
      epochs_sealed = 0;
      epoch_txns = 0;
      twopc = Hashtbl.create 4;
      twopc_scanned = Hashtbl.create 4;
      twopc_resolving = Hashtbl.create 8;
      twopc_epoch = 0;
      trap_2pc = None;
      twopc_prepares = 0;
      twopc_resolved = 0;
      in_doubt_replies = 0;
    }
  in
  Rpc.serve rpc ~node:dc ~processing:config.processing_delay (fun ~src request ->
      handle t ~src request);
  t
