module Store = Mdds_kvstore.Store
module Row = Mdds_kvstore.Row
module Wal = Mdds_wal.Wal
module Txn = Mdds_types.Txn
module Ballot = Mdds_paxos.Ballot
module Acceptor = Mdds_paxos.Acceptor
module Rpc = Mdds_net.Rpc
module Codec = Mdds_codec.Codec

(* Decoded acceptor state as cached per position: the durable row's
   attributes are the truth; [nb] keeps the raw nextBal attribute so the
   next conditional save tests against exactly what the store holds. *)
type acceptor_cached = {
  acc_state : Txn.entry Acceptor.state;
  acc_nb : string option;
}

(* Interned row-key prefixes per group (replaces per-message sprintf). *)
type group_keys = { paxos_prefix : string; claim_prefix : string }

type t = {
  dc : int;
  source : string;  (* "svc.dc<N>", interned for trace calls *)
  config : Config.t;
  store : Store.t;
  wal : Wal.t;
  env : Proposer.env;
  submit_locks : (string, Mdds_sim.Semaphore.t) Hashtbl.t;
  won : (string, int) Hashtbl.t;  (* last position this manager decided *)
  acceptors : (string, (int, acceptor_cached) Hashtbl.t) Hashtbl.t;
      (* Write-through decoded view of the paxos/ rows, per group; dropped
         on restart (volatile) and pruned with compaction. *)
  group_keys : (string, group_keys) Hashtbl.t;
  mutable learns : int;
  mutable snapshots : int;
}

let dc t = t.dc
let store t = t.store
let wal t = t.wal
let learns t = t.learns

let keys_of t ~group =
  match Hashtbl.find_opt t.group_keys group with
  | Some k -> k
  | None ->
      let k =
        {
          paxos_prefix = "paxos/" ^ group ^ "/";
          claim_prefix = "claim/" ^ group ^ "/";
        }
      in
      Hashtbl.replace t.group_keys group k;
      k

let paxos_key t ~group ~pos = (keys_of t ~group).paxos_prefix ^ string_of_int pos
let claim_key t ~group ~pos = (keys_of t ~group).claim_prefix ^ string_of_int pos

(* ------------------------------------------------------------------ *)
(* Acceptor state persistence (Algorithm 1's datastore state).         *)

let vote_codec = Codec.(option (pair Ballot.codec Txn.entry_codec))

let acceptor_table t ~group =
  match Hashtbl.find_opt t.acceptors group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.acceptors group tbl;
      tbl

let decode_acceptor attrs =
  let next_bal =
    match Row.attribute attrs "nb" with
    | None -> Ballot.bottom
    | Some s -> Ballot.of_string s
  in
  let vote =
    match Row.attribute attrs "vote" with
    | None -> None
    | Some s -> Codec.decode_exn vote_codec s
  in
  { acc_state = { Acceptor.next_bal; vote }; acc_nb = Row.attribute attrs "nb" }

let load_acceptor_fresh t ~group ~pos =
  match Store.read t.store ~key:(paxos_key t ~group ~pos) () with
  | None -> { acc_state = Acceptor.initial; acc_nb = None }
  | Some (_, attrs) -> decode_acceptor attrs

let load_acceptor t ~group ~pos =
  let tbl = acceptor_table t ~group in
  match Hashtbl.find_opt tbl pos with
  | Some cached -> (cached.acc_state, cached.acc_nb)
  | None ->
      let cached = load_acceptor_fresh t ~group ~pos in
      Hashtbl.replace tbl pos cached;
      (cached.acc_state, cached.acc_nb)

(* Conditional save keyed on the nextBal attribute, mirroring Algorithm 1
   lines 9 and 18: the write goes through only if nextBal has not changed
   since we read the state. The cache follows the store: updated only when
   the conditional write lands, dropped when it does not (someone else owns
   the row's current value). *)
let save_acceptor t ~group ~pos ~expected_nb (state : Txn.entry Acceptor.state) =
  let nb = Ballot.to_string state.next_bal in
  let attrs = [ ("nb", nb); ("vote", Codec.encode vote_codec state.vote) ] in
  let ok =
    Store.check_and_write t.store ~key:(paxos_key t ~group ~pos)
      ~test_attribute:"nb" ~test_value:expected_nb attrs
  in
  let tbl = acceptor_table t ~group in
  if ok then
    Hashtbl.replace tbl pos { acc_state = state; acc_nb = Some nb }
  else Hashtbl.remove tbl pos;
  ok

let rec handle_prepare t ~group ~pos ~ballot =
  let state, nb = load_acceptor t ~group ~pos in
  let state', reply = Acceptor.on_prepare state ballot in
  match reply with
  | Acceptor.Reject next_bal -> Messages.Prepare_reject { next_bal }
  | Acceptor.Promise vote ->
      if save_acceptor t ~group ~pos ~expected_nb:nb state' then
        Messages.Promise { vote }
      else handle_prepare t ~group ~pos ~ballot (* state changed: retry *)

let rec handle_accept t ~group ~pos ~ballot ~entry =
  let state, nb = load_acceptor t ~group ~pos in
  let state', ok = Acceptor.on_accept state ballot entry in
  if not ok then Messages.Accept_reply { ok = false; next_bal = state.next_bal }
  else if save_acceptor t ~group ~pos ~expected_nb:nb state' then
    Messages.Accept_reply { ok = true; next_bal = state'.next_bal }
  else handle_accept t ~group ~pos ~ballot ~entry

(* ------------------------------------------------------------------ *)
(* Log catch-up (§4.1 Fault Tolerance and Recovery).                   *)

(* Catch-up past a compaction point: the entries cannot be learned through
   Paxos any more (peers discarded them and their acceptor state), so fetch
   a peer's applied data state instead. *)
let fetch_snapshot t ~group ~at_least =
  let peers = List.filter (fun d -> d <> t.dc) t.env.Proposer.dcs in
  let rec try_peers = function
    | [] -> false
    | peer :: rest -> (
        match
          Rpc.call t.env.Proposer.rpc ~src:t.dc ~dst:peer
            ~timeout:t.config.Config.rpc_timeout
            (Messages.Get_snapshot { group })
        with
        | Some (Messages.Snapshot_reply { applied; rows }) when applied >= at_least ->
            Wal.install_snapshot t.wal ~group ~applied rows;
            t.snapshots <- t.snapshots + 1;
            Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
              ~category:"snapshot"
              "installed snapshot from dc%d (applied=%d, %d rows)" peer applied
              (List.length rows);
            true
        | _ -> try_peers rest)
  in
  try_peers peers

let ensure_applied t ~group ~upto =
  let rec go attempts =
    match Wal.apply t.wal ~group ~upto with
    | Ok () -> Ok ()
    | Error (`Gap pos) ->
        if attempts <= 0 then Error pos
        else (
          match Proposer.learn t.env ~group ~pos with
          | Some entry ->
              t.learns <- t.learns + 1;
              Mdds_sim.Trace.record t.env.Proposer.trace ~source:t.source
                ~category:"learn" "learned entry for pos %d" pos;
              Wal.append t.wal ~group ~pos entry;
              go attempts
          | None ->
              (* Unlearnable: possibly compacted away everywhere. *)
              if fetch_snapshot t ~group ~at_least:pos then go (attempts - 1)
              else Error pos)
  in
  go 3

(* ------------------------------------------------------------------ *)
(* Leadership of the next log position (§4.1 optimization).            *)

let leader_of_position t ~group ~pos =
  if pos < 1 then None
  else
    match Wal.entry t.wal ~group ~pos with
    | Some (first :: _) -> Some first.Txn.origin
    | Some [] | None -> None

(* The claim registry is protocol-critical state, not a cache: the fast
   path is only safe if at most one value is ever proposed at round 0 of
   a position, and that uniqueness rests entirely on the registrar
   granting [first] once. (The registrar's identity is view-consistent —
   every claimant derives it from the decided entry at [pos - 1] — so a
   durable first-wins register here is sufficient.) Keeping it in a
   volatile table would let a service restart re-grant a claim and allow
   two rival round-0 votes, which ballot order cannot arbitrate. *)
let handle_claim t ~group ~pos ~claimant =
  let key = claim_key t ~group ~pos in
  let owner () =
    match Store.read t.store ~key () with
    | Some (_, attrs) -> Row.attribute attrs "owner"
    | None -> None
  in
  match owner () with
  | Some winner -> Messages.Claim_reply { first = String.equal winner claimant }
  | None ->
      if
        Store.check_and_write t.store ~key ~test_attribute:"owner"
          ~test_value:None
          [ ("owner", claimant) ]
      then Messages.Claim_reply { first = true }
      else Messages.Claim_reply { first = owner () = Some claimant }

(* ------------------------------------------------------------------ *)
(* Long-term-leader transaction manager (§7–§8 future work).            *)

(* Commit decisions for a group are serialized: the manager orders
   transactions, so two concurrent submissions must not race for the same
   log position. *)
let submit_lock t ~group =
  match Hashtbl.find_opt t.submit_locks group with
  | Some lock -> lock
  | None ->
      let lock =
        Mdds_sim.Semaphore.create (Mdds_net.Rpc.engine t.env.Proposer.rpc) 1
      in
      Hashtbl.replace t.submit_locks group lock;
      lock

let handle_submit t ~group (record : Txn.record) =
  Mdds_sim.Semaphore.with_permit (submit_lock t ~group) (fun () ->
      let rec attempt tries =
        if tries <= 0 then Messages.Submit_reply { result = Messages.No_quorum }
        else
          (* Bring the manager's view of the log up to date first. *)
          let last = Wal.last_position t.wal ~group in
          match ensure_applied t ~group ~upto:last with
          | Error _ -> Messages.Submit_reply { result = Messages.No_quorum }
          | Ok () ->
              (* Fine-grained conflict check against committed state: a
                 read is stale if its key was overwritten after the
                 transaction's read position (the §7 sketch: "check each
                 new transaction against previously committed
                 transactions"). *)
              let stale =
                List.exists
                  (fun key ->
                    match Wal.data_version t.wal ~group ~key ~at:last with
                    | Some version -> version > record.Txn.read_position
                    | None -> false)
                  (Txn.read_set record)
              in
              if stale then Messages.Submit_reply { result = Messages.Stale_read }
              else
                let pos = last + 1 in
                (* Multi-Paxos steady state: having decided the previous
                   position, the manager is the position's leader and
                   skips the prepare phase; after a failover the first
                   decision pays a full round. *)
                let fast =
                  if Hashtbl.find_opt t.won group = Some last then Some [ record ]
                  else None
                in
                let exposed = ref (fast <> None) in
                let choose votes =
                  let entry =
                    Mdds_paxos.Tally.find_winning votes ~own:[ record ]
                  in
                  if Txn.mem_entry ~txn_id:record.Txn.txn_id entry then
                    exposed := true;
                  Proposer.Propose entry
                in
                let result, _stats =
                  Proposer.run t.env ~group ~pos ?fast ~choose ()
                in
                (match result with
                | Proposer.Decided entry
                  when Txn.mem_entry ~txn_id:record.Txn.txn_id entry ->
                    Hashtbl.replace t.won group pos;
                    Messages.Submit_reply { result = Messages.Accepted_at pos }
                | Proposer.Decided _ | Proposer.Observed _ ->
                    (* Another proposer (a rival manager after a failover,
                       or a learner) took the position: refresh and retry
                       at the next one. *)
                    attempt (tries - 1)
                | Proposer.Unavailable ->
                    (* Gave up; if our accepts went out the transaction may
                       still be completed by someone else. *)
                    if !exposed then
                      Messages.Submit_reply { result = Messages.In_doubt }
                    else Messages.Submit_reply { result = Messages.No_quorum })
      in
      attempt 5)

(* ------------------------------------------------------------------ *)

(* A compacted position is by definition decided and applied; its acceptor
   state is gone. Answering Paxos messages for it from a blank state could
   let a stale proposer get a *different* value accepted at a position the
   rest of the system already executed — an (R1) violation. Such instances
   are closed: the stale proposer is refused and gives up (its client
   aborts or retries at a fresh position). *)
let compacted t ~group ~pos = pos <= Wal.compacted_position t.wal ~group

let handle t ~src:_ request =
  match request with
  | Messages.Get_read_position { group } ->
      let position = Wal.last_position t.wal ~group in
      Messages.Read_position
        { position; leader = leader_of_position t ~group ~pos:position }
  | Messages.Read { group; key; position } -> (
      match ensure_applied t ~group ~upto:position with
      | Ok () -> Messages.Value { value = Wal.read_data t.wal ~group ~key ~at:position }
      | Error pos ->
          Messages.Failed (Printf.sprintf "cannot learn log position %d" pos))
  | Messages.Prepare { group; pos; _ } when compacted t ~group ~pos ->
      Messages.Failed (Printf.sprintf "position %d compacted" pos)
  | Messages.Accept { group; pos; _ } when compacted t ~group ~pos ->
      Messages.Failed (Printf.sprintf "position %d compacted" pos)
  | Messages.Prepare { group; pos; ballot } -> handle_prepare t ~group ~pos ~ballot
  | Messages.Accept { group; pos; ballot; entry } ->
      handle_accept t ~group ~pos ~ballot ~entry
  | Messages.Apply { group; pos; entry } ->
      (* An apply at or below the compaction point is stale news: the
         entry's effects are already part of the checkpoint. *)
      if not (compacted t ~group ~pos) then Wal.append t.wal ~group ~pos entry;
      Messages.Applied
  | Messages.Claim_leadership { group; pos; claimant } ->
      handle_claim t ~group ~pos ~claimant
  | Messages.Submit { group; record } -> handle_submit t ~group record
  | Messages.Get_snapshot { group } ->
      let applied, rows = Wal.snapshot t.wal ~group in
      Messages.Snapshot_reply { applied; rows }

(* Restart the service processes of this datacenter: volatile state (the
   leadership-claim table, the manager's winning streak, submission locks,
   and the decoded WAL/acceptor caches) is lost; everything durable lives
   in the key-value store and survives — in particular Paxos promises and
   votes, which is why Algorithm 1 keeps them there. The caches are
   rebuilt lazily from the durable rows, which the chaos coherence oracle
   exercises. *)
let restart t =
  Hashtbl.reset t.won;
  Hashtbl.reset t.submit_locks;
  Hashtbl.reset t.acceptors;
  Wal.invalidate t.wal

let acceptor_state t ~group ~pos = fst (load_acceptor t ~group ~pos)

let snapshots t = t.snapshots

(* Checkpoint: discard the applied log prefix together with its Paxos
   acceptor state (a compacted position can never be proposed again, so
   the state is dead weight). The decoded acceptor cache is pruned with
   the rows it mirrors. *)
let compact t ~group ~upto =
  match Wal.compact t.wal ~group ~upto with
  | Error `Not_applied -> Error `Not_applied
  | Ok () ->
      let acceptors = acceptor_table t ~group in
      for pos = 1 to upto do
        Store.delete t.store ~key:(paxos_key t ~group ~pos);
        Store.delete t.store ~key:(claim_key t ~group ~pos);
        Hashtbl.remove acceptors pos
      done;
      Ok ()

(* ------------------------------------------------------------------ *)
(* Cache-coherence oracle: every decoded view this service keeps equals
   a fresh decode of its durable rows. Mutates nothing (checked by the
   chaos engine after each fault event). *)

let equal_vote a b =
  match (a, b) with
  | None, None -> true
  | Some (ba, va), Some (bb, vb) -> Ballot.equal ba bb && Txn.equal_entry va vb
  | _ -> false

let equal_acceptor_state (a : Txn.entry Acceptor.state)
    (b : Txn.entry Acceptor.state) =
  Ballot.equal a.next_bal b.next_bal && equal_vote a.vote b.vote

let cache_coherent t ~group =
  match Wal.coherence t.wal ~group with
  | Error _ as e -> e
  | Ok () -> (
      match Hashtbl.find_opt t.acceptors group with
      | None -> Ok ()
      | Some tbl ->
          Hashtbl.fold
            (fun pos (cached : acceptor_cached) acc ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let fresh = load_acceptor_fresh t ~group ~pos in
                  if not (equal_acceptor_state cached.acc_state fresh.acc_state)
                  then
                    Error
                      (Printf.sprintf
                         "acceptor/%s/%d: cached state differs from durable \
                          decode"
                         group pos)
                  else if cached.acc_nb <> fresh.acc_nb then
                    Error
                      (Printf.sprintf
                         "acceptor/%s/%d: cached nextBal attribute %s, store %s"
                         group pos
                         (Option.value cached.acc_nb ~default:"<absent>")
                         (Option.value fresh.acc_nb ~default:"<absent>"))
                  else Ok ())
            tbl (Ok ()))

let start ~rpc ~config ~dc ~dcs ~trace =
  let store = Store.create () in
  let env =
    {
      Proposer.rpc;
      config;
      dc;
      dcs;
      rng = Mdds_sim.Rng.split (Mdds_sim.Engine.rng (Rpc.engine rpc));
      trace;
    }
  in
  let t =
    {
      dc;
      source = Printf.sprintf "svc.dc%d" dc;
      config;
      store;
      wal = Wal.create store;
      env;
      submit_locks = Hashtbl.create 8;
      won = Hashtbl.create 8;
      acceptors = Hashtbl.create 4;
      group_keys = Hashtbl.create 4;
      learns = 0;
      snapshots = 0;
    }
  in
  Rpc.serve rpc ~node:dc ~processing:config.processing_delay (fun ~src request ->
      handle t ~src request);
  t
