(** The combination search of Paxos-CP (§5, Combination).

    When the tally says no value can yet have a majority, the client may
    propose any value for the position — so instead of proposing only its
    own transaction, it proposes an ordered list: its own transaction plus
    as many of the transactions seen in other acceptors' votes as can be
    serialized together. Validity is {!Mdds_types.Txn.valid_combination}:
    no transaction in the list reads a key written by a predecessor.

    The paper prescribes trying "every subset of transactions from the
    received votes, in every order" for the maximum-length list when the
    candidate set is small, and a greedy single pass otherwise. *)

val best :
  ?probe_budget:int ->
  own:Mdds_types.Txn.record ->
  candidates:Mdds_types.Txn.record list ->
  exhaustive_limit:int ->
  unit ->
  Mdds_types.Txn.entry
(** [best ~own ~candidates ~exhaustive_limit ()] returns a maximal valid
    combination containing [own]. Candidates sharing [own]'s id, and
    duplicate candidate ids, are dropped first. With at most
    [exhaustive_limit] distinct candidates the search is exhaustive
    (optimal); beyond that it is a greedy pass in the given order. The
    result always contains [own] and is always a valid combination.

    [probe_budget] (default {!default_probe_budget}) caps the insertion
    probes the exhaustive search may price. The planner's worst case —
    every candidate mutually independent — is factorial in the candidate
    count and known in closed form, so when that bound exceeds the budget
    the search is skipped outright and the paper's greedy fallback (§5)
    answers instead: a commit path must not stall on an adversarial
    conflict shape, and an abandoned mid-tree search is pure waste. A
    probe counter inside the search backstops the predictor. The default
    budget is >2x the worst case of the production
    [exhaustive_limit = 4], so it can only trigger when the limit is
    raised; {!cutovers} counts how often it did. *)

val default_probe_budget : int
(** Default probe budget (8192; the [exhaustive_limit = 4] worst case —
    four mutually independent candidates — is 3536 probes). *)

val cutovers : unit -> int
(** Process-wide count of exhaustive searches abandoned for the greedy
    fallback because the probe budget ran out. Domain-safe. *)

val candidates_of_votes :
  own:Mdds_types.Txn.record ->
  Mdds_types.Txn.entry list ->
  Mdds_types.Txn.record list
(** Distinct transaction records appearing in voted entries, excluding
    [own], in first-seen order. *)
