(** A complete simulated deployment: engine, network, one Transaction
    Service per datacenter, and factories for Transaction Clients.

    This is the top-level entry point of the library — the simulated
    equivalent of Figure 1's architecture. Typical use:

    {[
      let cluster = Cluster.create (Topology.ec2 "VVV") in
      let client = Cluster.client cluster ~dc:0 in
      Cluster.spawn cluster (fun () ->
          let txn = Client.begin_ client ~group:"g" in
          Client.write txn "x" "1";
          ignore (Client.commit txn));
      Cluster.run cluster
    ]} *)

type t

val create :
  ?seed:int ->
  ?config:Config.t ->
  ?storage:Mdds_kvstore.Store.mode ->
  Mdds_net.Topology.t ->
  t
(** Build the deployment and start all services. Default config is
    {!Config.default} (Paxos-CP); default seed 42; default storage mode
    [Sync_always] (every write durable as it lands — the chaos engine
    passes [Sync_explicit] so dirty and torn crashes have something to
    lose). *)

val engine : t -> Mdds_sim.Engine.t
val config : t -> Config.t
val topology : t -> Mdds_net.Topology.t
val network : t -> (Messages.request, Messages.response) Mdds_net.Rpc.packet Mdds_net.Network.t
val audit : t -> Audit.t

val trace : t -> Mdds_sim.Trace.t
(** The protocol event trace; {!Mdds_sim.Trace.enable} it before running
    to capture message rounds, decisions, learner/snapshot activity and
    commit outcomes. *)

val size : t -> int
val service : t -> int -> Service.t
val services : t -> Service.t list

val client : ?id:string -> t -> dc:int -> Client.t
(** A fresh application instance in the given datacenter. [?id] overrides
    the generated client id (transaction ids are [<id>/<n>]). *)

val spawn : ?at:float -> t -> (unit -> unit) -> unit
(** Start a simulated process (an application thread). *)

val run : ?until:float -> t -> unit
(** Run the simulation to quiescence (or the time bound). *)

val now : t -> float

(** {1 Fault injection}

    Every injector records a [fault]-category {!Mdds_sim.Trace} event, so a
    traced run interleaves faults with the protocol activity they disturb
    (the chaos engine's repro output relies on this). *)

val take_down : t -> int -> unit
val bring_up : t -> int -> unit
val is_down : t -> int -> bool
val partition : t -> int list list -> unit
val heal : t -> unit

val restart : t -> int -> unit
(** {!Service.restart} the given datacenter's service: volatile state is
    dropped, durable acceptor/log state survives. *)

val dirty_restart : t -> int -> unit
(** Storage-level power loss: {!Mdds_kvstore.Store.crash} discards the
    datacenter's unsynced write buffer, then the service restarts and runs
    its recovery scan. A plain {!restart} in [Sync_always] mode. *)

val torn_restart : t -> int -> unit
(** Like {!dirty_restart}, but the in-flight row write additionally
    persists only a prefix of its attributes (a torn write, caught by the
    recovery scan's checksum scrub). *)

val storm : t -> loss:float -> jitter:float -> unit
(** Degrade every inter-datacenter link to the given loss probability and
    fractional jitter (base delays are kept). *)

val calm : t -> unit
(** End a storm: drop all link-quality overrides. *)

(** {2 Gray failures}

    Faults where every datacenter stays up and correct but the network
    misbehaves asymmetrically: directed cuts, slow-but-alive nodes,
    flapping and duplicating links ({!Mdds_net.Network}'s gray-failure
    state). *)

val cut_oneway : t -> src:int -> dst:int -> unit
(** Drop messages [src]→[dst]; the reverse direction still flows. *)

val heal_oneway : t -> src:int -> dst:int -> unit
val heal_oneways : t -> unit

val slow_node : t -> int -> factor:float -> unit
(** Multiply every link delay into and out of the datacenter by
    [factor >= 1] (a slow-but-alive datacenter). *)

val clear_slowdown : t -> int -> unit
val clear_slowdowns : t -> unit

val flap_link : t -> src:int -> dst:int -> period:float -> unit
(** Alternate the directed link up/down with a square wave of the given
    period (first half-period up). *)

val clear_flap : t -> src:int -> dst:int -> unit
val clear_flaps : t -> unit

val dup_storm : t -> prob:float -> unit
(** Duplicate every delivered message with the given probability on all
    links (both copies arrive, independently delayed). *)

val clear_duplication : t -> unit

(** {1 Checking (test oracles)} *)

val logs_agree : t -> group:string -> (unit, string) result
(** Replication property (R1): no two datacenter logs hold different
    entries for the same position. *)

val committed_log : t -> group:string -> (int * Mdds_types.Txn.entry) list
(** The union of all datacenter logs, sorted by position. Raises
    [Failure] if (R1) is violated. *)

val combined_entries : t -> group:string -> int
(** Number of log entries holding more than one transaction — the paper's
    "combinations performed" telemetry (§6). *)
