(** The proposer side of one Paxos instance (Algorithm 2's message loop).

    Drives prepare → accept → apply for a single log position, retrying
    with larger ballots and randomized backoff, exactly as the Transaction
    Client does on commit. The value-selection policy is a callback so the
    same engine serves three users:

    - basic Paxos commit: [findWinningVal] ({!Mdds_paxos.Tally.find_winning});
    - Paxos-CP commit: [enhancedFindWinningVal] (combination / promotion);
    - the Transaction Service's learner, which drives a position it missed
      to completion without preferring any value (§4.1, fault tolerance).

    The apply phase is one-way to every datacenter (Figure 3, step 6). *)

module Txn = Mdds_types.Txn
module Ballot = Mdds_paxos.Ballot
module Tally = Mdds_paxos.Tally

type env = {
  rpc : (Messages.request, Messages.response) Mdds_net.Rpc.t;
  config : Config.t;
  dc : int;  (** Datacenter this proposer runs in (message source). *)
  dcs : int list;  (** All datacenters (the acceptors). *)
  rng : Mdds_sim.Rng.t;  (** Backoff randomness. *)
  trace : Mdds_sim.Trace.t;  (** Protocol event trace (usually disabled). *)
  trace_source : string;
      (** Interned trace source ("prop.dc<N>"): built once per env so the
          per-instance hot path never formats it. Use {!make_env}. *)
  rtt : Rtt.t option;
      (** Per-destination RTT estimator; [Some] iff
          [config.adaptive_timeouts || config.hedged_reads] (see
          {!make_env}), [None] under the paper's fixed-timeout default. *)
}

val make_env :
  rpc:(Messages.request, Messages.response) Mdds_net.Rpc.t ->
  config:Config.t ->
  dc:int ->
  dcs:int list ->
  rng:Mdds_sim.Rng.t ->
  trace:Mdds_sim.Trace.t ->
  env
(** Build an env with its interned trace source (and, when the config
    asks for adaptive timeouts or hedged reads, its RTT estimator). *)

val timeout_for : env -> dst:int -> float
(** The wait for a single call to [dst]: the adaptive per-destination
    timeout when [config.adaptive_timeouts], else exactly
    [config.rpc_timeout] (the paper's fixed 2 s). *)

val broadcast_timeout : env -> float
(** The wait for a quorum round: max adaptive timeout over all
    datacenters when [config.adaptive_timeouts], else
    [config.rpc_timeout]. *)

type choice =
  | Propose of Txn.entry
      (** Run the accept phase with this value at the current ballot. *)
  | Stop of Txn.entry
      (** A different value is already chosen — abandon the instance
          without sending accepts (§5, Promotion's early termination). *)
  | Retry
      (** No usable value (learner saw only null votes); back off and
          prepare again. *)

type result =
  | Decided of Txn.entry
      (** The accept phase reached a majority for this value; apply was
          broadcast. The value is chosen for the position. *)
  | Observed of Txn.entry
      (** The chooser stopped early: this value was observed chosen. *)
  | Unavailable
      (** [max_rounds] exhausted without a quorum — datacenters down,
          partition, or persistent contention. *)

type stats = {
  prepare_rounds : int;
  accept_rounds : int;
  fast_path_used : bool;
}

val run :
  env ->
  group:string ->
  pos:int ->
  ?fast:Txn.entry ->
  choose:(Txn.entry Tally.response list -> choice) ->
  unit ->
  result * stats
(** Run the instance. With [?fast], first attempt the leader fast path:
    an accept round at the round-0 ballot with the given value, skipping
    prepare (§4.1); on failure fall through to the full protocol. The
    caller is responsible for having claimed leadership before passing
    [?fast]. [choose] receives the quorum's last-vote responses. *)

val run_fast :
  env -> group:string -> pos:int -> sequenced:Txn.entry option -> Txn.entry -> bool
(** Throughput mode (DESIGN.md §14): one round-0 accept for an eagerly
    assigned pipelined position, true iff a quorum voted (the entry is then
    chosen and apply was broadcast). No full-protocol fallback — on false
    the caller's window resolution recovers the position in log order.
    With [sequenced = Some prev] — [prev] being the entry this leader
    proposed at [pos - 1] — acceptors grant only if their vote at
    [pos - 1] is exactly (round-0 ballot, [prev]), so success proves the
    whole in-flight prefix is chosen with this leader's entries (safe to
    report out of order). *)

val learn : env -> group:string -> pos:int -> Txn.entry option
(** Drive the instance for a position whose value this datacenter missed,
    returning the chosen value ([None] if no quorum is reachable or no
    value has been proposed yet). Never introduces a new value. *)
