(** The Transaction Client: the application-facing transaction API (§2.2)
    and the commit protocols (§4.1 basic Paxos, §5 Paxos-CP).

    One client belongs to one application instance in one datacenter. The
    transaction lifecycle follows the paper's transaction protocol (§4):

    + {!begin_} asks the local Transaction Service for the read position
      (falling back to other datacenters if it is unreachable);
    + {!read} returns buffered writes first (A1), otherwise reads from a
      Transaction Service at the read position (A2), caching the result;
    + {!write} only buffers locally;
    + {!commit} builds the log entry from the read and write sets and runs
      the configured commit protocol for position [read position + 1].

    Read-only transactions commit locally without any messages (§2.2). *)

module Txn = Mdds_types.Txn

exception Unavailable of string
(** No Transaction Service in any datacenter answered (within the
    configured attempts); raised by {!begin_} and {!read}. *)

type t

val create :
  rpc:(Messages.request, Messages.response) Mdds_net.Rpc.t ->
  config:Config.t ->
  dc:int ->
  dcs:int list ->
  audit:Audit.t ->
  id:string ->
  trace:Mdds_sim.Trace.t ->
  t

val dc : t -> int

type txn

val begin_ : t -> group:string -> txn
val txn_id : txn -> string
val read_position : txn -> int

val read : txn -> Txn.key -> string option
(** [None] if the key has never been written (as of the read position). *)

val write : txn -> Txn.key -> string -> unit

val commit : txn -> Audit.outcome
(** Run the commit protocol; records the transaction in the audit trail and
    returns its outcome. Never raises: total unavailability yields
    [Aborted { reason = Unavailable; _ }]. A transaction can be committed
    at most once ([Invalid_argument] otherwise). *)

(** {1 Cross-group transactions (PROTOCOL.md §10)}

    A multi-group transaction reads and writes in several groups and
    commits atomically with the multi-shot 2PC whose every step —
    prepare, decision, outcome — is an ordinary record in a per-group
    Paxos log (see {!Twopc}). Requires the [Leader] protocol when more
    than one group participates. *)

type mtxn

val begin_multi : t -> groups:string list -> mtxn
(** Begin in every listed group (deduplicated, sorted; the first sorted
    group coordinates). Raises [Invalid_argument] on an empty list and
    {!Unavailable} like {!begin_}. *)

val mtxn_id : mtxn -> string

val read_in : mtxn -> group:string -> Txn.key -> string option
val write_in : mtxn -> group:string -> Txn.key -> string -> unit
(** Like {!read} / {!write} in one participant group.
    [Invalid_argument] if [group] was not passed to {!begin_multi}. *)

val commit_multi : mtxn -> Audit.outcome
(** Atomic commit across all participant groups. A single-group [mtxn]
    commits exactly like {!commit}. Otherwise: prepares are logged in
    every group in order (the single-group admission predicate over the
    transaction's footprint is the vote), the decision is logged in the
    coordinator's group — its apply is the commit point, write-once, so
    the verdict is read back before reporting — and outcomes deliver the
    buffered writes. [Committed] is reported only after the commit
    decision is durably logged and read back; [Aborted] only when no
    prepare can have been logged (presumed abort) or an abort decision
    settles the leftovers (in-doubt resolvers finish either cleanup if
    the client dies mid-protocol); everything else is [Unknown]. Records
    one audit event under {!Twopc.audit_group} with group-qualified
    keys. *)
