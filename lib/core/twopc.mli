(** Marker-record encoding for the multi-shot atomic commit protocol
    (after Chockler & Gotsman, "Multi-Shot Distributed Transaction
    Commit").

    A cross-group transaction's 2PC state machine is persisted as
    ordinary {!Mdds_types.Txn.record}s whose writes target keys under
    the reserved ["__2pc/"] prefix, so every record rides the existing
    per-group Paxos log unchanged:

    - [Prepare]: logged in every participant group; its read set is the
      transaction's footprint in that group (reads ∪ write keys), so
      the single-group admission predicate doubles as the vote. Its
      single write carries the {!payload} (coordinator, participants,
      buffered writes).
    - [Decision]: logged in the coordinator's group; the first decision
      applied (WAL write-once) is authoritative for the transaction.
    - [Outcome]: logged in each participant group; applies the buffered
      writes on commit, nothing on abort. *)

module Txn := Mdds_types.Txn

val reserved_prefix : string
(** ["__2pc/"] — workload keys must never start with this. *)

val prepare_key : string -> string
val outcome_key : string -> string
val decision_key : string -> string
(** Marker (and data-row) key for a transaction id. *)

val commit_verdict : string
val abort_verdict : string

type payload = {
  coordinator : string;  (** group whose log holds the decision *)
  participants : string list;  (** all participant groups, sorted *)
  writes : (string * string) list;  (** buffered writes for this group *)
}

val payload_codec : payload Mdds_codec.Codec.t

type kind =
  | Prepare of { txid : string; payload : payload }
  | Outcome of { txid : string; verdict : string }
  | Decision of { txid : string; verdict : string }
  | Plain

val classify : Txn.record -> kind
(** Constant-time on plain records: markers are always the first write. *)

val is_marker : Txn.record -> bool

val prepare_record :
  txid:string ->
  origin:int ->
  read_position:int ->
  reads:string list ->
  payload:payload ->
  Txn.record
(** [reads] must be the transaction's full footprint in the group
    (reads ∪ write keys) so admission staleness checks cover writes. *)

val outcome_record :
  txid:string ->
  tag:string ->
  origin:int ->
  prepare_position:int ->
  verdict:string ->
  writes:(string * string) list ->
  Txn.record
(** Transaction id is [txid ^ "/o@" ^ tag]: racing resolvers propose
    distinct records (L2-safe); the WAL's write-once rule makes all but
    the first applied outcome inert. *)

val decision_record :
  txid:string -> tag:string -> origin:int -> verdict:string -> Txn.record

val audit_group : string list -> string
(** Pseudo-group ["cross:<g1>+<g2>+..."] for cross-transaction audit
    events; never equal to a real group name. *)

val is_audit_group : string -> bool
