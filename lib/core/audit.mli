(** Execution audit trail — the test oracle's ground truth.

    Clients report every finished transaction here together with the values
    they actually observed, and the harness reads commit/abort/latency
    statistics from it. Nothing in the protocol depends on the audit; it is
    pure instrumentation, the simulated analogue of the paper's measurement
    framework plus the data needed to check one-copy serializability after
    the fact. *)

module Txn = Mdds_types.Txn

type abort_reason =
  | Conflict  (** Read set intersects a winner's write set (§5). *)
  | Lost_position
      (** Basic protocol: another transaction won the log position. *)
  | Promotion_limit  (** Configured promotion cap reached. *)
  | Unavailable  (** No quorum reachable / rounds exhausted. *)

type outcome =
  | Committed of {
      position : int;  (** Log position the transaction was written to. *)
      promotions : int;  (** 0 = won its first position. *)
      combined : bool;  (** Decided entry contained other transactions. *)
    }
  | Aborted of { reason : abort_reason; promotions : int }
  | Read_only_committed
  | Unknown
      (** In-doubt: the commit request may or may not have taken effect
          (leader protocol: the submission timed out after being sent).
          The client cannot report commit or abort truthfully. *)

type protocol_stats = {
  prepare_rounds : int;  (** Prepare broadcasts across all instances. *)
  accept_rounds : int;  (** Accept broadcasts (incl. fast-path attempts). *)
  fast_path : bool;  (** The leader fast path was attempted (§4.1). *)
  instances : int;  (** Paxos instances entered (1 + promotions for CP). *)
}

val no_stats : protocol_stats

type event = {
  group : string;  (** Transaction group the transaction ran against. *)
  record : Txn.record;  (** As proposed (reads/writes/read position). *)
  observed : (Txn.key * string option) list;
      (** Key/value pairs the client's reads actually returned. *)
  outcome : outcome;
  began_at : float;
  committed_at : float;  (** When [commit] returned (virtual time). *)
  commit_started_at : float;
  client_dc : int;
  stats : protocol_stats;
}

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In completion order. *)

(** {1 Aggregates} *)

val total : t -> int
val commits : t -> int
val aborts : t -> int
val unknowns : t -> int
val commits_with_promotions : t -> int -> int
(** Transactions committed after exactly [n] promotions. *)

val max_promotions_seen : t -> int
val abort_count : t -> abort_reason -> int
val commit_latencies : t -> promotions:int option -> float list
(** Commit-protocol latency (commit call → outcome) of committed
    transactions, optionally only those with exactly [promotions]. *)

val txn_latencies : t -> float list
(** Begin → outcome latency, all transactions. *)

val mean_rounds : t -> float
(** Mean prepare+accept broadcasts per committed transaction: the measured
    message-round cost (the §4.1 fast path targets 1 accept round). *)

val fast_path_rate : t -> float
(** Fraction of committed transactions that attempted the fast path. *)

val note_hedge : t -> unit
(** A service request ([begin]/[read]) was answered by a fallback
    datacenter after the local one failed or timed out — under
    {!Config.t.hedged_reads} this is a hedged failover. Called by the
    client, counted here so the chaos report can surface it. *)

val hedges : t -> int

val pp_reason : Format.formatter -> abort_reason -> unit
