module Txn = Mdds_types.Txn
module Ballot = Mdds_paxos.Ballot
module Tally = Mdds_paxos.Tally
module Rpc = Mdds_net.Rpc
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng

module Trace = Mdds_sim.Trace

type env = {
  rpc : (Messages.request, Messages.response) Rpc.t;
  config : Config.t;
  dc : int;
  dcs : int list;
  rng : Rng.t;
  trace : Trace.t;
  trace_source : string;
  rtt : Rtt.t option;
}

let make_env ~rpc ~config ~dc ~dcs ~rng ~trace =
  let rtt =
    if config.Config.adaptive_timeouts || config.Config.hedged_reads then
      Some
        (Rtt.create ~multiplier:config.Config.adaptive_multiplier
           ~floor:config.Config.adaptive_floor ~cap:config.Config.rpc_timeout
           ~dcs:(List.length dcs) ())
    else None
  in
  { rpc; config; dc; dcs; rng; trace; trace_source = Printf.sprintf "prop.dc%d" dc; rtt }

(* Adaptive timeouts are only *used* when the flag is on; with only
   hedged_reads set the estimator still collects samples (for ordering)
   but every wait stays the paper's fixed rpc_timeout. *)
let timeout_for env ~dst =
  match env.rtt with
  | Some rtt when env.config.Config.adaptive_timeouts -> Rtt.timeout rtt ~dst
  | _ -> env.config.Config.rpc_timeout

let broadcast_timeout env =
  match env.rtt with
  | Some rtt when env.config.Config.adaptive_timeouts ->
      Rtt.broadcast_timeout rtt ~dsts:env.dcs
  | _ -> env.config.Config.rpc_timeout

let observer env =
  match env.rtt with
  | None -> None
  | Some rtt -> Some (fun ~dst ~rtt:sample -> Rtt.observe rtt ~dst sample)

type choice = Propose of Txn.entry | Stop of Txn.entry | Retry

type result = Decided of Txn.entry | Observed of Txn.entry | Unavailable

type stats = { prepare_rounds : int; accept_rounds : int; fast_path_used : bool }

let quorum env = Tally.majority (List.length env.dcs)

(* Backoff before re-entering the prepare phase (Algorithm 2, lines 40 and
   55). Flat mode draws uniformly from [min, max] — exactly the paper's
   prototype, and exactly one RNG draw, so the default stream is
   untouched. Decorrelated mode (config flag) grows the upper bound from
   the previous sleep ([min(cap, uniform(min, 3·prev))]): consecutive
   losers of a contended position spread out exponentially instead of
   re-colliding inside the same fixed window. [prev] is per-[run] state —
   contention is per position, so each proposal starts the ladder over. *)
let backoff env prev =
  let d =
    if env.config.Config.backoff_decorrelated then begin
      let d =
        Float.min env.config.backoff_max
          (Rng.uniform env.rng env.config.backoff_min (3.0 *. !prev))
      in
      prev := d;
      d
    end
    else Rng.uniform env.rng env.config.backoff_min env.config.backoff_max
  in
  Engine.sleep d

(* Broadcast apply to every datacenter (Figure 3, step 6). Remote applies
   are one-way; the local one is confirmed synchronously so that the next
   transaction of this application instance sees the new read position
   (the paper's co-located-replica optimization: the client updates its
   local store as part of commit). A local timeout is tolerated. *)
let broadcast_apply env ~group ~pos entry =
  let msg = Messages.Apply { group; pos; entry } in
  List.iter
    (fun dst -> if dst <> env.dc then Rpc.notify env.rpc ~src:env.dc ~dst msg)
    env.dcs;
  ignore
    (Rpc.call env.rpc ~src:env.dc ~dst:env.dc ~timeout:(timeout_for env ~dst:env.dc)
       msg)

(* One accept round: true iff a majority voted for (ballot, entry).
   Also returns the highest nextBal seen in rejections, for ballot
   selection on retry. *)
let accept_round ?sequenced env ~group ~pos ~ballot entry =
  let acks = ref 0 in
  let replies =
    Rpc.broadcast env.rpc ~src:env.dc ~dsts:env.dcs
      ~timeout:(broadcast_timeout env) ?observe:(observer env)
      ~enough:(fun responses ->
        acks :=
          List.length
            (List.filter
               (function _, Messages.Accept_reply { ok = true; _ } -> true | _ -> false)
               responses);
        !acks >= quorum env)
      (Messages.Accept { group; pos; ballot; entry; sequenced })
  in
  let oks, max_seen =
    List.fold_left
      (fun (oks, seen) (_, reply) ->
        match reply with
        | Messages.Accept_reply { ok; next_bal } ->
            let seen =
              if Ballot.compare next_bal seen > 0 then next_bal else seen
            in
            ((if ok then oks + 1 else oks), seen)
        | _ -> (oks, seen))
      (0, Ballot.bottom) replies
  in
  (oks >= quorum env, max_seen)

(* One prepare round: Some (votes) once a majority promised, None with the
   highest nextBal hint otherwise. *)
let prepare_round env ~group ~pos ~ballot =
  let replies =
    Rpc.broadcast env.rpc ~src:env.dc ~dsts:env.dcs
      ~timeout:(broadcast_timeout env) ?observe:(observer env)
      ~linger:env.config.prepare_linger
      ~enough:(fun responses ->
        List.length
          (List.filter
             (function _, Messages.Promise _ -> true | _ -> false)
             responses)
        >= quorum env)
      (Messages.Prepare { group; pos; ballot })
  in
  let votes, max_seen =
    List.fold_left
      (fun (votes, seen) (from, reply) ->
        match reply with
        | Messages.Promise { vote } -> ({ Tally.from; vote } :: votes, seen)
        | Messages.Prepare_reject { next_bal } ->
            (votes, if Ballot.compare next_bal seen > 0 then next_bal else seen)
        | _ -> (votes, seen))
      ([], Ballot.bottom) replies
  in
  if List.length votes >= quorum env then Ok (List.rev votes)
  else Error max_seen

let run env ~group ~pos ?fast ~choose () =
  let stats = ref { prepare_rounds = 0; accept_rounds = 0; fast_path_used = false } in
  let bump_prepare () = stats := { !stats with prepare_rounds = !stats.prepare_rounds + 1 } in
  let bump_accept () = stats := { !stats with accept_rounds = !stats.accept_rounds + 1 } in
  (* Interned at env construction: [run] is per-instance hot and must not
     pay a sprintf before a (usually disabled) trace call. *)
  let source = env.trace_source in
  let fast_outcome =
    match fast with
    | None -> None
    | Some entry ->
        stats := { !stats with fast_path_used = true };
        bump_accept ();
        Trace.record env.trace ~source ~category:"fast" "pos %d: accept round at ballot 0" pos;
        let ok, seen = accept_round env ~group ~pos ~ballot:(Ballot.fast ~proposer:env.dc) entry in
        if ok then begin
          Trace.record env.trace ~source ~category:"decide" "pos %d decided via fast path" pos;
          broadcast_apply env ~group ~pos entry;
          Some (Decided entry)
        end
        else begin
          ignore seen;
          None (* fall through to the full protocol *)
        end
  in
  match fast_outcome with
  | Some r -> (r, !stats)
  | None ->
      let slept = ref env.config.Config.backoff_min in
      let rec attempt ballot round =
        if round > env.config.max_rounds then begin
          Trace.record env.trace ~level:Trace.Warn ~source ~category:"giveup"
            "pos %d: %d rounds exhausted" pos env.config.max_rounds;
          (Unavailable, !stats)
        end
        else begin
          bump_prepare ();
          Trace.record env.trace ~source ~category:"prepare" "pos %d ballot %s round %d"
            pos (Ballot.to_string ballot) round;
          match prepare_round env ~group ~pos ~ballot with
          | Error seen ->
              backoff env slept;
              attempt (Ballot.next ~after:(if Ballot.compare seen ballot > 0 then seen else ballot) ~proposer:env.dc) (round + 1)
          | Ok votes -> (
              match choose votes with
              | Stop entry -> (Observed entry, !stats)
              | Retry ->
                  backoff env slept;
                  attempt (Ballot.next ~after:ballot ~proposer:env.dc) (round + 1)
              | Propose entry ->
                  bump_accept ();
                  let ok, seen = accept_round env ~group ~pos ~ballot entry in
                  if ok then begin
                    Trace.record env.trace ~source ~category:"decide"
                      "pos %d decided at ballot %s (%d txns)" pos
                      (Ballot.to_string ballot) (List.length entry);
                    broadcast_apply env ~group ~pos entry;
                    (Decided entry, !stats)
                  end
                  else begin
                    backoff env slept;
                    attempt
                      (Ballot.next ~after:(if Ballot.compare seen ballot > 0 then seen else ballot) ~proposer:env.dc)
                      (round + 1)
                  end)
        end
      in
      attempt (Ballot.make ~round:1 ~proposer:env.dc) 1

(* Pipelined fast round (throughput mode): one round-0 accept for an
   eagerly assigned position, with no full-protocol fallback — the
   manager's window resolution owns recovery, in log order, so an
   out-of-order failure here must not start a rival instance. A
   [sequenced] accept carries the entry this leader proposed at
   [pos - 1]; acceptors grant it only if their vote at [pos - 1] is that
   very (round-0 ballot, entry) pair. A quorum of grants is therefore a
   quorum of round-0 votes for one value at [pos - 1] — the predecessor
   entry is chosen — and by induction every earlier in-flight position
   is chosen with this leader's entries, which is why success may be
   reported out of order. (Ballot equality alone would not do: the
   round-0 ballot is reused at a position after a given-up round, so
   ballot-equal votes for different entries can coexist at [pos - 1].) *)
let run_fast env ~group ~pos ~sequenced entry =
  Trace.record env.trace ~source:env.trace_source ~category:"fast"
    "pos %d: pipelined accept round at ballot 0%s" pos
    (if sequenced <> None then " (sequenced)" else "");
  let ok, _seen =
    accept_round ?sequenced env ~group ~pos
      ~ballot:(Ballot.fast ~proposer:env.dc) entry
  in
  if ok then begin
    Trace.record env.trace ~source:env.trace_source ~category:"decide"
      "pos %d decided via pipelined fast path (%d txns)" pos (List.length entry);
    broadcast_apply env ~group ~pos entry
  end;
  ok

let learn env ~group ~pos =
  let choose votes =
    (* Adopt whatever the votes reveal; never invent a value. *)
    match
      List.fold_left
        (fun acc (r : Txn.entry Tally.response) ->
          match (acc, r.vote) with
          | None, v -> v
          | Some _, None -> acc
          | Some (bb, _), (Some (b, _) as v) ->
              if Ballot.compare b bb > 0 then v else acc)
        None votes
    with
    | Some (_, entry) -> Propose entry
    | None -> Retry
  in
  match run env ~group ~pos ~choose () with
  | Decided entry, _ | Observed entry, _ -> Some entry
  | Unavailable, _ -> None
