module Engine = Mdds_sim.Engine
module Network = Mdds_net.Network
module Topology = Mdds_net.Topology
module Rpc = Mdds_net.Rpc
module Wal = Mdds_wal.Wal
module Txn = Mdds_types.Txn

type t = {
  engine : Engine.t;
  topo : Topology.t;
  net : (Messages.request, Messages.response) Rpc.packet Network.t;
  rpc : (Messages.request, Messages.response) Rpc.t;
  services : Service.t array;
  config : Config.t;
  audit : Audit.t;
  trace : Mdds_sim.Trace.t;
  mutable client_counter : int;
}

let create ?(seed = 42) ?(config = Config.default) ?storage topo =
  let engine = Engine.create ~seed () in
  let net = Network.create engine topo in
  let rpc = Rpc.create net in
  let dcs = List.init (Topology.size topo) Fun.id in
  let trace = Mdds_sim.Trace.create engine in
  let services =
    Array.init (Topology.size topo) (fun dc ->
        Service.start ?storage ~rpc ~config ~dc ~dcs ~trace ())
  in
  {
    engine;
    topo;
    net;
    rpc;
    services;
    config;
    audit = Audit.create ();
    trace;
    client_counter = 0;
  }

let engine t = t.engine
let config t = t.config
let topology t = t.topo
let network t = t.net
let audit t = t.audit
let size t = Array.length t.services
let service t dc = t.services.(dc)
let services t = Array.to_list t.services

let client ?id t ~dc =
  t.client_counter <- t.client_counter + 1;
  let id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "c%d.%s" t.client_counter (Topology.name t.topo dc)
  in
  Client.create ~rpc:t.rpc ~config:t.config ~dc
    ~dcs:(List.init (size t) Fun.id)
    ~audit:t.audit ~id ~trace:t.trace

let spawn ?at t f = Engine.spawn ?at t.engine f
let run ?until t = Engine.run ?until t.engine
let now t = Engine.now t.engine

let trace t = t.trace

let fault t fmt =
  Mdds_sim.Trace.record t.trace ~level:Mdds_sim.Trace.Warn ~source:"fault"
    ~category:"fault" fmt

let take_down t dc =
  fault t "datacenter %s down" (Topology.name t.topo dc);
  Network.set_down t.net dc

let bring_up t dc =
  fault t "datacenter %s up" (Topology.name t.topo dc);
  Network.set_up t.net dc

let is_down t dc = Network.is_down t.net dc

let partition t groups =
  fault t "partition %s"
    (String.concat "|"
       (List.map
          (fun g -> String.concat "," (List.map (Topology.name t.topo) g))
          groups));
  Network.partition t.net groups

let heal t =
  fault t "partition healed";
  Network.heal t.net

let restart t dc =
  fault t "service %s restarted" (Topology.name t.topo dc);
  Service.restart t.services.(dc)

(* Storage-level power loss: the write buffer is discarded (the store
   rewinds to its last sync point) before the service restarts and runs
   its recovery scan. Requires [Sync_explicit] storage to bite; in
   [Sync_always] mode these degrade to a plain restart. *)
let dirty_restart t dc =
  fault t "service %s dirty-crashed (unsynced writes lost)"
    (Topology.name t.topo dc);
  Mdds_kvstore.Store.crash (Service.store t.services.(dc)) ~lose_unsynced:true;
  Service.restart t.services.(dc)

let torn_restart t dc =
  fault t "service %s torn-crashed (in-flight row write torn)"
    (Topology.name t.topo dc);
  Mdds_kvstore.Store.crash ~torn:true
    (Service.store t.services.(dc))
    ~lose_unsynced:true;
  Service.restart t.services.(dc)

let storm t ~loss ~jitter =
  fault t "storm: loss=%g jitter=%g on all links" loss jitter;
  let n = size t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        let base = Topology.link t.topo src dst in
        Network.override_link t.net ~src ~dst { base with loss; jitter }
    done
  done

let calm t =
  fault t "storm cleared";
  Network.clear_overrides t.net

(* Gray-failure injectors: directed link cuts, slow-but-alive
   datacenters, flapping links, duplicating links. All are pure network
   state — no service is stopped — which is exactly what makes them
   "gray": every health signal except latency/reachability looks fine. *)

let cut_oneway t ~src ~dst =
  fault t "one-way cut %s->%s" (Topology.name t.topo src)
    (Topology.name t.topo dst);
  Network.cut_oneway t.net ~src ~dst

let heal_oneway t ~src ~dst =
  fault t "one-way cut %s->%s healed" (Topology.name t.topo src)
    (Topology.name t.topo dst);
  Network.heal_oneway t.net ~src ~dst

let heal_oneways t =
  fault t "all one-way cuts healed";
  Network.clear_oneway_cuts t.net

let slow_node t dc ~factor =
  fault t "slow node %s (x%g)" (Topology.name t.topo dc) factor;
  Network.set_slowdown t.net dc factor

let clear_slowdown t dc =
  fault t "slow node %s recovered" (Topology.name t.topo dc);
  Network.clear_slowdown t.net dc

let clear_slowdowns t =
  fault t "all slowdowns cleared";
  Network.clear_slowdowns t.net

let flap_link t ~src ~dst ~period =
  fault t "flapping link %s->%s (period %gs)" (Topology.name t.topo src)
    (Topology.name t.topo dst) period;
  Network.flap_link t.net ~src ~dst ~period

let clear_flap t ~src ~dst =
  fault t "flap %s->%s cleared" (Topology.name t.topo src)
    (Topology.name t.topo dst);
  Network.clear_flap t.net ~src ~dst

let clear_flaps t =
  fault t "all flaps cleared";
  Network.clear_flaps t.net

let dup_storm t ~prob =
  fault t "duplication storm: p=%g on all links" prob;
  Network.set_duplication_all t.net prob

let clear_duplication t =
  fault t "duplication storm cleared";
  Network.clear_duplication t.net

let logs_agree t ~group =
  let logs = Array.map (fun s -> Wal.dump (Service.wal s) ~group) t.services in
  let by_pos = Hashtbl.create 64 in
  let conflict = ref None in
  Array.iteri
    (fun dc log ->
      List.iter
        (fun (pos, entry) ->
          match Hashtbl.find_opt by_pos pos with
          | None -> Hashtbl.replace by_pos pos (dc, entry)
          | Some (dc0, entry0) ->
              if not (Txn.equal_entry entry0 entry) && !conflict = None then
                conflict :=
                  Some
                    (Printf.sprintf
                       "position %d differs between %s and %s" pos
                       (Topology.name t.topo dc0) (Topology.name t.topo dc)))
        log)
    logs;
  match !conflict with None -> Ok () | Some msg -> Error msg

let committed_log t ~group =
  (match logs_agree t ~group with
  | Ok () -> ()
  | Error msg -> failwith ("Cluster.committed_log: " ^ msg));
  let by_pos = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      List.iter
        (fun (pos, entry) ->
          if not (Hashtbl.mem by_pos pos) then Hashtbl.replace by_pos pos entry)
        (Wal.dump (Service.wal s) ~group))
    t.services;
  Hashtbl.fold (fun pos entry acc -> (pos, entry) :: acc) by_pos []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let combined_entries t ~group =
  List.length
    (List.filter (fun (_, entry) -> List.length entry > 1) (committed_log t ~group))
