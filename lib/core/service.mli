(** The Transaction Service of one datacenter (§4, Algorithm 1).

    One service runs per datacenter; it owns the datacenter's key-value
    store and write-ahead-log view, and handles every request kind of
    {!Messages}. Service processes are stateless in the paper's sense: all
    durable protocol state — the Paxos acceptor state per log position and
    the log itself — lives in the key-value store and is updated with
    [check_and_write] retry loops exactly as in Algorithm 1, so any number
    of concurrent request handlers are safe.

    Fault tolerance (§4.1): a read at a position this datacenter has not
    fully received runs the learner ({!Proposer.learn}) for each missing
    log entry before answering, which is also how a recovering datacenter
    catches up. *)

type t

val start :
  ?storage:Mdds_kvstore.Store.mode ->
  rpc:(Messages.request, Messages.response) Mdds_net.Rpc.t ->
  config:Config.t ->
  dc:int ->
  dcs:int list ->
  trace:Mdds_sim.Trace.t ->
  unit ->
  t
(** Create the datacenter's store/log and register the request handler on
    the RPC service port. [storage] selects the store's durability model
    (default [Sync_always], the pre-existing always-durable behaviour; the
    chaos engine uses [Sync_explicit] to exercise dirty and torn
    crashes). *)

val dc : t -> int
val store : t -> Mdds_kvstore.Store.t
val wal : t -> Mdds_wal.Wal.t

val learns : t -> int
(** How many missing log entries this service has learned (telemetry). *)

val snapshots : t -> int
(** How many peer snapshots this service installed during catch-up. *)

type recovery_stats = {
  recoveries : int;
      (** Restarts whose recovery scan found damage (torn versions
          scrubbed or the log truncated). *)
  scrubbed : int;  (** Checksum-invalid versions dropped across restarts. *)
  relearned : int;
      (** Quarantined positions re-entered after their decided value was
          re-learned from peers (or checkpointed past). *)
}

val recovery_stats : t -> recovery_stats
(** Crash-recovery telemetry (PROTOCOL.md §7), reported by the chaos
    runner. *)

type dedup_stats = {
  dup_applies : int;
      (** Apply notifications for a position the log already holds —
          duplicated one-way messages (or proposer retries) absorbed by
          {!Mdds_wal.Wal.append}'s idempotence instead of applied twice. *)
  dup_claims : int;
      (** Leadership claims replayed by the registered owner; answered
          from the durable first-wins register, never re-granted. *)
  dup_submits : int;
      (** Submissions whose transaction the log already holds — a
          duplicated or replayed [Submit] is answered with the original
          position instead of being sequenced twice (an L2 violation;
          found by gray-failure chaos under the leader protocol). *)
}

val dedup_stats : t -> dedup_stats
(** Duplicate-delivery telemetry (gray-failure chaos: duplicating links),
    reported by the chaos runner. *)

type throughput_stats = {
  batches : int;
      (** Log positions proposed by the batched path (each holds a
          Combine-validated batch of 1..[batch_max] transactions). *)
  batched_txns : int;  (** Transactions those positions carried. *)
  pipelined_rounds : int;
      (** Sequenced round-0 accept rounds launched with earlier positions
          still in flight (the k-deep pipeline actually overlapping). *)
  pipeline_stalls : int;
      (** Times a failed round forced the window to be resolved in log
          order through the full protocol before new positions opened. *)
  epochs_sealed : int;
      (** Epoch mode ({!Config.epoch_mode}): epochs sealed and proposed
          as one multi-record log entry each (PROTOCOL.md §11). Every
          sealed epoch is also counted in [batches]. *)
  epoch_txns : int;  (** Transactions those sealed epochs carried. *)
}

val throughput_stats : t -> throughput_stats
(** Throughput-mode telemetry (DESIGN.md §14–§15). All zero unless
    {!Config.throughput_mode} — the batched path is never entered
    otherwise; the epoch counters are zero unless {!Config.epoch_mode}. *)

type twopc_stats = {
  twopc_prepares : int;
      (** Prepare marker records this service absorbed into its in-doubt
          table (from its own admissions, applies it received, and
          restart rescans — observations, not distinct transactions). *)
  twopc_resolved : int;
      (** In-doubt transactions this service's resolver settled by
          logging a decision and outcome (PROTOCOL.md §10). *)
  in_doubt_replies : int;
      (** [In_doubt] submit replies returned to clients: the submission
          was exposed to acceptors but its fate was unknown when the
          manager gave up (honest "unknown", never a silent drop). *)
}

val twopc_stats : t -> twopc_stats
(** Multi-shot-commit telemetry, reported by the chaos runner. All zero
    when no cross-group transactions run. *)

val arm_2pc_trap : t -> (unit -> unit) -> unit
(** Chaos hook: fire [f] (in a fresh fiber) the next time an entry
    containing a 2PC prepare marker crosses this service — on an Accept
    (possibly before the entry decides) or an Apply. One-shot; dropped by
    {!restart}. The nemesis uses it to aim crashes and partitions at the
    prepare→decide window ([mid-2pc] faults). *)

val compact : t -> group:string -> upto:int -> (unit, [ `Not_applied ]) result
(** Checkpoint: discard the applied log prefix 1..[upto] and its Paxos
    acceptor state. Refused if the prefix is not fully applied. Replicas
    that later need a discarded entry catch up via a peer snapshot
    ({!Mdds_wal.Wal.install_snapshot}). *)

val restart : t -> unit
(** Simulate a service-process restart: volatile state (leadership claims,
    the manager's fast-path streak, submission locks, and the decoded
    WAL/acceptor caches) is dropped; durable state — the log and the Paxos
    acceptor state in the key-value store — survives, so promises made
    before the restart are still honoured. The caches rebuild lazily from
    the durable rows.

    Before serving again, the crash-consistency scan of PROTOCOL.md §7
    runs for every durable group: checksum-invalid (torn) versions are
    scrubbed, the WAL's watermarks and lazily-applied data are re-derived
    from the surviving log ({!Mdds_wal.Wal.recover}), and positions whose
    durable acceptor or claim rows were damaged are quarantined — Paxos
    messages for them are refused until the decided value is re-learned
    from peers (or checkpointed past), never re-voted from the reverted
    state. In [Sync_always] mode the scan finds nothing and the restart
    behaves exactly as before. *)

(** {1 Direct (in-process) access for tests and checkers} *)

val acceptor_state :
  t -> group:string -> pos:int ->
  Mdds_types.Txn.entry Mdds_paxos.Acceptor.state
(** The acceptor state currently persisted for a position (served from the
    write-through decoded cache; the durable row is the truth). *)

val cache_coherent : t -> group:string -> (unit, string) result
(** Cache-coherence oracle: the decoded WAL view ({!Mdds_wal.Wal.coherence})
    and the decoded acceptor-state cache both equal a fresh decode of the
    durable store, and the decoded view never claims an entry the durable
    store could not re-produce after a dirty crash
    ({!Mdds_wal.Wal.durable_coherent}). Mutates nothing; the chaos engine
    checks it after every fault event. *)

val handle : t -> src:int -> Messages.request -> Messages.response
(** Process a request synchronously, bypassing the network (used by unit
    tests; the RPC path calls this same function). May block on the
    simulator if it needs to learn missing entries. *)
