module Ballot = Mdds_paxos.Ballot
module Txn = Mdds_types.Txn

type submit_result =
  | Accepted_at of int
  | Stale_read
  | No_quorum
  | In_doubt

type request =
  | Get_read_position of { group : string }
  | Read of { group : string; key : string; position : int }
  | Prepare of { group : string; pos : int; ballot : Ballot.t }
  | Accept of {
      group : string;
      pos : int;
      ballot : Ballot.t;
      entry : Txn.entry;
      sequenced : Txn.entry option;
    }
  | Apply of { group : string; pos : int; entry : Txn.entry }
  | Claim_leadership of { group : string; pos : int; claimant : string }
  | Submit of { group : string; record : Txn.record }
  | Get_snapshot of { group : string }

type response =
  | Read_position of { position : int; leader : int option }
  | Value of { value : string option }
  | Promise of { vote : (Ballot.t * Txn.entry) option }
  | Prepare_reject of { next_bal : Ballot.t }
  | Accept_reply of { ok : bool; next_bal : Ballot.t }
  | Applied
  | Claim_reply of { first : bool }
  | Submit_reply of { result : submit_result }
  | Snapshot_reply of { applied : int; rows : (string * int * string) list }
  | Failed of string

let pp_request ppf = function
  | Get_read_position { group } -> Format.fprintf ppf "get_read_position(%s)" group
  | Read { group; key; position } ->
      Format.fprintf ppf "read(%s,%s@%d)" group key position
  | Prepare { group; pos; ballot } ->
      Format.fprintf ppf "prepare(%s,%d,%a)" group pos Ballot.pp ballot
  | Accept { group; pos; ballot; entry; sequenced } ->
      Format.fprintf ppf "accept(%s,%d,%a,%a%s)" group pos Ballot.pp ballot
        Txn.pp_entry entry
        (if sequenced <> None then ",seq" else "")
  | Apply { group; pos; entry } ->
      Format.fprintf ppf "apply(%s,%d,%a)" group pos Txn.pp_entry entry
  | Claim_leadership { group; pos; claimant } ->
      Format.fprintf ppf "claim(%s,%d,%s)" group pos claimant
  | Submit { group; record } ->
      Format.fprintf ppf "submit(%s,%a)" group Txn.pp_record record
  | Get_snapshot { group } -> Format.fprintf ppf "get_snapshot(%s)" group

let pp_response ppf = function
  | Read_position { position; leader } ->
      Format.fprintf ppf "read_position(%d,leader=%a)" position
        (Format.pp_print_option Format.pp_print_int)
        leader
  | Value { value } ->
      Format.fprintf ppf "value(%a)"
        (Format.pp_print_option (fun ppf -> Format.fprintf ppf "%S"))
        value
  | Promise { vote } ->
      Format.fprintf ppf "promise(%a)"
        (Format.pp_print_option (fun ppf (b, e) ->
             Format.fprintf ppf "%a:%a" Ballot.pp b Txn.pp_entry e))
        vote
  | Prepare_reject { next_bal } ->
      Format.fprintf ppf "prepare_reject(%a)" Ballot.pp next_bal
  | Accept_reply { ok; next_bal } ->
      Format.fprintf ppf "accept_reply(%b,%a)" ok Ballot.pp next_bal
  | Applied -> Format.fprintf ppf "applied"
  | Claim_reply { first } -> Format.fprintf ppf "claim_reply(first=%b)" first
  | Submit_reply { result } ->
      Format.fprintf ppf "submit_reply(%s)"
        (match result with
        | Accepted_at pos -> Printf.sprintf "accepted@%d" pos
        | Stale_read -> "stale-read"
        | No_quorum -> "no-quorum"
        | In_doubt -> "in-doubt")
  | Snapshot_reply { applied; rows } ->
      Format.fprintf ppf "snapshot(applied=%d,%d rows)" applied (List.length rows)
  | Failed msg -> Format.fprintf ppf "failed(%s)" msg
