(** Wire messages between Transaction Clients and Transaction Services.

    One request/response pair per protocol step: the transaction API
    ([begin]/[read], §4 steps 1–2) and the three Paxos phases
    (prepare/accept/apply, Figure 3), plus the leadership claim of the
    fast-path optimization (§4.1). *)

module Ballot = Mdds_paxos.Ballot
module Txn = Mdds_types.Txn

type submit_result =
  | Accepted_at of int  (** Committed at this log position. *)
  | Stale_read
      (** The transaction read data that was overwritten after its read
          position: serializing it now would lose an update. *)
  | No_quorum  (** The manager could not replicate (no majority). *)
  | In_doubt
      (** The manager gave up after sending accepts: the transaction may
          still be driven to a decision by another proposer. *)

type request =
  | Get_read_position of { group : string }
      (** [begin]: position of the last locally written log entry. *)
  | Read of { group : string; key : string; position : int }
      (** Read [key] as of log position [position] (property (A2)). *)
  | Prepare of { group : string; pos : int; ballot : Ballot.t }
  | Accept of {
      group : string;
      pos : int;
      ballot : Ballot.t;
      entry : Txn.entry;
      sequenced : Txn.entry option;
    }
      (** [sequenced]: a pipelined round-0 accept (throughput mode),
          carrying the entry the leader proposed at [pos - 1]. The
          acceptor must grant it only if its current vote at [pos - 1] is
          this very ballot — the same leader's round-0 ballot — *for that
          very entry*, so that a quorum at [pos] proves the leader's
          previous in-flight entry is chosen (the pipeline ordering
          invariant, DESIGN.md §14). The entry match matters: the round-0
          ballot alone is not single-use per position (a manager that gave
          up on an exposed-but-undecided position re-proposes a different
          batch there at the same ballot 0, and pre-restart accepts can
          linger on slow or duplicating links), so ballot-equal votes for
          different entries can coexist at [pos - 1] across a quorum.
          Ordinary accepts carry [None] and behave exactly as before. *)
  | Apply of { group : string; pos : int; entry : Txn.entry }
      (** One-way: write the decided entry to the log (Figure 3, step 6). *)
  | Claim_leadership of { group : string; pos : int; claimant : string }
      (** Fast path: am I ([claimant] = txn id) the first client to start
          the commit protocol for this position at its leader? *)
  | Submit of { group : string; record : Txn.record }
      (** Long-term-leader protocol (§7–§8): hand the whole transaction to
          the site acting as transaction manager, which orders it,
          conflict-checks it and replicates it. *)
  | Get_snapshot of { group : string }
      (** Catch-up past a compaction point: ask a peer for its applied data
          state when the needed log entries can no longer be learned. *)

type response =
  | Read_position of { position : int; leader : int option }
      (** [leader] is the datacenter of the winner of [position] — the
          leader for commit position [position + 1] (§4.4.2 of Megastore,
          adopted in §4.1). *)
  | Value of { value : string option }
      (** [None]: the key has never been written as of that position. *)
  | Promise of { vote : (Ballot.t * Txn.entry) option }
      (** Prepare succeeded; here is my last vote (Algorithm 1, line 11). *)
  | Prepare_reject of { next_bal : Ballot.t }
      (** Already answered a higher prepare (line 14); hint for the
          client's next ballot. *)
  | Accept_reply of { ok : bool; next_bal : Ballot.t }
  | Applied
  | Claim_reply of { first : bool }
  | Submit_reply of { result : submit_result }
  | Snapshot_reply of { applied : int; rows : (string * int * string) list }
      (** The peer's applied watermark and latest [(key, version, value)]
          per data row of the group. *)
  | Failed of string
      (** Service-side failure (e.g. could not learn a missing log entry
          because no quorum is reachable). *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
