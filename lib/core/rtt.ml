(* Per-destination EWMA round-trip estimator backing the adaptive timeout
   (Config.adaptive_timeouts) and hedged-read ordering
   (Config.hedged_reads). Pure arithmetic — no RNG, no clock — so
   creating one never perturbs a deterministic run. *)

type t = {
  floor : float;
  cap : float;
  alpha : float;
  multiplier : float;
  ewma : float array; (* per destination; nan = no sample yet *)
}

let default_alpha = 0.125 (* TCP's 1/8: smooth but responsive *)

let create ?(alpha = default_alpha) ?(multiplier = 3.0) ~floor ~cap ~dcs () =
  if floor <= 0.0 || cap < floor then
    invalid_arg "Rtt.create: need 0 < floor <= cap";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Rtt.create: alpha not in (0,1]";
  if multiplier < 1.0 then invalid_arg "Rtt.create: multiplier < 1";
  { floor; cap; alpha; multiplier; ewma = Array.make dcs Float.nan }

let observe t ~dst sample =
  if sample >= 0.0 && dst >= 0 && dst < Array.length t.ewma then
    let old = t.ewma.(dst) in
    t.ewma.(dst) <-
      (if Float.is_nan old then sample
       else ((1.0 -. t.alpha) *. old) +. (t.alpha *. sample))

let estimate t ~dst =
  if dst < 0 || dst >= Array.length t.ewma then None
  else
    let e = t.ewma.(dst) in
    if Float.is_nan e then None else Some e

let clamp t x = Float.min t.cap (Float.max t.floor x)

(* An unsampled destination gets the full cap: adaptivity only ever
   tightens a timeout after evidence, never guesses short. *)
let timeout t ~dst =
  match estimate t ~dst with
  | None -> t.cap
  | Some e -> clamp t (t.multiplier *. e)

let broadcast_timeout t ~dsts =
  List.fold_left (fun acc dst -> Float.max acc (timeout t ~dst)) t.floor dsts
