(** End-to-end correctness verification of a finished simulation.

    Runs every oracle the theory section (§3) calls for against a cluster's
    final state and audit trail:

    + (R1) all datacenter logs agree on every position;
    + (L2) every transaction occupies at most one log slot;
    + (L1) + outcome honesty: committed ⇔ present in the log at the
      reported position, aborted ⇒ absent;
    + (L3)/(A1)/(A2) structurally: no transaction's read set was
      overwritten between its read position and its serial point;
    + value-level one-copy serializability: replaying the log serially
      reproduces every value every client observed.

    Tests and examples call this after every run; a protocol bug that
    breaks one-copy serializability cannot pass silently. *)

val check :
  ?archive:(int * Mdds_types.Txn.entry) list ->
  Cluster.t -> group:string -> (unit, string) result
(** [archive] holds log entries captured *before* a compaction discarded
    them from every replica (the chaos engine archives a datacenter's log
    prefix whenever it injects a compaction). They are merged with the
    live union log — and must agree with it — so the oracles still see the
    complete history. Verification of uncompacted runs needs no archive. *)

val check_exn :
  ?archive:(int * Mdds_types.Txn.entry) list -> Cluster.t -> group:string -> unit
(** Raises [Failure] with the violation description. *)
