(** End-to-end correctness verification of a finished simulation.

    Runs every oracle the theory section (§3) calls for against a cluster's
    final state and audit trail:

    + (R1) all datacenter logs agree on every position;
    + (L2) every transaction occupies at most one log slot;
    + (L1) + outcome honesty: committed ⇔ present in the log at the
      reported position, aborted ⇒ absent;
    + (L3)/(A1)/(A2) structurally: no transaction's read set was
      overwritten between its read position and its serial point;
    + value-level one-copy serializability: replaying the log serially
      reproduces every value every client observed.

    Tests and examples call this after every run; a protocol bug that
    breaks one-copy serializability cannot pass silently. *)

val check :
  ?archive:(int * Mdds_types.Txn.entry) list ->
  Cluster.t -> group:string -> (unit, string) result
(** [archive] holds log entries captured *before* a compaction discarded
    them from every replica (the chaos engine archives a datacenter's log
    prefix whenever it injects a compaction). They are merged with the
    live union log — and must agree with it — so the oracles still see the
    complete history. Verification of uncompacted runs needs no archive. *)

val check_exn :
  ?archive:(int * Mdds_types.Txn.entry) list -> Cluster.t -> group:string -> unit
(** Raises [Failure] with the violation description. *)

val check_cross :
  ?archives:(string * (int * Mdds_types.Txn.entry) list) list ->
  Cluster.t -> groups:string list -> (unit, string) result
(** Cross-group atomicity oracle (PROTOCOL.md §10) over the participant
    groups' merged logs and the pseudo-group audit events:

    + every logged prepare is resolved by an outcome whose verdict equals
      the decision logged in its coordinator's group — in-doubt
      transactions are settled, never invented;
    + a committed transaction has a prepare and a commit outcome applying
      exactly the prepared writes in {e every} participant group, and its
      prepares agree on coordinator and participants;
    + window exclusivity: between a prepare and its first outcome no
      other effective record touches the prepared footprint in that
      group (the guarantee cross-group 1SR rests on);
    + outcome honesty: a client-reported commit ⇔ a logged commit
      decision (write-once, first wins);
    + value-level: each group's effective log, replayed serially,
      reproduces every value the cross-group transaction observed at its
      per-group read position.

    [archives] maps a group name to log entries archived before
    compaction, exactly as {!check}'s [archive]. *)

val check_cross_exn :
  ?archives:(string * (int * Mdds_types.Txn.entry) list) list ->
  Cluster.t -> groups:string list -> unit
