(** Transaction-tier configuration.

    The defaults reproduce the paper's prototype (§6): 2 s message-loss
    timeout, the leader-per-position fast path enabled, combination and
    unlimited promotion for Paxos-CP. *)

type protocol =
  | Basic  (** The basic Paxos commit protocol (§4). *)
  | Cp  (** Paxos-CP: combination + promotion (§5). *)
  | Leader
      (** The long-term-leader design the paper sketches as related/future
          work (§7–§8): clients ship their whole transaction to one
          designated site, which orders transactions, performs fine-grained
          conflict checks against committed state, and replicates log
          entries with Multi-Paxos-style single-round accepts. Fewer
          message rounds per commit, but a single site does most of the
          work and remote clients pay a wide-area hop. *)

type t = {
  protocol : protocol;
  rpc_timeout : float;
      (** Seconds before an unanswered message counts as lost (paper: 2 s). *)
  processing_delay : float;
      (** Service-side processing time per request, seconds — stands in for
          the HBase operation cost in the paper's prototype. *)
  max_promotions : int option;
      (** Promotion attempts before aborting; [None] = unlimited (paper). *)
  enable_combination : bool;  (** Paxos-CP combination enhancement. *)
  enable_fast_path : bool;
      (** Leader-per-log-position optimization (§4.1): skip the prepare
          phase when first at the position's leader. *)
  exhaustive_combination_limit : int;
      (** Max candidate transactions for the exhaustive ordering search;
          beyond it, the greedy single pass is used (§5). *)
  combine_probe_budget : int;
      (** Insertion probes the exhaustive combination search may spend
          before cutting over to the greedy pass (see {!Combine.best}).
          The default never triggers at the default
          [exhaustive_combination_limit]; it only guards raised limits. *)
  max_rounds : int;
      (** Ballot attempts per log position before reporting the system
          unavailable (liveness valve; Paxos alone cannot guarantee
          termination under contention). *)
  backoff_min : float;
  backoff_max : float;
      (** Uniform random sleep bounds (seconds) before re-entering the
          prepare phase (Algorithm 2, lines 40 and 55). *)
  backoff_decorrelated : bool;
      (** [false] (paper behaviour, default): every retry sleeps a fresh
          uniform draw from [[backoff_min, backoff_max]]. [true]:
          decorrelated exponential jitter — each sleep is
          [min backoff_max (uniform backoff_min (3 × previous))], so
          rival proposers spread out quickly under contention while the
          cap keeps worst-case latency at [backoff_max]. The flag only
          changes the draw inside {!Proposer.run} retries; defaults
          preserve byte-identical figures. *)
  prepare_linger : float;
      (** Extra seconds to keep collecting prepare responses after a
          quorum of promises, so the tally sees more than a bare majority
          (the combination window of §5 depends on it). *)
  read_attempts : int;
      (** How many datacenters a client tries for [begin]/[read] before
          giving up (local first, then random others; §2.2). *)
  initial_leader : int;
      (** [Leader] protocol: the datacenter clients prefer as transaction
          manager; on unreachability they probe the next one (round-robin). *)
  adaptive_timeouts : bool;
      (** [false] (paper behaviour, default): every call and broadcast
          waits the fixed [rpc_timeout]. [true]: per-destination adaptive
          timeouts from an EWMA of observed RTTs ({!Rtt}), clamped to
          [[adaptive_floor, rpc_timeout]] — a slow-but-alive or silent
          datacenter is given up on after a few believed RTTs instead of
          the full fixed window. Off ⇒ byte-identical figures. *)
  adaptive_floor : float;
      (** Lower clamp of the adaptive timeout (seconds); guards against
          an over-confident estimator starving a genuinely slow reply. *)
  adaptive_multiplier : float;
      (** Adaptive timeout = [adaptive_multiplier × ewma RTT], clamped. *)
  hedged_reads : bool;
      (** [false] (paper behaviour, default): [begin]/[read] fall back to
          the other datacenters in random order after full timeouts.
          [true]: fall back in nearest-first order (lowest estimated RTT
          first) after the adaptive per-destination delay — the hedged
          failover that keeps reads live while a local datacenter is slow
          or half-cut. Requires {!adaptive_timeouts} to shorten the
          per-destination wait; the ordering alone needs only samples. *)
  batch_max : int;
      (** [Leader] protocol throughput mode: max queued transactions the
          manager combines into one log position ({!Mdds_core.Combine}'s
          validity rule orders them). [1] (default) disables batching —
          every submission is proposed alone, byte-identical to the paper
          path. *)
  batch_fill : float;
      (** Fill-or-timeout: once the manager has at least one queued
          transaction but fewer than [batch_max], it waits at most this
          many seconds for more before proposing (only read when
          [batch_max > 1]). *)
  pipeline_depth : int;
      (** [Leader] protocol throughput mode: concurrent in-flight log
          positions the manager may keep open (Multi-Paxos pipelining;
          positions assigned eagerly, applies stay in log order via the
          WAL watermark, failures fall back to in-order single-position
          resolution). [1] (default) disables pipelining. *)
  epoch_interval : float;
      (** [Leader] protocol epoch-sealed commit (PROTOCOL.md §11): [> 0]
          switches the per-group drainer from fill-or-timeout batching to
          epoch sealing — submissions are admitted into the open epoch
          under the batching predicates, the epoch seals after this many
          seconds (or earlier when [batch_max], acting as the fill bound,
          is reached), and the sealed epoch is proposed as one
          multi-record log entry: one consensus round amortized over the
          whole window. [0.0] (default) disables epoch sealing, so all
          paper figures take the unchanged path. *)
}

val default : t
(** Paxos-CP with the paper's parameters. *)

val basic : t
(** [default] with [protocol = Basic]. *)

val leader : t
(** [default] with [protocol = Leader]. *)

val throughput_mode : t -> bool
(** True iff batching, pipelining, or epoch sealing is enabled
    ([batch_max > 1], [pipeline_depth > 1], or [epoch_interval > 0]).
    Off in {!default}/{!basic}/{!leader}, so all paper figures take the
    unbatched path unchanged. *)

val epoch_mode : t -> bool
(** True iff epoch sealing is enabled ([epoch_interval > 0]). Implies
    {!throughput_mode}. *)

val throughput : ?batch_max:int -> ?pipeline_depth:int -> t -> t
(** Steady-state throughput mode: [Leader] protocol with batching
    (default [batch_max = 8]) and pipelining (default
    [pipeline_depth = 4]) enabled. Validates like {!make}. *)

val epoch : ?fill:int -> ?pipeline_depth:int -> ?interval:float -> t -> t
(** Epoch-sealed commit mode: [Leader] protocol with [epoch_interval]
    set to [interval] (default 0.05 s), [batch_max] repurposed as the
    epoch fill bound (default [fill = 64]) and [pipeline_depth]
    (default 1: one epoch in flight at a time). Validates like
    {!make}. *)

val make :
  ?base:t ->
  ?rpc_timeout:float ->
  ?backoff_min:float ->
  ?backoff_max:float ->
  ?adaptive_floor:float ->
  ?batch_max:int ->
  ?pipeline_depth:int ->
  ?epoch_interval:float ->
  unit ->
  t
(** [make ()] is {!default}; each optional argument overrides one field
    of [base] (default {!default}). Raises [Invalid_argument] with a
    descriptive message on contradictory knobs: [batch_max < 1],
    [pipeline_depth < 1], [epoch_interval < 0],
    [backoff_min > backoff_max], or
    [adaptive_floor > rpc_timeout] — each of which would otherwise be
    undefined behavior downstream (empty batch windows, inverted
    backoff intervals, a timeout floor above its cap). *)

val with_protocol : protocol -> t -> t

val pp_protocol : Format.formatter -> protocol -> unit
val protocol_name : protocol -> string
