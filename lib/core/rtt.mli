(** Per-destination EWMA round-trip estimator for adaptive timeouts.

    The paper's prototype uses a fixed 2 s message-loss timeout (§6).
    Under gray failure — a slow-but-alive datacenter, a flapping route —
    a fixed timeout either waits far too long (healthy RTTs are tens of
    milliseconds) or cannot be shortened safely. The estimator tracks an
    exponentially weighted moving average of observed RTTs per
    destination and derives a timeout of [multiplier × ewma], clamped to
    [[floor, cap]] where [cap] is {!Config.t.rpc_timeout} — so the
    adaptive timeout is never longer than the paper's, and never shorter
    than the floor. A destination with no samples gets the full [cap]:
    adaptivity only tightens after evidence.

    Pure arithmetic — no RNG, no clock access — so creating and feeding
    one never perturbs a deterministic run. Behind
    {!Config.t.adaptive_timeouts}, which defaults to the paper's fixed
    timeout. *)

type t

val create :
  ?alpha:float -> ?multiplier:float -> floor:float -> cap:float -> dcs:int ->
  unit -> t
(** [alpha] is the EWMA weight of a new sample (default 1/8, TCP's
    smoothing constant); [multiplier] scales the mean into a timeout
    (default 3). Raises [Invalid_argument] unless
    [0 < floor <= cap], [0 < alpha <= 1] and [multiplier >= 1]. *)

val observe : t -> dst:int -> float -> unit
(** Feed one observed round-trip time (seconds). Negative samples and
    out-of-range destinations are ignored. *)

val estimate : t -> dst:int -> float option
(** Current EWMA for the destination; [None] before any sample. *)

val timeout : t -> dst:int -> float
(** [clamp floor cap (multiplier × ewma)]; [cap] with no samples. Always
    within [[floor, cap]]. *)

val broadcast_timeout : t -> dsts:int list -> float
(** The max of {!timeout} over the destinations — the adaptive wait for a
    quorum round, bounded by the slowest believed-alive acceptor. *)
