module Txn = Mdds_types.Txn
module Tally = Mdds_paxos.Tally
module Rpc = Mdds_net.Rpc
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng

exception Unavailable of string

type t = {
  env : Proposer.env;
  audit : Audit.t;
  id : string;
  mutable txn_counter : int;
}

type txn = {
  client : t;
  group : string;
  txn_id : string;
  began_at : float;
  read_position : int;
  leader : int option;
  mutable reads : (Txn.key * string option) list;  (* newest first *)
  mutable writes : (Txn.key * string) list;  (* newest first, latest wins *)
  mutable finished : bool;
}

let create ~rpc ~config ~dc ~dcs ~audit ~id ~trace =
  let rng = Rng.split (Engine.rng (Rpc.engine rpc)) in
  { env = Proposer.make_env ~rpc ~config ~dc ~dcs ~rng ~trace; audit; id; txn_counter = 0 }

let dc t = t.env.Proposer.dc

let now t = Engine.now (Rpc.engine t.env.Proposer.rpc)

(* Datacenters to try for a service request: local first (the paper's
   co-location optimization), then the others in random order — or, under
   [hedged_reads], nearest first by estimated RTT so a hedged retry lands
   on the most likely responder. Unsampled destinations sort last (no
   evidence ⇒ no preference); the sort is stable so they keep topology
   order among themselves and draw no RNG. *)
let service_order t =
  let others =
    Array.of_list (List.filter (fun d -> d <> t.env.Proposer.dc) t.env.Proposer.dcs)
  in
  (match (t.env.Proposer.config.Config.hedged_reads, t.env.Proposer.rtt) with
  | true, Some rtt ->
      let far = 2.0 *. t.env.Proposer.config.Config.rpc_timeout in
      let dist d = Option.value (Rtt.estimate rtt ~dst:d) ~default:far in
      Array.stable_sort (fun a b -> Float.compare (dist a) (dist b)) others
  | _ -> Rng.shuffle t.env.Proposer.rng others);
  t.env.Proposer.dc :: Array.to_list others

(* Issue a request with datacenter fallback (§2.2: "If a Transaction
   Client cannot access the Transaction Service within its own datacenter,
   it can access the Transaction Service in another datacenter"). Each
   destination is given its adaptive timeout when the flag is on — the
   hedged-failover delay — and the full fixed [rpc_timeout] otherwise.
   Replies feed the RTT estimator; a reply from a non-local datacenter is
   a counted failover. *)
let request_with_fallback t req ~describe =
  let config = t.env.Proposer.config in
  let rec go attempts = function
    | [] -> raise (Unavailable describe)
    | _ when attempts <= 0 -> raise (Unavailable describe)
    | dst :: rest -> (
        let started = now t in
        match
          Rpc.call t.env.Proposer.rpc ~src:t.env.Proposer.dc ~dst
            ~timeout:(Proposer.timeout_for t.env ~dst) req
        with
        | Some (Messages.Failed _) | None -> go (attempts - 1) rest
        | Some resp ->
            (match t.env.Proposer.rtt with
            | Some rtt -> Rtt.observe rtt ~dst (now t -. started)
            | None -> ());
            if dst <> t.env.Proposer.dc then Audit.note_hedge t.audit;
            resp)
  in
  go config.read_attempts (service_order t)

let begin_txn t ~group ~txn_id =
  match request_with_fallback t (Messages.Get_read_position { group }) ~describe:"begin" with
  | Messages.Read_position { position; leader } ->
      {
        client = t;
        group;
        txn_id;
        began_at = now t;
        read_position = position;
        leader;
        reads = [];
        writes = [];
        finished = false;
      }
  | _ -> raise (Unavailable "begin: unexpected response")

let begin_ t ~group =
  t.txn_counter <- t.txn_counter + 1;
  let txn_id = Printf.sprintf "%s/%d" t.id t.txn_counter in
  begin_txn t ~group ~txn_id

let txn_id txn = txn.txn_id
let read_position txn = txn.read_position

let read txn key =
  match List.assoc_opt key txn.writes with
  | Some v -> Some v (* property (A1): read your own writes *)
  | None -> (
      match List.assoc_opt key txn.reads with
      | Some v -> v (* repeated reads at one position are stable (A2) *)
      | None -> (
          let t = txn.client in
          match
            request_with_fallback t
              (Messages.Read { group = txn.group; key; position = txn.read_position })
              ~describe:("read " ^ key)
          with
          | Messages.Value { value } ->
              txn.reads <- (key, value) :: txn.reads;
              value
          | _ -> raise (Unavailable "read: unexpected response")))

let write txn key value =
  txn.writes <- (key, value) :: List.remove_assoc key txn.writes

(* ------------------------------------------------------------------ *)
(* Commit protocols.                                                   *)

let try_claim t txn ~pos =
  let config = t.env.Proposer.config in
  if not config.enable_fast_path then None
  else
    match txn.leader with
    | None -> None
    | Some leader -> (
        match
          Rpc.call t.env.Proposer.rpc ~src:t.env.Proposer.dc ~dst:leader
            ~timeout:(Proposer.timeout_for t.env ~dst:leader)
            (Messages.Claim_leadership
               { group = txn.group; pos; claimant = txn.txn_id })
        with
        | Some (Messages.Claim_reply { first = true }) -> Some ()
        | _ -> None)

(* Fold one instance's proposer statistics into the transaction total. *)
let add_stats (acc : Audit.protocol_stats) (s : Proposer.stats) =
  {
    Audit.prepare_rounds = acc.Audit.prepare_rounds + s.Proposer.prepare_rounds;
    accept_rounds = acc.Audit.accept_rounds + s.Proposer.accept_rounds;
    fast_path = acc.Audit.fast_path || s.Proposer.fast_path_used;
    instances = acc.Audit.instances + 1;
  }

(* A commit attempt is "exposed" once an accept message carrying the
   client's own transaction has been sent for a still-undecided position:
   even if the client then gives up, some other proposer may find that
   vote and drive it to a decision (the paper: a client that fails in the
   middle of the commit protocol "may be committed or aborted"). A give-up
   after exposure is therefore reported as {!Audit.Unknown}, never as a
   false abort. Exposure at a position later decided for someone else is
   dead: the exposed votes sit at lower ballots than the chosen value's,
   so those aborts remain truthful. *)
let commit_basic t txn (record : Txn.record) =
  let own = [ record ] in
  let pos = txn.read_position + 1 in
  let fast = match try_claim t txn ~pos with Some () -> Some own | None -> None in
  let exposed = ref (fast <> None) in
  let choose votes =
    let entry = Tally.find_winning votes ~own in
    if Txn.mem_entry ~txn_id:record.txn_id entry then exposed := true;
    Proposer.Propose entry
  in
  let result, stats = Proposer.run t.env ~group:txn.group ~pos ?fast ~choose () in
  let stats = add_stats Audit.no_stats stats in
  match result with
  | Proposer.Decided entry ->
      if Txn.mem_entry ~txn_id:record.txn_id entry then
        ( Audit.Committed
            { position = pos; promotions = 0; combined = List.length entry > 1 },
          stats )
      else (Audit.Aborted { reason = Audit.Lost_position; promotions = 0 }, stats)
  | Proposer.Observed _ ->
      (* The basic chooser never stops early. *)
      assert false
  | Proposer.Unavailable ->
      if !exposed then (Audit.Unknown, stats)
      else (Audit.Aborted { reason = Audit.Unavailable; promotions = 0 }, stats)

let commit_cp t txn (record : Txn.record) =
  let config = t.env.Proposer.config in
  let own = [ record ] in
  let total = List.length t.env.Proposer.dcs in
  (* Exposure of our value at the current (undecided) instance — see the
     comment on {!commit_basic}. Reset per instance: exposure at a decided
     position is dead. *)
  let exposed = ref false in
  let choose votes =
    match Tally.decide ~total ~equal:Txn.equal_entry votes with
    | Tally.Free ->
        let entry =
          if config.enable_combination then
            let voted = List.filter_map (fun (r : _ Tally.response) ->
                Option.map snd r.vote) votes
            in
            Combine.best ~probe_budget:config.combine_probe_budget ~own:record
              ~candidates:(Combine.candidates_of_votes ~own:record voted)
              ~exhaustive_limit:config.exhaustive_combination_limit ()
          else own
        in
        exposed := true;
        Proposer.Propose entry
    | Tally.Chosen entry ->
        if Txn.mem_entry ~txn_id:record.txn_id entry then Proposer.Propose entry
        else Proposer.Stop entry
    | Tally.Constrained entry ->
        if Txn.mem_entry ~txn_id:record.txn_id entry then exposed := true;
        Proposer.Propose entry
  in
  let rec go pos promotions acc =
    let fast =
      if promotions = 0 then
        match try_claim t txn ~pos with Some () -> Some own | None -> None
      else None
    in
    exposed := fast <> None;
    let result, istats = Proposer.run t.env ~group:txn.group ~pos ?fast ~choose () in
    let acc = add_stats acc istats in
    match result with
    | Proposer.Decided entry when Txn.mem_entry ~txn_id:record.txn_id entry ->
        ( Audit.Committed
            { position = pos; promotions; combined = List.length entry > 1 },
          acc )
    | Proposer.Decided entry | Proposer.Observed entry ->
        (* Lost this position; promotion admission test (§5): abort if we
           read anything the winners wrote. *)
        if Txn.conflicts_with_any record entry then
          (Audit.Aborted { reason = Audit.Conflict; promotions }, acc)
        else (
          match config.max_promotions with
          | Some cap when promotions >= cap ->
              (Audit.Aborted { reason = Audit.Promotion_limit; promotions }, acc)
          | _ -> go (pos + 1) (promotions + 1) acc)
    | Proposer.Unavailable ->
        if !exposed then (Audit.Unknown, acc)
        else (Audit.Aborted { reason = Audit.Unavailable; promotions }, acc)
  in
  go (txn.read_position + 1) 0 Audit.no_stats

(* Long-term-leader protocol: probe a manager for liveness, then hand it
   the whole transaction. A submission that times out after being sent is
   in doubt — it may still commit at the manager — so the client reports
   [Unknown] rather than guessing (the probe keeps this rare: an
   unreachable manager is detected before anything is submitted). *)
let commit_leader t txn (record : Txn.record) =
  let config = t.env.Proposer.config in
  let total = List.length t.env.Proposer.dcs in
  let probe dst =
    match
      Rpc.call t.env.Proposer.rpc ~src:t.env.Proposer.dc ~dst
        ~timeout:config.rpc_timeout
        (Messages.Get_read_position { group = txn.group })
    with
    | Some _ -> true
    | None -> false
  in
  let submit dst =
    (* Throughput mode adds queueing ahead of the proposal: the fill wait
       plus up to [pipeline_depth] positions draining ahead of ours. The
       default stays exactly the pre-existing 2×, byte-identical. *)
    let timeout =
      if Config.throughput_mode config then
        (2.0 +. float_of_int config.pipeline_depth) *. config.rpc_timeout
        +. config.batch_fill
      else 2.0 *. config.rpc_timeout
    in
    Rpc.call t.env.Proposer.rpc ~src:t.env.Proposer.dc ~dst ~timeout
      (Messages.Submit { group = txn.group; record })
  in
  let rec go attempts manager =
    if attempts <= 0 then Audit.Aborted { reason = Audit.Unavailable; promotions = 0 }
    else if not (probe manager) then go (attempts - 1) ((manager + 1) mod total)
    else
      match submit manager with
      | Some (Messages.Submit_reply { result = Messages.Accepted_at position }) ->
          Audit.Committed { position; promotions = 0; combined = false }
      | Some (Messages.Submit_reply { result = Messages.Stale_read }) ->
          Audit.Aborted { reason = Audit.Conflict; promotions = 0 }
      | Some (Messages.Submit_reply { result = Messages.In_doubt }) ->
          Audit.Unknown
      | Some (Messages.Submit_reply { result = Messages.No_quorum })
      | Some (Messages.Failed _) ->
          Audit.Aborted { reason = Audit.Unavailable; promotions = 0 }
      | Some _ -> Audit.Aborted { reason = Audit.Unavailable; promotions = 0 }
      | None -> Audit.Unknown (* in doubt: submitted but no reply *)
  in
  (go (total + 1) (config.initial_leader mod total), Audit.no_stats)

let commit txn =
  if txn.finished then invalid_arg "Client.commit: transaction already finished";
  txn.finished <- true;
  let t = txn.client in
  let commit_started_at = now t in
  let observed = List.rev txn.reads in
  let finish ?(stats = Audit.no_stats) record outcome =
    Mdds_sim.Trace.record t.env.Proposer.trace
      ~source:("cli." ^ t.id) ~category:"commit"
      "%s: %s" txn.txn_id
      (match outcome with
      | Audit.Committed { position; promotions; _ } ->
          Printf.sprintf "committed pos=%d promotions=%d" position promotions
      | Audit.Aborted { reason; _ } ->
          Format.asprintf "aborted (%a)" Audit.pp_reason reason
      | Audit.Read_only_committed -> "read-only commit"
      | Audit.Unknown -> "in doubt");
    Audit.record t.audit
      {
        Audit.group = txn.group;
        record;
        observed;
        outcome;
        began_at = txn.began_at;
        committed_at = now t;
        commit_started_at;
        client_dc = t.env.Proposer.dc;
        stats;
      };
    outcome
  in
  let reads = List.rev_map fst txn.reads in
  let writes =
    List.rev_map (fun (key, value) -> { Txn.key; value }) txn.writes
  in
  let record =
    Txn.make_record ~txn_id:txn.txn_id ~origin:t.env.Proposer.dc
      ~read_position:txn.read_position ~reads ~writes
  in
  if writes = [] then finish record Audit.Read_only_committed
  else
    let outcome, stats =
      match t.env.Proposer.config.protocol with
      | Config.Basic -> commit_basic t txn record
      | Config.Cp -> commit_cp t txn record
      | Config.Leader -> commit_leader t txn record
    in
    finish ~stats record outcome

(* ------------------------------------------------------------------ *)
(* Cross-group transactions: multi-shot atomic commit (PROTOCOL.md §10).

   A cross-group transaction buffers reads and writes per participant
   group, then commits with 2PC whose every step is an ordinary record in
   a per-group Paxos log:

   + prepare: a {!Twopc.prepare_record} is submitted to each participant
     group in turn; the manager's single-group admission check over the
     transaction's footprint (reads ∪ write keys) doubles as the vote.
   + decide: with every prepare durably logged, a commit decision is
     submitted to the coordinator's group (the first group in sorted
     order). The decision's {e apply} is the commit point: the WAL's
     write-once rule makes the first decision applied authoritative, so
     a racing in-doubt resolver's abort can beat our commit (never the
     reverse — resolvers only ever abort), and we read the verdict back
     before reporting.
   + outcome: a {!Twopc.outcome_record} per group applies the buffered
     writes (commit) or just the tombstone marker (abort). Outcome
     delivery is not needed for the commit decision to hold: each
     service's in-doubt resolver finishes delivery from the logged
     prepare + decision if the client dies here.

   Presumed abort: a transaction is reported aborted without logging
   anything only when no prepare can possibly have been logged (the
   manager explicitly refused, or no manager was reachable to submit
   to). Once any prepare {e may} exist, the abort is made durable by
   logging an abort decision — and even if that cleanup fails, the
   report stays truthful: only this client can log a commit decision,
   so resolvers can only settle the leftovers to abort. *)

type mtxn = {
  mclient : t;
  mtxn_id : string;
  mbegan_at : float;
  mparts : (string * txn) list;  (* sorted by group, at least one *)
  mutable mfinished : bool;
}

let begin_multi t ~groups =
  let groups = List.sort_uniq String.compare groups in
  if groups = [] then invalid_arg "Client.begin_multi: no groups";
  t.txn_counter <- t.txn_counter + 1;
  let txn_id = Printf.sprintf "%s/%d" t.id t.txn_counter in
  let mparts = List.map (fun group -> (group, begin_txn t ~group ~txn_id)) groups in
  { mclient = t; mtxn_id = txn_id; mbegan_at = now t; mparts; mfinished = false }

let mtxn_id m = m.mtxn_id

let part m ~group ~what =
  match List.assoc_opt group m.mparts with
  | Some txn -> txn
  | None -> invalid_arg (Printf.sprintf "Client.%s: group %S not in transaction" what group)

let read_in m ~group key = read (part m ~group ~what:"read_in") key
let write_in m ~group key value = write (part m ~group ~what:"write_in") key value

(* Submit one record through the leader protocol's probe/rotate loop —
   the transport under every 2PC step. Unlike {!commit_leader} the caller
   needs to distinguish "the manager refused, nothing was logged"
   ([`Rejected]) from "the record may have been logged" ([`Maybe]):
   presumed abort is only sound in the former. A reply is only trusted as
   [`Rejected] when it is the manager's explicit admission refusal;
   everything else after a submission went out is [`Maybe]. *)
let manager_submit t ~group (record : Txn.record) =
  let config = t.env.Proposer.config in
  let total = List.length t.env.Proposer.dcs in
  let probe dst =
    match
      Rpc.call t.env.Proposer.rpc ~src:t.env.Proposer.dc ~dst
        ~timeout:config.rpc_timeout
        (Messages.Get_read_position { group })
    with
    | Some _ -> true
    | None -> false
  in
  let submit dst =
    let timeout =
      if Config.throughput_mode config then
        (2.0 +. float_of_int config.pipeline_depth) *. config.rpc_timeout
        +. config.batch_fill
      else 2.0 *. config.rpc_timeout
    in
    Rpc.call t.env.Proposer.rpc ~src:t.env.Proposer.dc ~dst ~timeout
      (Messages.Submit { group; record })
  in
  let rec go attempts manager =
    if attempts <= 0 then `Unreachable
    else if not (probe manager) then go (attempts - 1) ((manager + 1) mod total)
    else
      match submit manager with
      | Some (Messages.Submit_reply { result = Messages.Accepted_at position }) ->
          `Accepted position
      | Some (Messages.Submit_reply { result = Messages.Stale_read }) -> `Rejected
      | Some _ | None -> `Maybe
  in
  go (total + 1) (config.initial_leader mod total)

let commit_multi m =
  if m.mfinished then
    invalid_arg "Client.commit_multi: transaction already finished";
  m.mfinished <- true;
  match m.mparts with
  | [ (_, txn) ] -> commit txn (* degenerate: an ordinary single-group txn *)
  | parts ->
      let t = m.mclient in
      List.iter (fun (_, txn) -> txn.finished <- true) parts;
      let commit_started_at = now t in
      let txid = m.mtxn_id in
      let groups = List.map fst parts in
      let coordinator = List.hd groups in
      let origin = t.env.Proposer.dc in
      (* The audit event lives under the pseudo-group [cross:g1+g2+...]
         with group-qualified keys: per-group checkers never see it, the
         cross-group atomicity oracle consumes it. *)
      let observed =
        List.concat_map
          (fun (g, txn) ->
            List.rev_map (fun (k, v) -> (g ^ "/" ^ k, v)) txn.reads)
          parts
      in
      let record =
        Txn.make_record ~txn_id:txid ~origin ~read_position:0
          ~reads:(List.map fst observed)
          ~writes:
            (List.concat_map
               (fun (g, txn) ->
                 List.rev_map
                   (fun (k, v) -> { Txn.key = g ^ "/" ^ k; value = v })
                   txn.writes)
               parts)
      in
      let finish outcome =
        Mdds_sim.Trace.record t.env.Proposer.trace ~source:("cli." ^ t.id)
          ~category:"commit" "%s: cross(%s) %s" txid
          (String.concat "+" groups)
          (match outcome with
          | Audit.Committed { position; _ } ->
              Printf.sprintf "committed decision-pos=%d" position
          | Audit.Aborted { reason; _ } ->
              Format.asprintf "aborted (%a)" Audit.pp_reason reason
          | Audit.Read_only_committed -> "read-only commit"
          | Audit.Unknown -> "in doubt");
        Audit.record t.audit
          {
            Audit.group = Twopc.audit_group groups;
            record;
            observed;
            outcome;
            began_at = m.mbegan_at;
            committed_at = now t;
            commit_started_at;
            client_dc = origin;
            stats = Audit.no_stats;
          };
        outcome
      in
      if record.Txn.writes = [] then
        (* No writes anywhere: per-group snapshot reads, commits locally
           like any read-only transaction (§2.2). *)
        finish Audit.Read_only_committed
      else if t.env.Proposer.config.protocol <> Config.Leader then
        invalid_arg
          "Client.commit_multi: cross-group transactions require the leader \
           protocol (manager admission enforces in-doubt blocking)"
      else
        (* Phase 1: prepare in every participant group, in group order.
           [submitted] collects groups whose prepare was or may have been
           logged, with the log position when known. *)
        let rec prepare_all submitted = function
          | [] -> `Prepared (List.rev submitted)
          | (group, txn) :: rest -> (
              let footprint =
                List.sort_uniq String.compare
                  (List.rev_map fst txn.reads @ List.rev_map fst txn.writes)
              in
              let payload =
                {
                  Twopc.coordinator;
                  participants = groups;
                  writes = List.rev txn.writes;
                }
              in
              let prep =
                Twopc.prepare_record ~txid ~origin
                  ~read_position:txn.read_position ~reads:footprint ~payload
              in
              match manager_submit t ~group prep with
              | `Accepted pos ->
                  prepare_all ((group, txn, Some pos) :: submitted) rest
              | `Rejected -> `Abort (Audit.Conflict, List.rev submitted)
              | `Maybe ->
                  `Abort
                    ( Audit.Unavailable,
                      List.rev ((group, txn, None) :: submitted) )
              | `Unreachable -> `Abort (Audit.Unavailable, List.rev submitted))
        in
        (* Log [verdict] in the coordinator's group and read back the
           verdict that actually took (write-once: first applied wins). *)
        let decide verdict =
          match
            manager_submit t ~group:coordinator
              (Twopc.decision_record ~txid ~tag:"cli" ~origin ~verdict)
          with
          | `Accepted dpos -> (
              match
                request_with_fallback t
                  (Messages.Read
                     {
                       group = coordinator;
                       key = Twopc.decision_key txid;
                       position = dpos;
                     })
                  ~describe:"2pc decision"
              with
              | Messages.Value { value = Some v } -> Some (v, dpos)
              | _ -> None
              | exception Unavailable _ -> None)
          | `Rejected | `Maybe | `Unreachable -> None
        in
        (* Best-effort outcome delivery; resolvers finish it if we die. *)
        let outcomes verdict submitted =
          List.iter
            (fun (group, txn, pos) ->
              let writes =
                if String.equal verdict Twopc.commit_verdict then
                  List.rev txn.writes
                else []
              in
              ignore
                (manager_submit t ~group
                   (Twopc.outcome_record ~txid ~tag:"cli" ~origin
                      ~prepare_position:(Option.value pos ~default:0)
                      ~verdict ~writes)))
            submitted
        in
        (match prepare_all [] parts with
        | `Prepared submitted -> (
            match decide Twopc.commit_verdict with
            | Some (verdict, dpos) ->
                outcomes verdict submitted;
                if String.equal verdict Twopc.commit_verdict then
                  finish
                    (Audit.Committed
                       { position = dpos; promotions = 0; combined = false })
                else
                  (* A resolver's abort decision was applied first. *)
                  finish
                    (Audit.Aborted { reason = Audit.Conflict; promotions = 0 })
            | None ->
                (* The decision may or may not have been logged; only its
                   log knows. Resolvers will settle the prepares either
                   way, honoring a logged commit. *)
                finish Audit.Unknown)
        | `Abort (reason, []) ->
            (* Pure presumed abort: no prepare was ever logged. *)
            finish (Audit.Aborted { reason; promotions = 0 })
        | `Abort (reason, submitted) ->
            (match decide Twopc.abort_verdict with
            | Some (verdict, _) -> outcomes verdict submitted
            | None -> () (* resolvers finish the abort from the logs *));
            finish (Audit.Aborted { reason; promotions = 0 }))
