(* True when the current domain is a pool worker (or a caller participating
   in its own pool): nested [map] calls then run sequentially instead of
   spawning domains recursively. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let jobs_override : int option ref = ref None

let set_jobs j = jobs_override := Option.map (max 1) j

let env_jobs () =
  match Sys.getenv_opt "MDDS_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_domains () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

let get_jobs = default_domains

let map ?domains f xs =
  let n = List.length xs in
  let domains = min n (match domains with Some d -> d | None -> default_domains ()) in
  if domains <= 1 || n < 2 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* (index, exn, backtrace) of the smallest-index failure so far. The
       counter dispenses indices in order, so when index [j] fails every
       index below [j] has already been dispensed and will run to
       completion; keeping the minimum therefore yields the exception a
       sequential map would have raised. *)
    let failure = Atomic.make None in
    let record_failure i e bt =
      let rec retry () =
        match Atomic.get failure with
        | Some (j, _, _) when j <= i -> ()
        | cur ->
            if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then
              retry ()
      in
      retry ()
    in
    let work () =
      let rec loop () =
        match Atomic.get failure with
        | Some _ -> () (* stop dispensing; someone already failed *)
        | None ->
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (* A dispensed index is always processed, even if a failure
                 lands concurrently — see the invariant above. *)
              (try results.(i) <- Some (f input.(i))
               with e -> record_failure i e (Printexc.get_raw_backtrace ()));
              loop ()
            end
      in
      loop ()
    in
    let worker () =
      Domain.DLS.set in_worker true;
      work ()
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    (* The caller participates too, flagged as a worker so [f] cannot
       recursively spawn. *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_worker false;
        Array.iter Domain.join spawned)
      work;
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list
          (Array.map
             (function Some v -> v | None -> assert false (* all dispensed *))
             results)
  end
