(* Persistent domain pool for embarrassingly parallel trials.

   The first generation of this module spawned [domains - 1] fresh domains
   on every [map] call and joined them before returning. That made every
   figure pay Domain.spawn/join (plus the GC ramp-up of a brand-new minor
   heap) once per cell batch — measurably slower than sequential on small
   batches. The pool is now process-persistent: worker domains are started
   lazily on the first parallel [map], parked on a condition variable
   between batches, and reused until {!shutdown} (registered [at_exit]) or
   the end of the process.

   Scheduling is self-dispatch from a shared atomic cursor over a dispatch
   [order] array. Callers may pass a per-element [?cost] estimate; the
   dispatch order is then longest-estimated-first, so one expensive trial
   is picked up immediately instead of tail-bounding the batch when a
   cheap-first order leaves it for last. Results are always delivered in
   input order whatever the dispatch order, so the determinism contract
   (byte-identical figures at any domain count) is untouched. *)

(* True when the current domain is a pool worker (or a caller participating
   in its own pool): nested [map] calls then run sequentially instead of
   queueing work the pool could deadlock on. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let jobs_override : int option ref = ref None

let set_jobs j = jobs_override := Option.map (max 1) j

let env_jobs () =
  match Sys.getenv_opt "MDDS_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_domains () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

let get_jobs = default_domains

(* ------------------------------------------------------------------ *)
(* Per-domain GC tuning.

   Trials allocate heavily (every simulated message is a fresh value); the
   default 256k-word minor heap forces frequent minor collections, and on
   OCaml 5 every minor collection is a stop-the-world synchronization of
   all domains. Workers therefore enlarge their minor heap on entry. The
   user stays in charge: an explicit [s=...] in OCAMLRUNPARAM is
   respected, and MDDS_MINOR_HEAP (words) overrides the default size. *)

let default_minor_words = 4 * 1024 * 1024 (* words: 32 MB on 64-bit *)

let ocamlrunparam_pins_minor () =
  match Sys.getenv_opt "OCAMLRUNPARAM" with
  | None -> false
  | Some s ->
      List.exists
        (fun tok -> String.length tok >= 2 && tok.[0] = 's' && tok.[1] = '=')
        (String.split_on_char ',' s)

let worker_minor_words () =
  match Sys.getenv_opt "MDDS_MINOR_HEAP" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> default_minor_words)
  | None -> default_minor_words

let tune_worker_gc () =
  if not (ocamlrunparam_pins_minor ()) then begin
    let g = Gc.get () in
    let want = worker_minor_words () in
    if g.Gc.minor_heap_size < want then
      Gc.set { g with Gc.minor_heap_size = want }
  end

(* ------------------------------------------------------------------ *)
(* Batches.                                                            *)

type batch = {
  n : int;
  order : int array;  (* dispatch order over input indices *)
  run : int -> unit;  (* apply f to input index i; never raises *)
  cursor : int Atomic.t;  (* next position in [order] to dispense *)
  in_flight : int Atomic.t;  (* dispensed but not yet completed *)
  slots : int Atomic.t;  (* worker participation slots remaining *)
  failure : (int * exn * Printexc.raw_backtrace) option Atomic.t;
}

(* (index, exn, backtrace) of the smallest-index failure so far. The
   cursor dispenses positions in dispatch order, but the *kept* failure is
   the smallest input index, so the exception re-raised is the one a
   sequential [List.map] would have raised regardless of dispatch order. *)
let record_failure failure i e bt =
  let rec retry () =
    match Atomic.get failure with
    | Some (j, _, _) when j <= i -> ()
    | cur ->
        if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then
          retry ()
  in
  retry ()

(* ------------------------------------------------------------------ *)
(* The process-global pool.                                            *)

type pool = {
  mutex : Mutex.t;
  wake : Condition.t;  (* workers: a new batch generation is out *)
  drained : Condition.t;  (* caller: a worker finished its share *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  (* Stats, cumulative until [reset_stats]. Slot 0 is the calling domain;
     slot k >= 1 is worker k. Each slot is written only by its owner, the
     scalars only by the caller under [mutex]. *)
  mutable tasks : int array;
  mutable busy : float array;
  mutable batches : int;
  mutable batch_wall : float;
  mutable spawned : int;
}

let pool =
  {
    mutex = Mutex.create ();
    wake = Condition.create ();
    drained = Condition.create ();
    batch = None;
    generation = 0;
    stop = false;
    workers = [||];
    tasks = Array.make 1 0;
    busy = Array.make 1 0.;
    batches = 0;
    batch_wall = 0.;
    spawned = 0;
  }

(* Drain tasks from [b] until the cursor is exhausted or a failure is
   seen. The in-flight counter is raised *before* the cursor fetch, so a
   caller observing [in_flight = 0] after its own drain knows no worker
   can still be about to start a task. *)
let work_on b ~slot =
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  let rec loop () =
    match Atomic.get b.failure with
    | Some _ -> () (* stop dispensing; someone already failed *)
    | None ->
        Atomic.incr b.in_flight;
        let pos = Atomic.fetch_and_add b.cursor 1 in
        if pos >= b.n then ignore (Atomic.fetch_and_add b.in_flight (-1))
        else begin
          (* A dispensed index is always processed, even if a failure
             lands concurrently — smallest-index propagation needs every
             index below the failing one to complete. *)
          b.run b.order.(pos);
          incr count;
          ignore (Atomic.fetch_and_add b.in_flight (-1));
          loop ()
        end
  in
  loop ();
  pool.tasks.(slot) <- pool.tasks.(slot) + !count;
  pool.busy.(slot) <- pool.busy.(slot) +. (Unix.gettimeofday () -. t0)

let worker_main ~slot ~gen0 () =
  Domain.DLS.set in_worker true;
  tune_worker_gc ();
  let rec loop last_gen =
    Mutex.lock pool.mutex;
    while pool.generation = last_gen && not pool.stop do
      Condition.wait pool.wake pool.mutex
    done;
    let gen = pool.generation and b = pool.batch and stop = pool.stop in
    Mutex.unlock pool.mutex;
    if stop then ()
    else begin
      (match b with
      | Some b when Atomic.fetch_and_add b.slots (-1) > 0 ->
          work_on b ~slot;
          Mutex.lock pool.mutex;
          Condition.broadcast pool.drained;
          Mutex.unlock pool.mutex
      | _ -> ());
      loop gen
    end
  in
  loop gen0

(* Grow the worker set to [want] live domains. Called under [pool.mutex]. *)
let ensure_workers want =
  let have = Array.length pool.workers in
  if want > have then begin
    let grow arr zero =
      let g = Array.make (want + 1) zero in
      Array.blit arr 0 g 0 (Array.length arr);
      g
    in
    if Array.length pool.tasks < want + 1 then begin
      pool.tasks <- grow pool.tasks 0;
      pool.busy <- grow pool.busy 0.
    end;
    let gen0 = pool.generation in
    let fresh =
      Array.init (want - have) (fun k ->
          Domain.spawn (worker_main ~slot:(have + k + 1) ~gen0))
    in
    pool.workers <- Array.append pool.workers fresh;
    pool.spawned <- pool.spawned + (want - have)
  end

let shutdown () =
  Mutex.lock pool.mutex;
  let ws = pool.workers in
  pool.workers <- [||];
  pool.stop <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join ws;
  Mutex.lock pool.mutex;
  (* Leave the pool restartable: the next [map] spawns fresh workers. *)
  pool.stop <- false;
  Mutex.unlock pool.mutex

let () = at_exit shutdown

let worker_count () =
  Mutex.lock pool.mutex;
  let n = Array.length pool.workers in
  Mutex.unlock pool.mutex;
  n

(* ------------------------------------------------------------------ *)
(* map                                                                  *)

let dispatch_order ~cost input =
  let n = Array.length input in
  match cost with
  | None -> Array.init n Fun.id
  | Some cost ->
      let keyed = Array.init n (fun i -> (cost input.(i), i)) in
      (* Longest-estimated-first; ties broken by input index so the order
         is deterministic. *)
      Array.sort
        (fun (ca, ia) (cb, ib) ->
          match Float.compare cb ca with 0 -> Int.compare ia ib | c -> c)
        keyed;
      Array.map snd keyed

let map ?domains ?cost f xs =
  let n = List.length xs in
  let domains =
    min n (match domains with Some d -> max 1 d | None -> default_domains ())
  in
  if domains <= 1 || n < 2 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let run i =
      try results.(i) <- Some (f input.(i))
      with e -> record_failure failure i e (Printexc.get_raw_backtrace ())
    in
    let b =
      {
        n;
        order = dispatch_order ~cost input;
        run;
        cursor = Atomic.make 0;
        in_flight = Atomic.make 0;
        slots = Atomic.make (domains - 1);
        failure;
      }
    in
    let t0 = Unix.gettimeofday () in
    Mutex.lock pool.mutex;
    ensure_workers (domains - 1);
    pool.batch <- Some b;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    (* The caller participates too, flagged as a worker so [f] cannot
       recursively enqueue. *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () -> work_on b ~slot:0);
    (* The caller's drain only returns once dispensing is finished, so
       the batch is done when the last in-flight task lands. *)
    Mutex.lock pool.mutex;
    while Atomic.get b.in_flight > 0 do
      Condition.wait pool.drained pool.mutex
    done;
    pool.batch <- None;
    pool.batches <- pool.batches + 1;
    pool.batch_wall <- pool.batch_wall +. (Unix.gettimeofday () -. t0);
    Mutex.unlock pool.mutex;
    match Atomic.get b.failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list
          (Array.map
             (function Some v -> v | None -> assert false (* all dispensed *))
             results)
  end

(* ------------------------------------------------------------------ *)
(* Scheduler stats.                                                     *)

type stats = {
  batches : int;
  tasks_by_domain : int array;
  busy_by_domain : float array;
  batch_wall_seconds : float;
  spawned : int;
  workers_live : int;
}

let stats () =
  Mutex.lock pool.mutex;
  let live = Array.length pool.workers in
  let upto = 1 + max live (Array.length pool.tasks - 1) in
  let s =
    {
      batches = pool.batches;
      tasks_by_domain = Array.sub pool.tasks 0 (min upto (Array.length pool.tasks));
      busy_by_domain = Array.sub pool.busy 0 (min upto (Array.length pool.busy));
      batch_wall_seconds = pool.batch_wall;
      spawned = pool.spawned;
      workers_live = live;
    }
  in
  Mutex.unlock pool.mutex;
  s

let reset_stats () =
  Mutex.lock pool.mutex;
  Array.fill pool.tasks 0 (Array.length pool.tasks) 0;
  Array.fill pool.busy 0 (Array.length pool.busy) 0.;
  pool.batches <- 0;
  pool.batch_wall <- 0.;
  Mutex.unlock pool.mutex

let pp_stats ppf s =
  let total = Array.fold_left ( + ) 0 s.tasks_by_domain in
  let caller = if Array.length s.tasks_by_domain > 0 then s.tasks_by_domain.(0) else 0 in
  Format.fprintf ppf
    "pool: %d batches, %d tasks (%d by caller, %d pulled by workers), %d \
     worker domains spawned (%d live), %.3fs in parallel sections@."
    s.batches total caller (total - caller) s.spawned s.workers_live
    s.batch_wall_seconds;
  Array.iteri
    (fun slot tasks ->
      if slot > 0 || tasks > 0 then
        let busy = s.busy_by_domain.(slot) in
        Format.fprintf ppf
          "  %s: %d tasks, busy %.3fs, idle %.3fs@."
          (if slot = 0 then "caller " else Printf.sprintf "worker%d" slot)
          tasks busy
          (Float.max 0. (s.batch_wall_seconds -. busy)))
    s.tasks_by_domain
