(** Fixed-size domain pool for embarrassingly parallel trials.

    Simulation trials (experiment cells, chaos seeds) are independent: each
    builds its own engine, cluster and RNG from a seed, so trials can run on
    separate OCaml 5 domains without sharing any mutable state. This module
    provides the one primitive the harness needs: an order-preserving
    parallel [map] over a list of such trials.

    Determinism contract: [map f xs] returns exactly what [List.map f xs]
    returns (same values, same order), provided [f] is deterministic per
    element — which every simulator trial is, being a pure function of its
    seed. Parallel figure regeneration is therefore byte-identical to
    sequential regeneration. *)

val default_domains : unit -> int
(** Domains used when {!map} is called without [?domains]: the value set by
    {!set_jobs} if any, else the [MDDS_JOBS] environment variable if it
    parses as a positive integer, else [Domain.recommended_domain_count ()].
    Always at least 1. *)

val set_jobs : int option -> unit
(** Process-wide override for {!default_domains} ([--jobs] knob of the CLIs).
    [None] clears the override. Values below 1 are clamped to 1. Call it from
    the main domain before any parallel work; it is a plain write, not
    synchronized. *)

val get_jobs : unit -> int
(** [default_domains ()], for telemetry. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains f xs] applies [f] to every element of [xs] and returns the
    results in input order.

    - With [domains <= 1], a list shorter than 2, or when called from inside
      a pool worker (nested use), it is exactly [List.map f xs] on the
      calling domain — no domain is spawned.
    - Otherwise [min domains (length xs) - 1] worker domains are spawned and
      the calling domain works alongside them; elements are dispensed in
      index order from a shared counter.
    - If one or more applications raise, the exception of the {e smallest
      failing index} is re-raised (with its backtrace) after all domains are
      joined — the same exception a sequential [List.map] would have raised.
      Remaining undispensed elements are skipped once a failure is seen, but
      every element dispensed before the failure still runs to completion. *)
