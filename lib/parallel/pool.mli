(** Persistent domain pool for embarrassingly parallel trials.

    Simulation trials (experiment cells, chaos seeds) are independent: each
    builds its own engine, cluster and RNG from a seed, so trials can run on
    separate OCaml 5 domains without sharing any mutable state. This module
    provides the one primitive the harness needs: an order-preserving
    parallel {!map} over a list of such trials.

    The pool is process-persistent: worker domains are started lazily on
    the first parallel [map], parked between batches, and reused until
    {!shutdown} (also registered [at_exit]) — no Domain.spawn/join cost per
    call. Workers enlarge their minor heap on entry (default 4M words;
    [MDDS_MINOR_HEAP] overrides in words, and an explicit [s=...] in
    [OCAMLRUNPARAM] is always respected), because on OCaml 5 every minor
    collection synchronizes all domains and trial code allocates heavily.

    Determinism contract: [map f xs] returns exactly what [List.map f xs]
    returns (same values, same order), provided [f] is deterministic per
    element — which every simulator trial is, being a pure function of its
    seed. Parallel figure regeneration is therefore byte-identical to
    sequential regeneration, whatever the domain count or dispatch order. *)

val default_domains : unit -> int
(** Domains used when {!map} is called without [?domains]: the value set by
    {!set_jobs} if any, else the [MDDS_JOBS] environment variable if it
    parses as a positive integer, else [Domain.recommended_domain_count ()].
    Always at least 1. *)

val set_jobs : int option -> unit
(** Process-wide override for {!default_domains} ([--jobs] knob of the CLIs).
    [None] clears the override. Values below 1 are clamped to 1. Call it from
    the main domain before any parallel work; it is a plain write, not
    synchronized. Lowering it parks surplus workers, it does not stop them. *)

val get_jobs : unit -> int
(** [default_domains ()], for telemetry. *)

val map : ?domains:int -> ?cost:('a -> float) -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains ?cost f xs] applies [f] to every element of [xs] and
    returns the results in input order.

    - With [domains <= 1], a list shorter than 2, or when called from inside
      a pool worker (nested use), it is exactly [List.map f xs] on the
      calling domain — no worker is involved.
    - Otherwise at most [min domains (length xs) - 1] pool workers (started
      on demand, reused across calls) work alongside the calling domain;
      elements are dispensed from a shared cursor.
    - [?cost] is a per-element work estimate: when given, elements are
      dispensed longest-estimated-first (ties by input index), so one
      expensive trial cannot tail-bound the batch by being dispensed last.
      The result list is unaffected — only wall-clock time changes.
    - If one or more applications raise, the exception of the {e smallest
      failing index} is re-raised (with its backtrace) after the batch
      drains — the same exception a sequential [List.map] would have
      raised. Remaining undispensed elements are skipped once a failure is
      seen, but every element dispensed before the failure still runs to
      completion. A failure does not poison the pool: the next [map]
      reuses the same workers. *)

val shutdown : unit -> unit
(** Join all pool workers. Idempotent; also registered [at_exit]. The pool
    restarts lazily on the next {!map}, so an explicit shutdown mid-process
    only costs the respawn. Call from the main domain only, never from
    inside a [map]. *)

val worker_count : unit -> int
(** Live worker domains (excluding the calling domain). *)

(** {1 Scheduler statistics}

    Cumulative since process start or {!reset_stats}. Slot 0 of the
    per-domain arrays is the calling domain; slot [k >= 1] is worker [k]. *)

type stats = {
  batches : int;  (** Parallel [map] batches executed. *)
  tasks_by_domain : int array;  (** Tasks pulled from the shared cursor. *)
  busy_by_domain : float array;  (** Seconds spent inside [f]. *)
  batch_wall_seconds : float;  (** Wall seconds inside parallel sections. *)
  spawned : int;  (** Worker domains ever spawned (reuse keeps this flat). *)
  workers_live : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit

val pp_stats : Format.formatter -> stats -> unit
(** Human-readable dump ([--verbose] of the CLIs prints it to stderr so
    stdout byte-identity guarantees are unaffected). *)
