module Txn = Mdds_types.Txn

type violation = { txn_id : string; position : int; message : string }

let pp_violation ppf v =
  Format.fprintf ppf "txn %s at position %d: %s" v.txn_id v.position v.message

let violation txn_id position fmt =
  Printf.ksprintf (fun message -> Error { txn_id; position; message }) fmt

(* Walk the log in serial order, tracking the log position of the last
   write to each key; a record must see no write to its read set after its
   read position. *)
let check_log log =
  let last_write : (Txn.key, int * string) Hashtbl.t = Hashtbl.create 256 in
  let rec entries = function
    | [] -> Ok ()
    | (pos, entry) :: rest ->
        let rec records = function
          | [] -> entries rest
          | (r : Txn.record) :: more -> (
              (* The footprint's deduped read array, in the same sorted
                 order [read_set] used to return, so the first stale key
                 found — and hence the violation message — is unchanged. *)
              let stale =
                Array.find_opt
                  (fun key ->
                    match Hashtbl.find_opt last_write key with
                    | Some (wpos, _) when wpos > r.read_position -> true
                    | _ -> false)
                  (Txn.read_keys r)
              in
              match stale with
              | Some key ->
                  let wpos, writer = Hashtbl.find last_write key in
                  violation r.txn_id pos
                    "stale read of %s: wrote at position %d by %s, read position %d"
                    key wpos writer r.read_position
              | None ->
                  Array.iter
                    (fun key -> Hashtbl.replace last_write key (pos, r.txn_id))
                    (Txn.write_keys r);
                  records more)
        in
        records entry
  in
  entries log

let replay log ~observed =
  let current : (Txn.key, string) Hashtbl.t = Hashtbl.create 256 in
  let rec entries = function
    | [] -> Ok ()
    | (pos, entry) :: rest ->
        let rec records = function
          | [] -> entries rest
          | (r : Txn.record) :: more -> (
              let mismatch =
                match observed r.txn_id with
                | None -> None
                | Some pairs ->
                    List.find_opt
                      (fun (key, seen) -> Hashtbl.find_opt current key <> seen)
                      pairs
              in
              match mismatch with
              | Some (key, seen) ->
                  violation r.txn_id pos
                    "read %s = %s but the serial execution holds %s" key
                    (match seen with None -> "<none>" | Some v -> Printf.sprintf "%S" v)
                    (match Hashtbl.find_opt current key with
                    | None -> "<none>"
                    | Some v -> Printf.sprintf "%S" v)
              | None ->
                  List.iter
                    (fun (w : Txn.write) -> Hashtbl.replace current w.key w.value)
                    r.writes;
                  records more)
        in
        records entry
  in
  entries log

let unique_txn_ids log =
  let seen = Hashtbl.create 256 in
  let rec go = function
    | [] -> Ok ()
    | (pos, entry) :: rest ->
        let rec records = function
          | [] -> go rest
          | (r : Txn.record) :: more -> (
              match Hashtbl.find_opt seen r.txn_id with
              | Some first ->
                  violation r.txn_id pos "also appears at position %d (L2 violation)"
                    first
              | None ->
                  Hashtbl.replace seen r.txn_id pos;
                  records more)
        in
        records entry
  in
  go log

let check_read_only log ~readers =
  let current : (Txn.key, string) Hashtbl.t = Hashtbl.create 256 in
  let readers =
    List.sort (fun (_, a, _) (_, b, _) -> Int.compare a b) readers
  in
  let check_reader (txn_id, rp, pairs) =
    match
      List.find_opt (fun (key, seen) -> Hashtbl.find_opt current key <> seen) pairs
    with
    | None -> Ok ()
    | Some (key, seen) ->
        violation txn_id rp "read-only txn read %s = %s but position %d holds %s"
          key
          (match seen with None -> "<none>" | Some v -> Printf.sprintf "%S" v)
          rp
          (match Hashtbl.find_opt current key with
          | None -> "<none>"
          | Some v -> Printf.sprintf "%S" v)
  in
  let apply_entry entry =
    List.iter
      (fun (r : Txn.record) ->
        List.iter
          (fun (w : Txn.write) -> Hashtbl.replace current w.key w.value)
          r.writes)
      entry
  in
  (* Walk positions in order, checking the readers whose read position has
     just been fully applied. *)
  let rec go readers log =
    match readers with
    | [] -> Ok ()
    | (_, rp, _) :: _ -> (
        match log with
        | (pos, entry) :: rest when pos <= rp ->
            apply_entry entry;
            go readers rest
        | _ -> (
            (* All entries <= rp applied (or the log is exhausted). *)
            match check_reader (List.hd readers) with
            | Error _ as e -> e
            | Ok () -> go (List.tl readers) log))
  in
  go readers log

let check_audit ~log ~committed ~aborted =
  let position_of = Hashtbl.create 256 in
  List.iter
    (fun (pos, entry) ->
      List.iter
        (fun (r : Txn.record) -> Hashtbl.replace position_of r.txn_id pos)
        entry)
    log;
  let rec check_committed = function
    | [] -> Ok ()
    | (txn_id, pos) :: rest -> (
        match Hashtbl.find_opt position_of txn_id with
        | None ->
            violation txn_id pos "reported committed but absent from the log (L1)"
        | Some p when p <> pos ->
            violation txn_id pos "reported committed at %d but logged at %d" pos p
        | Some _ -> check_committed rest)
  in
  let rec check_aborted = function
    | [] -> Ok ()
    | txn_id :: rest -> (
        match Hashtbl.find_opt position_of txn_id with
        | Some p ->
            violation txn_id p "reported aborted but present in the log (L1)"
        | None -> check_aborted rest)
  in
  match check_committed committed with
  | Error _ as e -> e
  | Ok () -> check_aborted aborted
