(** Single-copy, single-version transaction histories (§3.1).

    A general conflict-serializability tester over SCSV schedules: build
    the direct serialization graph (edges on conflicting operations, i.e.
    same key, at least one write, ordered by schedule position) and search
    it for cycles. Used to unit-test the theory itself and as a reference
    for the log-based checker: a one-copy serializable execution projected
    onto committed transactions must always pass this test. *)

type action = Read of string | Write of string
(** Operation on a key. *)

type step = { txn : string; action : action }

type t = step list
(** A schedule: operations of committed transactions in execution order.
    (Aborted transactions should be filtered out before checking.) *)

val conflict_serializable : t -> bool
(** True iff the conflict graph is acyclic. *)

val serial_order : t -> string list option
(** A topological order of the conflict graph — an equivalent serial
    execution — or [None] if the schedule is not conflict-serializable.
    Transactions with no operations in the schedule are omitted. *)

val txns : t -> string list
(** Distinct transaction ids, in first-appearance order. *)

val conflict_edges : t -> (string * string) list
(** Distinct [(t1, t2)] pairs such that some operation of [t1] conflicts
    with and precedes some operation of [t2] (no self-edges), ordered by
    first conflicting occurrence (earlier step first, then the later
    step's position). *)

val of_serial : (string * action list) list -> t
(** Schedule obtained by running whole transactions back-to-back — always
    serializable; handy for tests and generators. *)
