type txn = {
  id : string;
  reads : (string * string option) list;
  writes : string list;
}

let validate txns =
  let ids = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if Hashtbl.mem ids t.id then
        invalid_arg (Printf.sprintf "Mvmc: duplicate transaction id %s" t.id);
      Hashtbl.replace ids t.id t)
    txns;
  List.iter
    (fun t ->
      List.iter
        (fun (key, from) ->
          match from with
          | None -> ()
          | Some writer -> (
              match Hashtbl.find_opt ids writer with
              | None ->
                  invalid_arg
                    (Printf.sprintf "Mvmc: %s reads from unknown transaction %s"
                       t.id writer)
              | Some w ->
                  if not (List.mem key w.writes) then
                    invalid_arg
                      (Printf.sprintf "Mvmc: %s reads %s from %s, which never writes it"
                         t.id key writer)))
        t.reads)
    txns

(* Depth-first search for a witness order. At each step, a transaction may
   come next iff every one of its reads currently sees the right version:
   the last already-placed writer of the key (or the initial version). *)
let one_copy_serializable txns =
  validate txns;
  let admissible last_writer t =
    List.for_all
      (fun (key, from) -> Hashtbl.find_opt last_writer key = from)
      t.reads
  in
  let rec search placed_rev last_writer remaining =
    match remaining with
    | [] -> Some (List.rev placed_rev)
    | _ ->
        List.find_map
          (fun t ->
            if admissible last_writer t then begin
              let saved =
                List.map (fun k -> (k, Hashtbl.find_opt last_writer k)) t.writes
              in
              List.iter (fun k -> Hashtbl.replace last_writer k t.id) t.writes;
              let rest = List.filter (fun u -> u.id <> t.id) remaining in
              match search (t.id :: placed_rev) last_writer rest with
              | Some _ as witness -> witness
              | None ->
                  (* Backtrack. *)
                  List.iter
                    (fun (k, prev) ->
                      match prev with
                      | Some v -> Hashtbl.replace last_writer k v
                      | None -> Hashtbl.remove last_writer k)
                    saved;
                  None
            end
            else None)
          remaining
  in
  search [] (Hashtbl.create 16) txns

let of_log log =
  let module Txn = Mdds_types.Txn in
  (* last_writer_upto.(k) tracked incrementally as we scan positions. *)
  let writer_history : (string, (int * string) list) Hashtbl.t = Hashtbl.create 32 in
  let writer_at key pos =
    match Hashtbl.find_opt writer_history key with
    | None -> None
    | Some versions ->
        List.find_map (fun (p, w) -> if p <= pos then Some w else None) versions
  in
  List.concat_map
    (fun (pos, entry) ->
      List.map
        (fun (r : Txn.record) ->
          let reads =
            List.map (fun key -> (key, writer_at key r.read_position)) (Txn.read_set r)
          in
          (* Record this transaction's writes at this position before the
             next record of the same entry is interpreted: within an
             entry, later records read from the *log prefix* only — the
             combination rule guarantees no intra-entry reads-from — so
             ordering of this update relative to siblings is immaterial
             for reads at read_position < pos. *)
          let writes = Txn.write_set r in
          List.iter
            (fun key ->
              let prev = Option.value (Hashtbl.find_opt writer_history key) ~default:[] in
              Hashtbl.replace writer_history key ((pos, r.txn_id) :: prev))
            writes;
          { id = r.txn_id; reads; writes })
        entry)
    log
