type action = Read of string | Write of string

type step = { txn : string; action : action }

type t = step list

let key_of = function Read k -> k | Write k -> k

let is_write = function Write _ -> true | Read _ -> false

(* Conflicting pairs can only share a key, so instead of scanning the
   whole suffix per step (the old O(S²) walk), group the schedule's steps
   per key once and scan only same-key successors; the first-seen edge
   table replaces the old [List.mem] probe of the accumulator. The
   candidate pairs are enumerated in exactly the old (earlier position,
   later position) order, so the returned edge order — first occurrence
   wins — is unchanged. *)
let conflict_edges schedule =
  (* Per key: (txn, is_write) occurrences in schedule order. *)
  let by_key : (string, (string * bool) array) Hashtbl.t = Hashtbl.create 64 in
  let rev_occs : (string, (string * bool) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let key = key_of s.action in
      let prev = Option.value (Hashtbl.find_opt rev_occs key) ~default:[] in
      Hashtbl.replace rev_occs key ((s.txn, is_write s.action) :: prev))
    schedule;
  Hashtbl.iter
    (fun key occs ->
      let arr = Array.of_list occs in
      (* Reverse in place: occs was accumulated newest-first. *)
      let n = Array.length arr in
      for i = 0 to (n / 2) - 1 do
        let tmp = arr.(i) in
        arr.(i) <- arr.(n - 1 - i);
        arr.(n - 1 - i) <- tmp
      done;
      Hashtbl.replace by_key key arr)
    rev_occs;
  let cursor : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun s ->
      let key = key_of s.action in
      let w = is_write s.action in
      let occs = Hashtbl.find by_key key in
      let at = Option.value (Hashtbl.find_opt cursor key) ~default:0 in
      Hashtbl.replace cursor key (at + 1);
      for j = at + 1 to Array.length occs - 1 do
        let txn', w' = occs.(j) in
        if txn' <> s.txn && (w || w') then begin
          let edge = (s.txn, txn') in
          if not (Hashtbl.mem seen edge) then begin
            Hashtbl.replace seen edge ();
            acc := edge :: !acc
          end
        end
      done)
    schedule;
  List.rev !acc

let txns schedule =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if Hashtbl.mem seen s.txn then None
      else begin
        Hashtbl.replace seen s.txn ();
        Some s.txn
      end)
    schedule

(* Kahn's algorithm; [None] on a cycle. Adjacency lives in hashtables —
   in-degrees and per-node successor lists — so popping a node is O(out
   degree), not a partition of the whole edge list. Nodes are still
   scanned in [remaining] order for the next zero-in-degree pick, keeping
   the emitted witness order identical to the old list-based version. *)
let serial_order schedule =
  let nodes = txns schedule in
  let edges = conflict_edges schedule in
  let in_degree = Hashtbl.create 16 in
  let successors : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) nodes;
  List.iter
    (fun (src, dst) ->
      Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst + 1);
      Hashtbl.replace successors src
        (dst :: Option.value (Hashtbl.find_opt successors src) ~default:[]))
    edges;
  let rec go acc remaining =
    match
      List.find_opt (fun n -> Hashtbl.find in_degree n = 0) remaining
    with
    | None -> if remaining = [] then Some (List.rev acc) else None
    | Some n ->
        List.iter
          (fun dst ->
            Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst - 1))
          (Option.value (Hashtbl.find_opt successors n) ~default:[]);
        Hashtbl.remove successors n;
        go (n :: acc) (List.filter (fun m -> m <> n) remaining)
  in
  go [] nodes

let conflict_serializable schedule = serial_order schedule <> None

let of_serial txns =
  List.concat_map
    (fun (txn, actions) -> List.map (fun action -> { txn; action }) actions)
    txns
