(* Benchmark harness.

   With no arguments: regenerate every figure of the paper's evaluation
   (§6) and then run the Bechamel micro-benchmarks. With arguments: run the
   named subset, e.g.

     dune exec bench/main.exe -- fig4a fig6
     dune exec bench/main.exe -- micro
     dune exec bench/main.exe -- --jobs 4 fig6
     dune exec bench/main.exe -- --json fig4a fig6

   Figure ids: fig4a fig4b fig5a fig5b fig6 fig7 fig8 text-cp.

   --jobs N (or MDDS_JOBS) sizes the domain pool the figure trials run on;
   figure output is byte-identical whatever the value. --json times every
   selected figure sequentially and on the pool and writes the machine-
   readable trajectory to BENCH_harness.json (wall seconds per figure,
   speedup, Bechamel micro results) so perf can be tracked across PRs. *)

module Figures = Mdds_harness.Figures
module Pool = Mdds_parallel.Pool

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks for the hot paths.                         *)

open Bechamel
open Toolkit

let entry_of_size n =
  List.init n (fun i ->
      Mdds_types.Txn.make_record
        ~txn_id:(Printf.sprintf "bench/%d" i)
        ~origin:(i mod 3) ~read_position:41
        ~reads:[ "a001"; "a002"; "a003"; "a004"; "a005" ]
        ~writes:
          (List.init 5 (fun j ->
               { Mdds_types.Txn.key = Printf.sprintf "a%03d" ((7 * j) + i);
                 value = "some-benchmark-value" })))

let bench_codec =
  let entry = entry_of_size 3 in
  let codec = Mdds_types.Txn.entry_codec in
  Test.make ~name:"codec/entry-roundtrip"
    (Staged.stage (fun () ->
         let s = Mdds_codec.Codec.encode codec entry in
         ignore (Mdds_codec.Codec.decode_exn codec s)))

let bench_store_read =
  let store = Mdds_kvstore.Store.create () in
  for ts = 1 to 100 do
    ignore (Mdds_kvstore.Store.write store ~key:"row" ~timestamp:ts [ ("v", string_of_int ts) ])
  done;
  Test.make ~name:"kvstore/versioned-read"
    (Staged.stage (fun () -> ignore (Mdds_kvstore.Store.read store ~key:"row" ~timestamp:50 ())))

let bench_tally =
  let entry = entry_of_size 1 in
  let votes =
    List.init 5 (fun from ->
        {
          Mdds_paxos.Tally.from;
          vote =
            (if from < 2 then
               Some (Mdds_paxos.Ballot.make ~round:1 ~proposer:from, entry)
             else None);
        })
  in
  Test.make ~name:"paxos/tally-decide"
    (Staged.stage (fun () ->
         ignore
           (Mdds_paxos.Tally.decide ~total:5 ~equal:Mdds_types.Txn.equal_entry votes)))

let bench_combine =
  let records = entry_of_size 5 in
  let own = List.hd records and candidates = List.tl records in
  Test.make ~name:"paxos-cp/combination-search"
    (Staged.stage (fun () ->
         ignore (Mdds_core.Combine.best ~own ~candidates ~exhaustive_limit:4 ())))

(* Combination search at larger candidate counts. 8 candidates with a
   raised limit keeps the incremental exhaustive planner on deep
   insertion trees; 12 candidates with the production limit (4) measure
   the dedup + footprint-greedy path a busy position actually takes. *)
let bench_combine_at n ~exhaustive_limit =
  let records = entry_of_size (n + 1) in
  let own = List.hd records and candidates = List.tl records in
  Test.make ~name:(Printf.sprintf "paxos-cp/combination-search-%d" n)
    (Staged.stage (fun () ->
         ignore (Mdds_core.Combine.best ~own ~candidates ~exhaustive_limit ())))

(* Interner hot path: repeat lookups of already-interned keys, the shape
   every [make_record] takes after warm-up. Single-domain first, then the
   same hot set hammered from 4 domains at once — the sharded snapshot
   read path should keep the contended number within sight of the
   uncontended one, where the old single-mutex interner serialized every
   lookup. The contended run prices 3 extra domains' worth of lookups too,
   so compare per-lookup cost: contended/(4 × hit) is the real slowdown. *)
let intern_hot_keys =
  Array.init 256 (fun i -> Printf.sprintf "hot%03d" i)

let bench_intern_hit =
  Array.iter (fun k -> ignore (Mdds_types.Txn.Intern.id k)) intern_hot_keys;
  Test.make ~name:"txn/intern-hit"
    (Staged.stage (fun () ->
         for i = 0 to Array.length intern_hot_keys - 1 do
           ignore (Mdds_types.Txn.Intern.id intern_hot_keys.(i))
         done))

let bench_intern_contended =
  Array.iter (fun k -> ignore (Mdds_types.Txn.Intern.id k)) intern_hot_keys;
  let lookups () =
    for _round = 1 to 4 do
      for i = 0 to Array.length intern_hot_keys - 1 do
        ignore (Mdds_types.Txn.Intern.id intern_hot_keys.(i))
      done
    done
  in
  Test.make ~name:"txn/intern-contended-4dom"
    (Staged.stage (fun () ->
         let others = Array.init 3 (fun _ -> Domain.spawn lookups) in
         lookups ();
         Array.iter Domain.join others))

let bench_footprint_build =
  (* Record construction now pays for interning + footprint sorting once;
     every conflict probe afterwards rides on it. Duplicate-heavy key
     lists, as clients produce (re-reads, overwritten keys). *)
  let reads = List.init 12 (fun i -> Printf.sprintf "a%03d" (i mod 8)) in
  let writes =
    List.init 8 (fun i ->
        { Mdds_types.Txn.key = Printf.sprintf "a%03d" ((3 * i) mod 10);
          value = "footprint-benchmark-value" })
  in
  Test.make ~name:"txn/footprint-build"
    (Staged.stage (fun () ->
         ignore
           (Mdds_types.Txn.make_record ~txn_id:"bench/fp" ~origin:0
              ~read_position:41 ~reads ~writes)))

let bench_reads_from =
  let mk i =
    Mdds_types.Txn.make_record
      ~txn_id:(Printf.sprintf "rf/%d" i)
      ~origin:0 ~read_position:0
      ~reads:(List.init 8 (fun j -> Printf.sprintf "a%03d" ((5 * j) + i)))
      ~writes:
        (List.init 8 (fun j ->
             { Mdds_types.Txn.key = Printf.sprintf "a%03d" ((7 * j) + i + 1);
               value = "v" }))
  in
  let t = mk 0 and s = mk 1 in
  Test.make ~name:"txn/reads-from"
    (Staged.stage (fun () -> ignore (Mdds_types.Txn.reads_from t s)))

let bench_check_1sr_large =
  (* The 1SR oracle shape at experiment scale: 120 transactions over 40
     keys, two reads + two writes each, projected to an SCSV schedule.
     Exercises the per-key conflict-graph index end to end. *)
  let schedule =
    List.concat_map
      (fun i ->
        let key j = Printf.sprintf "k%02d" ((i + j) mod 40) in
        let txn = Printf.sprintf "t%03d" i in
        [
          { Mdds_serial.History.txn; action = Mdds_serial.History.Read (key 0) };
          { Mdds_serial.History.txn; action = Mdds_serial.History.Read (key 7) };
          { Mdds_serial.History.txn; action = Mdds_serial.History.Write (key 0) };
          { Mdds_serial.History.txn; action = Mdds_serial.History.Write (key 13) };
        ])
      (List.init 120 Fun.id)
  in
  Test.make ~name:"serial/check-1sr-large"
    (Staged.stage (fun () ->
         ignore (Mdds_serial.History.conflict_serializable schedule)))

let bench_commit name spec_topo config =
  Test.make ~name
    (Staged.stage (fun () ->
         let topo = Mdds_net.Topology.ec2 spec_topo in
         let cluster = Mdds_core.Cluster.create ~seed:7 ~config topo in
         let client = Mdds_core.Cluster.client cluster ~dc:0 in
         Mdds_core.Cluster.spawn cluster (fun () ->
             let txn = Mdds_core.Client.begin_ client ~group:"bench" in
             Mdds_core.Client.write txn "k" "v";
             ignore (Mdds_core.Client.commit txn));
         Mdds_core.Cluster.run cluster))

let bench_row_normalize =
  (* Duplicate-heavy attribute list: the old List.mem-based dedup walk was
     quadratic in exactly this shape. *)
  let value =
    List.init 200 (fun i -> (Printf.sprintf "attr%03d" (i mod 100), string_of_int i))
  in
  Test.make ~name:"kvstore/normalize-200"
    (Staged.stage (fun () -> ignore (Mdds_kvstore.Row.normalize value)))

let bench_audit_stats =
  (* Record a realistic outcome mix and read the full statistic set the
     experiment runner consumes (counts, per-reason aborts, per-round
     commits and latencies): previously one full event-list pass per
     statistic, now incremental counters. *)
  let module Audit = Mdds_core.Audit in
  let record_of i =
    Mdds_types.Txn.make_record
      ~txn_id:(Printf.sprintf "audit-bench/%d" i)
      ~origin:(i mod 3) ~read_position:i ~reads:[ "a001" ] ~writes:[]
  in
  let event i =
    let outcome =
      match i mod 5 with
      | 0 | 1 | 2 ->
          Audit.Committed { position = i; promotions = i mod 4; combined = i mod 7 = 0 }
      | 3 -> Audit.Aborted { reason = Audit.Conflict; promotions = i mod 3 }
      | _ -> Audit.Read_only_committed
    in
    {
      Audit.group = "bench";
      record = record_of i;
      observed = [];
      outcome;
      began_at = float_of_int i;
      committed_at = float_of_int i +. 0.25;
      commit_started_at = float_of_int i +. 0.05;
      client_dc = i mod 3;
      stats = Audit.no_stats;
    }
  in
  let events = List.init 1000 event in
  Test.make ~name:"audit/stats-1000"
    (Staged.stage (fun () ->
         let audit = Audit.create () in
         List.iter (Audit.record audit) events;
         let rounds = Audit.max_promotions_seen audit in
         ignore (Audit.commits audit);
         ignore (Audit.aborts audit);
         ignore (Audit.unknowns audit);
         ignore (Audit.abort_count audit Audit.Conflict);
         ignore (Audit.abort_count audit Audit.Lost_position);
         ignore (Audit.abort_count audit Audit.Unavailable);
         ignore (Audit.txn_latencies audit);
         ignore (Audit.commit_latencies audit ~promotions:None);
         for r = 0 to rounds do
           ignore (Audit.commits_with_promotions audit r);
           ignore (Audit.commit_latencies audit ~promotions:(Some r))
         done))

let bench_wal_entry_cached =
  (* Re-reading a decided log entry: the write-through decoded cache turns
     the old sprintf-key + store-read + codec-decode round trip into one
     small-hashtable probe. *)
  let wal = Mdds_wal.Wal.create (Mdds_kvstore.Store.create ()) in
  let entry = entry_of_size 3 in
  for pos = 1 to 50 do
    Mdds_wal.Wal.append wal ~group:"bench" ~pos entry
  done;
  Test.make ~name:"wal/entry-read-cached"
    (Staged.stage (fun () ->
         ignore (Mdds_wal.Wal.entry wal ~group:"bench" ~pos:25)))

let bench_wal_snapshot =
  (* Snapshot of a 100-row group: the per-group data index replaces the
     full-store key scan + prefix filter. *)
  let wal = Mdds_wal.Wal.create (Mdds_kvstore.Store.create ()) in
  for pos = 1 to 20 do
    let writes =
      List.init 5 (fun j ->
          {
            Mdds_types.Txn.key = Printf.sprintf "row%03d" (((pos - 1) * 5) + j);
            value = "snapshot-benchmark-value";
          })
    in
    Mdds_wal.Wal.append wal ~group:"bench" ~pos
      [
        Mdds_types.Txn.make_record
          ~txn_id:(Printf.sprintf "snap/%d" pos)
          ~origin:0 ~read_position:(pos - 1) ~reads:[] ~writes;
      ]
  done;
  (match Mdds_wal.Wal.apply wal ~group:"bench" ~upto:20 with
  | Ok () -> ()
  | Error (`Gap _) -> assert false);
  Test.make ~name:"wal/snapshot-100-rows"
    (Staged.stage (fun () -> ignore (Mdds_wal.Wal.snapshot wal ~group:"bench")))

let bench_acceptor_load =
  (* Loading decoded acceptor state for a decided position: cached decode
     instead of store read + ballot parse + vote decode per message. *)
  let topo = Mdds_net.Topology.ec2 "VVV" in
  let cluster =
    Mdds_core.Cluster.create ~seed:7 ~config:Mdds_core.Config.default topo
  in
  let client = Mdds_core.Cluster.client cluster ~dc:0 in
  Mdds_core.Cluster.spawn cluster (fun () ->
      let txn = Mdds_core.Client.begin_ client ~group:"bench" in
      Mdds_core.Client.write txn "k" "v";
      ignore (Mdds_core.Client.commit txn));
  Mdds_core.Cluster.run cluster;
  let service = Mdds_core.Cluster.service cluster 0 in
  Test.make ~name:"service/acceptor-load"
    (Staged.stage (fun () ->
         ignore (Mdds_core.Service.acceptor_state service ~group:"bench" ~pos:1)))

(* Contention under VVV: three clients per run hammer one hot key in the
   same group without the fast path, so rival proposers repeatedly collide
   on the same log position and pay the backoff ladder. Run with flat
   (paper) and decorrelated backoff to compare the two policies'
   contended-commit cost. *)
let bench_contention name config =
  Test.make ~name
    (Staged.stage (fun () ->
         let topo = Mdds_net.Topology.ec2 "VVV" in
         let cluster = Mdds_core.Cluster.create ~seed:7 ~config topo in
         for dc = 0 to 2 do
           let client = Mdds_core.Cluster.client cluster ~dc in
           Mdds_core.Cluster.spawn cluster (fun () ->
               for _ = 1 to 3 do
                 try
                   let txn = Mdds_core.Client.begin_ client ~group:"bench" in
                   ignore (Mdds_core.Client.read txn "hot");
                   Mdds_core.Client.write txn "hot" "v";
                   ignore (Mdds_core.Client.commit txn)
                 with Mdds_core.Client.Unavailable _ -> ()
               done)
         done;
         Mdds_core.Cluster.run cluster))

let contention_flat =
  { Mdds_core.Config.basic with enable_fast_path = false }

let contention_decorrelated =
  { contention_flat with backoff_decorrelated = true }

let bench_trace_disabled =
  (* Disabled tracing must cost one branch, not a Printf.ksprintf render. *)
  let engine = Mdds_sim.Engine.create ~seed:1 () in
  let trace = Mdds_sim.Trace.create engine in
  Test.make ~name:"trace/record-disabled"
    (Staged.stage (fun () ->
         Mdds_sim.Trace.record trace ~source:"bench" ~category:"noop"
           "formatting %d should not run %s" 42 "at all"))

let bench_engine =
  Test.make ~name:"sim/spawn-sleep-1000"
    (Staged.stage (fun () ->
         let engine = Mdds_sim.Engine.create ~seed:1 () in
         for i = 1 to 1000 do
           Mdds_sim.Engine.spawn engine (fun () ->
               Mdds_sim.Engine.sleep (float_of_int i *. 0.001))
         done;
         Mdds_sim.Engine.run engine))

let bench_rpc_call =
  (* Per-call overhead of the RPC layer: waiter registration, timeout
     timer, delivery, reply matching and timer cancellation — 100
     sequential calls on a V-V link, adaptive-timeout observation
     included in the caller's path. The staged run measures the
     100-call aggregate (engine setup amortized over it); run_micro
     divides the estimate down so the reported number is per call. *)
  Test.make ~name:"rpc/call-overhead"
    (Staged.stage (fun () ->
         let engine = Mdds_sim.Engine.create ~seed:1 () in
         let net = Mdds_net.Network.create engine (Mdds_net.Topology.ec2 "VV") in
         let rpc : (int, int) Mdds_net.Rpc.t = Mdds_net.Rpc.create net in
         Mdds_net.Rpc.serve rpc ~node:1 (fun ~src:_ req -> req + 1);
         Mdds_sim.Engine.spawn engine (fun () ->
             for i = 1 to 100 do
               ignore (Mdds_net.Rpc.call rpc ~src:0 ~dst:1 ~timeout:1.0 i)
             done);
         Mdds_sim.Engine.run engine))

(* Throughput mode (DESIGN.md §14). batch-fill: six clients submit into
   one service inside a fill window wider than the RPC processing jitter,
   so the drainer Combine-validates one multi-transaction batch — the
   whole admission path (dedup scan, staleness, footprint overlap) in one
   number. pipelined: batching off, depth 4 — four concurrent commits ride
   overlapping sequenced log positions instead of serializing on the
   apply watermark. *)
let throughput_batch_config =
  { (Mdds_core.Config.throughput ~pipeline_depth:1 Mdds_core.Config.leader)
    with batch_fill = 0.15 }

let bench_batch_fill =
  Test.make ~name:"service/batch-fill"
    (Staged.stage (fun () ->
         let topo = Mdds_net.Topology.ec2 "VVV" in
         let cluster =
           Mdds_core.Cluster.create ~seed:7 ~config:throughput_batch_config topo
         in
         for i = 0 to 5 do
           let client = Mdds_core.Cluster.client cluster ~dc:0 in
           Mdds_core.Cluster.spawn cluster (fun () ->
               let txn = Mdds_core.Client.begin_ client ~group:"bench" in
               Mdds_core.Client.write txn (Printf.sprintf "k%d" i) "v";
               ignore (Mdds_core.Client.commit txn))
         done;
         Mdds_core.Cluster.run cluster))

let throughput_pipeline_config =
  Mdds_core.Config.throughput ~batch_max:1 ~pipeline_depth:4
    Mdds_core.Config.leader

let bench_commit_pipelined =
  Test.make ~name:"e2e/one-commit-pipelined-depth4"
    (Staged.stage (fun () ->
         let topo = Mdds_net.Topology.ec2 "VVV" in
         let cluster =
           Mdds_core.Cluster.create ~seed:7 ~config:throughput_pipeline_config
             topo
         in
         for i = 0 to 3 do
           let client = Mdds_core.Cluster.client cluster ~dc:0 in
           Mdds_core.Cluster.spawn cluster (fun () ->
               let txn = Mdds_core.Client.begin_ client ~group:"bench" in
               Mdds_core.Client.write txn (Printf.sprintf "k%d" i) "v";
               ignore (Mdds_core.Client.commit txn))
         done;
         Mdds_core.Cluster.run cluster))

let bench_saturation_point =
  (* A short over-saturated open-loop burst through the full measurement
     harness (fresh cluster, arrivals past capacity, drain, oracle check)
     — the inner loop of `mdds throughput` priced as one number. *)
  Test.make ~name:"throughput/saturation-point"
    (Staged.stage (fun () ->
         ignore
           (Mdds_harness.Throughput.run_point ~seed:7
              ~mode:(Mdds_harness.Throughput.batched ()) ~rate:200.0 ~txns:40
              ())))

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      bench_codec;
      bench_store_read;
      bench_row_normalize;
      bench_audit_stats;
      bench_tally;
      bench_combine;
      bench_combine_at 8 ~exhaustive_limit:8;
      bench_combine_at 12 ~exhaustive_limit:4;
      bench_intern_hit;
      bench_intern_contended;
      bench_footprint_build;
      bench_reads_from;
      bench_check_1sr_large;
      bench_wal_entry_cached;
      bench_wal_snapshot;
      bench_acceptor_load;
      bench_trace_disabled;
      bench_engine;
      bench_rpc_call;
      bench_commit "e2e/one-commit-VVV" "VVV" Mdds_core.Config.default;
      bench_commit "e2e/one-commit-VVV-basic" "VVV" Mdds_core.Config.basic;
      bench_commit "e2e/one-commit-VVVOC" "VVVOC" Mdds_core.Config.default;
      bench_contention "e2e/contended-flat-backoff" contention_flat;
      bench_contention "e2e/contended-decorrelated-backoff"
        contention_decorrelated;
      bench_batch_fill;
      bench_commit_pipelined;
      bench_saturation_point;
    ]

(* A few staged bodies iterate their hot operation N times per run (setup
   amortized across the loop); their estimates are divided back down so
   every reported number is the per-operation cost the name promises. *)
let micro_iterations = function
  | "micro/rpc/call-overhead" -> 100.0
  | _ -> 1.0

(* Returns [(name, ns_per_run option)] sorted by name, printing as it goes.
   [quick] trims the per-test quota for CI smoke runs: estimates are
   noisier but regressions of the order the fast path targets (x1.5+)
   still show, at a fraction of the wall time. *)
let run_micro ?(quick = false) () =
  print_endline "\n== Micro-benchmarks (Bechamel) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.05 else 0.5))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let collected = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] ->
              let ns = ns /. micro_iterations name in
              Printf.printf "  %-32s %12.1f ns/run\n" name ns;
              collected := (name, Some ns) :: !collected
          | _ ->
              Printf.printf "  %-32s (no estimate)\n" name;
              collected := (name, None) :: !collected)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    merged;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !collected

(* ------------------------------------------------------------------ *)
(* Machine-readable bench trajectory (BENCH_harness.json).              *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let time_run f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* The PR-8 saturation comparison gating the bench guard's throughput
   floor: both modes at one over-saturated offered rate (well past the
   baseline's ~20 committed/s capacity on VVV), goodput measured by the
   open-loop harness — plus the epoch-sealed mode (PROTOCOL.md §11) at
   the same point, so the batching-vs-epoch head-to-head is recorded
   honestly whichever discipline wins. Deterministic in (seed, txns), so
   only the quota (txns) distinguishes a --quick run. *)
let run_throughput ~quick =
  let module Throughput = Mdds_harness.Throughput in
  let rate = 150.0 in
  let txns = if quick then 300 else 1200 in
  Printf.printf "\n-- timing throughput saturation (%d txns at %.0f/s) --\n%!"
    txns rate;
  let point mode = Throughput.run_point ~seed:42 ~mode ~rate ~txns () in
  let base = point Throughput.baseline in
  let batched = point (Throughput.batched ()) in
  let epoch = point (Throughput.epoch ()) in
  Throughput.pp_table Format.std_formatter [ base; batched; epoch ];
  (rate, txns, base, batched, epoch)

(* Per-group drainers must multiply, not contend (ROADMAP): the same
   over-saturated epoch-mode load on one group log vs spread over four.
   The offered rate is far past one group's sealed-epoch capacity, so the
   1-group cell saturates and the 4-group aggregate shows the scaling. *)
let run_epoch_groups ~quick =
  let module Throughput = Mdds_harness.Throughput in
  (* Composition only multiplies when a single group is consensus-round
     bound: with a small fill bound a backlogged drainer seals epochs
     back-to-back at ~fill/RTT committed/s, and independent per-group
     logs overlap those rounds. (At fill 64 a lone group absorbs 2000/s
     by itself — apply-bound, nothing left for groups to multiply — and
     the run is too short to amortize the ~2s probe-loss stragglers that
     set [last_commit].) *)
  let rate = 2000.0 in
  let txns = if quick then 1200 else 2400 in
  Printf.printf
    "\n-- timing epoch group composition (%d txns at %.0f/s, 1 vs 4 groups) \
     --\n%!"
    txns rate;
  let point groups =
    Throughput.run_point ~seed:42 ~groups ~mode:(Throughput.epoch ~fill:8 ())
      ~rate ~txns ()
  in
  let g1 = point 1 in
  let g4 = point 4 in
  Throughput.pp_table Format.std_formatter [ g1; g4 ];
  Printf.printf "  1 group %.1f committed/s, 4 groups %.1f committed/s: %.2fx\n"
    g1.Throughput.committed_per_s g4.Throughput.committed_per_s
    (if g1.Throughput.committed_per_s > 0. then
       g4.Throughput.committed_per_s /. g1.Throughput.committed_per_s
     else 0.);
  (rate, txns, g1, g4)

let emit_json ~path ~jobs ~figures ~micro ~throughput ~epoch_groups =
  let out = open_out path in
  let p fmt = Printf.fprintf out fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"domains_recommended\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"figures\": [\n";
  List.iteri
    (fun i (id, seq_s, par_s) ->
      p "    {\"id\": \"%s\", \"seconds_sequential\": %.3f, \
         \"seconds_parallel\": %.3f, \"speedup\": %.2f}%s\n"
        (json_escape id) seq_s par_s
        (if par_s > 0. then seq_s /. par_s else 0.)
        (if i = List.length figures - 1 then "" else ","))
    figures;
  p "  ],\n";
  (let module Throughput = Mdds_harness.Throughput in
   let rate, txns, base, batched, epoch = throughput in
   let cps (pt : Throughput.point) = pt.Throughput.committed_per_s in
   let p50 (pt : Throughput.point) =
     pt.Throughput.latency.Mdds_harness.Stats.p50 *. 1000.
   in
   let ok (pt : Throughput.point) = Result.is_ok pt.Throughput.verified in
   p "  \"throughput\": {\"rate\": %.1f, \"txns\": %d, \
      \"baseline_committed_per_s\": %.3f, \"batched_committed_per_s\": %.3f, \
      \"ratio\": %.2f, \"baseline_p50_ms\": %.1f, \"batched_p50_ms\": %.1f, \
      \"verified\": %b},\n"
     rate txns (cps base) (cps batched)
     (if cps base > 0. then cps batched /. cps base else 0.)
     (p50 base) (p50 batched)
     (ok base && ok batched);
   let g_rate, g_txns, g1, g4 = epoch_groups in
   p "  \"epoch\": {\"rate\": %.1f, \"txns\": %d, \
      \"epoch_committed_per_s\": %.3f, \"epoch_vs_baseline\": %.2f, \
      \"epoch_vs_batched\": %.2f, \"epoch_p50_ms\": %.1f, \
      \"epochs_sealed\": %d, \"groups_rate\": %.1f, \"groups_txns\": %d, \
      \"groups1_committed_per_s\": %.3f, \"groups4_committed_per_s\": %.3f, \
      \"groups_scaling\": %.2f, \"verified\": %b},\n"
     rate txns (cps epoch)
     (if cps base > 0. then cps epoch /. cps base else 0.)
     (if cps batched > 0. then cps epoch /. cps batched else 0.)
     (p50 epoch) epoch.Throughput.epochs g_rate g_txns (cps g1) (cps g4)
     (if cps g1 > 0. then cps g4 /. cps g1 else 0.)
     (ok epoch && ok g1 && ok g4));
  p "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
        (match ns with Some v -> Printf.sprintf "%.1f" v | None -> "null")
        (if i = List.length micro - 1 then "" else ","))
    micro;
  p "  ]\n";
  p "}\n";
  close_out out;
  Printf.printf "\nwrote %s\n" path

(* Scheduler visibility (--verbose): cumulative pool stats and the combine
   planner's budget cutover count, on stderr so stdout (figure tables, the
   JSON progress lines) stays byte-comparable across runs. *)
let print_verbose_stats () =
  Pool.pp_stats Format.err_formatter (Pool.stats ());
  Format.eprintf "combine: %d budget cutovers to greedy@."
    (Mdds_core.Combine.cutovers ())

(* Time each figure twice — pinned to one domain, then on the pool — and
   record both; the parallel pass double-checks output identity is not our
   problem here (CI diffs the actual tables), only wall clock. *)
let run_json ~jobs ~quick ~out ids =
  let ids = if ids = [] then List.map (fun (id, _, _) -> id) Figures.all else ids in
  (* Micros first, from a compacted heap: figure regeneration leaves a
     large major heap behind, and measuring the micros on top of it
     inflates every allocation-sensitive number by whatever the GC then
     costs (observed up to ~20x on quick quotas). The figure timings
     below are whole-run wall clocks and don't care. *)
  Gc.compact ();
  let micro = run_micro ~quick () in
  let throughput = run_throughput ~quick in
  let epoch_groups = run_epoch_groups ~quick in
  let figures =
    List.map
      (fun id ->
        Printf.printf "\n-- timing %s (sequential) --\n%!" id;
        Pool.set_jobs (Some 1);
        let seq_s = time_run (fun () -> Figures.run_ids [ id ]) in
        Printf.printf "\n-- timing %s (%d domains) --\n%!" id jobs;
        Pool.set_jobs (Some jobs);
        let par_s = time_run (fun () -> Figures.run_ids [ id ]) in
        Pool.set_jobs None;
        (id, seq_s, par_s))
      ids
  in
  emit_json ~path:out ~jobs ~figures ~micro ~throughput ~epoch_groups

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Hand-rolled flag parsing:
     [--jobs N | -j N] [--json] [--quick] [--out PATH] [--verbose] [ids...]. *)
  let out = ref "BENCH_harness.json" in
  let verbose = ref false in
  let rec parse (json, quick, jobs, ids) = function
    | [] -> (json, quick, jobs, List.rev ids)
    | "--json" :: rest -> parse (true, quick, jobs, ids) rest
    | "--quick" :: rest -> parse (json, true, jobs, ids) rest
    | "--verbose" :: rest ->
        verbose := true;
        parse (json, quick, jobs, ids) rest
    | "--out" :: path :: rest ->
        out := path;
        parse (json, quick, jobs, ids) rest
    | "--out" :: [] ->
        Printf.eprintf "--out needs a path\n";
        exit 2
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> parse (json, quick, Some n, ids) rest
        | _ ->
            Printf.eprintf "bad --jobs value %S (expected a positive integer)\n" n;
            exit 2)
    | ("--jobs" | "-j") :: [] ->
        Printf.eprintf "--jobs needs a value\n";
        exit 2
    | id :: rest -> parse (json, quick, jobs, id :: ids) rest
  in
  let json, quick, jobs, ids = parse (false, false, None, []) args in
  Pool.set_jobs jobs;
  let effective_jobs = Pool.get_jobs () in
  let known_figures = List.map (fun (id, _, _) -> id) Figures.all in
  let bad =
    List.filter (fun id -> not (List.mem id known_figures || id = "micro")) ids
  in
  if bad <> [] then begin
    Printf.eprintf "unknown benchmark ids: %s\nknown: %s micro\n"
      (String.concat ", " bad)
      (String.concat " " known_figures);
    exit 2
  end;
  (if json then
     run_json ~jobs:effective_jobs ~quick ~out:!out
       (List.filter (fun id -> id <> "micro") ids)
   else
     match ids with
     | [] ->
         Printf.printf
           "Reproducing every figure of the evaluation (three seeds each, %d domains).\n"
           effective_jobs;
         Figures.run_ids [];
         ignore (run_micro ~quick ())
     | ids ->
         Figures.run_ids (List.filter (fun id -> id <> "micro") ids);
         if List.mem "micro" ids then ignore (run_micro ~quick ()));
  if !verbose then print_verbose_stats ()
