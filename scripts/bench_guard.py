#!/usr/bin/env python3
"""Bench regression guard: compare fresh micros against the committed baseline.

Usage: bench_guard.py BASELINE.json FRESH.json

Reads the "micro" arrays of both files (the format emitted by
`bench/main.exe --json`) and fails with a readable table if any micro
present in both regressed past the threshold. The threshold is generous
(3x, plus an absolute slop for sub-microsecond micros) because the fresh
numbers come from `--quick` runs on shared CI machines; the committed
baseline is a full-quota run on a quiet box. This catches accidental
complexity regressions (an O(n) path going quadratic), not percent-level
drift — keep it that way, a flaky guard is worse than none.

Micros only present on one side are reported but never fail the run, so
adding or retiring benchmarks does not require touching this script.
"""

import json
import sys

# Fail when fresh > RATIO * baseline + SLOP_NS. The additive slop keeps
# nanosecond-scale micros (cache-hit reads, disabled-trace probes) from
# tripping the guard on scheduler jitter alone.
RATIO = 3.0
SLOP_NS = 500.0


def micros(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        m["name"]: m["ns_per_run"]
        for m in doc.get("micro", [])
        if m.get("ns_per_run") is not None
    }


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json FRESH.json")
    baseline = micros(sys.argv[1])
    fresh = micros(sys.argv[2])

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        sys.exit("bench guard: no micros shared between baseline and fresh run")

    width = max(len(n) for n in shared)
    failures = []
    print(f"{'micro':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>6}")
    for name in shared:
        base, now = baseline[name], fresh[name]
        ratio = now / base if base > 0 else float("inf")
        bad = now > RATIO * base + SLOP_NS
        flag = "  REGRESSED" if bad else ""
        print(f"{name:<{width}}  {base:>10.1f}ns  {now:>10.1f}ns  {ratio:>5.2f}x{flag}")
        if bad:
            failures.append((name, base, now, ratio))

    for name in sorted(set(baseline) - set(fresh)):
        print(f"note: {name} in baseline only (retired?)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} in fresh run only (new micro; baseline not yet refreshed)")

    if failures:
        print(
            f"\nbench guard: {len(failures)} micro(s) regressed past "
            f"{RATIO:.0f}x + {SLOP_NS:.0f}ns:",
            file=sys.stderr,
        )
        for name, base, now, ratio in failures:
            print(
                f"  {name}: {base:.1f}ns -> {now:.1f}ns ({ratio:.2f}x)",
                file=sys.stderr,
            )
        print(
            "If this is expected (intentional tradeoff), refresh the committed "
            "BENCH_harness.json with a full-quota `bench --json` run and say why "
            "in the commit message.",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"\nbench guard: {len(shared)} micros within {RATIO:.0f}x of baseline")


if __name__ == "__main__":
    main()
