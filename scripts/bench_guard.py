#!/usr/bin/env python3
"""Bench regression guard: compare fresh micros against the committed baseline.

Usage: bench_guard.py BASELINE.json FRESH.json

Reads the "micro" arrays of both files (the format emitted by
`bench/main.exe --json`) and fails with a readable table if any micro
present in both regressed past the threshold. The threshold is generous
(3x, plus an absolute slop for sub-microsecond micros) because the fresh
numbers come from `--quick` runs on shared CI machines; the committed
baseline is a full-quota run on a quiet box. This catches accidental
complexity regressions (an O(n) path going quadratic), not percent-level
drift — keep it that way, a flaky guard is worse than none.

The FRESH file's "figures" array additionally gates the parallel-speedup
floor: when the fresh run used >= 4 domains on a machine that actually
has >= 4 cores (its recorded "domains_recommended"), the aggregate
sequential/parallel wall-clock ratio must be >= 1.5x and no single figure
may be slower in parallel than sequential (>= 1.0x, less a small
tolerance for sub-second figures). On smaller machines the floor is
reported but not enforced — a 1- or 2-core runner cannot physically show
a 1.5x speedup, and the JSON records jobs/domains_recommended honestly
precisely so this script can tell the difference.

Micros only present on one side are reported but never fail the run, so
adding or retiring benchmarks does not require touching this script.
"""

import json
import sys

# Fail when fresh > RATIO * baseline + SLOP_NS. The additive slop keeps
# nanosecond-scale micros (cache-hit reads, disabled-trace probes) from
# tripping the guard on scheduler jitter alone.
RATIO = 3.0
SLOP_NS = 500.0

# Throughput-mode floor (PR 8): at the over-saturated offered rate the
# JSON records, batched+pipelined commit must sustain at least this many
# times the unbatched baseline's committed txns/s. The measurement is
# virtual-time (deterministic simulator), so unlike the wall-clock floors
# below it is immune to host noise and can be tight.
THROUGHPUT_FLOOR = 2.0

# Epoch-mode floors (PR 10, PROTOCOL.md §11): epoch-sealed commit must
# sustain at least EPOCH_FLOOR x the unbatched baseline at the same
# saturation point, and spreading the same offered load over 4 groups
# (one drainer per independent log) must lift aggregate goodput by at
# least GROUPS_FLOOR x over one group. Both are virtual-time ratios —
# deterministic, so tight floors are safe. epoch_vs_batched is recorded
# in the JSON but deliberately not gated: whether a sealed epoch beats
# fill-or-timeout batching at a given rate is a workload property the
# harness reports honestly either way (see DESIGN.md §15).
EPOCH_FLOOR = 2.0
GROUPS_FLOOR = 1.8

# Parallel-speedup floor, enforced only when the measuring host can
# plausibly meet it (jobs >= 4 and >= 4 recommended domains).
AGGREGATE_FLOOR = 1.5
PER_FIGURE_FLOOR = 1.0
# A figure finishing in under a second is dominated by pool wake-up and
# measurement noise; give those a 15% grace on the per-figure floor.
PER_FIGURE_TOLERANCE = 0.85
MIN_JOBS = 4


def load(path):
    with open(path) as f:
        return json.load(f)


def micros(doc):
    return {
        m["name"]: m["ns_per_run"]
        for m in doc.get("micro", [])
        if m.get("name") is not None and m.get("ns_per_run") is not None
    }


def check_micros(baseline, fresh):
    # A missing or empty "micro" section (an old baseline, or a fresh run
    # scoped to figures only) is a skip, not an error: the guard's other
    # sections may still have work to do.
    if not baseline:
        print("bench guard: no micro section in baseline; skipping micro comparison")
        return True
    if not fresh:
        print("bench guard: no micro section in fresh run; skipping micro comparison")
        return True
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print(
            "bench guard: no micros shared between baseline and fresh run; "
            "skipping micro comparison (refresh the baseline to re-arm the guard)"
        )
        for name in sorted(baseline):
            print(f"note: {name} in baseline only (retired?)")
        for name in sorted(fresh):
            print(f"note: {name} in fresh run only (new micro; baseline not yet refreshed)")
        return True

    width = max(len(n) for n in shared)
    failures = []
    print(f"{'micro':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>6}")
    for name in shared:
        base, now = baseline[name], fresh[name]
        ratio = now / base if base > 0 else float("inf")
        bad = now > RATIO * base + SLOP_NS
        flag = "  REGRESSED" if bad else ""
        print(f"{name:<{width}}  {base:>10.1f}ns  {now:>10.1f}ns  {ratio:>5.2f}x{flag}")
        if bad:
            failures.append((name, base, now, ratio))

    for name in sorted(set(baseline) - set(fresh)):
        print(f"note: {name} in baseline only (retired?)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} in fresh run only (new micro; baseline not yet refreshed)")

    if failures:
        print(
            f"\nbench guard: {len(failures)} micro(s) regressed past "
            f"{RATIO:.0f}x + {SLOP_NS:.0f}ns:",
            file=sys.stderr,
        )
        for name, base, now, ratio in failures:
            print(
                f"  {name}: {base:.1f}ns -> {now:.1f}ns ({ratio:.2f}x)",
                file=sys.stderr,
            )
        print(
            "If this is expected (intentional tradeoff), refresh the committed "
            "BENCH_harness.json with a full-quota `bench --json` run and say why "
            "in the commit message.",
            file=sys.stderr,
        )
        return False
    print(f"\nbench guard: {len(shared)} micros within {RATIO:.0f}x of baseline")
    return True


def check_speedup(doc):
    figures = [
        f
        for f in doc.get("figures", [])
        if f.get("id") is not None
        and f.get("seconds_sequential") is not None
        and f.get("seconds_parallel") is not None
    ]
    if not figures:
        print("speedup floor: no figure timings in fresh run; skipping")
        return True

    jobs = doc.get("jobs", 1)
    cores = doc.get("domains_recommended", 1)
    seq = sum(f["seconds_sequential"] for f in figures)
    par = sum(f["seconds_parallel"] for f in figures)
    aggregate = seq / par if par > 0 else float("inf")

    width = max(len(f["id"]) for f in figures)
    print(f"\n{'figure':<{width}}  {'sequential':>10}  {'parallel':>10}  {'speedup':>7}")
    slow = []
    for f in figures:
        s, p = f["seconds_sequential"], f["seconds_parallel"]
        ratio = s / p if p > 0 else float("inf")
        floor = PER_FIGURE_FLOOR * (PER_FIGURE_TOLERANCE if s < 1.0 else 1.0)
        bad = ratio < floor
        flag = "  SLOWER IN PARALLEL" if bad else ""
        print(f"{f['id']:<{width}}  {s:>9.3f}s  {p:>9.3f}s  {ratio:>6.2f}x{flag}")
        if bad:
            slow.append((f["id"], ratio, floor))
    print(
        f"aggregate: {seq:.3f}s sequential vs {par:.3f}s on {jobs} domains "
        f"= {aggregate:.2f}x (host recommends {cores})"
    )

    if jobs < MIN_JOBS or cores < MIN_JOBS:
        print(
            f"speedup floor: not enforced (needs jobs >= {MIN_JOBS} and "
            f">= {MIN_JOBS} cores; this run: jobs={jobs}, cores={cores}). "
            "Numbers above are informational."
        )
        return True

    ok = True
    if aggregate < AGGREGATE_FLOOR:
        print(
            f"\nspeedup floor: aggregate {aggregate:.2f}x is below the "
            f"{AGGREGATE_FLOOR:.1f}x floor at {jobs} domains — the parallel "
            "harness is not paying for itself.",
            file=sys.stderr,
        )
        ok = False
    for fig_id, ratio, floor in slow:
        print(
            f"speedup floor: {fig_id} runs {ratio:.2f}x sequential speed in "
            f"parallel (floor {floor:.2f}x) — a figure must never lose from "
            "the pool.",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"speedup floor: aggregate {aggregate:.2f}x >= {AGGREGATE_FLOOR:.1f}x "
            "and every figure at parity or better"
        )
    return ok


def check_throughput(doc):
    tp = doc.get("throughput")
    if not tp:
        print("\nthroughput floor: no throughput section in fresh run; skipping")
        return True

    base = tp.get("baseline_committed_per_s", 0.0)
    batched = tp.get("batched_committed_per_s", 0.0)
    ratio = batched / base if base > 0 else float("inf")
    print(
        f"\nthroughput: {base:.1f} committed/s baseline vs {batched:.1f} "
        f"batched at {tp.get('rate', 0):.0f} offered/s "
        f"({tp.get('txns', 0)} txns) = {ratio:.2f}x"
    )
    ok = True
    if not tp.get("verified", False):
        print(
            "throughput floor: a saturation run failed its oracle check",
            file=sys.stderr,
        )
        ok = False
    if ratio < THROUGHPUT_FLOOR:
        print(
            f"throughput floor: batched mode sustains only {ratio:.2f}x the "
            f"baseline's committed txns/s at saturation (floor "
            f"{THROUGHPUT_FLOOR:.1f}x) — batching/pipelining is not paying "
            "for itself.",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"throughput floor: {ratio:.2f}x >= {THROUGHPUT_FLOOR:.1f}x, "
            "both runs oracle-clean"
        )
    return ok


def check_epoch(doc):
    ep = doc.get("epoch")
    if not ep:
        print(
            "\nepoch floor: no epoch section in fresh run; skipping "
            "(refresh the baseline with a current `bench --json` run to arm it)"
        )
        return True

    base_ratio = ep.get("epoch_vs_baseline", 0.0)
    batched_ratio = ep.get("epoch_vs_batched", 0.0)
    scaling = ep.get("groups_scaling", 0.0)
    print(
        f"\nepoch: {ep.get('epoch_committed_per_s', 0.0):.1f} committed/s at "
        f"{ep.get('rate', 0):.0f} offered/s = {base_ratio:.2f}x baseline, "
        f"{batched_ratio:.2f}x batched (informational), "
        f"p50 {ep.get('epoch_p50_ms', 0.0):.1f}ms, "
        f"{ep.get('epochs_sealed', 0)} epochs sealed"
    )
    print(
        f"epoch groups: {ep.get('groups1_committed_per_s', 0.0):.1f} -> "
        f"{ep.get('groups4_committed_per_s', 0.0):.1f} committed/s from 1 to 4 "
        f"groups at {ep.get('groups_rate', 0):.0f} offered/s = {scaling:.2f}x"
    )
    ok = True
    if not ep.get("verified", False):
        print("epoch floor: an epoch run failed its oracle check", file=sys.stderr)
        ok = False
    if base_ratio < EPOCH_FLOOR:
        print(
            f"epoch floor: epoch-sealed commit sustains only {base_ratio:.2f}x "
            f"the unbatched baseline at saturation (floor {EPOCH_FLOOR:.1f}x) — "
            "sealing is not paying for itself.",
            file=sys.stderr,
        )
        ok = False
    if scaling < GROUPS_FLOOR:
        print(
            f"epoch floor: 4 groups lift aggregate goodput only {scaling:.2f}x "
            f"over 1 group (floor {GROUPS_FLOOR:.1f}x) — per-group drainers "
            "are not composing.",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"epoch floor: {base_ratio:.2f}x >= {EPOCH_FLOOR:.1f}x baseline and "
            f"groups {scaling:.2f}x >= {GROUPS_FLOOR:.1f}x, all runs oracle-clean"
        )
    return ok


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json FRESH.json")
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])

    ok = check_micros(micros(baseline), micros(fresh))
    ok = check_speedup(fresh) and ok
    ok = check_throughput(fresh) and ok
    ok = check_epoch(fresh) and ok
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
