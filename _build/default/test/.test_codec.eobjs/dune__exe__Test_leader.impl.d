test/test_leader.ml: Alcotest List Mdds_core Mdds_net Mdds_sim Printf
