test/test_harness.ml: Alcotest Array Format Gen List Mdds_core Mdds_harness Mdds_workload QCheck QCheck_alcotest String
