test/test_failures.mli:
