test/test_serial.ml: Alcotest Format Gen List Mdds_serial Mdds_types Option Printf QCheck QCheck_alcotest String Test
