test/test_shapes.ml: Alcotest Float List Mdds_core Mdds_harness Mdds_workload
