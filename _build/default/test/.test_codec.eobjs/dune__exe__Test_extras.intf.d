test/test_extras.mli:
