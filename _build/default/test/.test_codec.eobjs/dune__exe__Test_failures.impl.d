test/test_failures.ml: Alcotest Array Fun Gen List Mdds_core Mdds_net Mdds_paxos Mdds_sim Mdds_types Mdds_wal Printf QCheck QCheck_alcotest Test
