test/test_kvstore.ml: Alcotest Gen List Mdds_kvstore Option QCheck QCheck_alcotest
