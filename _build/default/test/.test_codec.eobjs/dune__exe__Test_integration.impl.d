test/test_integration.ml: Alcotest Format List Mdds_core Mdds_net Mdds_sim Mdds_types Mdds_workload Printf QCheck QCheck_alcotest
