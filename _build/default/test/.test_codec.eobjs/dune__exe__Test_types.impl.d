test/test_types.ml: Alcotest Format List Mdds_codec Mdds_types Printf QCheck QCheck_alcotest String
