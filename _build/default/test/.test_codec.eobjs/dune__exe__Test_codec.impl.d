test/test_codec.ml: Alcotest Float Int64 List Mdds_codec QCheck QCheck_alcotest String Test
