test/test_workload.ml: Alcotest List Mdds_core Mdds_net Mdds_types Mdds_workload String
