test/test_extras.ml: Alcotest Array Hashtbl List Mdds_core Mdds_kvstore Mdds_net Mdds_serial Mdds_sim Mdds_types Mdds_wal Mdds_workload Option Printf
