test/test_net.ml: Alcotest Gen List Mdds_net Mdds_sim Printf QCheck QCheck_alcotest String
