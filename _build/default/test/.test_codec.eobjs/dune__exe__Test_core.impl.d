test/test_core.ml: Alcotest Gen List Mdds_core Mdds_net Mdds_paxos Mdds_types Option Printf QCheck QCheck_alcotest Test
