test/test_wal.ml: Alcotest Gen List Mdds_kvstore Mdds_types Mdds_wal Printf QCheck QCheck_alcotest Test
