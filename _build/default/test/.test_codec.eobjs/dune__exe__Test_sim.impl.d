test/test_sim.ml: Alcotest Array Buffer Fun List Mdds_sim Printf QCheck QCheck_alcotest
