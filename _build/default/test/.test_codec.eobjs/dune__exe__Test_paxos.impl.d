test/test_paxos.ml: Alcotest Array Gen Hashtbl List Mdds_paxos Option Printf QCheck QCheck_alcotest String Test
