test/test_kvstore.mli:
