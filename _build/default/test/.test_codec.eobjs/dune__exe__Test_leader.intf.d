test/test_leader.mli:
