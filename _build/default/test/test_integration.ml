(* End-to-end protocol tests on full simulated clusters: client API
   semantics, basic-vs-CP behaviour, combination, promotion, and the
   one-copy serializability oracle over randomized workloads. *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology
module Txn = Mdds_types.Txn
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng

let group = "g"

let make ?(seed = 42) ?(config = Config.default) ?(spec = "VVV") () =
  Cluster.create ~seed ~config (Topology.ec2 spec)

let committed = function
  | Audit.Committed _ -> true
  | Audit.Aborted _ | Audit.Read_only_committed | Audit.Unknown -> false

(* ------------------------------------------------------------------ *)
(* Client API semantics.                                                *)

let test_read_your_writes () =
  let cluster = make () in
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ client ~group in
      Alcotest.(check (option string)) "unwritten" None (Client.read txn "k");
      Client.write txn "k" "mine";
      Alcotest.(check (option string)) "A1: own write visible" (Some "mine")
        (Client.read txn "k");
      Client.write txn "k" "mine2";
      Alcotest.(check (option string)) "latest own write" (Some "mine2")
        (Client.read txn "k");
      ignore (Client.commit txn));
  Cluster.run cluster;
  Verify.check_exn cluster ~group

let test_snapshot_isolation_of_reads () =
  (* A transaction's reads all come from its read position (A2), even if
     another transaction commits in between. *)
  let cluster = make () in
  let c1 = Cluster.client cluster ~dc:0 in
  let c2 = Cluster.client cluster ~dc:1 in
  (* Seed a value. *)
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ c1 ~group in
      Client.write txn "x" "v1";
      Client.write txn "y" "v1";
      assert (committed (Client.commit txn)));
  Cluster.run cluster;
  let observed = ref [] in
  Cluster.spawn cluster (fun () ->
      let reader = Client.begin_ c1 ~group in
      observed := [ ("x", Client.read reader "x") ];
      (* Meanwhile another client overwrites both keys. *)
      let writer = Client.begin_ c2 ~group in
      Client.write writer "x" "v2";
      Client.write writer "y" "v2";
      assert (committed (Client.commit writer));
      (* The reader continues at its original read position. *)
      observed := ("y", Client.read reader "y") :: !observed;
      ignore (Client.commit reader));
  Cluster.run cluster;
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) ("stable read of " ^ k) (Some "v1") v)
    !observed;
  Verify.check_exn cluster ~group

let test_read_only_not_logged () =
  let cluster = make () in
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let w = Client.begin_ client ~group in
      Client.write w "k" "v";
      assert (committed (Client.commit w));
      let r = Client.begin_ client ~group in
      ignore (Client.read r "k");
      match Client.commit r with
      | Audit.Read_only_committed -> ()
      | _ -> Alcotest.fail "read-only must commit trivially");
  Cluster.run cluster;
  Alcotest.(check int) "only the write in the log" 1
    (List.length (Cluster.committed_log cluster ~group));
  Verify.check_exn cluster ~group

let test_commit_twice_rejected () =
  let cluster = make () in
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ client ~group in
      Client.write txn "k" "v";
      ignore (Client.commit txn);
      match Client.commit txn with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "double commit accepted");
  Cluster.run cluster

(* ------------------------------------------------------------------ *)
(* Basic protocol: concurrency prevention.                              *)

let run_two_concurrent ~config ~keys () =
  (* Two clients begin at the same read position, then both commit. *)
  let cluster = make ~config () in
  let outcomes = ref [] in
  let k1, k2 = keys in
  let run dc key =
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn key);
        Client.write txn key ("by-dc" ^ string_of_int dc);
        let outcome = Client.commit txn in
        outcomes := (dc, outcome) :: !outcomes)
  in
  run 0 k1;
  run 1 k2;
  Cluster.run cluster;
  Verify.check_exn cluster ~group;
  (cluster, List.sort compare !outcomes)

let test_basic_aborts_disjoint_race () =
  (* Disjoint write sets, same log position: basic Paxos still aborts one
     — the "concurrency prevention" behaviour of §4.2. *)
  let _, outcomes = run_two_concurrent ~config:Config.basic ~keys:("a", "b") () in
  let wins = List.filter (fun (_, o) -> committed o) outcomes in
  Alcotest.(check int) "exactly one commits" 1 (List.length wins);
  match List.find (fun (_, o) -> not (committed o)) outcomes with
  | _, Audit.Aborted { reason = Audit.Lost_position; _ } -> ()
  | _ -> Alcotest.fail "loser must abort with lost-position"

let test_cp_commits_disjoint_race () =
  (* The same race under Paxos-CP: both commit (combination or
     promotion). *)
  let cluster, outcomes = run_two_concurrent ~config:Config.default ~keys:("a", "b") () in
  let wins = List.filter (fun (_, o) -> committed o) outcomes in
  Alcotest.(check int) "both commit" 2 (List.length wins);
  Alcotest.(check bool) "logs agree" true (Cluster.logs_agree cluster ~group = Ok ())

let test_cp_aborts_true_conflict () =
  (* Both read and write the same key: serializability demands one
     abort. *)
  let _, outcomes = run_two_concurrent ~config:Config.default ~keys:("same", "same") () in
  let wins = List.filter (fun (_, o) -> committed o) outcomes in
  Alcotest.(check int) "exactly one commits" 1 (List.length wins);
  match List.find (fun (_, o) -> not (committed o)) outcomes with
  | _, Audit.Aborted { reason = Audit.Conflict; _ } -> ()
  | _, Audit.Aborted { reason; _ } ->
      Alcotest.failf "wrong reason: %s" (Format.asprintf "%a" Audit.pp_reason reason)
  | _ -> Alcotest.fail "no abort found"

let test_blind_writes_can_combine () =
  (* Write-only transactions on the same key never read, so CP can settle
     both (one may be promoted past the other or combined). *)
  let cluster = make () in
  let outcomes = ref [] in
  for dc = 0 to 1 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn "k" ("blind" ^ string_of_int dc);
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  Alcotest.(check int) "both blind writes commit" 2
    (List.length (List.filter committed !outcomes));
  Verify.check_exn cluster ~group

let test_promotion_cap () =
  (* With max_promotions = 0, CP degenerates to basic-like behaviour for
     losers. *)
  let config = { Config.default with max_promotions = Some 0 } in
  let _, outcomes = run_two_concurrent ~config ~keys:("a", "b") () in
  let losers = List.filter (fun (_, o) -> not (committed o)) outcomes in
  match losers with
  | [ (_, Audit.Aborted { reason = Audit.Promotion_limit; promotions = 0 }) ] -> ()
  | [] ->
      (* Combination may still have saved both; that is legal. *)
      ()
  | _ -> Alcotest.fail "unexpected abort shape"

let test_promotions_count_reported () =
  (* Force a promotion: client B begins at a stale read position because
     its local datacenter has not applied A's commit yet. We simulate by
     having A and B race repeatedly and checking the audit agrees with the
     log. *)
  let cluster = make ~seed:1 () in
  for dc = 0 to 2 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        for _ = 1 to 5 do
          let txn = Client.begin_ client ~group in
          Client.write txn (Printf.sprintf "k%d" dc) "v";
          ignore (Client.commit txn)
        done)
  done;
  Cluster.run cluster;
  let events = Audit.events (Cluster.audit cluster) in
  let log = Cluster.committed_log cluster ~group in
  (* Every committed event's position must hold its txn; promotions are
     position - (read_position + 1). *)
  List.iter
    (fun (e : Audit.event) ->
      match e.outcome with
      | Audit.Committed { position; promotions; _ } ->
          Alcotest.(check int) "promotions = position - first try"
            (position - e.record.read_position - 1)
            promotions;
          let entry = List.assoc position log in
          Alcotest.(check bool) "logged where reported" true
            (Txn.mem_entry ~txn_id:e.record.txn_id entry)
      | _ -> ())
    events;
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Config variants still correct.                                       *)

let variant_correct name config () =
  let cluster = make ~seed:77 ~config () in
  for dc = 0 to 2 do
    let client = Cluster.client cluster ~dc in
    let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
    Cluster.spawn cluster (fun () ->
        for _ = 1 to 8 do
          let txn = Client.begin_ client ~group in
          for _ = 1 to 3 do
            let key = Printf.sprintf "k%d" (Rng.int rng 5) in
            if Rng.bool rng 0.5 then ignore (Client.read txn key)
            else Client.write txn key "v"
          done;
          ignore (Client.commit txn);
          Engine.sleep (Rng.uniform rng 0.0 0.2)
        done)
  done;
  Cluster.run cluster;
  match Verify.check cluster ~group with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

let test_wan_cluster_correct () = variant_correct "wan" Config.default ()

let prop_random_workloads_serializable =
  (* The heavyweight oracle over many random seeds and both protocols. *)
  QCheck.Test.make ~name:"random concurrent workloads are one-copy serializable"
    ~count:12
    QCheck.(pair (int_bound 10_000) bool)
    (fun (seed, use_basic) ->
      let config = if use_basic then Config.basic else Config.default in
      let cluster = make ~seed ~config ~spec:"VVV" () in
      for dc = 0 to 2 do
        let client = Cluster.client cluster ~dc in
        let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
        Cluster.spawn cluster (fun () ->
            for _ = 1 to 6 do
              let txn = Client.begin_ client ~group in
              for _ = 1 to 4 do
                let key = Printf.sprintf "k%d" (Rng.int rng 4) in
                if Rng.bool rng 0.5 then ignore (Client.read txn key)
                else Client.write txn key (Printf.sprintf "%s" (Client.txn_id txn))
              done;
              ignore (Client.commit txn);
              Engine.sleep (Rng.uniform rng 0.0 0.15)
            done)
      done;
      Cluster.run cluster;
      Verify.check cluster ~group = Ok ())

let test_seven_datacenter_soak () =
  (* A larger deployment (7 datacenters, quorum 4) under a heavier
     workload, both protocols, full oracle. *)
  List.iter
    (fun config ->
      let cluster = make ~seed:1234 ~config ~spec:"VVVVVOC" () in
      let workload =
        { Mdds_workload.Ycsb.default with total_txns = 400; rate = 2.0; threads = 8 }
      in
      ignore (Mdds_workload.Ycsb.run cluster workload);
      Cluster.run cluster;
      (match Verify.check cluster ~group:workload.Mdds_workload.Ycsb.group with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s: %s" (Config.protocol_name config.Config.protocol) m);
      let audit = Cluster.audit cluster in
      Alcotest.(check bool)
        (Printf.sprintf "%s commits plausible (%d)"
           (Config.protocol_name config.Config.protocol)
           (Audit.commits audit))
        true
        (Audit.commits audit > 100))
    [ Config.basic; Config.default; Config.leader ]

let () =
  Alcotest.run "integration"
    [
      ( "client-api",
        [
          Alcotest.test_case "read your writes (A1)" `Quick test_read_your_writes;
          Alcotest.test_case "stable read position (A2)" `Quick test_snapshot_isolation_of_reads;
          Alcotest.test_case "read-only not logged" `Quick test_read_only_not_logged;
          Alcotest.test_case "double commit rejected" `Quick test_commit_twice_rejected;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "basic aborts disjoint race" `Quick test_basic_aborts_disjoint_race;
          Alcotest.test_case "cp commits disjoint race" `Quick test_cp_commits_disjoint_race;
          Alcotest.test_case "cp aborts true conflict" `Quick test_cp_aborts_true_conflict;
          Alcotest.test_case "blind writes combine" `Quick test_blind_writes_can_combine;
          Alcotest.test_case "promotion cap" `Quick test_promotion_cap;
          Alcotest.test_case "promotions reported honestly" `Quick test_promotions_count_reported;
          Alcotest.test_case "WAN cluster correct" `Quick test_wan_cluster_correct;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_random_workloads_serializable;
          Alcotest.test_case "seven-datacenter soak" `Slow test_seven_datacenter_soak;
        ] );
    ]
