(* Unit and property tests for the binary codec combinators. *)

module Codec = Mdds_codec.Codec

let roundtrip codec value = Codec.decode_exn codec (Codec.encode codec value)

let test_primitives () =
  List.iter
    (fun n -> Alcotest.(check int) "int" n (roundtrip Codec.int n))
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; 300; -300; max_int; min_int ];
  Alcotest.(check bool) "true" true (roundtrip Codec.bool true);
  Alcotest.(check bool) "false" false (roundtrip Codec.bool false);
  Alcotest.(check unit) "unit" () (roundtrip Codec.unit ());
  List.iter
    (fun s -> Alcotest.(check string) "string" s (roundtrip Codec.string s))
    [ ""; "x"; "hello world"; String.make 1000 'z'; "\000\255\001" ];
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) "float" f (roundtrip Codec.float f))
    [ 0.0; 1.5; -3.25; 1e300; -1e-300; Float.max_float ];
  Alcotest.(check bool) "nan" true (Float.is_nan (roundtrip Codec.float Float.nan));
  List.iter
    (fun i -> Alcotest.(check int64) "int64" i (roundtrip Codec.int64 i))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x1234567890ABCDEFL ]

let test_combinators () =
  let c = Codec.(pair int string) in
  Alcotest.(check (pair int string)) "pair" (42, "x") (roundtrip c (42, "x"));
  let t = roundtrip Codec.(triple int bool string) (1, true, "a") in
  Alcotest.(check bool) "triple" true (t = (1, true, "a"));
  let q = roundtrip Codec.(quad int int int int) (1, 2, 3, 4) in
  Alcotest.(check bool) "quad" true (q = (1, 2, 3, 4));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (roundtrip Codec.(list int) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty list" [] (roundtrip Codec.(list int) []);
  Alcotest.(check (option string))
    "some" (Some "v")
    (roundtrip Codec.(option string) (Some "v"));
  Alcotest.(check (option string)) "none" None (roundtrip Codec.(option string) None);
  Alcotest.(check (array int)) "array" [| 7; 8 |] (roundtrip Codec.(array int) [| 7; 8 |]);
  let r = Codec.(result int string) in
  Alcotest.(check bool) "ok" true (roundtrip r (Ok 3) = Ok 3);
  Alcotest.(check bool) "error" true (roundtrip r (Error "e") = Error "e")

let test_map () =
  let pos = Codec.map (fun n -> abs n) (fun n -> n) Codec.int in
  Alcotest.(check int) "map decode side" 5 (roundtrip pos (-5))

type shape = Circle of int | Rect of int * int | Point

let shape_codec =
  let open Codec in
  tagged
    ~tag_of:(function Circle _ -> 0 | Rect _ -> 1 | Point -> 2)
    [
      (0, map (fun r -> Circle r) (function Circle r -> r | _ -> 0) int);
      ( 1,
        map
          (fun (w, h) -> Rect (w, h))
          (function Rect (w, h) -> (w, h) | _ -> (0, 0))
          (pair int int) );
      (2, map (fun () -> Point) (fun _ -> ()) unit);
    ]

let test_tagged () =
  List.iter
    (fun s -> Alcotest.(check bool) "shape" true (roundtrip shape_codec s = s))
    [ Circle 5; Rect (2, 3); Point ];
  Alcotest.check_raises "duplicate tags"
    (Invalid_argument "Codec.tagged: duplicate tags") (fun () ->
      ignore (Codec.tagged ~tag_of:(fun _ -> 0) [ (0, Codec.int); (0, Codec.int) ]))

type tree = Leaf | Node of tree * int * tree

let tree_codec =
  Codec.fix (fun self ->
      let open Codec in
      tagged
        ~tag_of:(function Leaf -> 0 | Node _ -> 1)
        [
          (0, map (fun () -> Leaf) (fun _ -> ()) unit);
          ( 1,
            map
              (fun (l, v, r) -> Node (l, v, r))
              (function Node (l, v, r) -> (l, v, r) | Leaf -> (Leaf, 0, Leaf))
              (triple self int self) );
        ])

let test_fix () =
  let t = Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Node (Leaf, 4, Leaf))) in
  Alcotest.(check bool) "tree" true (roundtrip tree_codec t = t)

let test_errors () =
  (match Codec.decode Codec.int "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated int accepted");
  (match Codec.decode Codec.string "\005ab" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated string accepted");
  (match Codec.decode Codec.bool "\007" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid bool accepted");
  (match Codec.decode Codec.int (Codec.encode Codec.int 5 ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Codec.decode shape_codec "\009" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag accepted");
  (* A varint that overflows into a negative length must be rejected, not
     crash List.init (regression: found by the fuzz property). *)
  let negative_length = "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f" in
  match Codec.decode Codec.(list int) negative_length with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative length accepted"

(* Property tests. *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"int roundtrip" ~count:500 int (fun n ->
        roundtrip Codec.int n = n);
    Test.make ~name:"string roundtrip" ~count:300 string (fun s ->
        roundtrip Codec.string s = s);
    Test.make ~name:"int list roundtrip" ~count:200 (list int) (fun l ->
        roundtrip Codec.(list int) l = l);
    Test.make ~name:"nested pair/option roundtrip" ~count:200
      (pair (option string) (list (pair int bool)))
      (fun v -> roundtrip Codec.(pair (option string) (list (pair int bool))) v = v);
    Test.make ~name:"varint encoding is compact for small ints" ~count:200
      (int_range (-63) 63)
      (fun n -> String.length (Codec.encode Codec.int n) = 1);
    Test.make ~name:"decode of arbitrary bytes never panics" ~count:1000 string
      (fun s ->
        match Codec.decode Codec.(pair int (list string)) s with
        | Ok _ | Error _ -> true);
  ]

let () =
  Alcotest.run "codec"
    [
      ( "unit",
        [
          Alcotest.test_case "primitives" `Quick test_primitives;
          Alcotest.test_case "combinators" `Quick test_combinators;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "tagged" `Quick test_tagged;
          Alcotest.test_case "fix (recursive)" `Quick test_fix;
          Alcotest.test_case "malformed input" `Quick test_errors;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
