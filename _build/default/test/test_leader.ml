(* Tests for the long-term-leader transaction manager (the paper's §7–§8
   future-work design) and the semaphore substrate it uses. *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Semaphore = Mdds_sim.Semaphore
module Rng = Mdds_sim.Rng

let group = "g"

let committed = function
  | Audit.Committed _ | Audit.Read_only_committed -> true
  | Audit.Aborted _ | Audit.Unknown -> false

(* ------------------------------------------------------------------ *)
(* Semaphore.                                                           *)

let test_semaphore_mutex () =
  let engine = Engine.create () in
  let sem = Semaphore.create engine 1 in
  let active = ref 0 and max_active = ref 0 and order = ref [] in
  for i = 1 to 3 do
    Engine.spawn engine (fun () ->
        Semaphore.with_permit sem (fun () ->
            incr active;
            max_active := max !max_active !active;
            Engine.sleep 1.0;
            order := i :: !order;
            decr active))
  done;
  Engine.run engine;
  Alcotest.(check int) "mutual exclusion" 1 !max_active;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] (List.rev !order)

let test_semaphore_counting () =
  let engine = Engine.create () in
  let sem = Semaphore.create engine 2 in
  Alcotest.(check int) "initial" 2 (Semaphore.available sem);
  let peak = ref 0 and active = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn engine (fun () ->
        Semaphore.with_permit sem (fun () ->
            incr active;
            peak := max !peak !active;
            Engine.sleep 0.5;
            decr active))
  done;
  Engine.run engine;
  Alcotest.(check int) "at most two concurrent" 2 !peak;
  Alcotest.(check int) "all permits back" 2 (Semaphore.available sem);
  Alcotest.(check int) "no waiters" 0 (Semaphore.waiting sem)

let test_semaphore_release_on_exception () =
  let engine = Engine.create () in
  let sem = Semaphore.create engine 1 in
  let second_ran = ref false in
  Engine.spawn engine (fun () ->
      try Semaphore.with_permit sem (fun () -> failwith "boom")
      with Failure _ -> ());
  Engine.spawn engine (fun () ->
      Semaphore.with_permit sem (fun () -> second_ran := true));
  Engine.run engine;
  Alcotest.(check bool) "permit released on exception" true !second_ran

let test_semaphore_invalid () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Semaphore.create: negative permits") (fun () ->
      ignore (Semaphore.create engine (-1)))

(* ------------------------------------------------------------------ *)
(* Leader protocol.                                                     *)

let make ?(seed = 42) ?(spec = "VVV") ?(config = Config.leader) () =
  Cluster.create ~seed ~config (Topology.ec2 spec)

let test_leader_basic_commit () =
  let cluster = make () in
  let client = Cluster.client cluster ~dc:1 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ client ~group in
      Client.write txn "x" "v";
      (match Client.commit txn with
      | Audit.Committed { position = 1; promotions = 0; _ } -> ()
      | _ -> Alcotest.fail "leader commit failed");
      (* Read back through the normal read path. *)
      let txn2 = Client.begin_ client ~group in
      Alcotest.(check (option string)) "visible" (Some "v") (Client.read txn2 "x");
      ignore (Client.commit txn2));
  Cluster.run cluster;
  Verify.check_exn cluster ~group

let test_leader_orders_conflicting () =
  (* Two conflicting read-modify-writes: the manager serializes them; one
     commits, the stale one aborts with a conflict — no lost update. *)
  let cluster = make () in
  let outcomes = ref [] in
  for dc = 0 to 1 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn "counter");
        Client.write txn "counter" (Printf.sprintf "set-by-%d" dc);
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let commits = List.length (List.filter committed !outcomes) in
  let conflicts =
    List.length
      (List.filter
         (function Audit.Aborted { reason = Audit.Conflict; _ } -> true | _ -> false)
         !outcomes)
  in
  Alcotest.(check int) "one commits" 1 commits;
  Alcotest.(check int) "one conflict" 1 conflicts;
  Verify.check_exn cluster ~group

let test_leader_disjoint_both_commit () =
  (* Disjoint transactions: the manager's fine-grained check admits both
     (no coarse position-based aborts). *)
  let cluster = make () in
  let outcomes = ref [] in
  for dc = 0 to 2 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        let key = Printf.sprintf "k%d" dc in
        ignore (Client.read txn key);
        Client.write txn key "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  Alcotest.(check int) "all commit" 3 (List.length (List.filter committed !outcomes));
  Verify.check_exn cluster ~group

let test_leader_failover () =
  (* The preferred manager (dc0) is down; clients probe and fail over to
     the next site, which becomes the manager. *)
  let cluster = make ~seed:7 () in
  Cluster.take_down cluster 0;
  let client = Cluster.client cluster ~dc:1 in
  let results = ref [] in
  Cluster.spawn cluster (fun () ->
      for i = 1 to 3 do
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        results := outcome :: !results
      done);
  Cluster.run cluster;
  Alcotest.(check int) "all commit via fallback manager" 3
    (List.length (List.filter committed !results));
  Verify.check_exn cluster ~group

let test_leader_steady_state_uses_fast_path () =
  (* After the first decision, the manager should decide in one accept
     round: messages per commit must drop well below a full instance. *)
  let cluster = make ~seed:9 () in
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      for i = 1 to 20 do
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        assert (committed (Client.commit txn))
      done);
  Cluster.run cluster;
  Verify.check_exn cluster ~group;
  let stats = Mdds_net.Network.stats (Cluster.network cluster) in
  let per_commit = float_of_int stats.Mdds_net.Network.sent /. 20.0 in
  (* Steady state per commit: probe (2) + submit (2) + accept round (6) +
     apply (3) + local applies ≈ 15; a full Paxos instance adds 6+ more.
     Allow headroom but catch regressions to always-full-Paxos. *)
  Alcotest.(check bool)
    (Printf.sprintf "fast path keeps messages low (%.1f/commit)" per_commit)
    true (per_commit < 22.0)

let test_leader_stale_read_detected () =
  (* A transaction that begins, then waits while others overwrite its read
     set, must be refused by the manager's conflict check. *)
  let cluster = make ~seed:5 () in
  let slow = Cluster.client cluster ~dc:1 in
  let fast_client = Cluster.client cluster ~dc:2 in
  let slow_outcome = ref None in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ slow ~group in
      ignore (Client.read txn "hot");
      Client.write txn "hot" "slow-version";
      (* Give the fast transaction time to commit first. *)
      Engine.sleep 3.0;
      slow_outcome := Some (Client.commit txn));
  Cluster.spawn cluster (fun () ->
      Engine.sleep 0.5;
      let txn = Client.begin_ fast_client ~group in
      Client.write txn "hot" "fast-version";
      assert (committed (Client.commit txn)));
  Cluster.run cluster;
  (match !slow_outcome with
  | Some (Audit.Aborted { reason = Audit.Conflict; _ }) -> ()
  | _ -> Alcotest.fail "stale read not refused");
  Verify.check_exn cluster ~group

let test_leader_random_workload_serializable () =
  List.iter
    (fun seed ->
      let cluster = make ~seed ~spec:"VOC" () in
      for dc = 0 to 2 do
        let client = Cluster.client cluster ~dc in
        let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
        Cluster.spawn cluster (fun () ->
            for _ = 1 to 6 do
              let txn = Client.begin_ client ~group in
              for _ = 1 to 4 do
                let key = Printf.sprintf "k%d" (Rng.int rng 4) in
                if Rng.bool rng 0.5 then ignore (Client.read txn key)
                else Client.write txn key (Client.txn_id txn)
              done;
              ignore (Client.commit txn);
              Engine.sleep (Rng.uniform rng 0.0 0.3)
            done)
      done;
      Cluster.run cluster;
      match Verify.check cluster ~group with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m)
    [ 1; 2; 3; 4; 5 ]

let test_leader_outage_midway () =
  (* The manager dies mid-run; some in-flight commits may end Unknown, but
     nothing ever violates serializability, and reported outcomes stay
     honest (the oracle checks commit/abort against the log). *)
  let cluster = make ~seed:11 () in
  let client = Cluster.client cluster ~dc:1 in
  let done_count = ref 0 in
  Cluster.spawn cluster (fun () ->
      for i = 1 to 8 do
        (try
           let txn = Client.begin_ client ~group in
           Client.write txn (Printf.sprintf "k%d" i) "v";
           ignore (Client.commit txn)
         with Client.Unavailable _ -> ());
        incr done_count;
        Engine.sleep 1.0
      done);
  Engine.schedule (Cluster.engine cluster) ~at:2.5 (fun () ->
      Cluster.take_down cluster 0);
  Cluster.run cluster;
  Alcotest.(check int) "workload drained" 8 !done_count;
  Verify.check_exn cluster ~group

let () =
  Alcotest.run "leader"
    [
      ( "semaphore",
        [
          Alcotest.test_case "mutual exclusion + FIFO" `Quick test_semaphore_mutex;
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
          Alcotest.test_case "release on exception" `Quick test_semaphore_release_on_exception;
          Alcotest.test_case "invalid" `Quick test_semaphore_invalid;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "basic commit" `Quick test_leader_basic_commit;
          Alcotest.test_case "conflicting serialized" `Quick test_leader_orders_conflicting;
          Alcotest.test_case "disjoint both commit" `Quick test_leader_disjoint_both_commit;
          Alcotest.test_case "failover" `Quick test_leader_failover;
          Alcotest.test_case "steady-state fast path" `Quick test_leader_steady_state_uses_fast_path;
          Alcotest.test_case "stale read detected" `Quick test_leader_stale_read_detected;
          Alcotest.test_case "random workloads serializable" `Slow test_leader_random_workload_serializable;
          Alcotest.test_case "manager outage midway" `Quick test_leader_outage_midway;
        ] );
    ]
