(* Tests for the YCSB-like workload generator. *)

module Cluster = Mdds_core.Cluster
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology
module Txn = Mdds_types.Txn
module Ycsb = Mdds_workload.Ycsb

let run_workload ?(seed = 42) ?(config = Config.default) workload =
  let cluster = Cluster.create ~seed ~config (Topology.ec2 "VVV") in
  let handle = Ycsb.run cluster workload in
  Cluster.run cluster;
  (cluster, handle)

let workload_events cluster =
  List.filter
    (fun (e : Audit.event) ->
      not (String.starts_with ~prefix:(Ycsb.preload_id ^ "/") e.record.txn_id))
    (Audit.events (Cluster.audit cluster))

let small =
  { Ycsb.default with total_txns = 40; threads = 4; rate = 4.0; attributes = 30 }

let test_txn_count_exact () =
  let cluster, handle = run_workload small in
  let events = workload_events cluster in
  Alcotest.(check int) "exactly requested transactions" 40 (List.length events);
  Alcotest.(check int) "handle agrees" 40 handle.Ycsb.finished;
  Alcotest.(check int) "no begin failures" 0 handle.Ycsb.begin_failures

let test_ops_per_txn () =
  let cluster, _ = run_workload small in
  List.iter
    (fun (e : Audit.event) ->
      let reads = List.length e.record.reads in
      let writes = List.length e.record.writes in
      (* Reads are deduplicated per key and writes keep one buffered value
         per key, so reads + writes <= ops; and a transaction performs at
         least one operation. *)
      if reads + writes > small.Ycsb.ops_per_txn then
        Alcotest.failf "txn %s has %d reads + %d writes > %d ops"
          e.record.txn_id reads writes small.Ycsb.ops_per_txn;
      if reads + writes = 0 then Alcotest.failf "empty transaction %s" e.record.txn_id)
    (workload_events cluster)

let test_keys_in_range () =
  let cluster, _ = run_workload small in
  let valid key =
    String.length key = 4
    && key.[0] = 'a'
    &&
    match int_of_string_opt (String.sub key 1 3) with
    | Some n -> n >= 0 && n < small.Ycsb.attributes
    | None -> false
  in
  List.iter
    (fun (e : Audit.event) ->
      List.iter
        (fun k -> if not (valid k) then Alcotest.failf "bad key %s" k)
        (e.record.reads @ List.map (fun (w : Txn.write) -> w.key) e.record.writes))
    (workload_events cluster)

let test_preload_first () =
  let cluster, _ = run_workload small in
  let log = Cluster.committed_log cluster ~group:small.Ycsb.group in
  match log with
  | (1, [ first ]) :: _ ->
      Alcotest.(check bool) "preload owns position 1" true
        (String.starts_with ~prefix:(Ycsb.preload_id ^ "/") first.Txn.txn_id);
      Alcotest.(check int) "preload writes every attribute"
        small.Ycsb.attributes
        (List.length first.Txn.writes)
  | _ -> Alcotest.fail "no preload at position 1"

let test_no_preload () =
  let cluster, _ = run_workload { small with Ycsb.preload = false } in
  let log = Cluster.committed_log cluster ~group:small.Ycsb.group in
  List.iter
    (fun (_, entry) ->
      List.iter
        (fun (r : Txn.record) ->
          if String.starts_with ~prefix:(Ycsb.preload_id ^ "/") r.txn_id then
            Alcotest.fail "preload present despite preload = false")
        entry)
    log

let test_client_dcs_round_robin () =
  let workload = { small with Ycsb.client_dcs = [ 0; 2 ]; threads = 4 } in
  let cluster, _ = run_workload workload in
  let dcs =
    List.sort_uniq compare
      (List.map (fun (e : Audit.event) -> e.client_dc) (workload_events cluster))
  in
  Alcotest.(check (list int)) "only listed datacenters" [ 0; 2 ] dcs

let test_pacing_duration () =
  (* 40 txns over 4 threads at 4/s each: the run takes roughly
     preload + 10/4 s; far less than a serial execution at that rate. *)
  let cluster, _ = run_workload small in
  let duration = Cluster.now cluster in
  Alcotest.(check bool) "plausible duration" true (duration > 1.0 && duration < 30.0)

let test_rate_controls_duration () =
  let slow = { small with Ycsb.rate = 1.0 } in
  let fast = { small with Ycsb.rate = 8.0 } in
  let _, _ = run_workload slow in
  let cluster_slow, _ = run_workload slow in
  let cluster_fast, _ = run_workload fast in
  Alcotest.(check bool) "slower rate runs longer" true
    (Cluster.now cluster_slow > Cluster.now cluster_fast)

let test_workload_serializable_both_protocols () =
  List.iter
    (fun config ->
      let cluster, _ = run_workload ~config { small with Ycsb.total_txns = 60 } in
      match Verify.check cluster ~group:small.Ycsb.group with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s: %s" (Config.protocol_name config.Config.protocol) m)
    [ Config.basic; Config.default ]

let test_invalid_configs () =
  let cluster = Cluster.create ~seed:1 (Topology.ec2 "VVV") in
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Ycsb.run: threads must be positive") (fun () ->
      ignore (Ycsb.run cluster { small with Ycsb.threads = 0 }));
  Alcotest.check_raises "no client dcs"
    (Invalid_argument "Ycsb.run: client_dcs empty") (fun () ->
      ignore (Ycsb.run cluster { small with Ycsb.client_dcs = [] }))

let test_read_write_mix () =
  (* With read_fraction 0, every op is a write; with 1.0, every txn is
     read-only. *)
  let cluster_w, _ = run_workload { small with Ycsb.read_fraction = 0.0 } in
  List.iter
    (fun (e : Audit.event) ->
      Alcotest.(check int) "no reads" 0 (List.length e.record.reads))
    (workload_events cluster_w);
  let cluster_r, _ = run_workload { small with Ycsb.read_fraction = 1.0 } in
  List.iter
    (fun (e : Audit.event) ->
      match e.outcome with
      | Audit.Read_only_committed -> ()
      | _ -> Alcotest.fail "pure-read workload must be read-only commits")
    (workload_events cluster_r)

let () =
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          Alcotest.test_case "transaction count" `Quick test_txn_count_exact;
          Alcotest.test_case "ops per transaction" `Quick test_ops_per_txn;
          Alcotest.test_case "keys in range" `Quick test_keys_in_range;
          Alcotest.test_case "preload first" `Quick test_preload_first;
          Alcotest.test_case "no preload" `Quick test_no_preload;
          Alcotest.test_case "client dcs round robin" `Quick test_client_dcs_round_robin;
          Alcotest.test_case "pacing duration" `Quick test_pacing_duration;
          Alcotest.test_case "rate controls duration" `Quick test_rate_controls_duration;
          Alcotest.test_case "serializable both protocols" `Slow
            test_workload_serializable_both_protocols;
          Alcotest.test_case "invalid configs" `Quick test_invalid_configs;
          Alcotest.test_case "read/write mix" `Quick test_read_write_mix;
        ] );
    ]
