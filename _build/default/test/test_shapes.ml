(* Shape-regression tests: scaled-down versions of the paper's figures,
   asserting the *qualitative* result each figure reports. These keep the
   reproduction honest under refactoring — a change that flips who wins, or
   flattens a trend the paper highlights, fails CI even if everything is
   still "correct". *)

module Config = Mdds_core.Config
module Experiment = Mdds_harness.Experiment
module Ycsb = Mdds_workload.Ycsb

(* Smaller/faster than the real figures: 200 txns, two seeds. *)
let seeds = [ 101; 202 ]

let small = { Ycsb.default with total_txns = 200 }

let commits ?(workload = small) ?(topology = "VVV") config =
  let runs =
    List.map
      (fun seed ->
        let r = Experiment.run (Experiment.spec ~seed ~config ~workload topology) in
        (match r.Experiment.verified with
        | Ok () -> ()
        | Error m -> Alcotest.failf "not serializable: %s" m);
        r)
      seeds
  in
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0. runs /. float_of_int (List.length runs)
  in
  ( mean (fun r -> float_of_int r.Experiment.commits),
    mean (fun r -> r.Experiment.commit_latency.Mdds_harness.Stats.mean) )

let test_cp_beats_basic () =
  (* The headline: Paxos-CP commits substantially more than basic. *)
  let basic, _ = commits Config.basic in
  let cp, _ = commits Config.default in
  if cp < basic *. 1.15 then
    Alcotest.failf "CP advantage collapsed: basic %.0f, cp %.0f" basic cp

let test_basic_flat_under_contention () =
  (* Figure 6's left edge: contention level barely moves basic Paxos. *)
  let lo, _ = commits ~workload:{ small with Ycsb.attributes = 20 } Config.basic in
  let hi, _ = commits ~workload:{ small with Ycsb.attributes = 500 } Config.basic in
  let spread = abs_float (lo -. hi) /. Float.max lo hi in
  if spread > 0.15 then
    Alcotest.failf "basic should be flat: %.0f at 20 attrs vs %.0f at 500" lo hi

let test_cp_rises_with_less_contention () =
  (* Figure 6's trend for CP. *)
  let lo, _ = commits ~workload:{ small with Ycsb.attributes = 20 } Config.default in
  let hi, _ = commits ~workload:{ small with Ycsb.attributes = 500 } Config.default in
  if hi <= lo then
    Alcotest.failf "CP should gain from low contention: %.0f at 20 vs %.0f at 500" lo hi

let test_concurrency_decreases_commits () =
  (* Figure 7's trend, both protocols. *)
  List.iter
    (fun config ->
      let slow, _ = commits ~workload:{ small with Ycsb.rate = 0.5 } config in
      let fast, _ = commits ~workload:{ small with Ycsb.rate = 4.0 } config in
      if fast >= slow then
        Alcotest.failf "%s: commits should fall with throughput (%.0f -> %.0f)"
          (Config.protocol_name config.Config.protocol)
          slow fast)
    [ Config.basic; Config.default ]

let test_wan_latency_exceeds_local () =
  (* Figure 5(b)'s geography effect. *)
  let _, local = commits ~topology:"VV" Config.basic in
  let _, wan = commits ~topology:"OV" Config.basic in
  if wan < 1.5 *. local then
    Alcotest.failf "cross-region quorum should be slower: VV %.3f vs OV %.3f" local wan

let test_replicas_have_little_effect () =
  (* Figure 4(a): 2 vs 5 replicas changes commits only mildly. *)
  let two, _ = commits ~topology:"VV" Config.default in
  let five, _ = commits ~topology:"VVVOC" Config.default in
  let spread = abs_float (two -. five) /. Float.max two five in
  if spread > 0.15 then
    Alcotest.failf "replica count should matter little: %.0f (2) vs %.0f (5)" two five

let test_groups_scale () =
  (* §2.1: spreading load over more groups recovers commits. *)
  let one, _ =
    commits ~workload:{ small with Ycsb.rate = 2.0; groups = 1 } Config.basic
  in
  let eight, _ =
    commits ~workload:{ small with Ycsb.rate = 2.0; groups = 8 } Config.basic
  in
  if eight <= one then
    Alcotest.failf "groups should scale: %.0f (1 group) vs %.0f (8 groups)" one eight

let () =
  Alcotest.run "shapes"
    [
      ( "figure-shapes",
        [
          Alcotest.test_case "CP beats basic (fig 4a)" `Slow test_cp_beats_basic;
          Alcotest.test_case "basic flat under contention (fig 6)" `Slow
            test_basic_flat_under_contention;
          Alcotest.test_case "CP gains from low contention (fig 6)" `Slow
            test_cp_rises_with_less_contention;
          Alcotest.test_case "throughput lowers commits (fig 7)" `Slow
            test_concurrency_decreases_commits;
          Alcotest.test_case "WAN quorums are slower (fig 5b)" `Slow
            test_wan_latency_exceeds_local;
          Alcotest.test_case "replica count matters little (fig 4a)" `Slow
            test_replicas_have_little_effect;
          Alcotest.test_case "groups scale (§2.1)" `Slow test_groups_scale;
        ] );
    ]
