(* Tests for the pure Paxos building blocks: ballots, acceptor transitions,
   vote tallying — plus a model-based safety property: under arbitrary
   interleavings of correctly-behaving proposers, at most one value is ever
   chosen for an instance. *)

module Ballot = Mdds_paxos.Ballot
module Acceptor = Mdds_paxos.Acceptor
module Tally = Mdds_paxos.Tally

(* ------------------------------------------------------------------ *)
(* Ballot.                                                              *)

let test_ballot_order () =
  let b round proposer = Ballot.make ~round ~proposer in
  Alcotest.(check bool) "round dominates" true (Ballot.compare (b 1 9) (b 2 0) < 0);
  Alcotest.(check bool) "proposer breaks ties" true (Ballot.compare (b 1 0) (b 1 1) < 0);
  Alcotest.(check bool) "equal" true (Ballot.equal (b 3 2) (b 3 2));
  Alcotest.(check bool) "bottom below fast" true Ballot.(bottom < fast ~proposer:0);
  Alcotest.(check bool) "fast below round 1" true Ballot.(fast ~proposer:9 < b 1 0);
  Alcotest.(check bool) "is_bottom" true (Ballot.is_bottom Ballot.bottom);
  Alcotest.check_raises "make round 0 reserved"
    (Invalid_argument "Ballot.make: round must be >= 1") (fun () ->
      ignore (Ballot.make ~round:0 ~proposer:1))

let test_ballot_next () =
  let b = Ballot.make ~round:3 ~proposer:5 in
  let n = Ballot.next ~after:b ~proposer:2 in
  Alcotest.(check bool) "strictly greater" true (Ballot.compare n b > 0);
  Alcotest.(check int) "owned by proposer" 2 n.Ballot.proposer;
  (* From bottom, the next ballot is round >= 1. *)
  let from_bottom = Ballot.next ~after:Ballot.bottom ~proposer:0 in
  Alcotest.(check bool) "round >= 1" true (from_bottom.Ballot.round >= 1);
  (* Same-round higher proposer is allowed when it is greater. *)
  let n2 = Ballot.next ~after:(Ballot.make ~round:2 ~proposer:1) ~proposer:4 in
  Alcotest.(check bool) "greater" true
    (Ballot.compare n2 (Ballot.make ~round:2 ~proposer:1) > 0)

let test_ballot_strings () =
  let b = Ballot.make ~round:7 ~proposer:3 in
  Alcotest.(check bool) "roundtrip" true (Ballot.equal (Ballot.of_string (Ballot.to_string b)) b);
  Alcotest.(check bool) "bottom roundtrip" true
    (Ballot.equal (Ballot.of_string (Ballot.to_string Ballot.bottom)) Ballot.bottom);
  Alcotest.check_raises "garbage" (Invalid_argument "Ballot.of_string") (fun () ->
      ignore (Ballot.of_string "nope"))

let prop_ballot_next_monotone =
  QCheck.Test.make ~name:"next is strictly monotone" ~count:300
    QCheck.(triple (int_range (-1) 50) (int_bound 9) (int_bound 9))
    (fun (round, p1, p2) ->
      let after =
        if round < 1 then Ballot.bottom else Ballot.make ~round ~proposer:p1
      in
      let n = Ballot.next ~after ~proposer:p2 in
      Ballot.compare n after > 0 && n.Ballot.round >= 1)

(* ------------------------------------------------------------------ *)
(* Acceptor.                                                            *)

let b round proposer = Ballot.make ~round ~proposer

let test_acceptor_prepare () =
  let s = Acceptor.initial in
  (match Acceptor.on_prepare s (b 1 0) with
  | s', Acceptor.Promise None ->
      Alcotest.(check bool) "nextBal raised" true (Ballot.equal s'.Acceptor.next_bal (b 1 0))
  | _ -> Alcotest.fail "expected null promise");
  let s1, _ = Acceptor.on_prepare s (b 2 0) in
  (match Acceptor.on_prepare s1 (b 1 5) with
  | s2, Acceptor.Reject nb ->
      Alcotest.(check bool) "reject reports promised" true (Ballot.equal nb (b 2 0));
      Alcotest.(check bool) "state unchanged" true
        (Ballot.equal s2.Acceptor.next_bal (b 2 0))
  | _ -> Alcotest.fail "expected reject");
  (* Re-prepare at the same ballot is rejected (must be strictly greater). *)
  match Acceptor.on_prepare s1 (b 2 0) with
  | _, Acceptor.Reject _ -> ()
  | _ -> Alcotest.fail "same-ballot prepare must be rejected"

let test_acceptor_accept () =
  let s = Acceptor.initial in
  (* Fast path: accept at round 0 with no prior promise. *)
  let s1, ok = Acceptor.on_accept s (Ballot.fast ~proposer:2) "v" in
  Alcotest.(check bool) "fast accept" true ok;
  (match s1.Acceptor.vote with
  | Some (bv, "v") -> Alcotest.(check bool) "vote ballot" true (Ballot.equal bv (Ballot.fast ~proposer:2))
  | _ -> Alcotest.fail "vote not recorded");
  (* Lower-than-promised accept is refused. *)
  let s2, _ = Acceptor.on_prepare s1 (b 5 0) in
  let s3, ok = Acceptor.on_accept s2 (b 4 9) "w" in
  Alcotest.(check bool) "stale accept refused" false ok;
  Alcotest.(check bool) "vote unchanged" true (s3.Acceptor.vote = s1.Acceptor.vote);
  (* Accept at exactly the promised ballot succeeds and re-votes. *)
  let s4, ok = Acceptor.on_accept s2 (b 5 0) "w" in
  Alcotest.(check bool) "promised accept" true ok;
  match s4.Acceptor.vote with
  | Some (_, "w") -> ()
  | _ -> Alcotest.fail "revote missing"

let test_acceptor_promise_returns_vote () =
  let s = Acceptor.initial in
  let s1, ok = Acceptor.on_accept s (b 1 0) "old" in
  Alcotest.(check bool) "voted" true ok;
  match Acceptor.on_prepare s1 (b 2 1) with
  | _, Acceptor.Promise (Some (bv, "old")) ->
      Alcotest.(check bool) "vote ballot reported" true (Ballot.equal bv (b 1 0))
  | _ -> Alcotest.fail "promise must carry the last vote"

(* ------------------------------------------------------------------ *)
(* Tally.                                                               *)

let vote from round proposer v = { Tally.from; vote = Some (b round proposer, v) }
let null from = { Tally.from; vote = None }

let test_majority () =
  List.iter
    (fun (d, m) -> Alcotest.(check int) (Printf.sprintf "majority %d" d) m (Tally.majority d))
    [ (1, 1); (2, 2); (3, 2); (4, 3); (5, 3); (7, 4) ];
  Alcotest.(check bool) "is_quorum" true (Tally.is_quorum ~total:5 3);
  Alcotest.(check bool) "not quorum" false (Tally.is_quorum ~total:5 2)

let test_find_winning () =
  Alcotest.(check string) "all null gives own" "mine"
    (Tally.find_winning [ null 0; null 1; null 2 ] ~own:"mine");
  Alcotest.(check string) "max ballot wins" "late"
    (Tally.find_winning
       [ vote 0 1 0 "early"; vote 1 3 1 "late"; vote 2 2 0 "mid" ]
       ~own:"mine");
  Alcotest.(check string) "nulls ignored" "v"
    (Tally.find_winning [ null 0; vote 1 1 0 "v"; null 2 ] ~own:"mine")

let eq = String.equal

let test_decide_free () =
  (* D=3, all three responded, one vote: 1 + 0 silent <= 1 → free. *)
  (match Tally.decide ~total:3 ~equal:eq [ vote 0 1 0 "a"; null 1; null 2 ] with
  | Tally.Free -> ()
  | _ -> Alcotest.fail "expected free");
  (* All null with a majority responding: free. *)
  (match Tally.decide ~total:3 ~equal:eq [ null 0; null 1 ] with
  | Tally.Free -> ()
  | _ -> Alcotest.fail "expected free (all null)");
  (* D=5, 4 responses, max 1 vote: 1 + 1 silent <= 2 → free. *)
  match Tally.decide ~total:5 ~equal:eq [ vote 0 1 0 "a"; null 1; null 2; null 3 ] with
  | Tally.Free -> ()
  | _ -> Alcotest.fail "expected free (D=5)"

let test_decide_chosen () =
  (* D=3, two votes for the same value: majority → chosen. *)
  (match Tally.decide ~total:3 ~equal:eq [ vote 0 1 0 "a"; vote 1 1 0 "a"; null 2 ] with
  | Tally.Chosen "a" -> ()
  | _ -> Alcotest.fail "expected chosen");
  (* D=5 with three same-value votes. *)
  match
    Tally.decide ~total:5 ~equal:eq
      [ vote 0 1 0 "a"; vote 1 1 0 "a"; vote 2 1 0 "a"; null 3; null 4 ]
  with
  | Tally.Chosen "a" -> ()
  | _ -> Alcotest.fail "expected chosen (D=5)"

let test_decide_constrained () =
  (* D=3, only a bare majority responded and one voted: the silent one
     might agree, so 1 + 1 > 1 → constrained to the max-ballot value. *)
  (match Tally.decide ~total:3 ~equal:eq [ vote 0 1 0 "a"; null 1 ] with
  | Tally.Constrained "a" -> ()
  | _ -> Alcotest.fail "expected constrained");
  (* D=5: two values split 2/1 with one silent: max 2 + 1 = 3 > 2, no
     majority seen → constrained to max ballot ("b" at round 4). *)
  match
    Tally.decide ~total:5 ~equal:eq
      [ vote 0 1 0 "a"; vote 1 2 0 "a"; vote 2 4 1 "b"; null 3 ]
  with
  | Tally.Constrained "b" -> ()
  | _ -> Alcotest.fail "expected constrained to max ballot"

let test_decide_empty () =
  let expected = Invalid_argument "Tally.decide: need a majority of responses" in
  Alcotest.check_raises "no responses" expected (fun () ->
      ignore (Tally.decide ~total:3 ~equal:eq []));
  Alcotest.check_raises "sub-quorum" expected (fun () ->
      ignore (Tally.decide ~total:5 ~equal:eq [ null 0; null 1 ]))

let test_vote_counts () =
  let counts =
    Tally.vote_counts ~equal:eq [ vote 0 1 0 "a"; vote 1 2 1 "a"; vote 2 3 0 "b"; null 3 ]
  in
  Alcotest.(check int) "a count" 2 (List.assoc "a" counts);
  Alcotest.(check int) "b count" 1 (List.assoc "b" counts)

let tally_coherence_prop =
  (* decide's classification is internally coherent with its inputs. *)
  let open QCheck in
  let gen =
    Gen.(
      let* total = 3 -- 7 in
      let* n = Tally.majority total -- total in
      let* votes =
        flatten_l
          (List.init n (fun from ->
               map
                 (fun v ->
                   match v with
                   | None -> { Tally.from; vote = None }
                   | Some (r, value) ->
                       { Tally.from; vote = Some (b (r + 1) 0, value) })
                 (option (pair (0 -- 3) (oneofl [ "a"; "b"; "c" ])))))
      in
      return (total, votes))
  in
  Test.make ~name:"decide classification is coherent" ~count:500 (make gen)
    (fun (total, votes) ->
      let counts = Tally.vote_counts ~equal:String.equal votes in
      let max_votes = List.fold_left (fun m (_, n) -> max m n) 0 counts in
      let silent = total - List.length votes in
      match Tally.decide ~total ~equal:String.equal votes with
      | Tally.Free -> max_votes + silent <= total / 2
      | Tally.Chosen v ->
          (* v really has a majority of observed votes. *)
          List.assoc v counts > total / 2
      | Tally.Constrained v ->
          (* Neither window: some non-null vote exists and v is the
             max-ballot one. *)
          max_votes + silent > total / 2
          && max_votes <= total / 2
          && v = Tally.find_winning votes ~own:"OWN-SENTINEL")

(* ------------------------------------------------------------------ *)
(* Model-based safety: arbitrary interleavings of proposer actions.     *)

(* A tiny executable model of an instance: N acceptor states, P proposers
   following the proper two-phase rules. The schedule (a list of (proposer,
   acceptor-subset) action pairs generated by QCheck) decides which
   prepare/accept messages get through. Safety: the set of values ever
   chosen (voted by a majority of acceptors at the same ballot) has at most
   one element — and matches what the basic findWinningVal adoption rule
   preserves. *)

let safety_model_prop =
  let open QCheck in
  let n_acceptors = 3 and n_proposers = 3 in
  let schedule_gen =
    Gen.(
      list_size (5 -- 40)
        (pair (int_bound (n_proposers - 1))
           (list_size (1 -- n_acceptors) (int_bound (n_acceptors - 1)))))
  in
  Test.make ~name:"no two different values are ever chosen" ~count:500
    (make schedule_gen)
    (fun schedule ->
      let acceptors = Array.make n_acceptors Acceptor.initial in
      (* Per-proposer state: current round and a pending value phase. *)
      let rounds = Array.make n_proposers 0 in
      let chosen : (string, unit) Hashtbl.t = Hashtbl.create 4 in
      let record_chosen () =
        (* A value is chosen when a majority voted for it at one ballot. *)
        let tbl = Hashtbl.create 4 in
        Array.iter
          (fun (s : string Acceptor.state) ->
            match s.Acceptor.vote with
            | Some (bv, v) ->
                let key = Ballot.to_string bv ^ "/" ^ v in
                Hashtbl.replace tbl key
                  (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)
            | None -> ())
          acceptors;
        Hashtbl.iter
          (fun key count ->
            if count >= Tally.majority n_acceptors then
              let value = List.nth (String.split_on_char '/' key) 1 in
              Hashtbl.replace chosen value ())
          tbl
      in
      List.iter
        (fun (proposer, subset) ->
          let subset = List.sort_uniq compare subset in
          (* One full proposer round against the chosen subset: prepare to
             them; if a majority promised, adopt per findWinningVal and
             send accepts to the same subset. *)
          rounds.(proposer) <- rounds.(proposer) + 1;
          let ballot = Ballot.make ~round:rounds.(proposer) ~proposer in
          let promises =
            List.filter_map
              (fun a ->
                let s', reply = Acceptor.on_prepare acceptors.(a) ballot in
                acceptors.(a) <- s';
                match reply with
                | Acceptor.Promise vote -> Some { Tally.from = a; vote }
                | Acceptor.Reject _ -> None)
              subset
          in
          if List.length promises >= Tally.majority n_acceptors then begin
            let value =
              Tally.find_winning promises ~own:(Printf.sprintf "v%d" proposer)
            in
            List.iter
              (fun a ->
                let s', _ok = Acceptor.on_accept acceptors.(a) ballot value in
                acceptors.(a) <- s')
              subset;
            record_chosen ()
          end)
        schedule;
      Hashtbl.length chosen <= 1)

let () =
  Alcotest.run "paxos"
    [
      ( "ballot",
        [
          Alcotest.test_case "ordering" `Quick test_ballot_order;
          Alcotest.test_case "next" `Quick test_ballot_next;
          Alcotest.test_case "strings" `Quick test_ballot_strings;
          QCheck_alcotest.to_alcotest prop_ballot_next_monotone;
        ] );
      ( "acceptor",
        [
          Alcotest.test_case "prepare" `Quick test_acceptor_prepare;
          Alcotest.test_case "accept" `Quick test_acceptor_accept;
          Alcotest.test_case "promise carries vote" `Quick test_acceptor_promise_returns_vote;
        ] );
      ( "tally",
        [
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "find_winning" `Quick test_find_winning;
          Alcotest.test_case "decide free" `Quick test_decide_free;
          Alcotest.test_case "decide chosen" `Quick test_decide_chosen;
          Alcotest.test_case "decide constrained" `Quick test_decide_constrained;
          Alcotest.test_case "decide empty" `Quick test_decide_empty;
          Alcotest.test_case "vote counts" `Quick test_vote_counts;
        ] );
      ( "safety",
        [
          QCheck_alcotest.to_alcotest tally_coherence_prop;
          QCheck_alcotest.to_alcotest safety_model_prop;
        ] );
    ]
