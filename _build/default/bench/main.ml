(* Benchmark harness.

   With no arguments: regenerate every figure of the paper's evaluation
   (§6) and then run the Bechamel micro-benchmarks. With arguments: run the
   named subset, e.g.

     dune exec bench/main.exe -- fig4a fig6
     dune exec bench/main.exe -- micro

   Figure ids: fig4a fig4b fig5a fig5b fig6 fig7 fig8 text-cp. *)

module Figures = Mdds_harness.Figures

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks for the hot paths.                         *)

open Bechamel
open Toolkit

let entry_of_size n =
  List.init n (fun i ->
      Mdds_types.Txn.make_record
        ~txn_id:(Printf.sprintf "bench/%d" i)
        ~origin:(i mod 3) ~read_position:41
        ~reads:[ "a001"; "a002"; "a003"; "a004"; "a005" ]
        ~writes:
          (List.init 5 (fun j ->
               { Mdds_types.Txn.key = Printf.sprintf "a%03d" ((7 * j) + i);
                 value = "some-benchmark-value" })))

let bench_codec =
  let entry = entry_of_size 3 in
  let codec = Mdds_types.Txn.entry_codec in
  Test.make ~name:"codec/entry-roundtrip"
    (Staged.stage (fun () ->
         let s = Mdds_codec.Codec.encode codec entry in
         ignore (Mdds_codec.Codec.decode_exn codec s)))

let bench_store_read =
  let store = Mdds_kvstore.Store.create () in
  for ts = 1 to 100 do
    ignore (Mdds_kvstore.Store.write store ~key:"row" ~timestamp:ts [ ("v", string_of_int ts) ])
  done;
  Test.make ~name:"kvstore/versioned-read"
    (Staged.stage (fun () -> ignore (Mdds_kvstore.Store.read store ~key:"row" ~timestamp:50 ())))

let bench_tally =
  let entry = entry_of_size 1 in
  let votes =
    List.init 5 (fun from ->
        {
          Mdds_paxos.Tally.from;
          vote =
            (if from < 2 then
               Some (Mdds_paxos.Ballot.make ~round:1 ~proposer:from, entry)
             else None);
        })
  in
  Test.make ~name:"paxos/tally-decide"
    (Staged.stage (fun () ->
         ignore
           (Mdds_paxos.Tally.decide ~total:5 ~equal:Mdds_types.Txn.equal_entry votes)))

let bench_combine =
  let records = entry_of_size 5 in
  let own = List.hd records and candidates = List.tl records in
  Test.make ~name:"paxos-cp/combination-search"
    (Staged.stage (fun () ->
         ignore (Mdds_core.Combine.best ~own ~candidates ~exhaustive_limit:4)))

let bench_commit name spec_topo config =
  Test.make ~name
    (Staged.stage (fun () ->
         let topo = Mdds_net.Topology.ec2 spec_topo in
         let cluster = Mdds_core.Cluster.create ~seed:7 ~config topo in
         let client = Mdds_core.Cluster.client cluster ~dc:0 in
         Mdds_core.Cluster.spawn cluster (fun () ->
             let txn = Mdds_core.Client.begin_ client ~group:"bench" in
             Mdds_core.Client.write txn "k" "v";
             ignore (Mdds_core.Client.commit txn));
         Mdds_core.Cluster.run cluster))

let bench_engine =
  Test.make ~name:"sim/spawn-sleep-1000"
    (Staged.stage (fun () ->
         let engine = Mdds_sim.Engine.create ~seed:1 () in
         for i = 1 to 1000 do
           Mdds_sim.Engine.spawn engine (fun () ->
               Mdds_sim.Engine.sleep (float_of_int i *. 0.001))
         done;
         Mdds_sim.Engine.run engine))

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      bench_codec;
      bench_store_read;
      bench_tally;
      bench_combine;
      bench_engine;
      bench_commit "e2e/one-commit-VVV" "VVV" Mdds_core.Config.default;
      bench_commit "e2e/one-commit-VVV-basic" "VVV" Mdds_core.Config.basic;
      bench_commit "e2e/one-commit-VVVOC" "VVVOC" Mdds_core.Config.default;
    ]

let run_micro () =
  print_endline "\n== Micro-benchmarks (Bechamel) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Printf.printf "  %-32s %12.1f ns/run\n" name ns
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    merged

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known_figures = List.map (fun (id, _, _) -> id) Figures.all in
  match args with
  | [] ->
      print_endline "Reproducing every figure of the evaluation (three seeds each).";
      Figures.run_ids [];
      run_micro ()
  | [ "micro" ] -> run_micro ()
  | ids ->
      let bad = List.filter (fun id -> not (List.mem id known_figures)) ids in
      if bad <> [] && bad <> [ "micro" ] then begin
        Printf.eprintf "unknown benchmark ids: %s\nknown: %s micro\n"
          (String.concat ", " bad)
          (String.concat " " known_figures);
        exit 2
      end;
      Figures.run_ids (List.filter (fun id -> id <> "micro") ids);
      if List.mem "micro" ids then run_micro ()
