(* Command-line interface to the simulated multi-datacenter datastore.

   mdds run      — run one experiment with explicit parameters
   mdds figures  — reproduce figures from the paper's evaluation
   mdds list     — list available figure reproductions *)

module Config = Mdds_core.Config
module Experiment = Mdds_harness.Experiment
module Figures = Mdds_harness.Figures
module Stats = Mdds_harness.Stats
module Table = Mdds_harness.Table
module Ycsb = Mdds_workload.Ycsb
open Cmdliner

(* ------------------------------------------------------------------ *)
(* mdds run                                                            *)

let topology_arg =
  let doc =
    "Datacenter spec: one character per datacenter, V = Virginia AZ, O = \
     Oregon, C = N. California (e.g. VVV, COV, VVVOC)."
  in
  Arg.(value & opt string "VVV" & info [ "t"; "topology" ] ~docv:"SPEC" ~doc)

let protocol_arg =
  let doc = "Commit protocol: 'paxos' (basic), 'cp' (Paxos-CP) or 'leader'." in
  let proto =
    Arg.enum
      [
        ("paxos", Config.Basic);
        ("basic", Config.Basic);
        ("cp", Config.Cp);
        ("leader", Config.Leader);
      ]
  in
  Arg.(value & opt proto Config.Cp & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")

let txns_arg =
  Arg.(value & opt int 500 & info [ "n"; "txns" ] ~docv:"N" ~doc:"Total transactions.")

let threads_arg =
  Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Concurrent worker threads.")

let rate_arg =
  Arg.(value & opt float 1.0 & info [ "rate" ] ~docv:"TPS" ~doc:"Target txns/s per thread.")

let attributes_arg =
  Arg.(value & opt int 100 & info [ "attributes" ] ~docv:"N" ~doc:"Entity-group attributes.")

let ops_arg =
  Arg.(value & opt int 10 & info [ "ops" ] ~docv:"N" ~doc:"Operations per transaction.")

let loss_arg =
  Arg.(value & opt float 0.002 & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")

let no_fast_arg =
  Arg.(value & flag & info [ "no-fast-path" ] ~doc:"Disable the leader fast path.")

let no_combination_arg =
  Arg.(value & flag & info [ "no-combination" ] ~doc:"Disable Paxos-CP combination.")

let max_promotions_arg =
  let doc = "Cap promotions (default: unlimited)." in
  Arg.(value & opt (some int) None & info [ "max-promotions" ] ~docv:"N" ~doc)

let trace_arg =
  Arg.(value & opt (some int) None
       & info [ "trace" ] ~docv:"N"
           ~doc:"Print the last N protocol trace events after the run.")

let run_cmd =
  let run topology protocol seed txns threads rate attributes ops loss no_fast
      no_combination max_promotions trace =
    let config =
      {
        Config.default with
        protocol;
        enable_fast_path = not no_fast;
        enable_combination = not no_combination;
        max_promotions;
      }
    in
    let workload =
      { Ycsb.default with total_txns = txns; threads; rate; attributes; ops_per_txn = ops }
    in
    let spec = Experiment.spec ~seed ~config ~workload ~loss topology in
    (match trace with
    | None -> ()
    | Some n ->
        (* Re-run the workload on a dedicated traced cluster first: the
           Experiment runner owns its own cluster. *)
        let cluster =
          Mdds_core.Cluster.create ~seed ~config (Mdds_net.Topology.ec2 ~loss topology)
        in
        Mdds_sim.Trace.enable (Mdds_core.Cluster.trace cluster);
        ignore (Ycsb.run cluster workload);
        Mdds_core.Cluster.run cluster;
        List.iter
          (fun e -> Format.printf "%a@." Mdds_sim.Trace.pp_event e)
          (Mdds_sim.Trace.tail (Mdds_core.Cluster.trace cluster) n));
    let result = Experiment.run spec in
    Format.printf "%a@." Experiment.pp_brief result;
    let rows =
      Array.to_list result.commits_by_round
      |> List.mapi (fun round commits ->
             [
               string_of_int round;
               string_of_int commits;
               (if round < Array.length result.latency_by_round then
                  Table.fmt_ms result.latency_by_round.(round).Stats.mean
                else "-");
             ])
      |> List.filter (fun row -> row <> [])
    in
    Table.print ~header:[ "promotions"; "commits"; "mean latency (ms)" ] rows;
    match result.verified with
    | Ok () -> ()
    | Error _ -> exit 1
  in
  let term =
    Term.(
      const run $ topology_arg $ protocol_arg $ seed_arg $ txns_arg $ threads_arg
      $ rate_arg $ attributes_arg $ ops_arg $ loss_arg $ no_fast_arg
      $ no_combination_arg $ max_promotions_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload experiment and print its outcome profile.")
    term

(* ------------------------------------------------------------------ *)
(* mdds figures                                                        *)

let figures_cmd =
  let ids_arg =
    let doc = "Figure ids (default: all). See 'mdds list'." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids =
    try Figures.run_ids ids
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce figures from the paper's evaluation (§6).")
    Term.(const run $ ids_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (id, description, _) -> Printf.printf "%-8s %s\n" id description)
      Figures.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available figure reproductions.") Term.(const run $ const ())

let () =
  let doc =
    "Multi-datacenter transactional datastore simulator (Paxos vs Paxos-CP; \
     Patterson et al., VLDB 2012)."
  in
  let info = Cmd.info "mdds" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; figures_cmd; list_cmd ]))
