module Txn = Mdds_types.Txn

type abort_reason = Conflict | Lost_position | Promotion_limit | Unavailable

type outcome =
  | Committed of { position : int; promotions : int; combined : bool }
  | Aborted of { reason : abort_reason; promotions : int }
  | Read_only_committed
  | Unknown

type protocol_stats = {
  prepare_rounds : int;
  accept_rounds : int;
  fast_path : bool;
  instances : int;
}

let no_stats = { prepare_rounds = 0; accept_rounds = 0; fast_path = false; instances = 0 }

type event = {
  group : string;
  record : Txn.record;
  observed : (Txn.key * string option) list;
  outcome : outcome;
  began_at : float;
  committed_at : float;
  commit_started_at : float;
  client_dc : int;
  stats : protocol_stats;
}

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1

let events t = List.rev t.events

let total t = t.count

let fold f init t = List.fold_left f init t.events

let commits t =
  fold
    (fun n e ->
      match e.outcome with
      | Committed _ | Read_only_committed -> n + 1
      | Aborted _ | Unknown -> n)
    0 t

let unknowns t =
  fold (fun n e -> match e.outcome with Unknown -> n + 1 | _ -> n) 0 t

let aborts t =
  fold (fun n e -> match e.outcome with Aborted _ -> n + 1 | _ -> n) 0 t

let commits_with_promotions t n =
  fold
    (fun acc e ->
      match e.outcome with
      | Committed { promotions; _ } when promotions = n -> acc + 1
      | _ -> acc)
    0 t

let max_promotions_seen t =
  fold
    (fun acc e ->
      match e.outcome with
      | Committed { promotions; _ } | Aborted { promotions; _ } ->
          max acc promotions
      | Read_only_committed | Unknown -> acc)
    0 t

let abort_count t reason =
  fold
    (fun acc e ->
      match e.outcome with
      | Aborted { reason = r; _ } when r = reason -> acc + 1
      | _ -> acc)
    0 t

let commit_latencies t ~promotions =
  fold
    (fun acc e ->
      match e.outcome with
      | Committed { promotions = p; _ }
        when promotions = None || promotions = Some p ->
          (e.committed_at -. e.commit_started_at) :: acc
      | _ -> acc)
    [] t

let txn_latencies t = fold (fun acc e -> (e.committed_at -. e.began_at) :: acc) [] t

let pp_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Conflict -> "conflict"
    | Lost_position -> "lost-position"
    | Promotion_limit -> "promotion-limit"
    | Unavailable -> "unavailable")

let mean_rounds t =
  let total, n =
    fold
      (fun (total, n) e ->
        match e.outcome with
        | Committed _ ->
            (total + e.stats.prepare_rounds + e.stats.accept_rounds, n + 1)
        | _ -> (total, n))
      (0, 0) t
  in
  if n = 0 then 0.0 else float_of_int total /. float_of_int n

let fast_path_rate t =
  let fast, n =
    fold
      (fun (fast, n) e ->
        match e.outcome with
        | Committed _ -> ((if e.stats.fast_path then fast + 1 else fast), n + 1)
        | _ -> (fast, n))
      (0, 0) t
  in
  if n = 0 then 0.0 else float_of_int fast /. float_of_int n
