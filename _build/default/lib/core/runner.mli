(** Application-level transaction retry loop.

    When the basic Paxos protocol aborts a transaction, the paper notes
    the application's only recourse is to retry: begin again, re-read the
    data items, re-apply the logic, attempt another commit — and it argues
    promotion is cheaper than this round trip (§6: the promoted
    transaction skips the re-read). This module packages that retry loop
    so applications (and the `ext-retry` benchmark that measures the
    claim) don't hand-roll it.

    The body function is re-executed from scratch on every attempt with a
    fresh transaction — it must be idempotent in its effects outside the
    transaction. *)

type outcome = {
  final : Audit.outcome;  (** Outcome of the last attempt. *)
  attempts : int;  (** Attempts performed (≥ 1). *)
}

val run :
  Client.t ->
  group:string ->
  ?max_attempts:int ->
  ?retry_unavailable:bool ->
  (Client.txn -> unit) ->
  outcome
(** [run client ~group body] executes [body] in a transaction and commits,
    retrying on [Conflict] and [Lost_position] aborts up to [max_attempts]
    (default 10) total attempts. [Unknown] outcomes are never retried (the
    transaction may have committed; retrying could apply it twice).
    [retry_unavailable] (default false) also retries [Unavailable] aborts.
    {!Client.Unavailable} exceptions from [begin_]/[read] count as
    [Unavailable] attempts. *)
