module Txn = Mdds_types.Txn

let candidates_of_votes ~own entries =
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen own.Txn.txn_id ();
  List.concat_map
    (fun entry ->
      List.filter_map
        (fun (r : Txn.record) ->
          if Hashtbl.mem seen r.txn_id then None
          else begin
            Hashtbl.replace seen r.txn_id ();
            Some r
          end)
        entry)
    entries

(* Exhaustive search: maximum-length valid ordering of [own] plus any
   subset of [candidates]. Candidate sets are small (the paper observes
   lists of two or three in practice), so enumerating insertions is
   affordable: extend partial orderings one candidate at a time, pruning
   invalid prefixes. *)
let exhaustive ~own candidates =
  let best = ref [ own ] in
  let consider ordering =
    if List.length ordering > List.length !best then best := ordering
  in
  (* Depth-first over: which candidate to add next, and at which position
     to insert it. A prefix-invalid ordering can become valid again only
     via insertions *before* the offending read, which insertion at every
     position covers; still, prune orderings that are invalid as-is. *)
  let rec insert_everywhere x prefix = function
    | [] -> [ List.rev_append prefix [ x ] ]
    | y :: rest as suffix ->
        (List.rev_append prefix (x :: suffix))
        :: insert_everywhere x (y :: prefix) rest
  in
  let rec go ordering remaining =
    consider ordering;
    List.iteri
      (fun i candidate ->
        let rest = List.filteri (fun j _ -> j <> i) remaining in
        List.iter
          (fun ordering' ->
            if Txn.valid_combination ordering' then go ordering' rest)
          (insert_everywhere candidate [] ordering))
      remaining
  in
  go [ own ] candidates;
  !best

(* Greedy single pass (§5): append each candidate if the list stays valid. *)
let greedy ~own candidates =
  List.fold_left
    (fun acc candidate ->
      let attempt = acc @ [ candidate ] in
      if Txn.valid_combination attempt then attempt else acc)
    [ own ] candidates

let best ~own ~candidates ~exhaustive_limit =
  let candidates =
    let seen = Hashtbl.create 8 in
    Hashtbl.replace seen own.Txn.txn_id ();
    List.filter
      (fun (r : Txn.record) ->
        if Hashtbl.mem seen r.txn_id then false
        else begin
          Hashtbl.replace seen r.txn_id ();
          true
        end)
      candidates
  in
  if List.length candidates <= exhaustive_limit then exhaustive ~own candidates
  else greedy ~own candidates
