(** The Transaction Client: the application-facing transaction API (§2.2)
    and the commit protocols (§4.1 basic Paxos, §5 Paxos-CP).

    One client belongs to one application instance in one datacenter. The
    transaction lifecycle follows the paper's transaction protocol (§4):

    + {!begin_} asks the local Transaction Service for the read position
      (falling back to other datacenters if it is unreachable);
    + {!read} returns buffered writes first (A1), otherwise reads from a
      Transaction Service at the read position (A2), caching the result;
    + {!write} only buffers locally;
    + {!commit} builds the log entry from the read and write sets and runs
      the configured commit protocol for position [read position + 1].

    Read-only transactions commit locally without any messages (§2.2). *)

module Txn = Mdds_types.Txn

exception Unavailable of string
(** No Transaction Service in any datacenter answered (within the
    configured attempts); raised by {!begin_} and {!read}. *)

type t

val create :
  rpc:(Messages.request, Messages.response) Mdds_net.Rpc.t ->
  config:Config.t ->
  dc:int ->
  dcs:int list ->
  audit:Audit.t ->
  id:string ->
  trace:Mdds_sim.Trace.t ->
  t

val dc : t -> int

type txn

val begin_ : t -> group:string -> txn
val txn_id : txn -> string
val read_position : txn -> int

val read : txn -> Txn.key -> string option
(** [None] if the key has never been written (as of the read position). *)

val write : txn -> Txn.key -> string -> unit

val commit : txn -> Audit.outcome
(** Run the commit protocol; records the transaction in the audit trail and
    returns its outcome. Never raises: total unavailability yields
    [Aborted { reason = Unavailable; _ }]. A transaction can be committed
    at most once ([Invalid_argument] otherwise). *)
