lib/core/messages.ml: Format List Mdds_paxos Mdds_types Printf
