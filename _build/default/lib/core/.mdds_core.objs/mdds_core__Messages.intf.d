lib/core/messages.mli: Format Mdds_paxos Mdds_types
