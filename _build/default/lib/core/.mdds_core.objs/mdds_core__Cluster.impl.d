lib/core/cluster.ml: Array Audit Client Config Fun Hashtbl Int List Mdds_net Mdds_sim Mdds_types Mdds_wal Messages Printf Service
