lib/core/audit.mli: Format Mdds_types
