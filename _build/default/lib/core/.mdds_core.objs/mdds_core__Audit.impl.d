lib/core/audit.ml: Format List Mdds_types
