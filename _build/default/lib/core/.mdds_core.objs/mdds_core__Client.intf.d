lib/core/client.mli: Audit Config Mdds_net Mdds_sim Mdds_types Messages
