lib/core/service.ml: Config Hashtbl List Mdds_codec Mdds_kvstore Mdds_net Mdds_paxos Mdds_sim Mdds_types Mdds_wal Messages Printf Proposer String
