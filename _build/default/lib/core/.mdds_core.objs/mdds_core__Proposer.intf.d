lib/core/proposer.mli: Config Mdds_net Mdds_paxos Mdds_sim Mdds_types Messages
