lib/core/client.ml: Array Audit Combine Config Format List Mdds_net Mdds_paxos Mdds_sim Mdds_types Messages Option Printf Proposer
