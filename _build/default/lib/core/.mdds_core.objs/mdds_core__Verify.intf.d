lib/core/verify.mli: Cluster
