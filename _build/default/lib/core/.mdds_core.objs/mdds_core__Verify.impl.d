lib/core/verify.ml: Audit Cluster Format Hashtbl List Mdds_serial Result String
