lib/core/runner.ml: Audit Client
