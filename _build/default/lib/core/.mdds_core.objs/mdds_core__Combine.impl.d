lib/core/combine.ml: Hashtbl List Mdds_types
