lib/core/combine.mli: Mdds_types
