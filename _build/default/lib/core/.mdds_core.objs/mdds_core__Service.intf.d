lib/core/service.mli: Config Mdds_kvstore Mdds_net Mdds_paxos Mdds_sim Mdds_types Mdds_wal Messages
