lib/core/cluster.mli: Audit Client Config Mdds_net Mdds_sim Mdds_types Messages Service
