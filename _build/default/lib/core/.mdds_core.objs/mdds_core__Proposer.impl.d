lib/core/proposer.ml: Config List Mdds_net Mdds_paxos Mdds_sim Mdds_types Messages Printf
