lib/core/runner.mli: Audit Client
