module Checker = Mdds_serial.Checker

let check cluster ~group =
  let ( let* ) = Result.bind in
  let of_violation what = function
    | Ok () -> Ok ()
    | Error v -> Error (Format.asprintf "%s: %a" what Checker.pp_violation v)
  in
  let* () = Cluster.logs_agree cluster ~group in
  let log = Cluster.committed_log cluster ~group in
  let* () = of_violation "L2" (Checker.unique_txn_ids log) in
  let events =
    List.filter
      (fun (e : Audit.event) -> String.equal e.group group)
      (Audit.events (Cluster.audit cluster))
  in
  let committed, aborted =
    List.fold_left
      (fun (cs, abs) (e : Audit.event) ->
        match e.outcome with
        | Audit.Committed { position; _ } ->
            ((e.record.txn_id, position) :: cs, abs)
        | Audit.Aborted _ -> (cs, e.record.txn_id :: abs)
        | Audit.Read_only_committed | Audit.Unknown -> (cs, abs))
      ([], []) events
  in
  let* () = of_violation "L1" (Checker.check_audit ~log ~committed ~aborted) in
  let* () = of_violation "L3" (Checker.check_log log) in
  let observed_tbl = Hashtbl.create 256 in
  List.iter
    (fun (e : Audit.event) -> Hashtbl.replace observed_tbl e.record.txn_id e.observed)
    events;
  let* () =
    of_violation "replay" (Checker.replay log ~observed:(Hashtbl.find_opt observed_tbl))
  in
  let readers =
    List.filter_map
      (fun (e : Audit.event) ->
        match e.outcome with
        | Audit.Read_only_committed ->
            Some (e.record.txn_id, e.record.read_position, e.observed)
        | _ -> None)
      events
  in
  of_violation "read-only" (Checker.check_read_only log ~readers)

let check_exn cluster ~group =
  match check cluster ~group with Ok () -> () | Error msg -> failwith msg
