type outcome = { final : Audit.outcome; attempts : int }

let run client ~group ?(max_attempts = 10) ?(retry_unavailable = false) body =
  if max_attempts < 1 then invalid_arg "Runner.run: max_attempts must be >= 1";
  let rec attempt n =
    let result =
      try
        let txn = Client.begin_ client ~group in
        body txn;
        Client.commit txn
      with Client.Unavailable _ ->
        (* begin or a read found no reachable service *)
        Audit.Aborted { reason = Audit.Unavailable; promotions = 0 }
    in
    let retry =
      match result with
      | Audit.Aborted { reason = Audit.Conflict | Audit.Lost_position; _ } -> true
      | Audit.Aborted { reason = Audit.Promotion_limit; _ } -> true
      | Audit.Aborted { reason = Audit.Unavailable; _ } -> retry_unavailable
      | Audit.Committed _ | Audit.Read_only_committed | Audit.Unknown -> false
    in
    if retry && n < max_attempts then attempt (n + 1)
    else { final = result; attempts = n }
  in
  attempt 1
