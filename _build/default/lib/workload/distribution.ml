module Rng = Mdds_sim.Rng

type t = Uniform | Zipfian of float

(* Zipfian over [0, n) by Gray et al.'s analytic method (YCSB's
   ZipfianGenerator): closed-form inverse of the harmonic CDF
   approximation. *)
let zipfian theta rng n =
  let nf = float_of_int n in
  let zeta =
    (* zeta(n, theta); n is small (attribute counts), direct sum is fine
       and exact. *)
    let s = ref 0.0 in
    for i = 1 to n do
      s := !s +. (1.0 /. (float_of_int i ** theta))
    done;
    !s
  in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. nf) ** (1.0 -. theta)))
    /. (1.0 -. ((1.0 /. zeta) *. 2.0 *. (1.0 -. theta) /. nf))
  in
  let u = Rng.float rng 1.0 in
  let uz = u *. zeta in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** theta) then 1
  else
    let rank = int_of_float (nf *. (((eta *. u) -. eta +. 1.0) ** alpha)) in
    min (max rank 0) (n - 1)

(* Multiplicative scrambling so rank 0 (the hottest key) is not always
   attribute 0. *)
let scramble index n = (index * 2654435761) land max_int mod n

let sample t rng n =
  if n <= 0 then invalid_arg "Distribution.sample: empty domain";
  match t with
  | Uniform -> Rng.int rng n
  | Zipfian theta ->
      if theta <= 0.0 || theta >= 1.0 then
        invalid_arg "Distribution.sample: theta must be in (0, 1)";
      scramble (zipfian theta rng n) n

let pp ppf = function
  | Uniform -> Format.pp_print_string ppf "uniform"
  | Zipfian theta -> Format.fprintf ppf "zipfian(%.2f)" theta
