(** Key-selection distributions for the workload generator.

    YCSB's two standard request distributions: uniform, and the scrambled
    Zipfian used to model skewed access ("hot keys"). The Zipfian sampler
    uses the rejection-inversion-free method of Gray et al. (as in YCSB's
    [ZipfianGenerator]), with a multiplicative hash to scatter the hot
    items across the key space. *)

type t =
  | Uniform
  | Zipfian of float  (** Skew parameter theta, 0 < theta < 1 (YCSB: 0.99). *)

val sample : t -> Mdds_sim.Rng.t -> int -> int
(** [sample dist rng n] draws an index in [\[0, n)]. *)

val pp : Format.formatter -> t -> unit
