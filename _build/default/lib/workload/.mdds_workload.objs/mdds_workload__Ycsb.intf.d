lib/workload/ycsb.mli: Distribution Mdds_core
