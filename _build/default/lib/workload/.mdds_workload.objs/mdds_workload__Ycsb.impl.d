lib/workload/ycsb.ml: Distribution List Mdds_core Mdds_sim Printf
