lib/workload/distribution.ml: Format Mdds_sim
