lib/workload/distribution.mli: Format Mdds_sim
