(** Unbounded FIFO message queues connecting simulated processes.

    A mailbox is the reception endpoint of every simulated node: the network
    layer pushes delivered messages, and server processes block on [recv].
    Receives optionally carry a timeout, which is how the transaction tier
    implements the paper's "either the message arrives before a known
    timeout or it is lost" failure model. *)

type 'a t

val create : Engine.t -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue a message; wakes the oldest waiting receiver, if any. *)

val recv : 'a t -> 'a
(** Block the calling process until a message is available. *)

val recv_timeout : 'a t -> timeout:float -> 'a option
(** Like {!recv} but gives up after [timeout] seconds, returning [None]. *)

val poll : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Number of queued (undelivered) messages. *)

val clear : 'a t -> unit
(** Drop all queued messages (waiting receivers stay blocked). *)
