(** Counting semaphore for simulated processes.

    Used wherever a component must serialize work across concurrently
    spawned handler processes — e.g. the long-term-leader transaction
    manager admits one commit decision at a time per transaction group.
    Waiters are served in FIFO order. *)

type t

val create : Engine.t -> int -> t
(** [create engine n] makes a semaphore with [n] permits ([n ≥ 0]). *)

val acquire : t -> unit
(** Take a permit, blocking the calling process until one is available. *)

val release : t -> unit
(** Return a permit, waking the oldest waiter if any. *)

val with_permit : t -> (unit -> 'a) -> 'a
(** [acquire], run the function, [release] — also on exceptions. *)

val available : t -> int
(** Permits currently free. *)

val waiting : t -> int
(** Processes currently blocked in {!acquire}. *)
