lib/sim/heap.mli:
