lib/sim/engine.ml: Effect Fun Heap Rng
