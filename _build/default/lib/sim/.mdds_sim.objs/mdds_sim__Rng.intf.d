lib/sim/rng.mli:
