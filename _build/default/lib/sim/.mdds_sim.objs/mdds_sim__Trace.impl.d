lib/sim/trace.ml: Engine Format List Printf Queue
