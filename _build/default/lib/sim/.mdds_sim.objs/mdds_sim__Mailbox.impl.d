lib/sim/mailbox.ml: Engine Queue
