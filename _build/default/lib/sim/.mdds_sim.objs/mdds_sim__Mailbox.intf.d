lib/sim/mailbox.mli: Engine
