lib/sim/semaphore.ml: Engine Fun Queue
