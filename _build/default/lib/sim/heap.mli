(** Binary min-heap, specialized as the simulator's event queue.

    Elements are ordered by a [float] primary key (simulated time) with an
    [int] tiebreaker (insertion sequence number), so that events scheduled
    for the same instant fire in FIFO order — the property that makes the
    whole simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with the given priority key. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> (float * int * 'a) option
(** Return the minimum without removing it. *)

val clear : 'a t -> unit
