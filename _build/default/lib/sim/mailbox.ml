type 'a waiter = { mutable active : bool; wake : 'a option -> unit }

type 'a t = {
  engine : Engine.t;
  queue : 'a Queue.t;
  waiters : 'a waiter Queue.t;
}

let create engine = { engine; queue = Queue.create (); waiters = Queue.create () }

let rec pop_waiter t =
  match Queue.take_opt t.waiters with
  | None -> None
  | Some w -> if w.active then Some w else pop_waiter t

let push t msg =
  match pop_waiter t with
  | Some w ->
      w.active <- false;
      w.wake (Some msg)
  | None -> Queue.push msg t.queue

let poll t = Queue.take_opt t.queue

let recv t =
  match Queue.take_opt t.queue with
  | Some msg -> msg
  | None -> (
      let result =
        Engine.suspend (fun wake ->
            Queue.push { active = true; wake } t.waiters)
      in
      match result with
      | Some msg -> msg
      | None -> assert false (* no timeout was armed *))

let recv_timeout t ~timeout =
  match Queue.take_opt t.queue with
  | Some msg -> Some msg
  | None ->
      Engine.suspend (fun wake ->
          let w = { active = true; wake } in
          Queue.push w t.waiters;
          ignore
            (Engine.after t.engine timeout (fun () ->
                 if w.active then begin
                   w.active <- false;
                   w.wake None
                 end)))

let length t = Queue.length t.queue

let clear t = Queue.clear t.queue
