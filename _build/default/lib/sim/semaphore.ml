type t = {
  engine : Engine.t;
  mutable permits : int;
  waiters : (unit -> unit) Queue.t;
}

let create engine permits =
  if permits < 0 then invalid_arg "Semaphore.create: negative permits";
  ignore engine;
  { engine; permits; waiters = Queue.create () }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else Engine.suspend (fun wake -> Queue.push (fun () -> wake ()) t.waiters)

let release t =
  match Queue.take_opt t.waiters with
  | Some wake -> wake ()
  | None -> t.permits <- t.permits + 1

let with_permit t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let available t = t.permits

let waiting t = Queue.length t.waiters
