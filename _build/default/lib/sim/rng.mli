(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator — network latency jitter,
    message loss, workload inter-arrival times, key selection, retry
    backoff — draws from an explicit [Rng.t] stream so that a simulation is
    a pure function of its seed. [split] derives statistically independent
    child streams, letting each component own its randomness without
    cross-talk (adding a draw in one component does not perturb another). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent child generator and advances [t]. *)

val copy : t -> t
(** Snapshot of the current state (for replay). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean (inter-arrival
    times of a Poisson process). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
