type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable PRNGs". *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine for our bounds (<< 2^62). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  -. mean *. log (1.0 -. u)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
