module Store = Mdds_kvstore.Store
module Txn = Mdds_types.Txn
module Codec = Mdds_codec.Codec

type t = { store : Store.t }

let create store = { store }
let store t = t.store

let log_key ~group ~pos = Printf.sprintf "log/%s/%d" group pos
let meta_key ~group = "logmeta/" ^ group
let data_key ~group ~key = Printf.sprintf "data/%s/%s" group key

let meta_int t ~group name =
  match Store.attribute t.store ~key:(meta_key ~group) name with
  | None -> 0
  | Some s -> int_of_string s

let set_meta t ~group name v =
  let key = meta_key ~group in
  let current =
    match Store.read t.store ~key () with None -> [] | Some (_, attrs) -> attrs
  in
  let attrs = (name, string_of_int v) :: List.remove_assoc name current in
  match Store.write t.store ~key attrs with
  | Ok _ -> ()
  | Error `Stale -> assert false (* auto-stamped writes cannot be stale *)

let entry t ~group ~pos =
  match Store.attribute t.store ~key:(log_key ~group ~pos) "entry" with
  | None -> None
  | Some encoded -> Some (Codec.decode_exn Txn.entry_codec encoded)

let append t ~group ~pos e =
  (match entry t ~group ~pos with
  | Some existing when not (Txn.equal_entry existing e) ->
      failwith
        (Printf.sprintf
           "Wal.append: conflicting entry for %s position %d (R1 violation)"
           group pos)
  | Some _ -> () (* duplicate apply: idempotent *)
  | None -> (
      let encoded = Codec.encode Txn.entry_codec e in
      match Store.write t.store ~key:(log_key ~group ~pos) [ ("entry", encoded) ] with
      | Ok _ -> ()
      | Error `Stale -> assert false));
  if pos > meta_int t ~group "last" then set_meta t ~group "last" pos

let last_position t ~group = meta_int t ~group "last"

let first_gap t ~group ~upto =
  let rec go pos =
    if pos > upto then None
    else
      match entry t ~group ~pos with
      | None -> Some pos
      | Some _ -> go (pos + 1)
  in
  go 1

let applied_position t ~group = meta_int t ~group "applied"

let compacted_position t ~group = meta_int t ~group "compacted"

let apply_entry t ~group ~pos e =
  List.iter
    (fun (record : Txn.record) ->
      List.iter
        (fun (w : Txn.write) ->
          match
            Store.write t.store ~key:(data_key ~group ~key:w.key) ~timestamp:pos
              [ ("v", w.value) ]
          with
          | Ok _ -> ()
          | Error `Stale ->
              (* A higher-versioned write exists: this entry was already
                 applied past this point; per-position overwrite keeps the
                 operation idempotent, stale means a *later* position wrote
                 the key, which only happens on re-apply. Safe to skip. *)
              ())
        record.writes)
    e

let apply t ~group ~upto =
  let rec go pos =
    if pos > upto then Ok ()
    else
      match entry t ~group ~pos with
      | None -> Error (`Gap pos)
      | Some e ->
          apply_entry t ~group ~pos e;
          set_meta t ~group "applied" pos;
          go (pos + 1)
  in
  go (max (applied_position t ~group) (compacted_position t ~group) + 1)

let compact t ~group ~upto =
  if upto > applied_position t ~group then Error `Not_applied
  else begin
    for pos = compacted_position t ~group + 1 to upto do
      Store.delete t.store ~key:(log_key ~group ~pos)
    done;
    if upto > compacted_position t ~group then set_meta t ~group "compacted" upto;
    Ok ()
  end

let snapshot t ~group =
  let prefix = "data/" ^ group ^ "/" in
  let rows =
    List.filter_map
      (fun key ->
        if String.starts_with ~prefix key then
          match Store.read t.store ~key () with
          | Some (version, attrs) -> (
              match Mdds_kvstore.Row.attribute attrs "v" with
              | Some value ->
                  let data_key =
                    String.sub key (String.length prefix)
                      (String.length key - String.length prefix)
                  in
                  Some (data_key, version, value)
              | None -> None)
          | None -> None
        else None)
      (Store.keys t.store)
  in
  (applied_position t ~group, rows)

let install_snapshot t ~group ~applied rows =
  List.iter
    (fun (key, version, value) ->
      match
        Store.write t.store ~key:(data_key ~group ~key) ~timestamp:version
          [ ("v", value) ]
      with
      | Ok _ | Error `Stale -> () (* local state already newer: keep it *))
    rows;
  if applied > applied_position t ~group then set_meta t ~group "applied" applied;
  if applied > compacted_position t ~group then set_meta t ~group "compacted" applied;
  if applied > meta_int t ~group "last" then set_meta t ~group "last" applied

let read_data t ~group ~key ~at =
  match Store.read t.store ~key:(data_key ~group ~key) ~timestamp:at () with
  | None -> None
  | Some (_, attrs) -> Mdds_kvstore.Row.attribute attrs "v"

let data_version t ~group ~key ~at =
  match Store.read t.store ~key:(data_key ~group ~key) ~timestamp:at () with
  | None -> None
  | Some (ts, _) -> Some ts

let dump t ~group =
  let last = last_position t ~group in
  let rec go pos acc =
    if pos < 1 then acc
    else
      match entry t ~group ~pos with
      | None -> go (pos - 1) acc
      | Some e -> go (pos - 1) ((pos, e) :: acc)
  in
  go last []
