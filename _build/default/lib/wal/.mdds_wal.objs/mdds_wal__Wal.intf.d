lib/wal/wal.mli: Mdds_kvstore Mdds_types
