lib/wal/wal.ml: List Mdds_codec Mdds_kvstore Mdds_types Printf String
