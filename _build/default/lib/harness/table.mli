(** Fixed-width ASCII tables for experiment reports. *)

val render : header:string list -> string list list -> string
(** Render rows under a header, columns padded to the widest cell. *)

val print : header:string list -> string list list -> unit
(** [render] to stdout. *)

val fmt_f : float -> string
(** Compact float ("12.3"). *)

val fmt_ms : float -> string
(** Seconds as "123.4" (milliseconds, no unit suffix). *)

val fmt_pct : num:int -> den:int -> string
(** "57.0%". *)
