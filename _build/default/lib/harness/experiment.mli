(** Experiment runner: one simulated deployment + one workload → metrics.

    Every figure reproduction is a set of these specs. A run always ends
    with the full {!Mdds_core.Verify} oracle; an experiment whose execution
    was not one-copy serializable reports it in [verified] and the figure
    drivers treat that as a hard failure. *)

module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Ycsb = Mdds_workload.Ycsb

type spec = {
  name : string;
  topology : string;  (** Region spec for {!Mdds_net.Topology.ec2}. *)
  seed : int;
  config : Config.t;
  workload : Ycsb.config;
  loss : float;  (** Link loss probability. *)
}

val spec :
  ?name:string ->
  ?seed:int ->
  ?config:Config.t ->
  ?workload:Ycsb.config ->
  ?loss:float ->
  string ->
  spec
(** [spec topology] with the paper's defaults. *)

type result = {
  spec : spec;
  total : int;  (** Transactions that reached an outcome. *)
  commits : int;
  commits_by_round : int array;
      (** [commits_by_round.(r)] = committed after exactly [r] promotions;
          index 0 is the first attempt. Always basic-compatible: under the
          basic protocol only index 0 is populated. *)
  aborts : int;
  aborts_conflict : int;
  aborts_lost : int;
  aborts_unavailable : int;
  unknowns : int;  (** In-doubt submissions (leader protocol only). *)
  max_promotions : int;
  combined_entries : int;  (** Log entries with more than one transaction. *)
  commit_latency : Stats.summary;  (** Committed transactions only. *)
  latency_by_round : Stats.summary array;
  txn_latency : Stats.summary;  (** Begin → outcome, all transactions. *)
  sim_duration : float;  (** Virtual seconds. *)
  wall_seconds : float;  (** Real time the simulation took. *)
  events : Audit.event list;
  messages_sent : int;  (** Total datagrams submitted to the network. *)
  messages_delivered : int;
  leader_share : float;
      (** Fraction of delivered messages handled by the configured leader
          datacenter — the single-site load concentration of leader-based
          designs (§7). *)
  mean_rounds : float;
      (** Mean prepare+accept broadcasts per committed transaction. *)
  fast_path_rate : float;  (** Committed transactions that tried the fast path. *)
  verified : (unit, string) Stdlib.result;
}

val run : spec -> result

val commits_by_dc : result -> (int * int * int) list
(** [(dc, commits, total)] per client datacenter (for Figure 8). *)

val commit_latency_by_dc : result -> (int * Stats.summary) list

val pp_brief : Format.formatter -> result -> unit
