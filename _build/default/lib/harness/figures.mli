(** Reproductions of every figure of the paper's evaluation (§6).

    Each function runs the corresponding experiment (both protocols,
    averaged over several seeds), verifies one-copy serializability of
    every run, and prints a table whose rows mirror the paper's figure,
    alongside the paper's reported numbers where the text states them.

    Paper setup being reproduced: 500 transactions per experiment, 10
    operations each (50% reads), attributes uniform over the entity group,
    4 worker threads at 1 txn/s with staggered starts, 2 s timeouts;
    EC2 datacenters V (Virginia AZs), O (Oregon), C (N. California). *)

val fig4a : ?seeds:int list -> unit -> unit
(** Figure 4(a): successful commits (of 500) vs number of replicas,
    basic Paxos vs Paxos-CP split by promotion round. *)

val fig4b : ?seeds:int list -> unit -> unit
(** Figure 4(b): latency of committed transactions vs replicas, by
    promotion round. *)

val fig5a : ?seeds:int list -> unit -> unit
(** Figure 5(a): commits for different datacenter combinations. *)

val fig5b : ?seeds:int list -> unit -> unit
(** Figure 5(b): average transaction latency per datacenter combination. *)

val fig6 : ?seeds:int list -> unit -> unit
(** Figure 6: data contention — commits vs total attributes (20…500),
    three replicas (VVV). *)

val fig7 : ?seeds:int list -> unit -> unit
(** Figure 7: increasing concurrency — commits vs target throughput of a
    single YCSB instance, VVV, 100 attributes. *)

val fig8 : ?seeds:int list -> unit -> unit
(** Figure 8: one YCSB instance per datacenter (V, O, C) against a shared
    entity group: per-datacenter commits and latency. *)

val text_stats : ?seeds:int list -> unit -> unit
(** §6 in-text Paxos-CP profile: combinations per experiment (paper: mean
    6.8, max 24), promotions before commit/abort (paper: ≤ 7, most ≤ 2). *)

val text_messages : ?seeds:int list -> unit -> unit
(** §5 in-text claim: Paxos-CP achieves its concurrency with the same
    per-instance message complexity — compare total messages and messages
    per committed transaction across the two protocols. *)

(** {1 Extensions beyond the paper's evaluation} *)

val ext_leader : ?seeds:int list -> unit -> unit
(** The long-term-leader transaction manager the paper names as future
    work (§8): commits, latency, messages per commit and the single-site
    load concentration, against both published protocols. *)

val ext_ablation : ?seeds:int list -> unit -> unit
(** Ablation: contribution of combination, promotion (and its cap) and the
    leader fast path to Paxos-CP's commit rate. *)

val ext_loss : ?seeds:int list -> unit -> unit
(** Commit rate and latency as link loss degrades. *)

val ext_retry : ?seeds:int list -> unit -> unit
(** The §6 in-text claim that promotion is cheaper than an application
    retry: the same transaction intents as basic-Paxos-with-retry-loop
    vs a single Paxos-CP commit — eventual success, attempts per intent
    and time to commit. *)

val ext_skew : ?seeds:int list -> unit -> unit
(** Access-skew sensitivity: uniform vs Zipfian key choice. *)

val ext_groups : ?seeds:int list -> unit -> unit
(** §2.1's scalability argument, measured: a fixed aggregate load spread
    over more independent transaction groups loses fewer transactions to
    log-position contention. *)

val all : (string * string * (unit -> unit)) list
(** [(id, description, run)] for every reproduction above. *)

val run_ids : string list -> unit
(** Run the named reproductions ("fig4a" … "text-cp"), or all of them for
    [[]]; unknown ids raise [Invalid_argument]. *)
