let rstrip s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w -> pad (Option.value (List.nth_opt row c) ~default:"") w)
         widths)
    |> rstrip
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print ~header rows = print_endline (render ~header rows)

let fmt_f x = Printf.sprintf "%.1f" x
let fmt_ms s = Printf.sprintf "%.1f" (s *. 1000.)

let fmt_pct ~num ~den =
  if den = 0 then "-" else Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int den)
