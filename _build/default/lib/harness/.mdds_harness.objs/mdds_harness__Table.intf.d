lib/harness/table.mli:
