lib/harness/figures.mli:
