lib/harness/experiment.mli: Format Mdds_core Mdds_workload Stats Stdlib
