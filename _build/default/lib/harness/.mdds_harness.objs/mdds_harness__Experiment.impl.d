lib/harness/experiment.ml: Array Format Hashtbl Int List Mdds_core Mdds_net Mdds_workload Option Printf Stats Stdlib String Unix
