lib/harness/stats.ml: Float Format List
