lib/harness/table.ml: List Option Printf String
