lib/harness/figures.ml: Array Experiment Hashtbl List Mdds_core Mdds_net Mdds_sim Mdds_workload Option Printf Stats Table
