lib/harness/stats.mli: Format
