(** Descriptive statistics for experiment results. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val empty : summary
(** All-zero summary (of an empty sample). *)

val summarize : float list -> summary

val mean : float list -> float
val stddev : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100], nearest-rank on the sorted
    sample; 0 on an empty sample. *)

val pp_ms : Format.formatter -> float -> unit
(** Seconds rendered as milliseconds ("12.3ms"). *)

val pp_summary_ms : Format.formatter -> summary -> unit
