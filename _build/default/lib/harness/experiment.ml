module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Cluster = Mdds_core.Cluster
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology
module Ycsb = Mdds_workload.Ycsb

type spec = {
  name : string;
  topology : string;
  seed : int;
  config : Config.t;
  workload : Ycsb.config;
  loss : float;
}

let spec ?name ?(seed = 42) ?(config = Config.default) ?(workload = Ycsb.default)
    ?(loss = 0.002) topology =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s/%s" (Config.protocol_name config.protocol) topology
  in
  { name; topology; seed; config; workload; loss }

type result = {
  spec : spec;
  total : int;
  commits : int;
  commits_by_round : int array;
  aborts : int;
  aborts_conflict : int;
  aborts_lost : int;
  aborts_unavailable : int;
  unknowns : int;
  max_promotions : int;
  combined_entries : int;
  commit_latency : Stats.summary;
  latency_by_round : Stats.summary array;
  txn_latency : Stats.summary;
  sim_duration : float;
  wall_seconds : float;
  events : Audit.event list;
  messages_sent : int;
  messages_delivered : int;
  leader_share : float;
  mean_rounds : float;
  fast_path_rate : float;
  verified : (unit, string) Stdlib.result;
}

let run spec =
  let started = Unix.gettimeofday () in
  let topo = Topology.ec2 ~loss:spec.loss spec.topology in
  let cluster = Cluster.create ~seed:spec.seed ~config:spec.config topo in
  let _handle = Ycsb.run cluster spec.workload in
  Cluster.run cluster;
  (* Workload statistics exclude the preload transaction; the correctness
     oracle below still checks the full execution. *)
  let audit = Audit.create () in
  let preload_prefix = Ycsb.preload_id ^ "/" in
  List.iter
    (fun (e : Audit.event) ->
      if not (String.starts_with ~prefix:preload_prefix e.record.txn_id) then
        Audit.record audit e)
    (Audit.events (Cluster.audit cluster));
  let rounds = Audit.max_promotions_seen audit in
  let commits_by_round =
    Array.init (rounds + 1) (fun r -> Audit.commits_with_promotions audit r)
  in
  let latency_by_round =
    Array.init (rounds + 1) (fun r ->
        Stats.summarize (Audit.commit_latencies audit ~promotions:(Some r)))
  in
  let net_stats = Mdds_net.Network.stats (Cluster.network cluster) in
  {
    spec;
    total = Audit.total audit;
    commits = Audit.commits audit;
    commits_by_round;
    aborts = Audit.aborts audit;
    aborts_conflict = Audit.abort_count audit Audit.Conflict;
    aborts_lost = Audit.abort_count audit Audit.Lost_position;
    aborts_unavailable = Audit.abort_count audit Audit.Unavailable;
    unknowns = Audit.unknowns audit;
    max_promotions = rounds;
    combined_entries =
      List.fold_left
        (fun acc group -> acc + Cluster.combined_entries cluster ~group)
        0
        (Ycsb.group_keys spec.workload);
    commit_latency = Stats.summarize (Audit.commit_latencies audit ~promotions:None);
    latency_by_round;
    txn_latency = Stats.summarize (Audit.txn_latencies audit);
    sim_duration = Cluster.now cluster;
    wall_seconds = Unix.gettimeofday () -. started;
    events = Audit.events audit;
    messages_sent = net_stats.Mdds_net.Network.sent;
    messages_delivered = net_stats.Mdds_net.Network.delivered;
    leader_share =
      (let net = Cluster.network cluster in
       let leader_dc = spec.config.Config.initial_leader in
       float_of_int (Mdds_net.Network.delivered_to net leader_dc)
       /. float_of_int (max 1 net_stats.Mdds_net.Network.delivered));
    mean_rounds = Audit.mean_rounds audit;
    fast_path_rate = Audit.fast_path_rate audit;
    verified =
      List.fold_left
        (fun acc group ->
          match acc with Error _ -> acc | Ok () -> Verify.check cluster ~group)
        (Ok ())
        (Ycsb.group_keys spec.workload);
  }

let commits_by_dc result =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Audit.event) ->
      let committed =
        match e.outcome with
        | Audit.Committed _ | Audit.Read_only_committed -> 1
        | Audit.Aborted _ | Audit.Unknown -> 0
      in
      let c, t =
        Option.value (Hashtbl.find_opt tbl e.client_dc) ~default:(0, 0)
      in
      Hashtbl.replace tbl e.client_dc (c + committed, t + 1))
    result.events;
  Hashtbl.fold (fun dc (c, t) acc -> (dc, c, t) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let commit_latency_by_dc result =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Audit.event) ->
      match e.outcome with
      | Audit.Committed _ ->
          let prev = Option.value (Hashtbl.find_opt tbl e.client_dc) ~default:[] in
          Hashtbl.replace tbl e.client_dc
            ((e.committed_at -. e.commit_started_at) :: prev)
      | _ -> ())
    result.events;
  Hashtbl.fold (fun dc xs acc -> (dc, Stats.summarize xs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp_brief ppf r =
  Format.fprintf ppf
    "%s: %d/%d commits (%d conflict, %d lost, %d unavailable), latency %a, \
     combined=%d, max-promotions=%d, verified=%s [%.1fs sim, %.2fs wall]"
    r.spec.name r.commits r.total r.aborts_conflict r.aborts_lost
    r.aborts_unavailable Stats.pp_ms r.commit_latency.Stats.mean
    r.combined_entries r.max_promotions
    (match r.verified with Ok () -> "ok" | Error m -> "FAIL: " ^ m)
    r.sim_duration r.wall_seconds
