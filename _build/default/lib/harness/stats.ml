type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty =
  { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let percentile xs p =
  match List.sort Float.compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)

let summarize xs =
  match xs with
  | [] -> empty
  | _ ->
      {
        count = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
        p50 = percentile xs 50.;
        p95 = percentile xs 95.;
        p99 = percentile xs 99.;
      }

let pp_ms ppf s = Format.fprintf ppf "%.1fms" (s *. 1000.)

let pp_summary_ms ppf s =
  Format.fprintf ppf "n=%d mean=%a p50=%a p95=%a p99=%a max=%a" s.count pp_ms
    s.mean pp_ms s.p50 pp_ms s.p95 pp_ms s.p99 pp_ms s.max
