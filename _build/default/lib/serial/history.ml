type action = Read of string | Write of string

type step = { txn : string; action : action }

type t = step list

let key_of = function Read k -> k | Write k -> k

let conflicting a b =
  key_of a = key_of b
  && match (a, b) with Read _, Read _ -> false | _ -> true

let conflict_edges schedule =
  let rec go acc = function
    | [] -> acc
    | s :: rest ->
        let acc =
          List.fold_left
            (fun acc s' ->
              if s'.txn <> s.txn && conflicting s.action s'.action then
                let edge = (s.txn, s'.txn) in
                if List.mem edge acc then acc else edge :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  List.rev (go [] schedule)

let txns schedule =
  List.fold_left
    (fun acc s -> if List.mem s.txn acc then acc else s.txn :: acc)
    [] schedule
  |> List.rev

(* Kahn's algorithm; [None] on a cycle. *)
let serial_order schedule =
  let nodes = txns schedule in
  let edges = conflict_edges schedule in
  let in_degree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) nodes;
  List.iter
    (fun (_, dst) -> Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst + 1))
    edges;
  let rec go acc remaining edges =
    match
      List.find_opt (fun n -> Hashtbl.find in_degree n = 0) remaining
    with
    | None -> if remaining = [] then Some (List.rev acc) else None
    | Some n ->
        let outgoing, rest = List.partition (fun (src, _) -> src = n) edges in
        List.iter
          (fun (_, dst) ->
            Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst - 1))
          outgoing;
        go (n :: acc) (List.filter (fun m -> m <> n) remaining) rest
  in
  go [] nodes edges

let conflict_serializable schedule = serial_order schedule <> None

let of_serial txns =
  List.concat_map
    (fun (txn, actions) -> List.map (fun action -> { txn; action }) actions)
    txns
