(** One-copy serializability oracle for executions of the transactional
    datastore.

    Theorem 1 reduces one-copy serializability to the log properties
    (L1)–(L3), (R1) and the read properties (A1)–(A2). The cluster's
    {!Mdds_core.Cluster.logs_agree} checks (R1); this module checks the
    rest against a replicated log and the audit trail:

    - {!check_log}: the serial history defined by the log (positions in
      order, records within an entry in order) gives every transaction
      exactly the reads it was entitled to: no key in its read set was
      written between its read position and its commit position, nor by a
      preceding record in its own entry — the union of (L3)'s admission
      rules for combination and promotion, verified independently of the
      protocol's own checks.
    - {!replay}: stronger, value-level: re-execute the log serially and
      confirm every value each client actually observed equals the value a
      serial execution would have produced at its commit point.
    - {!check_audit}: (L1)/(L2) plus outcome honesty — every transaction
      reported committed appears in the log exactly once, at the reported
      position, and no aborted transaction appears at all. *)

module Txn = Mdds_types.Txn

type violation = {
  txn_id : string;
  position : int;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_log : (int * Txn.entry) list -> (unit, violation) result
(** The log must be sorted by position (as {!Mdds_core.Cluster.committed_log}
    returns it) and gap-free from its first position. *)

val replay :
  (int * Txn.entry) list ->
  observed:(string -> (Txn.key * string option) list option) ->
  (unit, violation) result
(** [observed txn_id] returns the key/value pairs the client's reads
    actually returned ([None] if unknown — such transactions get only the
    structural check). *)

val check_audit :
  log:(int * Txn.entry) list ->
  committed:(string * int) list ->
  aborted:string list ->
  (unit, violation) result
(** [committed] is [(txn_id, position)] as reported to clients. *)

val unique_txn_ids : (int * Txn.entry) list -> (unit, violation) result
(** (L2): no transaction occupies two log slots. *)

val check_read_only :
  (int * Txn.entry) list ->
  readers:(string * int * (Txn.key * string option) list) list ->
  (unit, violation) result
(** Read-only transactions are not logged; Theorem 1 serializes each one
    immediately after the last transaction of its read position. Verify
    that each reader [(txn_id, read_position, observed)] saw exactly the
    state the log replay produces at that position. *)
