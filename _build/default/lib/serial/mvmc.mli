(** One-copy serializability by the book (§3.1, Definition 1).

    A multi-version multi-copy history is one-copy serializable iff there
    is a single-copy single-version *serial* history with the same
    operations and the same reads-from relation. This module decides that
    definition directly, by searching for a witness serial order — which
    is exponential, so it is only usable for small histories.

    Its purpose is cross-validation: the practical log-based oracle
    ({!Checker}) must agree with this definitional decision procedure on
    every history small enough to check both ways. *)

type txn = {
  id : string;
  reads : (string * string option) list;
      (** [(key, Some writer)]: the transaction read [key] from [writer]'s
          write; [None]: it read the initial version. *)
  writes : string list;  (** Keys written. *)
}

val one_copy_serializable : txn list -> string list option
(** A witness serial order of the transaction ids — an order in which the
    last writer of each key before each transaction matches its reads-from
    — or [None] if no such order exists. Exhaustive: intended for ≤ 8
    transactions. Raises [Invalid_argument] on duplicate ids or a
    reads-from referencing an unknown transaction or non-writer. *)

val of_log : (int * Mdds_types.Txn.entry) list -> txn list
(** Interpret a replicated-log history as an MVMC history: each record's
    reads-from for key [k] is the last transaction writing [k] at or
    before its read position (which is how the Transaction Service serves
    reads). The log must be position-sorted. *)
