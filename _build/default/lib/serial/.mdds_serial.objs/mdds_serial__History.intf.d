lib/serial/history.mli:
