lib/serial/mvmc.mli: Mdds_types
