lib/serial/checker.ml: Format Hashtbl Int List Mdds_types Printf
