lib/serial/mvmc.ml: Hashtbl List Mdds_types Option Printf
