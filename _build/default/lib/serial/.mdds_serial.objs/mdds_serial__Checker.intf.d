lib/serial/checker.mli: Format Mdds_types
