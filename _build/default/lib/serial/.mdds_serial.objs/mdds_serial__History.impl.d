lib/serial/history.ml: Hashtbl List
