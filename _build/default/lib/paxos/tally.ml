type 'v response = { from : int; vote : (Ballot.t * 'v) option }

let majority d = (d / 2) + 1

let is_quorum ~total n = n >= majority total

let find_winning responses ~own =
  let best =
    List.fold_left
      (fun acc r ->
        match (acc, r.vote) with
        | None, v -> v
        | Some _, None -> acc
        | Some (bb, _), (Some (b, _) as v) ->
            if Ballot.compare b bb > 0 then v else acc)
      None responses
  in
  match best with None -> own | Some (_, v) -> v

type 'v decision = Free | Chosen of 'v | Constrained of 'v

let vote_counts ~equal responses =
  List.fold_left
    (fun counts r ->
      match r.vote with
      | None -> counts
      | Some (_, v) -> (
          let rec bump = function
            | [] -> [ (v, 1) ]
            | (v', n) :: rest ->
                if equal v v' then (v', n + 1) :: rest else (v', n) :: bump rest
          in
          bump counts))
    [] responses

let decide ~total ~equal responses =
  (* The classification is only sound over at least a majority of
     responses: with fewer, an all-null tally could hide a silent chosen
     value and "Free" would be unsafe. The commit protocol always has a
     quorum here (the prepare phase requires it). *)
  if List.length responses < majority total then
    invalid_arg "Tally.decide: need a majority of responses";
  let counts = vote_counts ~equal responses in
  let max_val, max_votes =
    List.fold_left
      (fun (bv, bn) (v, n) -> if n > bn then (Some v, n) else (bv, bn))
      (None, 0) counts
  in
  let silent = total - List.length responses in
  if max_votes + silent <= total / 2 then Free
  else
    match max_val with
    | Some v when max_votes > total / 2 -> Chosen v
    | _ -> (
        (* Neither free nor decidedly chosen: basic Paxos constraint. *)
        match
          List.fold_left
            (fun acc r ->
              match (acc, r.vote) with
              | None, v -> v
              | Some _, None -> acc
              | Some (bb, _), (Some (b, _) as v) ->
                  if Ballot.compare b bb > 0 then v else acc)
            None responses
        with
        | Some (_, v) -> Constrained v
        | None -> Free)
