(** Vote tallying: the proposer-side decision rules of Algorithm 2.

    After the prepare phase the Transaction Client holds a set of last-vote
    responses. Basic Paxos picks the value with the maximum ballot
    ([findWinningVal], lines 66–75). Paxos-CP first classifies the
    position ([enhancedFindWinningVal], lines 76–87):

    - {b Free}: even if all silent acceptors voted alike, no value can have
      a majority — the combination window; the client may propose any
      value, in particular a combined transaction list.
    - {b Chosen}: a single value already has a majority of votes; it will
      be (or has been) written to the log. A client whose transaction is
      not part of it should promote rather than compete.
    - {b Constrained}: neither case — fall back to the basic rule. *)

type 'v response = { from : int; vote : (Ballot.t * 'v) option }
(** One acceptor's last-vote answer: datacenter id and the vote it
    reported (ballot it voted at, value it voted for), if any. *)

val majority : int -> int
(** [majority d] = ⌊d/2⌋ + 1, the quorum size [M] for [d] datacenters. *)

val is_quorum : total:int -> int -> bool

val find_winning : 'v response list -> own:'v -> 'v
(** [findWinningVal]: the value voted at the maximum ballot, or [own] if
    every response carries a null vote. *)

type 'v decision =
  | Free
      (** No value can have reached a majority: combine (§5). *)
  | Chosen of 'v
      (** This value has ≥ [majority total] votes: it wins the position. *)
  | Constrained of 'v
      (** Must propose this (max-ballot) value — basic Paxos rule. *)

val decide : total:int -> equal:('v -> 'v -> bool) -> 'v response list -> 'v decision
(** [enhancedFindWinningVal]'s classification. [total] is the number of
    datacenters [D]; [responses] must come from distinct acceptors and
    contain at least [majority total] of them — with fewer, an all-null
    tally could hide a silently chosen value and no sound classification
    exists (raises [Invalid_argument]). The commit protocol always holds a
    quorum of promises when it classifies (Algorithm 2, line 37). *)

val vote_counts : equal:('v -> 'v -> bool) -> 'v response list -> ('v * int) list
(** Number of votes per distinct value (exposed for tests/telemetry). *)
