type 'v state = {
  next_bal : Ballot.t;
  vote : (Ballot.t * 'v) option;
}

let initial = { next_bal = Ballot.bottom; vote = None }

type 'v prepare_reply =
  | Promise of (Ballot.t * 'v) option
  | Reject of Ballot.t

let on_prepare state ballot =
  if Ballot.compare ballot state.next_bal > 0 then
    ({ state with next_bal = ballot }, Promise state.vote)
  else (state, Reject state.next_bal)

let on_accept state ballot value =
  if Ballot.(ballot >= state.next_bal) then
    ({ next_bal = ballot; vote = Some (ballot, value) }, true)
  else (state, false)

let pp pp_v ppf state =
  Format.fprintf ppf "@[<h>{nextBal=%a; vote=%a}@]" Ballot.pp state.next_bal
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.fprintf ppf "⊥")
       (fun ppf (b, v) -> Format.fprintf ppf "(%a,%a)" Ballot.pp b pp_v v))
    state.vote
