lib/paxos/ballot.mli: Format Mdds_codec
