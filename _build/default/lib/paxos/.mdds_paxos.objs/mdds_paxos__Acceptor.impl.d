lib/paxos/acceptor.ml: Ballot Format
