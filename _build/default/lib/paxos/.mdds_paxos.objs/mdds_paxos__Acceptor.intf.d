lib/paxos/acceptor.mli: Ballot Format
