lib/paxos/tally.mli: Ballot
