lib/paxos/ballot.ml: Format Int Mdds_codec Printf Stdlib String
