lib/paxos/tally.ml: Ballot List
