(** Transaction-tier value types shared across the stack.

    A committed read/write transaction is summarized by a {!record}: its
    identity, the datacenter of the client that executed it, the keys it
    read (with the log position each read was served at — property (A2))
    and the writes it performed. A write-ahead-log {!entry} is an ordered
    list of such records: basic Paxos always writes singleton lists, while
    Paxos-CP's combination enhancement writes longer ones (§5).

    Everything here is immutable plain data with codecs, so records can be
    shipped in Paxos messages and persisted in the key-value store. *)

type key = string
(** A data item identifier, unique within its transaction group. *)

type write = { key : key; value : string }
(** One buffered write operation. *)

type record = {
  txn_id : string;  (** Globally unique transaction identifier. *)
  origin : int;  (** Datacenter of the client that ran the transaction. *)
  read_position : int;  (** Log position all its reads were served at. *)
  reads : key list;  (** Keys read from the datastore (read set). *)
  writes : write list;  (** Buffered writes applied at commit. *)
}

type entry = record list
(** The value decided for one log position: transactions in serialization
    order. Invariant (enforced by combination): no record reads a key
    written by an earlier record of the same entry. *)

(** {1 Construction and accessors} *)

val make_record :
  txn_id:string -> origin:int -> read_position:int ->
  reads:key list -> writes:write list -> record

val read_set : record -> key list
(** Keys read, deduplicated. *)

val write_set : record -> key list
(** Keys written, deduplicated. *)

val entry_write_set : entry -> key list
(** Union of the write sets of all records in the entry. *)

val is_read_only : record -> bool

(** {1 Conflict predicates (the heart of Paxos-CP's admission tests)} *)

val reads_from : record -> record -> bool
(** [reads_from t s] iff [t] read some key that [s] wrote — serializing [t]
    after [s] at a later position would give [t] a stale read. *)

val conflicts_with_any : record -> record list -> bool
(** [conflicts_with_any t winners] iff [t] reads a key written by any
    record in [winners] (the promotion admission test, §5). *)

val valid_combination : entry -> bool
(** Checks the combination invariant: no record reads a key written by any
    record preceding it in the list (§5, Combination). *)

val mem_entry : txn_id:string -> entry -> bool
(** Whether the entry contains the transaction with the given id. *)

(** {1 Equality, formatting, codecs} *)

val equal_record : record -> record -> bool
val equal_entry : entry -> entry -> bool

val pp_record : Format.formatter -> record -> unit
val pp_entry : Format.formatter -> entry -> unit

val write_codec : write Mdds_codec.Codec.t
val record_codec : record Mdds_codec.Codec.t
val entry_codec : entry Mdds_codec.Codec.t
