module Codec = Mdds_codec.Codec

type key = string

type write = { key : key; value : string }

type record = {
  txn_id : string;
  origin : int;
  read_position : int;
  reads : key list;
  writes : write list;
}

type entry = record list

let make_record ~txn_id ~origin ~read_position ~reads ~writes =
  { txn_id; origin; read_position; reads; writes }

let dedup keys = List.sort_uniq String.compare keys

let read_set r = dedup r.reads
let write_set r = dedup (List.map (fun w -> w.key) r.writes)

let entry_write_set e = dedup (List.concat_map write_set e)

let is_read_only r = r.writes = []

let reads_from t s =
  let written = write_set s in
  List.exists (fun k -> List.mem k written) (read_set t)

let conflicts_with_any t winners = List.exists (reads_from t) winners

let valid_combination entry =
  let rec go preceding_writes = function
    | [] -> true
    | r :: rest ->
        let stale = List.exists (fun k -> List.mem k preceding_writes) (read_set r) in
        (not stale) && go (List.rev_append (write_set r) preceding_writes) rest
  in
  go [] entry

let mem_entry ~txn_id entry = List.exists (fun r -> r.txn_id = txn_id) entry

let equal_write a b = a.key = b.key && a.value = b.value

let equal_record a b =
  a.txn_id = b.txn_id && a.origin = b.origin
  && a.read_position = b.read_position
  && List.equal String.equal a.reads b.reads
  && List.equal equal_write a.writes b.writes

let equal_entry = List.equal equal_record

let pp_write ppf w = Format.fprintf ppf "%s:=%S" w.key w.value

let pp_record ppf r =
  Format.fprintf ppf "@[<h>{%s@@dc%d rp=%d r=[%a] w=[%a]}@]" r.txn_id r.origin
    r.read_position
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Format.pp_print_string)
    r.reads
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp_write)
    r.writes

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_record)
    e

let write_codec =
  Codec.map
    (fun (key, value) -> { key; value })
    (fun { key; value } -> (key, value))
    Codec.(pair string string)

let record_codec =
  Codec.map
    (fun ((txn_id, origin), (read_position, reads, writes)) ->
      { txn_id; origin; read_position; reads; writes })
    (fun { txn_id; origin; read_position; reads; writes } ->
      ((txn_id, origin), (read_position, reads, writes)))
    Codec.(pair (pair string int) (triple int (list string) (list write_codec)))

let entry_codec = Codec.list record_codec
