lib/types/txn.ml: Format List Mdds_codec String
