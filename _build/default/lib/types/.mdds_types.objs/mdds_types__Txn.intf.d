lib/types/txn.mli: Format Mdds_codec
