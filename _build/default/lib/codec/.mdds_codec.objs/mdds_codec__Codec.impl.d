lib/codec/codec.ml: Array Buffer Bytes Char Int64 Lazy List Printf String Sys
