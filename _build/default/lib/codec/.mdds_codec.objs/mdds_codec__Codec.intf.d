lib/codec/codec.mli:
