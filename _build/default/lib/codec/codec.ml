exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* A decoder reads from [buf] starting at [!pos] and advances [pos]. *)
type reader = { buf : string; mutable pos : int }

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : reader -> 'a;
}

let encode c v =
  let b = Buffer.create 64 in
  c.write b v;
  Buffer.contents b

let decode_exn c s =
  let r = { buf = s; pos = 0 } in
  let v = c.read r in
  if r.pos <> String.length s then
    fail "trailing garbage: consumed %d of %d bytes" r.pos (String.length s);
  v

let decode c s =
  match decode_exn c s with
  | v -> Ok v
  | exception Decode_error m -> Error m

let need r n =
  if r.pos + n > String.length r.buf then
    fail "truncated input: need %d bytes at offset %d of %d" n r.pos
      (String.length r.buf)

let read_byte r =
  need r 1;
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let unit = { write = (fun _ () -> ()); read = (fun _ -> ()) }

let bool =
  {
    write = (fun b v -> Buffer.add_char b (if v then '\001' else '\000'));
    read =
      (fun r ->
        match read_byte r with
        | 0 -> false
        | 1 -> true
        | n -> fail "invalid bool byte %d" n);
  }

(* Zig-zag maps signed ints onto unsigned so small magnitudes stay short. *)
let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let write_varint b n =
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then fail "varint too long"
    else
      let byte = read_byte r in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let int =
  {
    write = (fun b n -> write_varint b (zigzag n));
    read = (fun r -> unzigzag (read_varint r));
  }

(* Length prefixes must be non-negative: a malformed varint can overflow
   into a negative OCaml int, which would crash List.init/Array.init. *)
let read_length r =
  let n = read_varint r in
  if n < 0 then fail "negative length %d" n;
  n

let int64 =
  {
    write =
      (fun b n ->
        for i = 0 to 7 do
          Buffer.add_char b
            (Char.chr (Int64.to_int (Int64.shift_right_logical n (i * 8)) land 0xff))
        done);
    read =
      (fun r ->
        need r 8;
        let v = ref 0L in
        for i = 7 downto 0 do
          v :=
            Int64.logor (Int64.shift_left !v 8)
              (Int64.of_int (Char.code r.buf.[r.pos + i]))
        done;
        r.pos <- r.pos + 8;
        !v);
  }

let float =
  {
    write = (fun b f -> int64.write b (Int64.bits_of_float f));
    read = (fun r -> Int64.float_of_bits (int64.read r));
  }

let string =
  {
    write =
      (fun b s ->
        write_varint b (String.length s);
        Buffer.add_string b s);
    read =
      (fun r ->
        let n = read_length r in
        need r n;
        let s = String.sub r.buf r.pos n in
        r.pos <- r.pos + n;
        s);
  }

let bytes =
  {
    write = (fun b s -> string.write b (Bytes.unsafe_to_string s));
    read = (fun r -> Bytes.of_string (string.read r));
  }

let pair ca cb =
  {
    write =
      (fun b (x, y) ->
        ca.write b x;
        cb.write b y);
    read =
      (fun r ->
        let x = ca.read r in
        let y = cb.read r in
        (x, y));
  }

let triple ca cb cc =
  {
    write =
      (fun b (x, y, z) ->
        ca.write b x;
        cb.write b y;
        cc.write b z);
    read =
      (fun r ->
        let x = ca.read r in
        let y = cb.read r in
        let z = cc.read r in
        (x, y, z));
  }

let quad ca cb cc cd =
  {
    write =
      (fun b (x, y, z, w) ->
        ca.write b x;
        cb.write b y;
        cc.write b z;
        cd.write b w);
    read =
      (fun r ->
        let x = ca.read r in
        let y = cb.read r in
        let z = cc.read r in
        let w = cd.read r in
        (x, y, z, w));
  }

let list c =
  {
    write =
      (fun b l ->
        write_varint b (List.length l);
        List.iter (c.write b) l);
    read =
      (fun r ->
        let n = read_length r in
        List.init n (fun _ -> c.read r));
  }

let array c =
  {
    write =
      (fun b a ->
        write_varint b (Array.length a);
        Array.iter (c.write b) a);
    read =
      (fun r ->
        let n = read_length r in
        Array.init n (fun _ -> c.read r));
  }

let option c =
  {
    write =
      (fun b v ->
        match v with
        | None -> Buffer.add_char b '\000'
        | Some x ->
            Buffer.add_char b '\001';
            c.write b x);
    read =
      (fun r ->
        match read_byte r with
        | 0 -> None
        | 1 -> Some (c.read r)
        | n -> fail "invalid option tag %d" n);
  }

let result cok cerr =
  {
    write =
      (fun b v ->
        match v with
        | Ok x ->
            Buffer.add_char b '\000';
            cok.write b x
        | Error e ->
            Buffer.add_char b '\001';
            cerr.write b e);
    read =
      (fun r ->
        match read_byte r with
        | 0 -> Ok (cok.read r)
        | 1 -> Error (cerr.read r)
        | n -> fail "invalid result tag %d" n);
  }

let map of_a to_a c =
  {
    write = (fun b v -> c.write b (to_a v));
    read = (fun r -> of_a (c.read r));
  }

let tagged cases ~tag_of =
  let tags = List.map fst cases in
  let rec dup = function
    | [] -> false
    | t :: rest -> List.mem t rest || dup rest
  in
  if dup tags then invalid_arg "Codec.tagged: duplicate tags";
  {
    write =
      (fun b v ->
        let tag = tag_of v in
        match List.assoc_opt tag cases with
        | None -> invalid_arg (Printf.sprintf "Codec.tagged: unknown tag %d" tag)
        | Some c ->
            write_varint b tag;
            c.write b v);
    read =
      (fun r ->
        let tag = read_varint r in
        if tag < 0 then fail "negative case tag %d" tag;
        match List.assoc_opt tag cases with
        | None -> fail "unknown case tag %d" tag
        | Some c -> c.read r);
  }

let fix f =
  let rec c =
    {
      write = (fun b v -> (Lazy.force self).write b v);
      read = (fun r -> (Lazy.force self).read r);
    }
  and self = lazy (f c) in
  c
