(** Binary serialization combinators.

    The transaction tier stores everything it persists — Paxos acceptor
    state, write-ahead-log entries, transaction records — as byte strings
    inside the key-value store, exactly as a system built on HBase or
    BigTable would. This module provides the small combinator language used
    to build those encodings.

    Encodings are length-prefixed and self-delimiting, so codecs compose:
    [pair], [list], [option] and friends can be nested arbitrarily. Decoding
    is strict: trailing garbage, truncated input or invalid tags raise
    {!Decode_error} (wrapped into [Error] by {!decode}). *)

type 'a t
(** A codec for values of type ['a]. *)

exception Decode_error of string
(** Raised internally on malformed input; {!decode} catches it. *)

(** {1 Running codecs} *)

val encode : 'a t -> 'a -> string
(** [encode c v] serializes [v] to a byte string. *)

val decode : 'a t -> string -> ('a, string) result
(** [decode c s] deserializes [s], requiring that all input is consumed. *)

val decode_exn : 'a t -> string -> 'a
(** Like {!decode} but raises {!Decode_error} on failure. *)

(** {1 Primitive codecs} *)

val unit : unit t
val bool : bool t
val int : int t
(** Varint (LEB128 zig-zag) encoding of OCaml native ints. *)

val int64 : int64 t
val float : float t
val string : string t
val bytes : bytes t

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val quad : 'a t -> 'b t -> 'c t -> 'd t -> ('a * 'b * 'c * 'd) t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val option : 'a t -> 'a option t

val result : 'a t -> 'b t -> ('a, 'b) result t

val map : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t
(** [map of_a to_a c] transports a codec along an isomorphism:
    [of_a] is used after decoding, [to_a] before encoding. *)

val tagged : (int * 'a t) list -> tag_of:('a -> int) -> 'a t
(** [tagged cases ~tag_of] encodes a sum type: [tag_of v] selects the case
    tag written before the payload; decoding dispatches on the tag. The
    codec associated with a tag must accept every value mapped to that tag.
    Raises [Invalid_argument] on duplicate tags. *)

val fix : ('a t -> 'a t) -> 'a t
(** Fixpoint for recursive types. *)
