lib/kvstore/store.mli: Row
