lib/kvstore/row.mli:
