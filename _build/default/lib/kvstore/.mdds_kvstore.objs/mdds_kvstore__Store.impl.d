lib/kvstore/store.ml: Hashtbl Row
