lib/kvstore/row.ml: List String
