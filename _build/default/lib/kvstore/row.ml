type value = (string * string) list

(* Versions kept as a list sorted by decreasing timestamp; rows have few
   versions relative to accesses and reads want the newest first. *)
type t = { mutable versions : (int * value) list }

let create () = { versions = [] }

let normalize value =
  (* Later bindings win: keep the last occurrence of each attribute. *)
  let rec keep_last seen = function
    | [] -> []
    | (k, v) :: rest ->
        if List.mem k seen then keep_last seen rest
        else (k, v) :: keep_last (k :: seen) rest
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (keep_last [] (List.rev value))

let latest t = match t.versions with [] -> None | v :: _ -> Some v

let read t ?timestamp () =
  match timestamp with
  | None -> latest t
  | Some ts -> List.find_opt (fun (vts, _) -> vts <= ts) t.versions

let write t ?timestamp value =
  let value = normalize value in
  match timestamp with
  | None ->
      let ts = match t.versions with [] -> 1 | (vts, _) :: _ -> vts + 1 in
      t.versions <- (ts, value) :: t.versions;
      Ok ts
  | Some ts -> (
      match t.versions with
      | (vts, _) :: _ when vts > ts -> Error `Stale
      | (vts, _) :: rest when vts = ts ->
          t.versions <- (ts, value) :: rest;
          Ok ts
      | _ ->
          t.versions <- (ts, value) :: t.versions;
          Ok ts)

let attribute value name = List.assoc_opt name value

let versions t = t.versions

let version_count t = List.length t.versions
