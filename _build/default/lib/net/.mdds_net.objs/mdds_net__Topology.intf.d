lib/net/topology.mli:
