lib/net/rpc.mli: Mdds_sim Network
