lib/net/rpc.ml: Hashtbl List Mdds_sim Network
