lib/net/network.mli: Mdds_sim Topology
