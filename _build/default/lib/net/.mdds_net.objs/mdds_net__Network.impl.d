lib/net/network.ml: Array Hashtbl List Mdds_sim Topology
