lib/net/topology.ml: Array Hashtbl Printf String
