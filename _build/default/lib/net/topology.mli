(** Multi-datacenter network topologies.

    A topology fixes, for every ordered pair of datacenters, the one-way
    message delay distribution and loss probability. The presets reproduce
    the EC2 deployment of the paper's evaluation (§6): Virginia availability
    zones (V), Oregon (O) and Northern California (C), with round-trip
    times V–V ≈ 1.5 ms, V–O = V–C ≈ 90 ms, O–C ≈ 20 ms. *)

type link = {
  delay : float;  (** Mean one-way delay, seconds. *)
  jitter : float;  (** Fractional jitter: actual = delay × U(1−j, 1+j). *)
  loss : float;  (** Probability a message is silently dropped. *)
}

type t

val make : names:string array -> link:(int -> int -> link) -> t
(** Build a topology over [Array.length names] datacenters; [link i j]
    gives the i→j link ([i = j] is the loopback used by co-located
    client/service traffic). *)

val size : t -> int
val name : t -> int -> string
val link : t -> int -> int -> link

val region : t -> int -> char
(** First letter of the datacenter name — its region tag (V/O/C). *)

(** {1 EC2 presets} *)

val ec2 : ?loss:float -> ?jitter:float -> string -> t
(** [ec2 spec] builds the paper's EC2 topology from a region spec string:
    each character is one datacenter, ['V'] a Virginia availability zone,
    ['O'] Oregon, ['C'] N. California. E.g. ["VVV"], ["COV"], ["VVVOC"].
    Latencies follow §6; [loss] (default 0.002) and [jitter] (default 0.1)
    apply to every non-loopback link. Raises [Invalid_argument] on other
    characters or an empty spec. *)

val uniform : n:int -> rtt:float -> ?loss:float -> ?jitter:float -> unit -> t
(** A symmetric [n]-datacenter topology with the given inter-DC RTT. *)

val rtt : t -> int -> int -> float
(** Mean round-trip time i→j→i, seconds. *)
