type link = { delay : float; jitter : float; loss : float }

type t = { names : string array; links : link array array }

let make ~names ~link =
  let n = Array.length names in
  if n = 0 then invalid_arg "Topology.make: empty";
  { names; links = Array.init n (fun i -> Array.init n (fun j -> link i j)) }

let size t = Array.length t.names
let name t i = t.names.(i)
let link t i j = t.links.(i).(j)

let region t i = t.names.(i).[0]

(* Round-trip times from the paper (§6), in seconds. *)
let rtt_between a b =
  match (a, b) with
  | 'V', 'V' -> 0.0015
  | 'O', 'C' | 'C', 'O' -> 0.020
  | ('V', 'O' | 'O', 'V' | 'V', 'C' | 'C', 'V') -> 0.090
  | 'O', 'O' | 'C', 'C' -> 0.0015 (* same-region zones, V-V-like *)
  | _ -> invalid_arg "Topology: unknown region pair"

let loopback_rtt = 0.0003

let ec2 ?(loss = 0.002) ?(jitter = 0.1) spec =
  if String.length spec = 0 then invalid_arg "Topology.ec2: empty spec";
  String.iter
    (fun c ->
      match c with
      | 'V' | 'O' | 'C' -> ()
      | _ -> invalid_arg "Topology.ec2: regions are V, O, C")
    spec;
  let n = String.length spec in
  let counts = Hashtbl.create 4 in
  let names =
    Array.init n (fun i ->
        let c = spec.[i] in
        let k = (try Hashtbl.find counts c with Not_found -> 0) + 1 in
        Hashtbl.replace counts c k;
        Printf.sprintf "%c%d" c k)
  in
  let link i j =
    if i = j then { delay = loopback_rtt /. 2.0; jitter = 0.05; loss = 0.0 }
    else { delay = rtt_between spec.[i] spec.[j] /. 2.0; jitter; loss }
  in
  make ~names ~link

let uniform ~n ~rtt ?(loss = 0.0) ?(jitter = 0.0) () =
  let names = Array.init n (fun i -> Printf.sprintf "dc%d" i) in
  let link i j =
    if i = j then { delay = loopback_rtt /. 2.0; jitter; loss = 0.0 }
    else { delay = rtt /. 2.0; jitter; loss }
  in
  make ~names ~link

let rtt t i j = (link t i j).delay +. (link t j i).delay
