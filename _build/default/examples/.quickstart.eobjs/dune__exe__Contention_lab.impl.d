examples/contention_lab.ml: List Mdds_core Mdds_harness Mdds_workload Printf
