examples/datacenter_outage.ml: List Mdds_core Mdds_net Mdds_sim Mdds_wal Option Printf
