examples/bank_transfer.ml: Array Mdds_core Mdds_net Mdds_sim Option Printf
