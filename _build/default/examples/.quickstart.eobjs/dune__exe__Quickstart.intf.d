examples/quickstart.mli:
