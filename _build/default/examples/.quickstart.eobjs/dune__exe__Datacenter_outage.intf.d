examples/datacenter_outage.mli:
