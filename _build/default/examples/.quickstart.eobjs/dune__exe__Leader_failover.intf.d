examples/leader_failover.mli:
