examples/leader_failover.ml: Format List Mdds_core Mdds_net Mdds_sim Printf
