examples/contention_lab.mli:
