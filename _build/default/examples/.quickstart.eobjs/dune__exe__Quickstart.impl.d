examples/quickstart.ml: Format Mdds_core Mdds_net Option Printf
