(* Quickstart: a three-datacenter deployment, one transaction group, a few
   transactions through the public API.

   Run with: dune exec examples/quickstart.exe *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology

let () =
  (* Three Virginia availability zones, Paxos-CP (the default config). *)
  let cluster = Cluster.create ~seed:1 (Topology.ec2 "VVV") in
  let client = Cluster.client cluster ~dc:0 in

  Cluster.spawn cluster (fun () ->
      (* A read/write transaction. *)
      let txn = Client.begin_ client ~group:"accounts" in
      Printf.printf "[%6.3fs] begin: read position %d\n"
        (Cluster.now cluster) (Client.read_position txn);
      assert (Client.read txn "alice" = None);
      Client.write txn "alice" "100";
      Client.write txn "bob" "250";
      (match Client.commit txn with
      | Audit.Committed { position; _ } ->
          Printf.printf "[%6.3fs] committed at log position %d\n"
            (Cluster.now cluster) position
      | Audit.Aborted { reason; _ } ->
          Format.printf "aborted: %a@." Audit.pp_reason reason
      | Audit.Read_only_committed | Audit.Unknown -> ());

      (* Read it back in a second transaction. *)
      let txn = Client.begin_ client ~group:"accounts" in
      Printf.printf "[%6.3fs] alice=%s bob=%s\n" (Cluster.now cluster)
        (Option.value (Client.read txn "alice") ~default:"?")
        (Option.value (Client.read txn "bob") ~default:"?");
      (* No writes: a read-only transaction commits locally, no messages. *)
      ignore (Client.commit txn));

  Cluster.run cluster;

  (* The library ships its own correctness oracle; use it liberally. *)
  Verify.check_exn cluster ~group:"accounts";
  print_endline "verified: execution is one-copy serializable"
