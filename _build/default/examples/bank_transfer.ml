(* Bank transfers: concurrent read-modify-write transactions on shared
   accounts, exercising exactly the anomaly one-copy serializability rules
   out (lost updates on stale reads).

   Forty transfer transactions race from three datacenters. Each reads two
   account balances, moves a random amount, and commits; Paxos-CP aborts
   any transfer whose balances were overwritten while it ran. At the end,
   the sum of all balances must equal the initial total — money is neither
   created nor destroyed — and the oracle re-checks serializability.

   Run with: dune exec examples/bank_transfer.exe *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Topology = Mdds_net.Topology
module Rng = Mdds_sim.Rng

let accounts = [| "alice"; "bob"; "carol"; "dave"; "erin" |]
let initial_balance = 1000
let group = "bank"

let () =
  let cluster = Cluster.create ~seed:2024 (Topology.ec2 "VVV") in

  (* Seed the accounts. *)
  let setup = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ setup ~group in
      Array.iter
        (fun account -> Client.write txn account (string_of_int initial_balance))
        accounts;
      match Client.commit txn with
      | Audit.Committed _ -> ()
      | _ -> failwith "setup failed");

  let commits = ref 0 and aborts = ref 0 in
  (* Three tellers, one per datacenter, each performing transfers. *)
  for dc = 0 to 2 do
    let client = Cluster.client cluster ~dc in
    let rng = Rng.split (Mdds_sim.Engine.rng (Cluster.engine cluster)) in
    Cluster.spawn cluster ~at:1.0 (fun () ->
        for _ = 1 to 13 do
          let from_account = Rng.pick rng accounts in
          let to_account = Rng.pick rng accounts in
          if from_account <> to_account then begin
            let amount = 1 + Rng.int rng 100 in
            let txn = Client.begin_ client ~group in
            let balance account =
              int_of_string (Option.get (Client.read txn account))
            in
            let from_balance = balance from_account in
            let to_balance = balance to_account in
            if from_balance >= amount then begin
              Client.write txn from_account (string_of_int (from_balance - amount));
              Client.write txn to_account (string_of_int (to_balance + amount))
            end;
            match Client.commit txn with
            | Audit.Committed _ | Audit.Read_only_committed -> incr commits
            | Audit.Aborted _ | Audit.Unknown -> incr aborts
          end;
          Mdds_sim.Engine.sleep (Rng.uniform rng 0.05 0.3)
        done)
  done;

  Cluster.run cluster;

  (* Audit the books from a fresh transaction. *)
  let auditor = Cluster.client cluster ~dc:1 in
  let total = ref 0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ auditor ~group in
      Array.iter
        (fun account ->
          let balance = int_of_string (Option.get (Client.read txn account)) in
          Printf.printf "  %-6s %5d\n" account balance;
          total := !total + balance)
        accounts;
      ignore (Client.commit txn));
  Cluster.run cluster;

  Printf.printf "transfers: %d committed, %d aborted (stale balances)\n" !commits !aborts;
  Printf.printf "total balance: %d (expected %d)\n" !total
    (initial_balance * Array.length accounts);
  assert (!total = initial_balance * Array.length accounts);
  Verify.check_exn cluster ~group;
  print_endline "verified: no money created or destroyed; execution serializable"
