(* Contention lab: the paper's core claim on one page.

   The same contended workload runs under four transaction-tier
   configurations — basic Paxos, Paxos-CP without combination, Paxos-CP
   without the leader fast path, and full Paxos-CP — so you can see what
   each mechanism buys. Basic Paxos aborts every transaction that loses
   its log position, even when read/write sets are disjoint ("concurrency
   prevention", §4.2); promotion recovers most of those; combination packs
   compatible transactions into one log slot.

   Run with: dune exec examples/contention_lab.exe *)

module Config = Mdds_core.Config
module Experiment = Mdds_harness.Experiment
module Table = Mdds_harness.Table
module Ycsb = Mdds_workload.Ycsb

let () =
  let workload =
    { Ycsb.default with total_txns = 300; attributes = 100; rate = 2.0 }
  in
  let variants =
    [
      ("basic paxos", Config.basic);
      ("cp, no combination", { Config.default with enable_combination = false });
      ("cp, no fast path", { Config.default with enable_fast_path = false });
      ("cp, promotions <= 1", { Config.default with max_promotions = Some 1 });
      ("paxos-cp (full)", Config.default);
      ("long-term leader", Config.leader);
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let result =
          Experiment.run (Experiment.spec ~name ~seed:5 ~config ~workload "VVV")
        in
        (match result.verified with
        | Ok () -> ()
        | Error m -> failwith (name ^ ": " ^ m));
        [
          name;
          Printf.sprintf "%d/%d" result.commits result.total;
          string_of_int result.aborts_conflict;
          string_of_int result.aborts_lost;
          string_of_int result.max_promotions;
          string_of_int result.combined_entries;
          Table.fmt_ms result.commit_latency.Mdds_harness.Stats.mean;
        ])
      variants
  in
  Table.print
    ~header:
      [ "configuration"; "commits"; "conflict"; "lost"; "max-prom"; "combined"; "latency ms" ]
    rows;
  print_endline "\nall executions verified one-copy serializable"
