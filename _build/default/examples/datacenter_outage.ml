(* Availability under a datacenter outage — the scenario that motivates the
   paper (the 2011 EC2 and Dublin outages, §1).

   Five datacenters (VVVOC). A workload runs throughout; 30 seconds in, a
   Virginia datacenter goes dark, taking its transaction service, log
   replica and key-value store offline. Because every datacenter can
   process transactions and commit only needs a majority, the system keeps
   committing. When the datacenter returns, its service learns the log
   entries it missed (§4.1 fault tolerance) the next time a client reads
   from it — and the final logs agree everywhere.

   Run with: dune exec examples/datacenter_outage.exe *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Service = Mdds_core.Service
module Wal = Mdds_wal.Wal
module Topology = Mdds_net.Topology

let group = "app"
let outage_dc = 1 (* the second Virginia zone *)

let () =
  let cluster = Cluster.create ~seed:99 (Topology.ec2 "VVVOC") in

  let phase name = Printf.printf "[%7.3fs] %s\n" (Cluster.now cluster) name in

  (* A steady workload from datacenter 0: one transaction every ~2s. *)
  let client = Cluster.client cluster ~dc:0 in
  let committed = ref 0 and aborted = ref 0 in
  Cluster.spawn cluster (fun () ->
      for i = 1 to 40 do
        let txn = Client.begin_ client ~group in
        let prev = Client.read txn "counter" in
        Client.write txn "counter"
          (string_of_int (1 + Option.fold ~none:0 ~some:int_of_string prev));
        Client.write txn (Printf.sprintf "item%02d" i) "data";
        (match Client.commit txn with
        | Audit.Committed _ -> incr committed
        | Audit.Aborted _ -> incr aborted
        | Audit.Read_only_committed | Audit.Unknown -> ());
        Mdds_sim.Engine.sleep 2.0
      done);

  (* Fault injection timeline. *)
  Mdds_sim.Engine.schedule (Cluster.engine cluster) ~at:30.0 (fun () ->
      phase (Printf.sprintf "DATACENTER %d GOES DARK" outage_dc);
      Cluster.take_down cluster outage_dc);
  Mdds_sim.Engine.schedule (Cluster.engine cluster) ~at:60.0 (fun () ->
      phase (Printf.sprintf "datacenter %d back online" outage_dc);
      Cluster.bring_up cluster outage_dc);

  Cluster.run cluster;
  phase
    (Printf.sprintf "workload done: %d committed, %d aborted" !committed !aborted);

  (* The recovered datacenter is behind: force a catch-up by reading from
     it at the current head position. *)
  let head =
    Wal.last_position (Service.wal (Cluster.service cluster 0)) ~group
  in
  let known =
    List.length (Wal.dump (Service.wal (Cluster.service cluster outage_dc)) ~group)
  in
  Printf.printf "log after outage: head=%d, dc%d holds %d entries (%d missing)\n"
    head outage_dc known (head - known);

  let reader = Cluster.client cluster ~dc:outage_dc in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ reader ~group in
      let counter = Client.read txn "counter" in
      Printf.printf "read from recovered datacenter: counter=%s\n"
        (Option.value counter ~default:"?");
      ignore (Client.commit txn));
  Cluster.run cluster;

  let caught_up =
    Wal.last_position (Service.wal (Cluster.service cluster outage_dc)) ~group
  in
  Printf.printf "dc%d log position after catch-up reads: %d (learned %d entries)\n"
    outage_dc caught_up (Service.learns (Cluster.service cluster outage_dc));

  (match Cluster.logs_agree cluster ~group with
  | Ok () -> print_endline "all datacenter logs agree (R1)"
  | Error m -> failwith m);
  Verify.check_exn cluster ~group;
  assert (!committed > 30);
  print_endline "verified: the outage never blocked commits, and recovery converged"
