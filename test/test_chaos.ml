(* Chaos engine: soak battery, determinism, schedule round-trip, the
   generator's connected-majority invariant, and the shrinker. *)

module Schedule = Mdds_chaos.Schedule
module Runner = Mdds_chaos.Runner
module Shrink = Mdds_chaos.Shrink
module Config = Mdds_core.Config
module Cluster = Mdds_core.Cluster
module Network = Mdds_net.Network

(* ------------------------------------------------------------------ *)
(* Soak: every protocol on two topologies, several seeds each, full
   fault mix, full oracle suite. Any violation prints its repro line. *)

let protocols = [ Config.Basic; Config.Cp; Config.Leader ]

let battery_combos =
  List.concat_map
    (fun proto ->
      List.concat_map
        (fun (topo, seeds) -> List.map (fun seed -> (proto, topo, seed)) seeds)
        [ ("VVV", [ 1; 2; 3; 4 ]); ("VVVOC", [ 1; 2; 3 ]) ])
    protocols

let test_battery () =
  Alcotest.(check bool)
    "at least 20 combos" true
    (List.length battery_combos >= 20);
  List.iter
    (fun (proto, topo, seed) ->
      let spec =
        Runner.spec ~config:(Runner.default_config proto) ~seed topo
      in
      let report = Runner.run spec in
      (match report.Runner.violation with
      | None -> ()
      | Some v ->
          Alcotest.failf "%s/%s seed %d: %s@.repro: %s" topo
            (Config.protocol_name proto) seed v (Runner.repro report));
      Alcotest.(check bool)
        "made progress" true
        (report.Runner.commits >= spec.Runner.min_commits))
    battery_combos

(* ------------------------------------------------------------------ *)
(* Throughput dimension (PR 8): batched/pipelined commit under the full
   fault mix. batch_max/pipeline_depth are drawn per seed (never both 1)
   and the workload is dense enough that batches fill and pipelined
   positions overlap while faults land; the full oracle suite must still
   pass, and across the battery both mechanisms must actually engage. *)

let test_throughput_battery () =
  let topo = "VVV" in
  let duration = 20.0 in
  let seeds = List.init 25 (fun i -> i + 1) in
  let workload =
    Runner.throughput_workload ~dcs:(String.length topo) ~duration
  in
  let specs =
    List.map
      (fun seed ->
        let config =
          Runner.throughput_config ~seed (Runner.default_config Config.Leader)
        in
        Runner.spec ~config ~duration ~workload ~seed topo)
      seeds
  in
  let reports = Runner.run_many specs in
  List.iter
    (fun (r : Runner.report) ->
      (match r.Runner.violation with
      | None -> ()
      | Some v ->
          Alcotest.failf "throughput seed %d (batch %d, depth %d): %s@.repro: %s"
            r.Runner.run_spec.Runner.seed
            r.Runner.run_spec.Runner.config.Config.batch_max
            r.Runner.run_spec.Runner.config.Config.pipeline_depth v
            (Runner.repro r));
      Alcotest.(check bool)
        "throughput mode actually on" true
        (Config.throughput_mode r.Runner.run_spec.Runner.config);
      Alcotest.(check bool)
        "made progress" true
        (r.Runner.commits >= r.Runner.run_spec.Runner.min_commits))
    reports;
  let module Service = Mdds_core.Service in
  let batched, pipelined, stalls =
    List.fold_left
      (fun (b, p, s) (r : Runner.report) ->
        ( b + r.Runner.throughput.Service.batched_txns,
          p + r.Runner.throughput.Service.pipelined_rounds,
          s + r.Runner.throughput.Service.pipeline_stalls ))
      (0, 0, 0) reports
  in
  Alcotest.(check bool) "batched txns flowed" true (batched > 0);
  Alcotest.(check bool) "pipelined rounds overlapped" true (pipelined > 0);
  Alcotest.(check bool) "stalled windows were resolved" true (stalls > 0)

(* ------------------------------------------------------------------ *)
(* Reproducibility: the same spec twice gives byte-identical schedules,
   outcome counts and repro line. *)

let test_determinism () =
  let spec = Runner.spec ~seed:11 "VVV" in
  let a = Runner.run spec in
  let b = Runner.run spec in
  Alcotest.(check string)
    "schedules identical"
    (Schedule.to_string a.Runner.schedule)
    (Schedule.to_string b.Runner.schedule);
  Alcotest.(check (list string)) "repro identical" [ Runner.repro a ] [ Runner.repro b ];
  Alcotest.(check int) "commits identical" a.Runner.commits b.Runner.commits;
  Alcotest.(check int) "aborts identical" a.Runner.aborts b.Runner.aborts;
  Alcotest.(check int) "faults identical" a.Runner.faults b.Runner.faults

(* ------------------------------------------------------------------ *)
(* Schedule text form is exact: parse (print s) = s for generated
   schedules across seeds, datacenter counts and durations. *)

let test_roundtrip () =
  for seed = 1 to 20 do
    let dcs = if seed mod 2 = 0 then 3 else 5 in
    let s = Schedule.generate ~seed ~dcs ~duration:25.0 () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d generates events" seed)
      true (s <> []);
    let s' = Schedule.of_string (Schedule.to_string s) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d round-trips" seed)
      true (s = s')
  done

(* ------------------------------------------------------------------ *)
(* Generator invariant: replaying any generated schedule against a model
   of the fault state never disconnects a majority — at every step the
   datacenters that are up and outside the partition minority form a
   quorum. This is what entitles the runner to assert availability. *)

let test_connected_majority () =
  for seed = 1 to 30 do
    let dcs = 3 + (seed mod 3) in
    let quorum = (dcs / 2) + 1 in
    let s = Schedule.generate ~seed ~dcs ~duration:30.0 () in
    let down = Array.make dcs false in
    let minority = ref [] in
    let check () =
      let main =
        List.length
          (List.filter
             (fun i -> (not down.(i)) && not (List.mem i !minority))
             (List.init dcs Fun.id))
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d (dcs=%d): connected majority" seed dcs)
        true (main >= quorum)
    in
    check ();
    List.iter
      (fun { Schedule.fault; _ } ->
        (match fault with
        | Schedule.Crash d -> down.(d) <- true
        | Schedule.Recover d -> down.(d) <- false
        | Schedule.Partition parts ->
            (* The generator emits [minority; majority]. *)
            minority := List.hd parts
        | Schedule.Heal -> minority := []
        | Schedule.Restart _ | Schedule.Dirty_crash _ | Schedule.Torn_write _
        | Schedule.Storm _ | Schedule.Compact _ | Schedule.One_way_cut _
        | Schedule.Slow_node _ | Schedule.Flap _ | Schedule.Dup_storm _
        | Schedule.Mid_2pc _ -> ());
        check ())
      s
  done

(* ------------------------------------------------------------------ *)
(* Shrinker: inject an artificial oracle violation (fails iff any
   message was dropped at a downed datacenter, i.e. iff the run had an
   effective crash window) and check the minimized schedule is strictly
   smaller, still failing, and replayable from its printed form. *)

let test_shrinker () =
  let spec = Runner.spec ~seed:1 "VVV" in
  let oracle cluster =
    if (Network.stats (Cluster.network cluster)).Network.dropped_down > 0 then
      Error "injected: a message was dropped at a downed datacenter"
    else Ok ()
  in
  let report = Runner.run ~extra_oracle:oracle spec in
  Alcotest.(check bool) "original run fails" true (Runner.failed report);
  Alcotest.(check bool)
    "original schedule is not already minimal" true
    (List.length report.Runner.schedule > 1);
  let fails sch =
    Runner.failed (Runner.run ~schedule:sch ~extra_oracle:oracle spec)
  in
  let minimal, runs = Shrink.minimize ~fails report.Runner.schedule in
  Alcotest.(check bool)
    "strictly smaller" true
    (List.length minimal < List.length report.Runner.schedule);
  Alcotest.(check bool) "spent re-runs" true (runs > 0);
  Alcotest.(check bool) "minimal still fails" true (fails minimal);
  (* The minimal counterexample for "some crash window had traffic" is a
     single crash event. *)
  Alcotest.(check int) "minimal is one event" 1 (List.length minimal);
  (match minimal with
  | [ { Schedule.fault = Schedule.Crash _; _ } ] -> ()
  | _ -> Alcotest.fail "expected a lone crash event");
  (* Replayable: the printed schedule reproduces the failure verbatim. *)
  let replayed = Schedule.of_string (Schedule.to_string minimal) in
  Alcotest.(check bool) "replay equals minimal" true (replayed = minimal);
  Alcotest.(check bool) "replay still fails" true (fails replayed)

(* ------------------------------------------------------------------ *)
(* An explicitly supplied schedule is used verbatim (repro path). *)

let test_explicit_schedule () =
  let spec = Runner.spec ~seed:13 "VVV" in
  let schedule =
    Schedule.of_string "((2.5 (crash 2)) (6.0 (recover 2)) (8.0 (compact 0)))"
  in
  let report = Runner.run ~schedule spec in
  Alcotest.(check string)
    "schedule taken verbatim"
    (Schedule.to_string schedule)
    (Schedule.to_string report.Runner.schedule);
  match report.Runner.violation with
  | None -> ()
  | Some v -> Alcotest.failf "explicit schedule run failed: %s" v

(* ------------------------------------------------------------------ *)
(* Gray failures: an explicit schedule drawing every new fault kind must
   pass all oracles — including the bounded-unavailability one — and the
   report must carry a meaningful availability timeline and per-fault
   time-to-recovery. The dup-storm window is made aggressive enough that
   duplicated deliveries demonstrably reached the services. *)

let test_gray_failures () =
  let spec = Runner.spec ~seed:7 "VVV" in
  let schedule =
    Schedule.of_string
      "((2 (one-way-cut 0 1 5)) (4 (slow-node 2 4 8)) (6 (flap 1 2 0.4 10)) \
       (9 (dup-storm 0.5 14)) (12 (one-way-cut 2 0 16)))"
  in
  (match Schedule.validate ~dcs:3 schedule with
  | Ok () -> ()
  | Error m -> Alcotest.failf "gray schedule invalid: %s" m);
  let report = Runner.run ~schedule spec in
  (match report.Runner.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "gray-failure run violated an oracle: %s@.repro: %s" v
        (Runner.repro report));
  let stats = report.Runner.net_stats in
  Alcotest.(check bool)
    "one-way cut or flap dropped traffic" true
    (stats.Network.dropped_oneway > 0);
  Alcotest.(check bool) "messages were duplicated" true (stats.Network.duplicated > 0);
  Alcotest.(check bool)
    "timeline covers run + heal windows" true
    (Array.length report.Runner.timeline
    >= int_of_float (spec.Runner.duration /. spec.Runner.probe_window));
  Alcotest.(check bool) "some windows were up" true (Runner.up_windows report > 0);
  Alcotest.(check int)
    "one ttr entry per fault"
    (List.length schedule)
    (List.length report.Runner.recovery_times);
  List.iter
    (fun (_, ttr) ->
      match ttr with
      | None -> Alcotest.fail "a fault never saw a probe commit after it"
      | Some t -> Alcotest.(check bool) "ttr non-negative" true (t >= 0.0))
    report.Runner.recovery_times

(* Duplicated deliveries must be absorbed idempotently: under a
   full-duration dup-storm, replayed Apply notifications hit the services
   (counted by the dedup telemetry) while every safety oracle still
   passes — nothing is applied or granted twice. *)

let test_dup_storm_idempotence () =
  let spec = Runner.spec ~seed:3 "VVV" in
  let schedule = Schedule.of_string "((1 (dup-storm 0.8 19)))" in
  let report = Runner.run ~schedule spec in
  (match report.Runner.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "dup-storm run violated an oracle: %s@.repro: %s" v
        (Runner.repro report));
  Alcotest.(check bool)
    "duplicates were injected" true
    (report.Runner.net_stats.Network.duplicated > 0);
  Alcotest.(check bool)
    "services saw and absorbed replayed applies" true
    (report.Runner.dedup.Mdds_core.Service.dup_applies > 0)

(* The shrinker understands the new kinds: a violation that requires a
   one-way cut shrinks to a schedule that still contains one, and window
   halving applies to gray-failure windows too. *)

let test_shrink_gray () =
  let spec = Runner.spec ~seed:5 "VVV" in
  let oracle cluster =
    if (Network.stats (Cluster.network cluster)).Network.dropped_oneway > 0 then
      Error "injected: a message was dropped by a directed cut or flap"
    else Ok ()
  in
  let report = Runner.run ~extra_oracle:oracle spec in
  (* Seed 5 must draw at least one one-way cut or flap with traffic for
     this test to bite; if not, fall back to an explicit schedule. *)
  let report =
    if Runner.failed report then report
    else
      Runner.run
        ~schedule:(Schedule.of_string "((2 (crash 1)) (3 (one-way-cut 0 1 12)) (5 (compact 0)) (8 (recover 1)))")
        ~extra_oracle:oracle spec
  in
  Alcotest.(check bool) "run fails" true (Runner.failed report);
  let fails sch =
    Runner.failed (Runner.run ~schedule:sch ~extra_oracle:oracle spec)
  in
  let minimal, _runs = Shrink.minimize ~fails report.Runner.schedule in
  Alcotest.(check bool) "minimal still fails" true (fails minimal);
  Alcotest.(check bool)
    "minimal keeps a gray fault" true
    (List.exists
       (fun { Schedule.fault; _ } ->
         match fault with
         | Schedule.One_way_cut _ | Schedule.Flap _ -> true
         | _ -> false)
       minimal);
  let replayed = Schedule.of_string (Schedule.to_string minimal) in
  Alcotest.(check bool) "replay equals minimal" true (replayed = minimal)

(* ------------------------------------------------------------------ *)
(* Regression: restart with a warm cache. Each service builds up decoded
   WAL/acceptor caches under traffic, then restarts (dropping the
   volatile view), keeps serving, is compacted (pruning the view) and
   restarts again. The runner's cache-coherence oracle fires after every
   one of these events; any decoded state that survived a restart without
   matching the durable store — or went stale after compaction — fails
   the run. *)

(* Shrunk repro (review fix, seed 134: storm + torn-write on the
   manager): a service restart while a batch is mid-[propose_sync].
   Restart-time orphan resolution must not answer No_quorum for a
   pending already handed to a proposal — the proposer fiber survives
   the restart and can still drive the batch to a decision, and telling
   the client "aborted" for a transaction that then lands in the log is
   an L1 violation. Only still-queued pendings may get No_quorum; the
   rest are In_doubt. *)
let test_restart_mid_propose_honesty () =
  let seed = 134 in
  let duration = 20.0 in
  let config =
    Runner.throughput_config ~seed (Runner.default_config Config.Leader)
  in
  let workload = Runner.throughput_workload ~dcs:3 ~duration in
  let spec = Runner.spec ~config ~duration ~workload ~seed "VVV" in
  let schedule =
    Schedule.of_string
      "((4.155 (storm 0.169 0.6 5.578)) (7.116 (torn-write 0)))"
  in
  let report = Runner.run ~schedule spec in
  match report.Runner.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "restart-mid-propose regression: %s@.repro: %s" v
        (Runner.repro report)

(* The epoch draw (PR 10) is appended after the batch/depth draws on the
   same stream, so pre-epoch seeds must keep their historical batch/depth
   — a reordered draw would silently re-shuffle which seed exercised
   which regression. Pin determinism, the value table, and the mix. *)
let test_throughput_config_epoch_draw () =
  let draw seed =
    Runner.throughput_config ~seed (Runner.default_config Config.Leader)
  in
  (* Deterministic: same seed, same knobs. *)
  List.iter
    (fun seed ->
      let a = draw seed and b = draw seed in
      Alcotest.(check int) "batch_max stable" a.Config.batch_max
        b.Config.batch_max;
      Alcotest.(check int) "pipeline_depth stable" a.Config.pipeline_depth
        b.Config.pipeline_depth;
      Alcotest.(check (float 0.0)) "epoch_interval stable"
        a.Config.epoch_interval b.Config.epoch_interval)
    [ 1; 42; 134; 300 ];
  (* Every draw lands in the documented tables and never leaves the
     whole throughput dimension off. *)
  let epoch_on = ref 0 in
  List.iter
    (fun seed ->
      let c = draw seed in
      Alcotest.(check bool) "batch_max in {1,2,4,8}" true
        (List.mem c.Config.batch_max [ 1; 2; 4; 8 ]);
      Alcotest.(check bool) "pipeline_depth in {1,2,4}" true
        (List.mem c.Config.pipeline_depth [ 1; 2; 4 ]);
      Alcotest.(check bool) "epoch_interval in {0, 0.05, 0.15}" true
        (List.mem c.Config.epoch_interval [ 0.0; 0.05; 0.15 ]);
      Alcotest.(check bool) "never all off" true
        (c.Config.batch_max > 1 || c.Config.pipeline_depth > 1);
      if Config.epoch_mode c then incr epoch_on)
    (List.init 300 (fun i -> i + 1));
  (* Roughly half the seeds should run epoch sealing (2 of 4 table
     entries are 0): with 300 seeds, anywhere outside [90, 210] means
     the draw or the table changed. *)
  Alcotest.(check bool) "epoch mix plausible" true
    (!epoch_on >= 90 && !epoch_on <= 210)

let test_restart_warm_cache () =
  let spec = Runner.spec ~seed:42 "VVV" in
  let schedule =
    Schedule.of_string
      "((3.0 (restart 0)) (5.0 (restart 1)) (7.0 (compact 2)) (9.0 (restart \
       2)) (11.0 (compact 0)) (13.0 (restart 0)) (15.0 (restart 2)))"
  in
  let report = Runner.run ~schedule spec in
  Alcotest.(check int)
    "all scheduled faults injected"
    (List.length schedule)
    report.Runner.faults;
  match report.Runner.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "restart-with-warm-cache regression: %s@.repro: %s" v
        (Runner.repro report)

let () =
  Alcotest.run "chaos"
    [
      ( "engine",
        [
          Alcotest.test_case "schedules round-trip" `Quick test_roundtrip;
          Alcotest.test_case "connected majority invariant" `Quick
            test_connected_majority;
          Alcotest.test_case "deterministic runs" `Quick test_determinism;
          Alcotest.test_case "explicit schedule replay" `Quick
            test_explicit_schedule;
          Alcotest.test_case "shrinker minimizes to one crash" `Quick
            test_shrinker;
          Alcotest.test_case "restart with warm cache stays coherent" `Quick
            test_restart_warm_cache;
          Alcotest.test_case "gray failures pass oracles with timeline" `Quick
            test_gray_failures;
          Alcotest.test_case "dup-storm deliveries absorbed idempotently"
            `Quick test_dup_storm_idempotence;
          Alcotest.test_case "shrinker keeps gray faults" `Quick
            test_shrink_gray;
          Alcotest.test_case "restart mid-propose stays honest" `Quick
            test_restart_mid_propose_honesty;
          Alcotest.test_case "throughput config epoch draw pinned" `Quick
            test_throughput_config_epoch_draw;
        ] );
      ( "soak",
        [
          Alcotest.test_case "battery: 21 seed/topology/protocol combos" `Slow
            test_battery;
          Alcotest.test_case "throughput dimension: 25 batched/pipelined seeds"
            `Slow test_throughput_battery;
        ] );
    ]
