(* Tests for the write-ahead log view over the key-value store. *)

module Store = Mdds_kvstore.Store
module Wal = Mdds_wal.Wal
module Txn = Mdds_types.Txn

let record ?(reads = []) ?(writes = []) ?(rp = 0) txn_id =
  Txn.make_record ~txn_id ~origin:0 ~read_position:rp ~reads
    ~writes:(List.map (fun (key, value) -> { Txn.key; value }) writes)

let fresh () = Wal.create (Store.create ())

let group = "g"

let test_append_and_read () =
  let wal = fresh () in
  Alcotest.(check int) "empty last" 0 (Wal.last_position wal ~group);
  Alcotest.(check bool) "no entry" true (Wal.entry wal ~group ~pos:1 = None);
  let e1 = [ record "t1" ~writes:[ ("x", "1") ] ] in
  Wal.append wal ~group ~pos:1 e1;
  Alcotest.(check int) "last" 1 (Wal.last_position wal ~group);
  (match Wal.entry wal ~group ~pos:1 with
  | Some e -> Alcotest.(check bool) "roundtrip" true (Txn.equal_entry e e1)
  | None -> Alcotest.fail "entry missing");
  (* Idempotent duplicate append. *)
  Wal.append wal ~group ~pos:1 e1;
  Alcotest.(check int) "still 1" 1 (Wal.last_position wal ~group)

let test_append_conflict_fails () =
  let wal = fresh () in
  Wal.append wal ~group ~pos:1 [ record "t1" ];
  match Wal.append wal ~group ~pos:1 [ record "t2" ] with
  | () -> Alcotest.fail "conflicting append accepted (R1 violation absorbed)"
  | exception Failure _ -> ()

let test_groups_independent () =
  let wal = fresh () in
  Wal.append wal ~group:"a" ~pos:1 [ record "t1" ];
  Alcotest.(check int) "other group empty" 0 (Wal.last_position wal ~group:"b")

let test_gaps () =
  let wal = fresh () in
  Wal.append wal ~group ~pos:1 [ record "t1" ];
  Wal.append wal ~group ~pos:3 [ record "t3" ];
  Alcotest.(check int) "last sees max" 3 (Wal.last_position wal ~group);
  Alcotest.(check (option int)) "gap at 2" (Some 2) (Wal.first_gap wal ~group ~upto:3);
  Alcotest.(check (option int)) "no gap through 1" None (Wal.first_gap wal ~group ~upto:1);
  match Wal.apply wal ~group ~upto:3 with
  | Error (`Gap 2) -> ()
  | Error (`Gap n) -> Alcotest.failf "gap at %d" n
  | Ok () -> Alcotest.fail "apply skipped a gap"

let test_apply_and_read_data () =
  let wal = fresh () in
  Wal.append wal ~group ~pos:1 [ record "t1" ~writes:[ ("x", "a"); ("y", "b") ] ];
  Wal.append wal ~group ~pos:2 [ record "t2" ~writes:[ ("x", "c") ] ];
  Alcotest.(check int) "not applied yet" 0 (Wal.applied_position wal ~group);
  Alcotest.(check bool) "apply ok" true (Wal.apply wal ~group ~upto:2 = Ok ());
  Alcotest.(check int) "watermark" 2 (Wal.applied_position wal ~group);
  Alcotest.(check (option string)) "x at 1" (Some "a") (Wal.read_data wal ~group ~key:"x" ~at:1);
  Alcotest.(check (option string)) "x at 2" (Some "c") (Wal.read_data wal ~group ~key:"x" ~at:2);
  Alcotest.(check (option string)) "y at 2" (Some "b") (Wal.read_data wal ~group ~key:"y" ~at:2);
  Alcotest.(check (option string)) "unknown key" None (Wal.read_data wal ~group ~key:"z" ~at:2);
  Alcotest.(check (option int)) "version of x at 2" (Some 2) (Wal.data_version wal ~group ~key:"x" ~at:2);
  Alcotest.(check (option int)) "version of y at 2" (Some 1) (Wal.data_version wal ~group ~key:"y" ~at:2)

let test_apply_idempotent () =
  let wal = fresh () in
  Wal.append wal ~group ~pos:1 [ record "t1" ~writes:[ ("x", "a") ] ];
  Alcotest.(check bool) "first" true (Wal.apply wal ~group ~upto:1 = Ok ());
  Alcotest.(check bool) "second" true (Wal.apply wal ~group ~upto:1 = Ok ());
  Alcotest.(check (option string)) "value stable" (Some "a")
    (Wal.read_data wal ~group ~key:"x" ~at:1)

let test_combined_entry_order () =
  (* Within one combined entry, a later record's write to the same key
     wins — list order is the serial order (§5). *)
  let wal = fresh () in
  Wal.append wal ~group ~pos:1
    [ record "t1" ~writes:[ ("x", "first") ]; record "t2" ~writes:[ ("x", "second") ] ];
  Alcotest.(check bool) "apply" true (Wal.apply wal ~group ~upto:1 = Ok ());
  Alcotest.(check (option string)) "later record wins" (Some "second")
    (Wal.read_data wal ~group ~key:"x" ~at:1)

let test_dump_sorted () =
  let wal = fresh () in
  Wal.append wal ~group ~pos:2 [ record "t2" ];
  Wal.append wal ~group ~pos:1 [ record "t1" ];
  Wal.append wal ~group ~pos:3 [ record "t3" ];
  let positions = List.map fst (Wal.dump wal ~group) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] positions

let test_compaction () =
  let wal = fresh () in
  for pos = 1 to 5 do
    Wal.append wal ~group ~pos
      [ record (Printf.sprintf "t%d" pos) ~writes:[ ("x", string_of_int pos) ] ]
  done;
  (* Cannot compact unapplied entries. *)
  Alcotest.(check bool) "refuse unapplied" true
    (Wal.compact wal ~group ~upto:3 = Error `Not_applied);
  Alcotest.(check bool) "apply" true (Wal.apply wal ~group ~upto:5 = Ok ());
  Alcotest.(check bool) "compact" true (Wal.compact wal ~group ~upto:3 = Ok ());
  Alcotest.(check int) "compacted watermark" 3 (Wal.compacted_position wal ~group);
  Alcotest.(check bool) "entries gone" true (Wal.entry wal ~group ~pos:2 = None);
  Alcotest.(check bool) "later entries kept" true (Wal.entry wal ~group ~pos:4 <> None);
  (* Data reads still served from the versioned rows. *)
  Alcotest.(check (option string)) "historic read" (Some "2")
    (Wal.read_data wal ~group ~key:"x" ~at:2);
  Alcotest.(check int) "last position unchanged" 5 (Wal.last_position wal ~group);
  (* Apply after compaction starts past the compaction point. *)
  Wal.append wal ~group ~pos:6 [ record "t6" ~writes:[ ("x", "6") ] ];
  Alcotest.(check bool) "apply resumes" true (Wal.apply wal ~group ~upto:6 = Ok ());
  Alcotest.(check (option string)) "new value" (Some "6")
    (Wal.read_data wal ~group ~key:"x" ~at:6)

let test_snapshot_roundtrip () =
  let a = fresh () in
  Wal.append a ~group ~pos:1 [ record "t1" ~writes:[ ("x", "1"); ("y", "1") ] ];
  Wal.append a ~group ~pos:2 [ record "t2" ~rp:1 ~writes:[ ("x", "2") ] ];
  Alcotest.(check bool) "apply" true (Wal.apply a ~group ~upto:2 = Ok ());
  let applied, rows = Wal.snapshot a ~group in
  Alcotest.(check int) "applied" 2 applied;
  Alcotest.(check int) "two keys" 2 (List.length rows);
  (* Install into an empty replica. *)
  let b = fresh () in
  Wal.install_snapshot b ~group ~applied rows;
  Alcotest.(check int) "applied watermark" 2 (Wal.applied_position b ~group);
  Alcotest.(check int) "compacted below snapshot" 2 (Wal.compacted_position b ~group);
  Alcotest.(check (option string)) "x" (Some "2") (Wal.read_data b ~group ~key:"x" ~at:2);
  Alcotest.(check (option string)) "y" (Some "1") (Wal.read_data b ~group ~key:"y" ~at:2);
  (* Installing an older snapshot does not regress newer local data. *)
  Wal.append b ~group ~pos:3 [ record "t3" ~rp:2 ~writes:[ ("x", "3") ] ];
  Alcotest.(check bool) "apply 3" true (Wal.apply b ~group ~upto:3 = Ok ());
  Wal.install_snapshot b ~group ~applied rows;
  Alcotest.(check (option string)) "newer kept" (Some "3")
    (Wal.read_data b ~group ~key:"x" ~at:3)

let prop_install_snapshot =
  (* Snapshot installation is the one path that writes foreign state into
     a replica's store, so it carries three safety obligations: installing
     the same snapshot again changes nothing observable (the catch-up
     ladder may retry after a lost ack); a replica already at or past the
     snapshot keeps every newer local value and never regresses its
     watermarks; and a cold WAL reopened over the same store answers every
     accessor identically (nothing observable lives only in the caches). *)
  let open QCheck in
  let keys = [ "k1"; "k2"; "k3" ] in
  let key_gen = Gen.oneofl keys in
  let writes_gen =
    Gen.(list_size (1 -- 3) (pair key_gen (map string_of_int small_nat)))
  in
  let gen =
    Gen.(pair (list_size (1 -- 8) writes_gen) (list_size (0 -- 4) writes_gen))
  in
  let print =
    Print.(pair (list (list (pair string string))) (list (list (pair string string))))
  in
  Test.make ~name:"install_snapshot idempotent, never regresses, cold-reopen equal"
    ~count:150 (make ~print gen)
    (fun (src_entries, extra_entries) ->
      let append wal pos tag writes =
        Wal.append wal ~group ~pos [ record (Printf.sprintf "%s%d" tag pos) ~writes ]
      in
      let a = fresh () in
      List.iteri (fun i writes -> append a (i + 1) "s" writes) src_entries;
      let n = List.length src_entries in
      (match Wal.apply a ~group ~upto:n with Ok () -> () | Error _ -> assert false);
      let applied, rows = Wal.snapshot a ~group in
      let observe wal =
        let at = Wal.applied_position wal ~group in
        ( Wal.last_position wal ~group,
          at,
          Wal.compacted_position wal ~group,
          List.map (fun k -> Wal.read_data wal ~group ~key:k ~at) keys,
          List.map (fun k -> Wal.data_version wal ~group ~key:k ~at) keys )
      in
      (* Fresh replica: the intended catch-up path. *)
      let empty_store = Store.create () in
      let e = Wal.create empty_store in
      Wal.install_snapshot e ~group ~applied rows;
      let installed = observe e in
      let _, e_applied, e_compacted, e_values, _ = installed in
      if e_applied <> applied || e_compacted <> applied then
        Test.fail_reportf "watermarks not at snapshot: applied %d compacted %d"
          e_applied e_compacted;
      if e_values <> List.map (fun k -> Wal.read_data a ~group ~key:k ~at:applied) keys
      then Test.fail_reportf "installed values differ from source at %d" applied;
      Wal.install_snapshot e ~group ~applied rows;
      if observe e <> installed then
        Test.fail_reportf "re-install into fresh replica not idempotent";
      if Wal.coherent e <> Ok () then Test.fail_reportf "fresh replica incoherent";
      (* Replica already at or past the snapshot: same log prefix plus
         newer local entries, everything applied. *)
      let store = Store.create () in
      let b = Wal.create store in
      List.iteri (fun i writes -> append b (i + 1) "s" writes) src_entries;
      List.iteri (fun i writes -> append b (n + i + 1) "x" writes) extra_entries;
      let head = n + List.length extra_entries in
      (match Wal.apply b ~group ~upto:head with Ok () -> () | Error _ -> assert false);
      let before = observe b in
      Wal.install_snapshot b ~group ~applied rows;
      let after = observe b in
      let b_last, b_applied, b_compacted, b_values, b_versions = after in
      let l0, a0, c0, v0, ver0 = before in
      (* Newer local state survives: watermarks never regress (compaction
         may legitimately advance to the snapshot point), values and
         versions at the local head are untouched. *)
      if b_last <> l0 || b_applied <> a0 || b_compacted < c0 then
        Test.fail_reportf "watermarks regressed: last %d->%d applied %d->%d"
          l0 b_last a0 b_applied;
      if b_values <> v0 || b_versions <> ver0 then
        Test.fail_reportf "newer local data overwritten by older snapshot";
      Wal.install_snapshot b ~group ~applied rows;
      if observe b <> after then Test.fail_reportf "re-install not idempotent";
      if Wal.coherent b <> Ok () then Test.fail_reportf "replica incoherent";
      (* Cold reopen over both stores answers identically. *)
      let cold_equal wal store =
        let cold = Wal.create store in
        observe cold = observe wal
        && List.equal
             (fun (p, e) (p', e') -> p = p' && Txn.equal_entry e e')
             (Wal.dump cold ~group) (Wal.dump wal ~group)
      in
      cold_equal e empty_store && cold_equal b store)

let prop_apply_matches_sequential_replay =
  (* Applying entries through the WAL gives the same final values as a
     naive sequential replay into an association list. *)
  let open QCheck in
  let key_gen = Gen.oneofl [ "k1"; "k2"; "k3" ] in
  let writes_gen = Gen.(list_size (1 -- 3) (pair key_gen (map string_of_int small_nat))) in
  let entry_gen i =
    Gen.map
      (fun writes -> [ record (Printf.sprintf "t%d" i) ~writes ])
      writes_gen
  in
  Test.make ~name:"apply equals sequential replay" ~count:100
    (make
       Gen.(sized (fun n -> flatten_l (List.init (max 1 (min n 10)) entry_gen))))
    (fun entries ->
      let wal = fresh () in
      List.iteri (fun i e -> Wal.append wal ~group ~pos:(i + 1) e) entries;
      let n = List.length entries in
      (match Wal.apply wal ~group ~upto:n with Ok () -> () | Error _ -> assert false);
      let expected =
        List.fold_left
          (fun acc entry ->
            List.fold_left
              (fun acc (r : Txn.record) ->
                List.fold_left
                  (fun acc (w : Txn.write) ->
                    (w.key, w.value) :: List.remove_assoc w.key acc)
                  acc r.writes)
              acc entry)
          [] entries
      in
      List.for_all
        (fun (k, v) -> Wal.read_data wal ~group ~key:k ~at:n = Some v)
        expected)

let prop_cache_coherent_under_interleavings =
  (* The storage fast-path invariant: after any interleaving of WAL
     operations — including [invalidate], which models a process restart
     dropping the volatile caches — the decoded view equals a fresh decode
     of the durable store ([Wal.coherent]), and a cold WAL opened over the
     same store answers every accessor identically. Snapshots taken
     mid-stream are installed into a second replica whose caches must stay
     coherent too. *)
  let open QCheck in
  let op_gen =
    Gen.frequency
      [
        (5, Gen.return `Append);
        (1, Gen.return `Append_gap);
        (3, Gen.return `Apply);
        (2, Gen.return `Compact);
        (1, Gen.return `Snapshot);
        (2, Gen.return `Invalidate);
        (2, Gen.return `Read);
      ]
  in
  Test.make ~name:"caches coherent under random op interleavings" ~count:150
    (make
       ~print:(Print.list (function
         | `Append -> "append"
         | `Append_gap -> "append-gap"
         | `Apply -> "apply"
         | `Compact -> "compact"
         | `Snapshot -> "snapshot"
         | `Invalidate -> "invalidate"
         | `Read -> "read"))
       Gen.(list_size (1 -- 30) op_gen))
    (fun ops ->
      let store = Store.create () in
      let wal = Wal.create store in
      let replica = fresh () in
      let i = ref 0 in
      let append offset =
        let pos = Wal.last_position wal ~group + offset in
        Wal.append wal ~group ~pos
          [
            record
              (Printf.sprintf "t%d" !i)
              ~writes:[ ("k" ^ string_of_int (!i mod 3), string_of_int !i) ];
          ]
      in
      List.iter
        (fun op ->
          incr i;
          (match op with
          | `Append -> append 1
          | `Append_gap -> append 2
          | `Apply -> ignore (Wal.apply wal ~group ~upto:(Wal.last_position wal ~group))
          | `Compact ->
              ignore (Wal.compact wal ~group ~upto:(Wal.applied_position wal ~group))
          | `Snapshot ->
              let applied, rows = Wal.snapshot wal ~group in
              Wal.install_snapshot replica ~group ~applied rows
          | `Invalidate -> Wal.invalidate wal
          | `Read ->
              ignore
                (Wal.read_data wal ~group
                   ~key:("k" ^ string_of_int (!i mod 3))
                   ~at:(Wal.applied_position wal ~group)));
          match (Wal.coherent wal, Wal.coherent replica) with
          | Ok (), Ok () -> ()
          | Error e, _ | _, Error e ->
              Test.fail_reportf "incoherent after op %d: %s" !i e)
        ops;
      (* A cold WAL over the same durable store answers identically —
         nothing observable lives only in the caches. *)
      let cold = Wal.create store in
      let at = Wal.applied_position wal ~group in
      Wal.last_position cold ~group = Wal.last_position wal ~group
      && Wal.applied_position cold ~group = at
      && Wal.compacted_position cold ~group = Wal.compacted_position wal ~group
      && List.equal
           (fun (p, e) (p', e') -> p = p' && Txn.equal_entry e e')
           (Wal.dump cold ~group) (Wal.dump wal ~group)
      && List.for_all
           (fun k ->
             Wal.read_data cold ~group ~key:k ~at
             = Wal.read_data wal ~group ~key:k ~at)
           [ "k0"; "k1"; "k2" ])

let test_invalidate_rebuilds () =
  let store = Store.create () in
  let wal = Wal.create store in
  Wal.append wal ~group ~pos:1 [ record "t1" ~writes:[ ("x", "a") ] ];
  Wal.append wal ~group ~pos:2 [ record "t2" ~writes:[ ("x", "b") ] ];
  Alcotest.(check bool) "apply" true (Wal.apply wal ~group ~upto:2 = Ok ());
  Wal.invalidate wal;
  (* Everything is rebuilt lazily from the durable rows. *)
  Alcotest.(check int) "last survives" 2 (Wal.last_position wal ~group);
  Alcotest.(check int) "applied survives" 2 (Wal.applied_position wal ~group);
  Alcotest.(check (option string)) "data survives" (Some "b")
    (Wal.read_data wal ~group ~key:"x" ~at:2);
  (match Wal.entry wal ~group ~pos:1 with
  | Some e ->
      Alcotest.(check bool) "entry decodes" true
        (Txn.equal_entry e [ record "t1" ~writes:[ ("x", "a") ] ])
  | None -> Alcotest.fail "entry lost across invalidate");
  Alcotest.(check bool) "coherent" true (Wal.coherent wal = Ok ())

(* ------------------------------------------------------------------ *)
(* Crash recovery (PROTOCOL.md §7 steps 0–1) over an explicit-sync store. *)

let explicit () =
  let store = Store.create ~mode:Store.Sync_explicit () in
  (store, Wal.create store)

let mangle_checksum store key =
  (* Forge torn damage behind the WAL's back (callers must invalidate). *)
  let row = Store.row store ~key in
  match Mdds_kvstore.Row.versions row with
  | (ts, v) :: rest ->
      Mdds_kvstore.Row.restore row
        ((ts, ("#sum", "00000000") :: List.remove_assoc "#sum" v) :: rest)
  | [] -> Alcotest.failf "no versions to mangle at %s" key

let test_recover_reapplies_lazy_applies () =
  (* Appends sync (they are the commit point); data applies are lazy and
     ride the write buffer. A dirty crash loses the applies; [recover]
     re-derives them from the surviving log. *)
  let store, wal = explicit () in
  for pos = 1 to 3 do
    Wal.append wal ~group ~pos
      [ record (Printf.sprintf "t%d" pos) ~writes:[ ("x", string_of_int pos) ] ]
  done;
  Alcotest.(check bool) "apply" true (Wal.apply wal ~group ~upto:3 = Ok ());
  Alcotest.(check (option string)) "data visible" (Some "3")
    (Wal.read_data wal ~group ~key:"x" ~at:3);
  Store.crash store ~lose_unsynced:true;
  Wal.invalidate wal;
  let r = Wal.recover wal ~group in
  Alcotest.(check int) "nothing torn" 0 r.Wal.scrubbed;
  Alcotest.(check (option int)) "nothing truncated" None r.Wal.truncated;
  Alcotest.(check bool) "lazy applies re-derived" true (r.Wal.reapplied > 0);
  Alcotest.(check int) "log intact" 3 (Wal.last_position wal ~group);
  Alcotest.(check int) "applied watermark restored" 3 (Wal.applied_position wal ~group);
  Alcotest.(check (option string)) "data restored" (Some "3")
    (Wal.read_data wal ~group ~key:"x" ~at:3);
  Alcotest.(check bool) "durably coherent" true (Wal.durable_coherent wal ~group = Ok ());
  Alcotest.(check bool) "coherent" true (Wal.coherence wal ~group = Ok ())

let test_recover_truncates_torn_tail () =
  let store, wal = explicit () in
  for pos = 1 to 3 do
    Wal.append wal ~group ~pos
      [ record (Printf.sprintf "t%d" pos) ~writes:[ ("x", string_of_int pos) ] ]
  done;
  mangle_checksum store ("log/" ^ group ^ "/3");
  Wal.invalidate wal;
  let r = Wal.recover wal ~group in
  Alcotest.(check int) "torn version scrubbed" 1 r.Wal.scrubbed;
  Alcotest.(check (option int)) "log truncated at the tear" (Some 3) r.Wal.truncated;
  Alcotest.(check int) "last rewound" 2 (Wal.last_position wal ~group);
  Alcotest.(check bool) "torn entry gone" true (Wal.entry wal ~group ~pos:3 = None);
  Alcotest.(check (option string)) "valid prefix applied" (Some "2")
    (Wal.read_data wal ~group ~key:"x" ~at:2);
  Alcotest.(check bool) "durably coherent" true (Wal.durable_coherent wal ~group = Ok ());
  (* The truncated entry is gone for good locally: a re-learned copy can be
     re-appended without conflict (the recovery ladder's job). *)
  Wal.append wal ~group ~pos:3 [ record "t3" ~writes:[ ("x", "3") ] ];
  Alcotest.(check int) "re-learned entry re-enters" 3 (Wal.last_position wal ~group)

let test_durable_coherent_catches_skipped_recovery () =
  (* The deliberately-broken-recovery check: damage the durable tail but
     skip the recovery scan. The stale decoded view still claims entry 2,
     which the durable store can no longer produce — the oracle must say
     so (this is exactly what the chaos engine asserts after every
     fault). *)
  let store, wal = explicit () in
  Wal.append wal ~group ~pos:1 [ record "t1" ~writes:[ ("x", "1") ] ];
  Wal.append wal ~group ~pos:2 [ record "t2" ~writes:[ ("x", "2") ] ];
  mangle_checksum store ("log/" ^ group ^ "/2");
  (match Wal.durable_coherent wal ~group with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oracle blessed a view the durable store cannot re-produce");
  (* Running the real ladder repairs the disagreement. *)
  Wal.invalidate wal;
  ignore (Wal.recover wal ~group);
  Alcotest.(check bool) "coherent after real recovery" true
    (Wal.durable_coherent wal ~group = Ok ())

let prop_recover_preserves_synced_log =
  (* Appends are synced (they are the commit point), so no crash — dirty or
     torn, at any point in the workload — may lose one: after any
     interleaving of appends, lazy applies and crash/recover cycles, the
     final recovery rebuilds the complete log, a gap-free applied state and
     a durably-coherent view. *)
  let open QCheck in
  let op_gen =
    Gen.frequency
      [
        (5, Gen.return `Append);
        (3, Gen.return `Apply);
        (2, Gen.return `Dirty);
        (2, Gen.return `Torn);
        (1, Gen.return `Recover);
      ]
  in
  Test.make ~name:"recovery preserves every synced append" ~count:150
    (make
       ~print:(Print.list (function
         | `Append -> "append"
         | `Apply -> "apply"
         | `Dirty -> "dirty-crash"
         | `Torn -> "torn-crash"
         | `Recover -> "recover"))
       Gen.(list_size (1 -- 25) op_gen))
    (fun ops ->
      let store, wal = explicit () in
      let appended = ref 0 in
      let recover () =
        Wal.invalidate wal;
        ignore (Wal.recover wal ~group)
      in
      List.iter
        (fun op ->
          match op with
          | `Append ->
              incr appended;
              Wal.append wal ~group ~pos:!appended
                [
                  record
                    (Printf.sprintf "t%d" !appended)
                    ~writes:
                      [ ("k" ^ string_of_int (!appended mod 3), string_of_int !appended) ];
                ]
          | `Apply -> ignore (Wal.apply wal ~group ~upto:(Wal.last_position wal ~group))
          | `Dirty ->
              Store.crash store ~lose_unsynced:true;
              recover ()
          | `Torn ->
              Store.crash ~torn:true store ~lose_unsynced:true;
              recover ()
          | `Recover -> recover ())
        ops;
      recover ();
      Wal.last_position wal ~group = !appended
      && Wal.first_gap wal ~group ~upto:!appended = None
      && Wal.applied_position wal ~group = !appended
      && Wal.durable_coherent wal ~group = Ok ()
      && Wal.coherence wal ~group = Ok ())

let test_recover_noop_on_sync_always () =
  (* In the default mode the scan finds nothing — restart stays cheap. *)
  let wal = fresh () in
  Wal.append wal ~group ~pos:1 [ record "t1" ~writes:[ ("x", "1") ] ];
  Alcotest.(check bool) "apply" true (Wal.apply wal ~group ~upto:1 = Ok ());
  let r = Wal.recover wal ~group in
  Alcotest.(check int) "no scrub" 0 r.Wal.scrubbed;
  Alcotest.(check (option int)) "no truncation" None r.Wal.truncated;
  Alcotest.(check int) "no reapply needed" 0 r.Wal.reapplied

let () =
  Alcotest.run "wal"
    [
      ( "log",
        [
          Alcotest.test_case "append and read" `Quick test_append_and_read;
          Alcotest.test_case "conflicting append fails" `Quick test_append_conflict_fails;
          Alcotest.test_case "groups independent" `Quick test_groups_independent;
          Alcotest.test_case "gaps" `Quick test_gaps;
          Alcotest.test_case "dump sorted" `Quick test_dump_sorted;
        ] );
      ( "apply",
        [
          Alcotest.test_case "apply and read data" `Quick test_apply_and_read_data;
          Alcotest.test_case "idempotent" `Quick test_apply_idempotent;
          Alcotest.test_case "combined entry order" `Quick test_combined_entry_order;
          Alcotest.test_case "compaction" `Quick test_compaction;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_install_snapshot;
          QCheck_alcotest.to_alcotest prop_apply_matches_sequential_replay;
        ] );
      ( "cache",
        [
          Alcotest.test_case "invalidate rebuilds from store" `Quick
            test_invalidate_rebuilds;
          QCheck_alcotest.to_alcotest prop_cache_coherent_under_interleavings;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "lazy applies re-derived after dirty crash" `Quick
            test_recover_reapplies_lazy_applies;
          Alcotest.test_case "torn tail truncated" `Quick
            test_recover_truncates_torn_tail;
          Alcotest.test_case "skipped recovery caught by oracle" `Quick
            test_durable_coherent_catches_skipped_recovery;
          Alcotest.test_case "no-op on Sync_always" `Quick
            test_recover_noop_on_sync_always;
          QCheck_alcotest.to_alcotest prop_recover_preserves_synced_log;
        ] );
    ]
