(* Tests for the simulated network: topology presets, delivery semantics,
   fault injection, and the RPC layer. *)

module Engine = Mdds_sim.Engine
module Mailbox = Mdds_sim.Mailbox
module Topology = Mdds_net.Topology
module Network = Mdds_net.Network
module Rpc = Mdds_net.Rpc

(* ------------------------------------------------------------------ *)
(* Topology.                                                            *)

let test_topology_ec2 () =
  let t = Topology.ec2 "VVOC" in
  Alcotest.(check int) "size" 4 (Topology.size t);
  Alcotest.(check string) "names v1" "V1" (Topology.name t 0);
  Alcotest.(check string) "names v2" "V2" (Topology.name t 1);
  Alcotest.(check string) "names o" "O1" (Topology.name t 2);
  Alcotest.(check char) "region" 'C' (Topology.region t 3);
  let close a b = abs_float (a -. b) < 1e-9 in
  Alcotest.(check bool) "V-V rtt" true (close (Topology.rtt t 0 1) 0.0015);
  Alcotest.(check bool) "V-O rtt" true (close (Topology.rtt t 0 2) 0.090);
  Alcotest.(check bool) "V-C rtt" true (close (Topology.rtt t 1 3) 0.090);
  Alcotest.(check bool) "O-C rtt" true (close (Topology.rtt t 2 3) 0.020);
  Alcotest.(check bool) "loopback small" true (Topology.rtt t 0 0 < 0.001)

let test_topology_invalid () =
  Alcotest.check_raises "bad region" (Invalid_argument "Topology.ec2: regions are V, O, C")
    (fun () -> ignore (Topology.ec2 "VX"));
  Alcotest.check_raises "empty" (Invalid_argument "Topology.ec2: empty spec")
    (fun () -> ignore (Topology.ec2 ""))

let test_topology_uniform () =
  let t = Topology.uniform ~n:3 ~rtt:0.1 () in
  Alcotest.(check int) "size" 3 (Topology.size t);
  Alcotest.(check (float 1e-9)) "rtt" 0.1 (Topology.rtt t 0 2)

let prop_topology_sane =
  (* Any valid spec gives symmetric, positive RTTs and loopbacks cheaper
     than every cross-datacenter link. *)
  QCheck.Test.make ~name:"ec2 topologies are symmetric and positive" ~count:100
    QCheck.(string_gen_of_size Gen.(1 -- 6) (Gen.oneofl [ 'V'; 'O'; 'C' ]))
    (fun spec ->
      QCheck.assume (String.length spec > 0);
      let t = Topology.ec2 spec in
      let n = Topology.size t in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let rtt = Topology.rtt t i j in
          if rtt <= 0.0 then ok := false;
          if abs_float (rtt -. Topology.rtt t j i) > 1e-12 then ok := false;
          if i <> j && Topology.rtt t i i >= rtt then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Network.                                                             *)

let make_net ?(spec = "VVV") ?(loss = 0.0) ?(seed = 1) () =
  let engine = Engine.create ~seed () in
  let net : string Network.t = Network.create engine (Topology.ec2 ~loss ~jitter:0.1 spec) in
  (engine, net)

let test_delivery_and_latency () =
  let engine, net = make_net () in
  let box = Network.endpoint net ~node:1 ~port:"svc" in
  let got = ref None in
  Engine.spawn engine (fun () ->
      let msg = Mailbox.recv box in
      got := Some (msg, Engine.now engine));
  Network.send net ~src:0 ~dst:1 ~port:"svc" "hello";
  Engine.run engine;
  match !got with
  | Some ("hello", t) ->
      (* One-way V-V delay: 0.75ms +/- 10% jitter. *)
      if t < 0.000675 || t > 0.000825 then Alcotest.failf "delay out of bounds: %f" t
  | _ -> Alcotest.fail "not delivered"

let test_loss_rate () =
  let engine, net = make_net ~loss:0.5 ~seed:3 () in
  let box = Network.endpoint net ~node:1 ~port:"p" in
  let n = 2000 in
  for i = 1 to n do
    Network.send net ~src:0 ~dst:1 ~port:"p" (string_of_int i)
  done;
  Engine.run engine;
  let delivered = Mailbox.length box in
  let p = float_of_int delivered /. float_of_int n in
  if p < 0.44 || p > 0.56 then Alcotest.failf "loss 0.5 delivered %f" p;
  let stats = Network.stats net in
  Alcotest.(check int) "sent counted" n stats.Network.sent;
  Alcotest.(check int) "delivered+dropped = sent" n
    (stats.Network.delivered + stats.Network.dropped_loss)

let test_down_drops () =
  let engine, net = make_net () in
  let box = Network.endpoint net ~node:1 ~port:"p" in
  Mailbox.push box "stale";
  Network.set_down net 1;
  Alcotest.(check int) "mailboxes flushed on outage" 0 (Mailbox.length box);
  Alcotest.(check bool) "is_down" true (Network.is_down net 1);
  Network.send net ~src:0 ~dst:1 ~port:"p" "lost";
  Network.send net ~src:1 ~dst:0 ~port:"p" "also lost";
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (Mailbox.length box);
  Alcotest.(check int) "drop accounting" 2 (Network.stats net).Network.dropped_down;
  Network.set_up net 1;
  Network.send net ~src:0 ~dst:1 ~port:"p" "after" ;
  Engine.run engine;
  Alcotest.(check int) "delivery resumes" 1 (Mailbox.length box)

let test_down_during_flight () =
  (* A message in flight when the destination fails is lost. *)
  let engine, net = make_net ~spec:"VOV" () in
  let box = Network.endpoint net ~node:1 ~port:"p" in
  Network.send net ~src:0 ~dst:1 ~port:"p" "doomed";
  (* V->O one-way is ~45ms; fail the destination at 1ms. *)
  Engine.schedule engine ~at:0.001 (fun () -> Network.set_down net 1);
  Engine.run engine;
  Alcotest.(check int) "dropped at delivery" 0 (Mailbox.length box)

let test_partition_and_heal () =
  let engine, net = make_net ~spec:"VVVVV" () in
  Network.partition net [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  let box2 = Network.endpoint net ~node:2 ~port:"p" in
  let box1 = Network.endpoint net ~node:1 ~port:"p" in
  Network.send net ~src:0 ~dst:2 ~port:"p" "cross";
  Network.send net ~src:0 ~dst:1 ~port:"p" "same-side";
  Engine.run engine;
  Alcotest.(check int) "cross-partition dropped" 0 (Mailbox.length box2);
  Alcotest.(check int) "same side delivered" 1 (Mailbox.length box1);
  Alcotest.(check int) "cut accounting" 1 (Network.stats net).Network.dropped_cut;
  Network.heal net;
  Network.send net ~src:0 ~dst:2 ~port:"p" "healed";
  Engine.run engine;
  Alcotest.(check int) "after heal" 1 (Mailbox.length box2)

let test_partition_singleton_default () =
  (* A node listed in no group is isolated. *)
  let engine, net = make_net ~spec:"VVV" () in
  Network.partition net [ [ 0; 1 ] ];
  let box2 = Network.endpoint net ~node:2 ~port:"p" in
  Network.send net ~src:0 ~dst:2 ~port:"p" "x";
  Network.send net ~src:2 ~dst:0 ~port:"p" "y";
  Engine.run engine;
  Alcotest.(check int) "isolated" 0 (Mailbox.length box2);
  Alcotest.(check int) "both dropped" 2 (Network.stats net).Network.dropped_cut

(* ------------------------------------------------------------------ *)
(* Gray failures.                                                       *)

let test_oneway_cut_asymmetric () =
  let engine, net = make_net () in
  let box0 = Network.endpoint net ~node:0 ~port:"p" in
  let box1 = Network.endpoint net ~node:1 ~port:"p" in
  Network.cut_oneway net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 ~port:"p" "blocked";
  Network.send net ~src:1 ~dst:0 ~port:"p" "flows";
  Engine.run engine;
  Alcotest.(check int) "cut direction dropped" 0 (Mailbox.length box1);
  Alcotest.(check int) "reverse direction delivered" 1 (Mailbox.length box0);
  Alcotest.(check int) "oneway accounting" 1
    (Network.stats net).Network.dropped_oneway;
  Network.heal_oneway net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 ~port:"p" "after-heal";
  Engine.run engine;
  Alcotest.(check int) "healed" 1 (Mailbox.length box1)

let test_oneway_cut_in_flight () =
  (* A message in flight when the directed cut lands is dropped at
     delivery time, like outages and partitions. *)
  let engine, net = make_net ~spec:"VOV" () in
  let box1 = Network.endpoint net ~node:1 ~port:"p" in
  Network.send net ~src:0 ~dst:1 ~port:"p" "doomed";
  Engine.schedule engine ~at:0.001 (fun () -> Network.cut_oneway net ~src:0 ~dst:1);
  Engine.run engine;
  Alcotest.(check int) "dropped at delivery" 0 (Mailbox.length box1);
  Alcotest.(check int) "counted" 1 (Network.stats net).Network.dropped_oneway

let test_duplication () =
  let engine, net = make_net () in
  let box1 = Network.endpoint net ~node:1 ~port:"p" in
  Network.set_duplication net ~src:0 ~dst:1 1.0;
  Network.send net ~src:0 ~dst:1 ~port:"p" "twice";
  Engine.run engine;
  Alcotest.(check int) "delivered twice" 2 (Mailbox.length box1);
  Alcotest.(check int) "duplicated counter" 1 (Network.stats net).Network.duplicated;
  Network.clear_duplication net;
  Network.send net ~src:0 ~dst:1 ~port:"p" "once";
  Engine.run engine;
  Alcotest.(check int) "cleared: single delivery" 3 (Mailbox.length box1)

let test_slowdown_delays () =
  let engine, net = make_net () in
  let box1 = Network.endpoint net ~node:1 ~port:"p" in
  let normal = ref 0.0 and slowed = ref 0.0 in
  Engine.spawn engine (fun () ->
      ignore (Mailbox.recv box1);
      normal := Engine.now engine;
      ignore (Mailbox.recv box1);
      slowed := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ~port:"p" "baseline";
  Engine.run engine;
  let baseline = !normal in
  Network.set_slowdown net 1 4.0;
  let sent_at = Engine.now engine in
  Network.send net ~src:0 ~dst:1 ~port:"p" "slow";
  Engine.run engine;
  let slow_delay = !slowed -. sent_at in
  (* Jitter is +/-10%, so a 4x multiplier is well outside noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "slowdown multiplies delay (%.6f vs %.6f)" slow_delay baseline)
    true
    (slow_delay > 3.0 *. baseline);
  Network.clear_slowdown net 1;
  Alcotest.check_raises "factor < 1 rejected"
    (Invalid_argument "Network.set_slowdown: factor < 1") (fun () ->
      Network.set_slowdown net 1 0.5)

let test_flap_phases () =
  (* A flapping link is a square wave anchored at injection: up for the
     first half-period, down for the second. *)
  let engine, net = make_net () in
  let box1 = Network.endpoint net ~node:1 ~port:"p" in
  Engine.schedule engine ~at:1.0 (fun () ->
      Network.flap_link net ~src:0 ~dst:1 ~period:1.0);
  (* t=1.2: up phase (1.0..1.5). t=1.7: down phase (1.5..2.0). t=2.1: up
     again. The V-V delay (<1ms) keeps each send inside its phase. *)
  Engine.schedule engine ~at:1.2 (fun () ->
      Network.send net ~src:0 ~dst:1 ~port:"p" "up-1");
  Engine.schedule engine ~at:1.7 (fun () ->
      Network.send net ~src:0 ~dst:1 ~port:"p" "down");
  Engine.schedule engine ~at:2.1 (fun () ->
      Network.send net ~src:0 ~dst:1 ~port:"p" "up-2");
  Engine.run engine;
  Alcotest.(check int) "up phases delivered, down phase dropped" 2
    (Mailbox.length box1);
  Alcotest.(check int) "flap drop counted as oneway" 1
    (Network.stats net).Network.dropped_oneway;
  Network.clear_flap net ~src:0 ~dst:1;
  Engine.schedule engine ~at:2.7 (fun () ->
      (* Would be a down phase (2.5..3.0) were the flap still active. *)
      Network.send net ~src:0 ~dst:1 ~port:"p" "cleared");
  Engine.run engine;
  Alcotest.(check int) "cleared flap delivers" 3 (Mailbox.length box1)

(* ------------------------------------------------------------------ *)
(* RPC.                                                                 *)

let make_rpc ?(spec = "VVV") ?(loss = 0.0) ?(seed = 1) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine (Topology.ec2 ~loss spec) in
  let rpc : (string, string) Rpc.t = Rpc.create net in
  (engine, net, rpc)

let echo_server ?processing rpc ~node =
  Rpc.serve rpc ~node ?processing (fun ~src req ->
      Printf.sprintf "%s-by-%d-from-%d" req node src)

let test_rpc_call () =
  let engine, _net, rpc = make_rpc () in
  echo_server rpc ~node:1;
  let got = ref None in
  Engine.spawn engine (fun () ->
      got := Rpc.call rpc ~src:0 ~dst:1 ~timeout:1.0 "ping");
  Engine.run engine;
  Alcotest.(check (option string)) "reply" (Some "ping-by-1-from-0") !got

let test_rpc_timeout () =
  let engine, net, rpc = make_rpc () in
  echo_server rpc ~node:1;
  Network.set_down net 1;
  let got = ref (Some "sentinel") and finished = ref 0.0 in
  Engine.spawn engine (fun () ->
      got := Rpc.call rpc ~src:0 ~dst:1 ~timeout:0.5 "ping";
      finished := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (option string)) "timed out" None !got;
  Alcotest.(check (float 1e-9)) "after timeout" 0.5 !finished

let test_rpc_broadcast_all () =
  let engine, _net, rpc = make_rpc ~spec:"VVVVV" () in
  for node = 0 to 4 do
    echo_server rpc ~node
  done;
  let got = ref [] in
  Engine.spawn engine (fun () ->
      got := Rpc.broadcast rpc ~src:0 ~dsts:[ 0; 1; 2; 3; 4 ] ~timeout:1.0 "m");
  Engine.run engine;
  Alcotest.(check int) "all replied" 5 (List.length !got);
  let dsts = List.map fst !got in
  Alcotest.(check (list int)) "each exactly once" [ 0; 1; 2; 3; 4 ]
    (List.sort compare dsts)

let test_rpc_broadcast_quorum_early () =
  (* With one far datacenter, a majority predicate returns before the far
     response arrives. *)
  let engine, _net, rpc = make_rpc ~spec:"VVO" () in
  for node = 0 to 2 do
    echo_server rpc ~node
  done;
  let got = ref [] and finished = ref 0.0 in
  Engine.spawn engine (fun () ->
      got :=
        Rpc.broadcast rpc ~src:0 ~dsts:[ 0; 1; 2 ] ~timeout:1.0
          ~enough:(fun rs -> List.length rs >= 2)
          "m";
      finished := Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "quorum only" 2 (List.length !got);
  Alcotest.(check bool) "before far reply" true (!finished < 0.045)

let test_rpc_broadcast_linger () =
  (* Linger keeps collecting: the two V zones answer ~together, the third
     arrives within the linger window. *)
  let engine, _net, rpc = make_rpc ~spec:"VVV" () in
  for node = 0 to 2 do
    echo_server rpc ~node
  done;
  let got = ref [] in
  Engine.spawn engine (fun () ->
      got :=
        Rpc.broadcast rpc ~src:0 ~dsts:[ 0; 1; 2 ] ~timeout:1.0 ~linger:0.05
          ~enough:(fun rs -> List.length rs >= 2)
          "m");
  Engine.run engine;
  Alcotest.(check int) "linger collected all" 3 (List.length !got)

let test_rpc_broadcast_timeout_partial () =
  let engine, net, rpc = make_rpc ~spec:"VVV" () in
  for node = 0 to 2 do
    echo_server rpc ~node
  done;
  Network.set_down net 2;
  let got = ref [] in
  Engine.spawn engine (fun () ->
      got := Rpc.broadcast rpc ~src:0 ~dsts:[ 0; 1; 2 ] ~timeout:0.2 "m");
  Engine.run engine;
  Alcotest.(check int) "partial" 2 (List.length !got)

let test_rpc_notify () =
  let engine, _net, rpc = make_rpc () in
  let seen = ref [] in
  Rpc.serve rpc ~node:1 (fun ~src:_ req ->
      seen := req :: !seen;
      "ignored-reply");
  Engine.spawn engine (fun () -> Rpc.notify rpc ~src:0 ~dst:1 "oneway");
  Engine.run engine;
  Alcotest.(check (list string)) "handled" [ "oneway" ] !seen

let test_rpc_concurrent_handlers () =
  (* A slow handler must not block other requests (stateless service
     processes: one per request). *)
  let engine, _net, rpc = make_rpc () in
  Rpc.serve rpc ~node:1 (fun ~src:_ req ->
      if req = "slow" then Engine.sleep 1.0;
      req);
  let order = ref [] in
  Engine.spawn engine (fun () ->
      ignore (Rpc.call rpc ~src:0 ~dst:1 ~timeout:5.0 "slow");
      order := "slow" :: !order);
  Engine.spawn engine (fun () ->
      Engine.sleep 0.01;
      ignore (Rpc.call rpc ~src:0 ~dst:1 ~timeout:5.0 "fast");
      order := "fast" :: !order);
  Engine.run engine;
  Alcotest.(check (list string)) "fast overtakes slow" [ "slow"; "fast" ] !order

let test_rpc_lossy_statistics () =
  (* Under heavy loss, calls may fail but never mis-deliver. *)
  let engine, _net, rpc = make_rpc ~loss:0.3 ~seed:5 () in
  echo_server rpc ~node:1;
  echo_server rpc ~node:2;
  let ok = ref 0 and bad = ref 0 and none = ref 0 in
  Engine.spawn engine (fun () ->
      for i = 1 to 200 do
        let dst = 1 + (i mod 2) in
        match Rpc.call rpc ~src:0 ~dst ~timeout:0.1 (string_of_int i) with
        | Some reply ->
            if reply = Printf.sprintf "%d-by-%d-from-0" i dst then incr ok
            else incr bad
        | None -> incr none
      done);
  Engine.run engine;
  Alcotest.(check int) "no mismatched replies" 0 !bad;
  Alcotest.(check bool) "some succeed" true (!ok > 50);
  Alcotest.(check bool) "some lost" true (!none > 10)

let test_rpc_timer_cancellation_bounds_heap () =
  (* Regression: a completed call or broadcast must cancel its timeout
     timers. With a long timeout and many sequential operations, the event
     heap would otherwise carry one live timer per past call, and a
     long-lived service (the chaos soak, the figure sweeps) would leak
     heap slots for the whole timeout window. *)
  let engine, _net, rpc = make_rpc () in
  for node = 0 to 2 do
    echo_server rpc ~node
  done;
  let worst = ref 0 in
  Engine.spawn engine (fun () ->
      for i = 1 to 200 do
        ignore (Rpc.call rpc ~src:0 ~dst:1 ~timeout:3600.0 (string_of_int i));
        ignore (Rpc.broadcast rpc ~src:0 ~dsts:[ 0; 1; 2 ] ~timeout:3600.0 "b");
        worst := max !worst (Engine.pending engine)
      done);
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "pending stays bounded (worst %d)" !worst)
    true (!worst < 50);
  Alcotest.(check int) "all timers accounted for at quiescence" 0
    (Engine.pending engine)

let test_rpc_late_response_dropped () =
  (* A reply arriving after its call timed out must not be delivered to a
     later call (no id confusion). *)
  let engine, _net, rpc = make_rpc ~spec:"VOV" () in
  (* Server at the far datacenter: one-way ~45ms, so a 10ms timeout always
     expires first; then a fast local call must get its own answer. *)
  echo_server rpc ~node:1;
  echo_server rpc ~node:2;
  let first = ref (Some "sentinel") and second = ref None in
  Engine.spawn engine (fun () ->
      first := Rpc.call rpc ~src:0 ~dst:1 ~timeout:0.01 "slowpoke";
      second := Rpc.call rpc ~src:0 ~dst:2 ~timeout:1.0 "quick");
  Engine.run engine;
  Alcotest.(check (option string)) "first timed out" None !first;
  Alcotest.(check (option string)) "second correct" (Some "quick-by-2-from-0") !second

let test_rpc_duplicate_reply_dropped () =
  (* Regression for the "late or duplicate reply: drop" branch: a
     duplicated response must resolve its pending call exactly once,
     never confuse a later call, and never leak a waiter or timer. *)
  let engine, net, rpc = make_rpc () in
  echo_server rpc ~node:1;
  (* Duplicate every reply on the 1 -> 0 direction; requests (0 -> 1)
     are untouched. *)
  Network.set_duplication net ~src:1 ~dst:0 1.0;
  let first = ref None and second = ref None in
  Engine.spawn engine (fun () ->
      first := Rpc.call rpc ~src:0 ~dst:1 ~timeout:1.0 "a";
      second := Rpc.call rpc ~src:0 ~dst:1 ~timeout:1.0 "b");
  Engine.run engine;
  Alcotest.(check (option string)) "first resolves once, correctly"
    (Some "a-by-1-from-0") !first;
  Alcotest.(check (option string)) "duplicate does not bleed into next call"
    (Some "b-by-1-from-0") !second;
  Alcotest.(check bool) "replies were duplicated" true
    ((Network.stats net).Network.duplicated >= 2);
  Alcotest.(check int) "no leaked waiters or timers" 0 (Engine.pending engine)

let test_rpc_broadcast_duplicate_replies () =
  (* Under total duplication (requests and replies both delivered twice)
     a broadcast still counts each destination once and invokes the RTT
     observer exactly once per counted reply. *)
  let engine, net, rpc = make_rpc ~spec:"VVV" () in
  for node = 0 to 2 do
    echo_server rpc ~node
  done;
  Network.set_duplication_all net 1.0;
  let observed = ref [] and got = ref [] in
  Engine.spawn engine (fun () ->
      got :=
        Rpc.broadcast rpc ~src:0 ~dsts:[ 0; 1; 2 ] ~timeout:1.0
          ~observe:(fun ~dst ~rtt:_ -> observed := dst :: !observed)
          "m");
  Engine.run engine;
  Alcotest.(check (list int)) "each destination counted once" [ 0; 1; 2 ]
    (List.sort compare (List.map fst !got));
  Alcotest.(check (list int)) "observer fired once per counted reply"
    [ 0; 1; 2 ]
    (List.sort compare !observed);
  Alcotest.(check bool) "duplicates happened" true
    ((Network.stats net).Network.duplicated > 0);
  Alcotest.(check int) "quiescent heap" 0 (Engine.pending engine)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "ec2 preset" `Quick test_topology_ec2;
          Alcotest.test_case "invalid specs" `Quick test_topology_invalid;
          Alcotest.test_case "uniform" `Quick test_topology_uniform;
          QCheck_alcotest.to_alcotest prop_topology_sane;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
          Alcotest.test_case "loss rate" `Quick test_loss_rate;
          Alcotest.test_case "outage drops" `Quick test_down_drops;
          Alcotest.test_case "outage during flight" `Quick test_down_during_flight;
          Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
          Alcotest.test_case "partition singleton" `Quick test_partition_singleton_default;
        ] );
      ( "gray failures",
        [
          Alcotest.test_case "one-way cut is asymmetric" `Quick test_oneway_cut_asymmetric;
          Alcotest.test_case "one-way cut during flight" `Quick test_oneway_cut_in_flight;
          Alcotest.test_case "duplicate delivery" `Quick test_duplication;
          Alcotest.test_case "slow node multiplies delay" `Quick test_slowdown_delays;
          Alcotest.test_case "flapping link phases" `Quick test_flap_phases;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "call" `Quick test_rpc_call;
          Alcotest.test_case "timeout" `Quick test_rpc_timeout;
          Alcotest.test_case "broadcast all" `Quick test_rpc_broadcast_all;
          Alcotest.test_case "broadcast quorum early exit" `Quick test_rpc_broadcast_quorum_early;
          Alcotest.test_case "broadcast linger" `Quick test_rpc_broadcast_linger;
          Alcotest.test_case "broadcast partial on timeout" `Quick test_rpc_broadcast_timeout_partial;
          Alcotest.test_case "notify one-way" `Quick test_rpc_notify;
          Alcotest.test_case "concurrent handlers" `Quick test_rpc_concurrent_handlers;
          Alcotest.test_case "lossy calls stay correct" `Quick test_rpc_lossy_statistics;
          Alcotest.test_case "late responses dropped" `Quick test_rpc_late_response_dropped;
          Alcotest.test_case "completed calls cancel their timers" `Quick
            test_rpc_timer_cancellation_bounds_heap;
          Alcotest.test_case "duplicate replies dropped" `Quick
            test_rpc_duplicate_reply_dropped;
          Alcotest.test_case "broadcast under total duplication" `Quick
            test_rpc_broadcast_duplicate_replies;
        ] );
    ]
