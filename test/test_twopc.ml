(* Tests for the multi-shot cross-group atomic commit (PROTOCOL.md §10):
   the marker-record codec, the client-side protocol, atomicity under a
   mid-commit fault, and the cross-group oracle. *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Service = Mdds_core.Service
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Twopc = Mdds_core.Twopc
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Wal = Mdds_wal.Wal
module Txn = Mdds_types.Txn
module Ycsb = Mdds_workload.Ycsb

let make ?(seed = 42) ?(spec = "VVV") ?(config = Config.leader) () =
  Cluster.create ~seed ~config (Topology.ec2 spec)

let committed = function
  | Audit.Committed _ | Audit.Read_only_committed -> true
  | Audit.Aborted _ | Audit.Unknown -> false

(* Read [key] in [group] through a fresh single-group transaction. *)
let read_now cluster ~group key =
  let client = Cluster.client cluster ~dc:0 in
  let txn = Client.begin_ client ~group in
  let v = Client.read txn key in
  ignore (Client.commit txn);
  v

(* ------------------------------------------------------------------ *)
(* Marker codec.                                                        *)

let test_marker_codec () =
  let payload =
    {
      Twopc.coordinator = "a";
      participants = [ "a"; "b" ];
      writes = [ ("x", "1"); ("y", "2") ];
    }
  in
  let prep =
    Twopc.prepare_record ~txid:"t1" ~origin:0 ~read_position:3
      ~reads:[ "x"; "y" ] ~payload
  in
  (match Twopc.classify prep with
  | Twopc.Prepare { txid = "t1"; payload = p } ->
      Alcotest.(check string) "coordinator" "a" p.Twopc.coordinator;
      Alcotest.(check (list string)) "participants" [ "a"; "b" ] p.Twopc.participants;
      Alcotest.(check (list (pair string string))) "writes" payload.Twopc.writes p.Twopc.writes
  | _ -> Alcotest.fail "prepare did not classify");
  let out =
    Twopc.outcome_record ~txid:"t1" ~tag:"cli" ~origin:0 ~prepare_position:3
      ~verdict:Twopc.commit_verdict ~writes:[ ("x", "1") ]
  in
  (match Twopc.classify out with
  | Twopc.Outcome { txid = "t1"; verdict } ->
      Alcotest.(check string) "verdict" Twopc.commit_verdict verdict
  | _ -> Alcotest.fail "outcome did not classify");
  Alcotest.(check string) "outcome id tagged" "t1/o@cli" out.Txn.txn_id;
  let dec =
    Twopc.decision_record ~txid:"t1" ~tag:"dc2" ~origin:2
      ~verdict:Twopc.abort_verdict
  in
  (match Twopc.classify dec with
  | Twopc.Decision { txid = "t1"; verdict } ->
      Alcotest.(check string) "abort verdict" Twopc.abort_verdict verdict
  | _ -> Alcotest.fail "decision did not classify");
  let plain =
    Txn.make_record ~txn_id:"t2" ~origin:0 ~read_position:0 ~reads:[]
      ~writes:[ { Txn.key = "x"; value = "v" } ]
  in
  Alcotest.(check bool) "plain stays plain" true (Twopc.classify plain = Twopc.Plain);
  Alcotest.(check bool) "plain is no marker" false (Twopc.is_marker plain);
  let ag = Twopc.audit_group [ "a"; "b" ] in
  Alcotest.(check string) "audit group" "cross:a+b" ag;
  Alcotest.(check bool) "audit group detected" true (Twopc.is_audit_group ag);
  Alcotest.(check bool) "real group is not" false (Twopc.is_audit_group "a")

(* ------------------------------------------------------------------ *)
(* Happy path.                                                          *)

let test_cross_commit_atomic () =
  let cluster = make () in
  let client = Cluster.client cluster ~dc:0 in
  let outcome = ref Audit.Unknown in
  Cluster.spawn cluster (fun () ->
      let m = Client.begin_multi client ~groups:[ "b"; "a"; "b" ] in
      ignore (Client.read_in m ~group:"a" "x");
      Client.write_in m ~group:"a" "x" "from-cross";
      Client.write_in m ~group:"b" "y" "from-cross";
      outcome := Client.commit_multi m);
  Cluster.run cluster;
  Alcotest.(check bool) "committed" true (committed !outcome);
  (* Both groups apply the buffered writes, visible to ordinary reads. *)
  Cluster.spawn cluster (fun () ->
      Alcotest.(check (option string)) "x in a" (Some "from-cross")
        (read_now cluster ~group:"a" "x");
      Alcotest.(check (option string)) "y in b" (Some "from-cross")
        (read_now cluster ~group:"b" "y"));
  Cluster.run cluster;
  Verify.check_exn cluster ~group:"a";
  Verify.check_exn cluster ~group:"b";
  Verify.check_cross_exn cluster ~groups:[ "a"; "b" ]

let test_single_group_multi_delegates () =
  (* One group: commit_multi is an ordinary single-group commit — no
     marker records anywhere in the log. *)
  let cluster = make () in
  let client = Cluster.client cluster ~dc:0 in
  let outcome = ref Audit.Unknown in
  Cluster.spawn cluster (fun () ->
      let m = Client.begin_multi client ~groups:[ "g"; "g" ] in
      Client.write_in m ~group:"g" "x" "solo";
      outcome := Client.commit_multi m);
  Cluster.run cluster;
  (match !outcome with
  | Audit.Committed _ -> ()
  | _ -> Alcotest.fail "single-group mtxn did not commit");
  let wal = Service.wal (Cluster.service cluster 0) in
  List.iter
    (fun (_, entry) ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "no markers" false (Twopc.is_marker r))
        entry)
    (Wal.dump wal ~group:"g");
  Verify.check_exn cluster ~group:"g"

let test_read_only_cross () =
  let cluster = make () in
  let client = Cluster.client cluster ~dc:0 in
  let outcome = ref Audit.Unknown in
  Cluster.spawn cluster (fun () ->
      let m = Client.begin_multi client ~groups:[ "a"; "b" ] in
      ignore (Client.read_in m ~group:"a" "x");
      ignore (Client.read_in m ~group:"b" "y");
      outcome := Client.commit_multi m);
  Cluster.run cluster;
  Alcotest.(check bool) "read-only committed" true
    (!outcome = Audit.Read_only_committed);
  Verify.check_cross_exn cluster ~groups:[ "a"; "b" ]

(* ------------------------------------------------------------------ *)
(* Conflict: presumed abort leaves no trace.                            *)

let test_cross_conflict_aborts_atomically () =
  let cluster = make () in
  let outcome = ref Audit.Unknown in
  let cross_client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let m = Client.begin_multi cross_client ~groups:[ "a"; "b" ] in
      ignore (Client.read_in m ~group:"a" "k");
      Client.write_in m ~group:"a" "k" "cross";
      Client.write_in m ~group:"b" "y" "cross";
      (* Park long enough for the interfering writer to commit, making
         the pinned read position stale. *)
      Engine.sleep 2.0;
      outcome := Client.commit_multi m);
  Cluster.spawn ~at:0.1 cluster (fun () ->
      let client = Cluster.client cluster ~dc:1 in
      let txn = Client.begin_ client ~group:"a" in
      ignore (Client.read txn "k");
      Client.write txn "k" "winner";
      match Client.commit txn with
      | Audit.Committed _ -> ()
      | _ -> Alcotest.fail "interfering writer failed to commit");
  Cluster.run cluster;
  (match !outcome with
  | Audit.Aborted { reason = Audit.Conflict; _ } -> ()
  | _ -> Alcotest.fail "stale cross transaction did not abort with Conflict");
  (* Atomic: the first prepare was rejected, so NOTHING reached group b. *)
  Cluster.spawn cluster (fun () ->
      Alcotest.(check (option string)) "b untouched" None
        (read_now cluster ~group:"b" "y");
      Alcotest.(check (option string)) "a kept the winner" (Some "winner")
        (read_now cluster ~group:"a" "k"));
  Cluster.run cluster;
  Verify.check_exn cluster ~group:"a";
  Verify.check_exn cluster ~group:"b";
  Verify.check_cross_exn cluster ~groups:[ "a"; "b" ]

(* ------------------------------------------------------------------ *)
(* Mid-commit fault: the window the protocol exists for.                *)

let test_mid_commit_restart_atomic () =
  (* Restart the coordinator's datacenter the instant the first prepare
     marker crosses it (the chaos mid-2pc trap, used surgically). The
     client may report commit, abort or unknown — but both groups must
     end in the same state and every oracle must hold. *)
  let cluster = make () in
  Service.arm_2pc_trap (Cluster.service cluster 0) (fun () ->
      Cluster.restart cluster 0);
  let client = Cluster.client cluster ~dc:1 in
  let outcome = ref Audit.Unknown in
  Cluster.spawn cluster (fun () ->
      let m = Client.begin_multi client ~groups:[ "a"; "b" ] in
      ignore (Client.read_in m ~group:"a" "x");
      Client.write_in m ~group:"a" "x" "cross";
      Client.write_in m ~group:"b" "y" "cross";
      outcome := Client.commit_multi m);
  Cluster.run cluster;
  (* Drain: in-doubt resolvers may still be settling leftovers. *)
  let x = ref None and y = ref None in
  Cluster.spawn cluster (fun () ->
      x := read_now cluster ~group:"a" "x";
      y := read_now cluster ~group:"b" "y");
  Cluster.run cluster;
  (* All-or-nothing across groups, whatever the fault did. *)
  Alcotest.(check bool) "atomic across groups" true
    ((!x = Some "cross" && !y = Some "cross") || (!x = None && !y = None));
  (* A client-visible Committed/Aborted must match the data. *)
  (match !outcome with
  | Audit.Committed _ | Audit.Read_only_committed ->
      Alcotest.(check bool) "reported commit took effect" true (!x = Some "cross")
  | Audit.Aborted _ ->
      Alcotest.(check bool) "reported abort left no trace" true (!x = None)
  | Audit.Unknown -> ());
  Verify.check_exn cluster ~group:"a";
  Verify.check_exn cluster ~group:"b";
  Verify.check_cross_exn cluster ~groups:[ "a"; "b" ]

(* ------------------------------------------------------------------ *)
(* Workload integration: mixed single/cross under the full oracle.      *)

let test_workload_mix_verifies () =
  let cluster = make ~seed:7 () in
  let wl =
    {
      Ycsb.default with
      groups = 3;
      cross_ratio = 0.5;
      total_txns = 60;
      threads = 3;
      rate = 4.0;
      ops_per_txn = 4;
      attributes = 12;
    }
  in
  ignore (Ycsb.run cluster wl);
  Cluster.run cluster;
  let groups = Ycsb.group_keys wl in
  List.iter (fun group -> Verify.check_exn cluster ~group) groups;
  Verify.check_cross_exn cluster ~groups;
  let events = Audit.events (Cluster.audit cluster) in
  let cross_commits =
    List.length
      (List.filter
         (fun (e : Audit.event) -> Twopc.is_audit_group e.group && committed e.outcome)
         events)
  in
  Alcotest.(check bool) "some cross-group transactions committed" true
    (cross_commits > 0)

(* ------------------------------------------------------------------ *)
(* API misuse.                                                          *)

let test_invalid_args () =
  let cluster = make ~config:Config.default () in
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      Alcotest.check_raises "empty groups"
        (Invalid_argument "Client.begin_multi: no groups") (fun () ->
          ignore (Client.begin_multi client ~groups:[]));
      let m = Client.begin_multi client ~groups:[ "a"; "b" ] in
      Alcotest.check_raises "unknown group"
        (Invalid_argument "Client.write_in: group \"c\" not in transaction")
        (fun () -> Client.write_in m ~group:"c" "x" "v");
      (* Cross-group commit needs the leader protocol's manager admission;
         this cluster runs Paxos-CP. *)
      Client.write_in m ~group:"a" "x" "v";
      Client.write_in m ~group:"b" "y" "v";
      match Client.commit_multi m with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "commit_multi accepted a non-leader protocol");
  Cluster.run cluster

let () =
  Alcotest.run "twopc"
    [
      ( "codec",
        [ Alcotest.test_case "marker records roundtrip" `Quick test_marker_codec ] );
      ( "protocol",
        [
          Alcotest.test_case "cross commit is atomic" `Quick test_cross_commit_atomic;
          Alcotest.test_case "single-group mtxn delegates" `Quick
            test_single_group_multi_delegates;
          Alcotest.test_case "read-only cross commits locally" `Quick
            test_read_only_cross;
          Alcotest.test_case "stale cross txn aborts atomically" `Quick
            test_cross_conflict_aborts_atomically;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mid-commit restart keeps atomicity" `Quick
            test_mid_commit_restart_atomic;
          Alcotest.test_case "mixed workload passes every oracle" `Quick
            test_workload_mix_verifies;
        ] );
      ( "api",
        [ Alcotest.test_case "invalid arguments rejected" `Quick test_invalid_args ] );
    ]
