(* Tests for the experiment harness: statistics, table rendering, and the
   experiment runner itself. *)

module Stats = Mdds_harness.Stats
module Table = Mdds_harness.Table
module Experiment = Mdds_harness.Experiment
module Config = Mdds_core.Config
module Ycsb = Mdds_workload.Ycsb

(* ------------------------------------------------------------------ *)
(* Stats.                                                               *)

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5.0 ]);
  Alcotest.(check (float 1e-6)) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile xs 95.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.percentile [] 50.0);
  (* Unsorted input is handled. *)
  Alcotest.(check (float 1e-9)) "unsorted" 2.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 50.0)

let test_summarize () =
  let s = Stats.summarize [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.Stats.p50;
  let e = Stats.summarize [] in
  Alcotest.(check int) "empty count" 0 e.Stats.count

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.0))
    (fun xs ->
      let p1 = Stats.percentile xs 25.0
      and p2 = Stats.percentile xs 50.0
      and p3 = Stats.percentile xs 90.0 in
      p1 <= p2 && p2 <= p3)

(* ------------------------------------------------------------------ *)
(* Table.                                                               *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bbbb" ] [ [ "xx"; "y" ]; [ "z" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + sep + rows" 4 (List.length lines);
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check bool) "header padded" true
        (String.length header >= String.length "a   bbbb");
      Alcotest.(check bool) "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "shape");
  Alcotest.(check string) "fmt_f" "3.5" (Table.fmt_f 3.49);
  Alcotest.(check string) "fmt_ms" "250.0" (Table.fmt_ms 0.25);
  Alcotest.(check string) "fmt_pct" "50.0%" (Table.fmt_pct ~num:1 ~den:2);
  Alcotest.(check string) "fmt_pct zero den" "-" (Table.fmt_pct ~num:1 ~den:0)

(* ------------------------------------------------------------------ *)
(* Experiment runner.                                                   *)

let small_workload =
  { Ycsb.default with total_txns = 30; threads = 3; rate = 3.0; attributes = 20 }

let test_experiment_run () =
  let spec =
    Experiment.spec ~seed:7 ~config:Config.default ~workload:small_workload "VVV"
  in
  let r = Experiment.run spec in
  Alcotest.(check int) "total excludes preload" 30 r.Experiment.total;
  Alcotest.(check bool) "commits + aborts = total" true
    (r.Experiment.commits + r.Experiment.aborts = r.Experiment.total);
  Alcotest.(check bool) "verified" true (r.Experiment.verified = Ok ());
  Alcotest.(check bool) "sim time positive" true (r.Experiment.sim_duration > 0.0);
  let by_round = Array.fold_left ( + ) 0 r.Experiment.commits_by_round in
  (* Read-only transactions count as commits but not rounds. *)
  Alcotest.(check bool) "rounds <= commits" true (by_round <= r.Experiment.commits);
  Alcotest.(check bool) "brief printable" true
    (String.length (Format.asprintf "%a" Experiment.pp_brief r) > 0)

let test_experiment_deterministic () =
  let spec =
    Experiment.spec ~seed:11 ~config:Config.basic ~workload:small_workload "VVV"
  in
  let a = Experiment.run spec and b = Experiment.run spec in
  Alcotest.(check int) "same commits" a.Experiment.commits b.Experiment.commits;
  Alcotest.(check int) "same aborts" a.Experiment.aborts b.Experiment.aborts;
  Alcotest.(check (float 1e-9)) "same sim duration" a.Experiment.sim_duration
    b.Experiment.sim_duration

let test_experiment_seed_changes_outcome () =
  let r seed =
    Experiment.run
      (Experiment.spec ~seed ~config:Config.default ~workload:small_workload "VVV")
  in
  let a = r 1 and b = r 2 in
  (* Different seeds must at least shuffle timings; durations coincide
     only with vanishing probability. *)
  Alcotest.(check bool) "different executions" true
    (a.Experiment.sim_duration <> b.Experiment.sim_duration)

let test_commits_by_dc () =
  let workload = { small_workload with Ycsb.client_dcs = [ 0; 1; 2 ] } in
  let r =
    Experiment.run (Experiment.spec ~seed:3 ~config:Config.default ~workload "VVV")
  in
  let per_dc = Experiment.commits_by_dc r in
  Alcotest.(check int) "three datacenters" 3 (List.length per_dc);
  let total = List.fold_left (fun acc (_, _, t) -> acc + t) 0 per_dc in
  Alcotest.(check int) "totals add up" 30 total

(* ------------------------------------------------------------------ *)
(* Knob sweep (PROTOCOL.md §11): the grid behind [mdds throughput
   --sweep] and the CI sweep artifact.                                  *)

module Throughput = Mdds_harness.Throughput

let small_grid () =
  Throughput.knob_sweep ~seed:5 ~topologies:[ "VVV" ] ~batch_maxes:[ 1; 2 ]
    ~depths:[ 1 ] ~epoch_intervals:[ 0.0; 0.05 ] ~rate:40.0 ~txns:40 ()

let test_knob_sweep_shape () =
  let cells = small_grid () in
  (* One cell per point of the cartesian product, every cell tagged with
     its topology and oracle-clean. *)
  Alcotest.(check int) "topology x batch x depth x epoch" 4 (List.length cells);
  List.iter
    (fun (topo, (p : Throughput.point)) ->
      Alcotest.(check string) "topology tag" "VVV" topo;
      Alcotest.(check bool) "verified" true (p.Throughput.verified = Ok ());
      Alcotest.(check bool) "epochs only in epoch cells" true
        (p.Throughput.mode.Throughput.epoch_interval > 0.0
        || p.Throughput.epochs = 0))
    cells

let test_knob_sweep_deterministic () =
  let a = small_grid () and b = small_grid () in
  List.iter2
    (fun (_, (pa : Throughput.point)) (_, (pb : Throughput.point)) ->
      Alcotest.(check int) "same committed" pa.Throughput.committed
        pb.Throughput.committed;
      Alcotest.(check (float 1e-9)) "same goodput" pa.Throughput.committed_per_s
        pb.Throughput.committed_per_s)
    a b

let test_knob_sweep_csv () =
  let cells = small_grid () in
  let csv = Throughput.knob_to_csv cells in
  (match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
      Alcotest.(check string) "csv header"
        "topology,mode,batch_max,pipeline_depth,epoch_interval,rate,txns,committed,committed_per_s,p50_ms,p99_ms,batches,epochs,verified"
        header;
      Alcotest.(check int) "one row per cell" (List.length cells)
        (List.length rows)
  | [] -> Alcotest.fail "empty csv");
  let json = Throughput.knob_to_json cells in
  Alcotest.(check bool) "json is an array" true
    (String.length json > 0 && json.[0] = '[')

let () =
  Alcotest.run "harness"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "summarize" `Quick test_summarize;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
      ( "experiment",
        [
          Alcotest.test_case "run" `Quick test_experiment_run;
          Alcotest.test_case "deterministic" `Quick test_experiment_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_experiment_seed_changes_outcome;
          Alcotest.test_case "commits by datacenter" `Quick test_commits_by_dc;
        ] );
      ( "knob-sweep",
        [
          Alcotest.test_case "grid shape and oracle" `Quick test_knob_sweep_shape;
          Alcotest.test_case "deterministic" `Quick test_knob_sweep_deterministic;
          Alcotest.test_case "csv/json artifacts" `Quick test_knob_sweep_csv;
        ] );
    ]
