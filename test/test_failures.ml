(* Fault-injection tests: datacenter outages, partitions, message loss,
   recovery and catch-up — the availability story of the paper (§1, §4.1). *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Service = Mdds_core.Service
module Wal = Mdds_wal.Wal
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Store = Mdds_kvstore.Store
module Row = Mdds_kvstore.Row
module Messages = Mdds_core.Messages

let group = "g"

let committed = function
  | Audit.Committed _ | Audit.Read_only_committed -> true
  | Audit.Aborted _ | Audit.Unknown -> false

let seq_writer cluster ~dc ~txns ~gap =
  let client = Cluster.client cluster ~dc in
  let results = ref [] in
  Cluster.spawn cluster (fun () ->
      for i = 1 to txns do
        (try
           let txn = Client.begin_ client ~group in
           Client.write txn (Printf.sprintf "k%d-%d" dc i) "v";
           let outcome = Client.commit txn in
           results := outcome :: !results
         with Client.Unavailable _ -> ());
        Engine.sleep gap
      done);
  results

let test_minority_outage_keeps_committing () =
  (* One of three datacenters down: majority remains, commits continue. *)
  let cluster = Cluster.create ~seed:4 (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:10 ~gap:0.5 in
  Engine.schedule (Cluster.engine cluster) ~at:1.0 (fun () ->
      Cluster.take_down cluster 2);
  Cluster.run cluster;
  let commits = List.length (List.filter committed !results) in
  Alcotest.(check int) "all commit despite outage" 10 commits;
  Verify.check_exn cluster ~group

let test_majority_outage_blocks () =
  (* Two of three datacenters down: no quorum, transactions cannot commit
     (but nothing incorrect happens). *)
  let config = { Config.default with rpc_timeout = 0.3; max_rounds = 3 } in
  let cluster = Cluster.create ~seed:4 ~config (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:3 ~gap:0.2 in
  Cluster.take_down cluster 1;
  Cluster.take_down cluster 2;
  Cluster.run ~until:300.0 cluster;
  let aborted_unavailable =
    List.filter
      (function Audit.Aborted { reason = Audit.Unavailable; _ } -> true | _ -> false)
      !results
  in
  Alcotest.(check int) "every attempt unavailable" 3 (List.length aborted_unavailable);
  Verify.check_exn cluster ~group

let test_recovery_and_catchup () =
  (* A datacenter misses a window of commits, then recovers; reads through
     it force the learner to fill its log; logs converge. *)
  let cluster = Cluster.create ~seed:8 (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:12 ~gap:0.5 in
  Engine.schedule (Cluster.engine cluster) ~at:1.0 (fun () ->
      Cluster.take_down cluster 1);
  Engine.schedule (Cluster.engine cluster) ~at:4.0 (fun () ->
      Cluster.bring_up cluster 1);
  Cluster.run cluster;
  Alcotest.(check int) "all committed" 12 (List.length (List.filter committed !results));
  (* Force catch-up: read from the recovered datacenter at the head. *)
  let reader = Cluster.client cluster ~dc:1 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ reader ~group in
      ignore (Client.read txn "k0-12");
      ignore (Client.commit txn));
  Cluster.run cluster;
  (* dc1's log must now be complete (it served the read at the head, which
     requires learning every missing position). *)
  let head = Wal.last_position (Service.wal (Cluster.service cluster 0)) ~group in
  let dc1 = Cluster.service cluster 1 in
  Alcotest.(check (option int)) "no gaps after catch-up" None
    (Wal.first_gap (Service.wal dc1) ~group ~upto:head);
  Alcotest.(check bool) "learned something" true (Service.learns dc1 > 0);
  Verify.check_exn cluster ~group

let test_client_fallback_when_local_down () =
  (* The client's own datacenter is down: begin and reads fall back to a
     remote Transaction Service (§2.2) and the commit still succeeds. *)
  let cluster = Cluster.create ~seed:6 (Topology.ec2 "VVV") in
  (* Seed data so the read has something to return. *)
  let seeder = Cluster.client cluster ~dc:1 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ seeder ~group in
      Client.write txn "x" "seeded";
      assert (committed (Client.commit txn)));
  Cluster.run cluster;
  (* dc0's service goes down, but the client process at dc0 remains. *)
  Cluster.take_down cluster 0;
  (* The network model drops all dc0 traffic, so a co-located client
     cannot talk to anyone either; model the paper's scenario (service
     down, client alive) with a client in a healthy datacenter whose local
     service is the one that is down: use dc1 client but take dc1 down is
     the same situation. Instead: partition dc0's service from clients by
     taking it down and hosting the client at dc1. *)
  Cluster.bring_up cluster 0;
  Cluster.take_down cluster 1;
  let client = Cluster.client cluster ~dc:2 in
  let outcome = ref None in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ client ~group in
      Alcotest.(check (option string)) "read seeded" (Some "seeded") (Client.read txn "x");
      Client.write txn "y" "v";
      outcome := Some (Client.commit txn));
  Cluster.run cluster;
  (match !outcome with
  | Some o when committed o -> ()
  | _ -> Alcotest.fail "commit with one datacenter down failed");
  Cluster.bring_up cluster 1;
  Verify.check_exn cluster ~group

let test_partition_minority_blocks_majority_proceeds () =
  let config = { Config.default with rpc_timeout = 0.3; max_rounds = 3 } in
  let cluster = Cluster.create ~seed:5 ~config (Topology.ec2 "VVVVV") in
  Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  (* Client in the minority side: unavailable. *)
  let minority = Cluster.client cluster ~dc:0 in
  let minority_result = ref None in
  Cluster.spawn cluster (fun () ->
      try
        let txn = Client.begin_ minority ~group in
        Client.write txn "m" "v";
        minority_result := Some (Client.commit txn)
      with Client.Unavailable _ -> minority_result := Some (Audit.Aborted { reason = Audit.Unavailable; promotions = 0 }));
  (* Client in the majority side: fine. *)
  let majority = Cluster.client cluster ~dc:3 in
  let majority_result = ref None in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ majority ~group in
      Client.write txn "M" "v";
      majority_result := Some (Client.commit txn));
  Cluster.run ~until:120.0 cluster;
  (match !minority_result with
  | Some (Audit.Aborted { reason = Audit.Unavailable; _ }) -> ()
  | _ -> Alcotest.fail "minority side should be unavailable");
  (match !majority_result with
  | Some o when committed o -> ()
  | _ -> Alcotest.fail "majority side should commit");
  (* Heal and verify global agreement. *)
  Cluster.heal cluster;
  Verify.check_exn cluster ~group

let test_heavy_loss_still_serializable () =
  (* 20% message loss: progress is slower (retries) but never incorrect. *)
  let cluster =
    Cluster.create ~seed:13 ~config:Config.default
      (Mdds_net.Topology.ec2 ~loss:0.2 "VVV")
  in
  let r0 = seq_writer cluster ~dc:0 ~txns:6 ~gap:0.4 in
  let r1 = seq_writer cluster ~dc:1 ~txns:6 ~gap:0.4 in
  Cluster.run cluster;
  let commits = List.length (List.filter committed (!r0 @ !r1)) in
  Alcotest.(check bool) "most commit" true (commits >= 8);
  Verify.check_exn cluster ~group

let test_incomplete_instance_completed_by_learner () =
  (* A proposer gets a value accepted at a majority but crashes before
     sending apply (simulated by driving accepts directly). A later read
     must complete the instance and surface the value (§4.1: "If a
     Transaction Client fails in the middle of the commit protocol, its
     transaction may be committed or aborted"). *)
  let cluster = Cluster.create ~seed:21 (Topology.ec2 "VVV") in
  let entry =
    [
      Mdds_types.Txn.make_record ~txn_id:"orphan" ~origin:0 ~read_position:0
        ~reads:[]
        ~writes:[ { Mdds_types.Txn.key = "x"; value = "orphaned" } ];
    ]
  in
  let b = Mdds_paxos.Ballot.make ~round:1 ~proposer:0 in
  Cluster.spawn cluster (fun () ->
      (* Majority accepted, nobody applied. *)
      List.iter
        (fun dc ->
          let s = Cluster.service cluster dc in
          ignore (Service.handle s ~src:0 (Mdds_core.Messages.Prepare { group; pos = 1; ballot = b }));
          ignore
            (Service.handle s ~src:0
               (Mdds_core.Messages.Accept { group; pos = 1; ballot = b; entry; sequenced = None })))
        [ 0; 1 ];
      (* A fresh transaction begins: read position 0 (nothing applied),
         commits to position 1 — and must lose to the orphan, or land
         after it. Either way the orphan's value must be in the log. *)
      let client = Cluster.client cluster ~dc:2 in
      let txn = Client.begin_ client ~group in
      Client.write txn "y" "later";
      ignore (Client.commit txn);
      (* Reading at the new head forces the service to fill any hole left
         at position 1 via the learner. *)
      let txn2 = Client.begin_ client ~group in
      Alcotest.(check (option string)) "orphaned write visible" (Some "orphaned")
        (Client.read txn2 "x");
      ignore (Client.commit txn2));
  Cluster.run cluster;
  let log = Cluster.committed_log cluster ~group in
  let all = List.concat_map snd log in
  Alcotest.(check bool) "orphan transaction completed by someone" true
    (List.exists (fun (r : Mdds_types.Txn.record) -> r.txn_id = "orphan") all);
  Verify.check_exn cluster ~group

let test_compaction_snapshot_catchup () =
  (* dc2 misses a window of commits; meanwhile dc0 and dc1 checkpoint and
     compact the log prefix, so the missed entries cannot be learned
     through Paxos. dc2 must catch up by installing a peer snapshot. *)
  let cluster = Cluster.create ~seed:31 (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:10 ~gap:0.5 in
  Engine.schedule (Cluster.engine cluster) ~at:0.8 (fun () ->
      Cluster.take_down cluster 2);
  Cluster.run cluster;
  Alcotest.(check int) "all committed" 10 (List.length (List.filter committed !results));
  let head = Wal.last_position (Service.wal (Cluster.service cluster 0)) ~group in
  (* Checkpoint the surviving majority. *)
  List.iter
    (fun dc ->
      let s = Cluster.service cluster dc in
      (match Service.handle s ~src:dc (Mdds_core.Messages.Read { group; key = "k0-1"; position = head }) with
      | Mdds_core.Messages.Value _ -> ()
      | _ -> Alcotest.fail "priming read failed");
      match Service.compact s ~group ~upto:head with
      | Ok () -> ()
      | Error `Not_applied -> Alcotest.fail "compact refused")
    [ 0; 1 ];
  Cluster.run cluster;
  (* dc2 returns; one more commit advances its local head past the
     compacted window (its begin would otherwise see its stale, pre-outage
     read position and legitimately serialize in the past). *)
  Cluster.bring_up cluster 2;
  let writer = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ writer ~group in
      Client.write txn "extra" "v";
      assert (committed (Client.commit txn)));
  Cluster.run cluster;
  (* Reading at the new head through dc2: Paxos learning is impossible for
     the compacted prefix, so it must install a snapshot. *)
  let reader = Cluster.client cluster ~dc:2 in
  let seen = ref None in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ reader ~group in
      seen := Client.read txn (Printf.sprintf "k0-%d" 10);
      ignore (Client.commit txn));
  Cluster.run cluster;
  Alcotest.(check (option string)) "reads converged state" (Some "v") !seen;
  let dc2 = Cluster.service cluster 2 in
  Alcotest.(check bool) "used a snapshot" true (Service.snapshots dc2 > 0);
  Alcotest.(check bool) "watermark advanced" true
    (Wal.applied_position (Service.wal dc2) ~group >= head)

(* Chaos: random outages, partitions and heals injected throughout a
   random workload, under each protocol. Whatever happens, the execution
   must remain one-copy serializable and outcome reporting honest. *)
let chaos_prop =
  let open QCheck in
  let protocol_gen = Gen.oneofl [ Config.Basic; Config.Cp; Config.Leader ] in
  Test.make ~name:"chaos: faults never break serializability" ~count:10
    (make Gen.(pair (int_bound 100_000) protocol_gen))
    (fun (seed, protocol) ->
      let config =
        {
          (Config.with_protocol protocol Config.default) with
          rpc_timeout = 0.4;
          max_rounds = 5;
        }
      in
      let cluster = Cluster.create ~seed ~config (Topology.ec2 "VVVVV") in
      let engine = Cluster.engine cluster in
      let rng = Mdds_sim.Rng.split (Engine.rng engine) in
      (* Fault injector: every ~2s, flip a coin between outage, partition
         and heal; never touch more than two datacenters at once so a
         majority can exist. *)
      let down = Array.make 5 false in
      let rec inject () =
        Engine.sleep (Mdds_sim.Rng.uniform rng 1.0 3.0);
        (match Mdds_sim.Rng.int rng 4 with
        | 0 ->
            let victim = Mdds_sim.Rng.int rng 5 in
            if Array.to_list down |> List.filter Fun.id |> List.length < 2 then begin
              down.(victim) <- true;
              Cluster.take_down cluster victim
            end
        | 1 ->
            Array.iteri (fun i d -> if d then (down.(i) <- false; Cluster.bring_up cluster i)) down
        | 2 -> Cluster.partition cluster [ [ 0; 1; 2 ]; [ 3; 4 ] ]
        | _ -> Cluster.heal cluster);
        if Engine.now engine < 25.0 then inject ()
      in
      Engine.spawn engine inject;
      (* Workload: three clients doing read-modify-writes. *)
      for dc = 0 to 2 do
        let client = Cluster.client cluster ~dc in
        let crng = Mdds_sim.Rng.split (Engine.rng engine) in
        Cluster.spawn cluster (fun () ->
            for _ = 1 to 6 do
              (try
                 let txn = Client.begin_ client ~group in
                 for _ = 1 to 3 do
                   let key = Printf.sprintf "k%d" (Mdds_sim.Rng.int crng 4) in
                   if Mdds_sim.Rng.bool crng 0.5 then ignore (Client.read txn key)
                   else Client.write txn key (Client.txn_id txn)
                 done;
                 ignore (Client.commit txn)
               with Client.Unavailable _ -> ());
              Engine.sleep (Mdds_sim.Rng.uniform crng 0.5 2.0)
            done)
      done;
      Cluster.run ~until:600.0 cluster;
      (* Heal everything so the oracle can reconcile all logs. *)
      Array.iteri (fun i d -> if d then Cluster.bring_up cluster i) down;
      Cluster.heal cluster;
      Verify.check cluster ~group = Ok ())

let test_restart_racing_inflight () =
  (* Service restarts fired while commits are mid-flight: the restart
     drops volatile state only, so promises and votes made before it are
     honoured and every transaction still reaches a correct outcome.
     (With a volatile claim registry this exact scenario can re-grant a
     position's fast-path claim and decide two values for one position —
     the chaos engine found it; see the acceptor's round-0 rule.) *)
  let cluster = Cluster.create ~seed:9 (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:8 ~gap:0.4 in
  List.iter
    (fun (at, dc) ->
      Engine.schedule (Cluster.engine cluster) ~at (fun () ->
          Cluster.restart cluster dc))
    [ (0.25, 1); (0.8, 2); (1.3, 1); (2.1, 2); (2.7, 0) ];
  Cluster.run cluster;
  let commits = List.length (List.filter committed !results) in
  Alcotest.(check int) "all commit through restarts" 8 commits;
  Verify.check_exn cluster ~group

let test_restart_preserves_promises_under_race () =
  (* A prepared ballot must survive a restart even with no commit in
     between: promise at (2,0), restart, then a lower ballot's prepare is
     rejected and an accept at the promised ballot still succeeds. *)
  let cluster = Cluster.create ~seed:5 (Topology.ec2 "VVV") in
  let service = Cluster.service cluster 1 in
  let b ~round ~proposer = Mdds_paxos.Ballot.make ~round ~proposer in
  let entry =
    [
      Mdds_types.Txn.make_record ~txn_id:"t-race" ~origin:0 ~read_position:0
        ~reads:[]
        ~writes:[ { Mdds_types.Txn.key = "x"; value = "1" } ];
    ]
  in
  Cluster.spawn cluster (fun () ->
      (match
         Service.handle service ~src:0
           (Mdds_core.Messages.Prepare { group; pos = 1; ballot = b ~round:2 ~proposer:0 })
       with
      | Mdds_core.Messages.Promise _ -> ()
      | _ -> Alcotest.fail "initial prepare not promised");
      Service.restart service;
      (match
         Service.handle service ~src:2
           (Mdds_core.Messages.Prepare { group; pos = 1; ballot = b ~round:1 ~proposer:2 })
       with
      | Mdds_core.Messages.Prepare_reject { next_bal } ->
          Alcotest.(check bool) "reject carries surviving promise" true
            (Mdds_paxos.Ballot.equal next_bal (b ~round:2 ~proposer:0))
      | _ -> Alcotest.fail "promise lost across restart");
      match
        Service.handle service ~src:0
          (Mdds_core.Messages.Accept
             { group; pos = 1; ballot = b ~round:2 ~proposer:0; entry; sequenced = None })
      with
      | Mdds_core.Messages.Accept_reply { ok = true; _ } -> ()
      | _ -> Alcotest.fail "promised ballot's accept refused after restart");
  Cluster.run cluster

let test_compact_while_down_then_catchup () =
  (* The satellite scenario of the chaos engine's Compact fault: the
     majority compacts while one datacenter is down, the laggard returns
     and must catch up through install_snapshot; afterwards every log
     agrees and the full oracle suite passes with the archived prefix. *)
  let cluster = Cluster.create ~seed:23 (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:8 ~gap:0.4 in
  Engine.schedule (Cluster.engine cluster) ~at:0.6 (fun () ->
      Cluster.take_down cluster 1);
  Cluster.run cluster;
  Alcotest.(check int) "majority committed" 8
    (List.length (List.filter committed !results));
  (* Archive what compaction will discard, then compact the majority. *)
  let archive = Cluster.committed_log cluster ~group in
  let head = Wal.last_position (Service.wal (Cluster.service cluster 0)) ~group in
  List.iter
    (fun dc ->
      let s = Cluster.service cluster dc in
      (match
         Service.handle s ~src:dc
           (Mdds_core.Messages.Read { group; key = "k0-1"; position = head })
       with
      | Mdds_core.Messages.Value _ -> ()
      | _ -> Alcotest.fail "priming read failed");
      match Service.compact s ~group ~upto:head with
      | Ok () -> ()
      | Error `Not_applied -> Alcotest.fail "compact refused")
    [ 0; 2 ];
  Cluster.run cluster;
  Cluster.bring_up cluster 1;
  (* A post-recovery commit advances the head past the compacted window;
     reading it through the laggard forces snapshot catch-up. *)
  let writer = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ writer ~group in
      Client.write txn "post" "v";
      assert (committed (Client.commit txn)));
  Cluster.run cluster;
  let reader = Cluster.client cluster ~dc:1 in
  let seen = ref None in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ reader ~group in
      seen := Client.read txn "post";
      ignore (Client.commit txn));
  Cluster.run cluster;
  Alcotest.(check (option string)) "laggard reads converged state" (Some "v") !seen;
  let dc1 = Cluster.service cluster 1 in
  Alcotest.(check bool) "caught up via snapshot" true (Service.snapshots dc1 > 0);
  Alcotest.(check bool) "watermark advanced" true
    (Wal.applied_position (Service.wal dc1) ~group >= head);
  (match Cluster.logs_agree cluster ~group with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The live logs lost the compacted prefix; the archive restores the
     oracle's full view. *)
  match Verify.check ~archive cluster ~group with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_compacted_claim_not_regranted () =
  (* Found by chaos seed 21 (minimal schedule: crash dc1 + compact dc0).
     Compaction deletes the durable claim rows along with the acceptor
     state; a Claim_leadership for a compacted position answered from the
     now-blank row would re-grant the round-0 fast path at a decided
     position. A recovered laggard would then cast a unilateral round-0
     self-vote whose ballot (0.laggard) outranks the original fast-path
     vote (0.winner) in a prepare tally that the compacted voter can no
     longer join — and the laggard re-decides the position with a new
     value (R1 violation). The registrar must refuse the claim; the
     laggard then runs the full protocol, whose prepare quorum necessarily
     contains a surviving voter revealing the decided entry. *)
  let cluster = Cluster.create ~seed:21 (Topology.ec2 "VVV") in
  (* Position 1 decided from dc0 with everyone up: dc0 becomes the claim
     registrar for position 2 in every replica's view. *)
  let r0 = seq_writer cluster ~dc:0 ~txns:1 ~gap:0.1 in
  Cluster.run cluster;
  Alcotest.(check int) "seed txn committed" 1
    (List.length (List.filter committed !r0));
  (* dc1 misses positions 2..6, decided by the {dc0, dc2} majority via
     dc0's fast path (round-0 votes at ballot 0.0). *)
  Cluster.take_down cluster 1;
  let r1 = seq_writer cluster ~dc:0 ~txns:5 ~gap:0.3 in
  Cluster.run cluster;
  Alcotest.(check int) "majority kept committing" 5
    (List.length (List.filter committed !r1));
  let archive = Cluster.committed_log cluster ~group in
  let dc0 = Cluster.service cluster 0 in
  let head = Wal.last_position (Service.wal dc0) ~group in
  (* Prime dc0's applied watermark, then compact: acceptor AND claim rows
     for positions 1..head are gone at dc0. *)
  (match
     Service.handle dc0 ~src:0
       (Messages.Read { group; key = "k0-1"; position = head })
   with
  | Messages.Value _ -> ()
  | _ -> Alcotest.fail "priming read failed");
  (match Service.compact dc0 ~group ~upto:head with
  | Ok () -> ()
  | Error `Not_applied -> Alcotest.fail "compact refused");
  (* The registrar must refuse, not re-grant from the blank row. *)
  (match
     Service.handle dc0 ~src:1
       (Messages.Claim_leadership { group; pos = 2; claimant = "rival" })
   with
  | Messages.Failed _ -> ()
  | Messages.Claim_reply { first } ->
      Alcotest.(check bool) "claim at compacted position re-granted" false
        first
  | _ -> Alcotest.fail "unexpected claim response");
  (* End-to-end: the laggard returns with its log ending at position 1 and
     commits through the ladder; position 2 must keep its original entry. *)
  let original =
    match Wal.entry (Service.wal (Cluster.service cluster 2)) ~group ~pos:2 with
    | Some e -> e
    | None -> Alcotest.fail "dc2 lost position 2"
  in
  Cluster.bring_up cluster 1;
  let late = Cluster.client cluster ~dc:1 in
  Cluster.spawn cluster (fun () ->
      try
        let txn = Client.begin_ late ~group in
        Client.write txn "late" "v";
        ignore (Client.commit txn)
      with Client.Unavailable _ -> ());
  Cluster.run cluster;
  (match Wal.entry (Service.wal (Cluster.service cluster 2)) ~group ~pos:2 with
  | Some e ->
      Alcotest.(check bool) "position 2 entry unchanged" true
        (Mdds_types.Txn.equal_entry original e)
  | None -> Alcotest.fail "dc2 lost position 2 after recovery");
  (match Cluster.logs_agree cluster ~group with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Verify.check ~archive cluster ~group with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_multiple_groups_independent () =
  (* Transaction groups have independent logs and no cross-group
     serializability (by design, §2.1): workloads on two groups proceed
     concurrently, each group's execution verifying independently. *)
  let cluster = Cluster.create ~seed:17 (Topology.ec2 "VVV") in
  let commits = ref 0 in
  List.iter
    (fun group ->
      for dc = 0 to 1 do
        let client = Cluster.client cluster ~dc in
        Cluster.spawn cluster (fun () ->
            for i = 1 to 5 do
              let txn = Client.begin_ client ~group in
              ignore (Client.read txn "shared-name");
              Client.write txn "shared-name" (Printf.sprintf "%s-%d-%d" group dc i);
              (match Client.commit txn with
              | o when committed o -> incr commits
              | _ -> ());
              Engine.sleep 0.5
            done)
      done)
    [ "alpha"; "beta" ];
  Cluster.run cluster;
  (* Each group verifies on its own; their logs are separate. *)
  Verify.check_exn cluster ~group:"alpha";
  Verify.check_exn cluster ~group:"beta";
  let la = List.length (Cluster.committed_log cluster ~group:"alpha") in
  let lb = List.length (Cluster.committed_log cluster ~group:"beta") in
  Alcotest.(check bool) "both groups progressed" true (la > 0 && lb > 0);
  Alcotest.(check int) "log entries match commits" !commits (la + lb)

(* ------------------------------------------------------------------ *)
(* Crash consistency: storage-level faults and the hardened recovery
   ladder (PROTOCOL.md §7). These run the store in Sync_explicit mode so
   dirty and torn crashes have something to lose.                       *)

let mangle_checksum store key =
  (* Forge torn damage behind the service's back: the row's latest version
     keeps its body but its checksum can no longer match. *)
  let row = Store.row store ~key in
  match Row.versions row with
  | (ts, v) :: rest ->
      Row.restore row ((ts, ("#sum", "00000000") :: List.remove_assoc "#sum" v) :: rest)
  | [] -> Alcotest.failf "no versions to mangle at %s" key

let test_dirty_crashes_racing_commits () =
  (* Storage-level power losses fired while commits are mid-flight: every
     protocol write that matters (acceptor state, log appends, claims) hits
     a sync point before it is acknowledged, so only volatile state and
     lazy data applies are lost — every transaction still reaches a
     correct outcome and every cache oracle holds. *)
  let cluster =
    Cluster.create ~seed:9 ~storage:Store.Sync_explicit (Topology.ec2 "VVV")
  in
  let results = seq_writer cluster ~dc:0 ~txns:8 ~gap:0.4 in
  List.iter
    (fun (at, dc) ->
      Engine.schedule (Cluster.engine cluster) ~at (fun () ->
          Cluster.dirty_restart cluster dc))
    [ (0.25, 1); (0.8, 2); (1.3, 1); (2.1, 2); (2.7, 0) ];
  Cluster.run cluster;
  let commits = List.length (List.filter committed !results) in
  Alcotest.(check int) "all commit through dirty crashes" 8 commits;
  List.iter
    (fun s ->
      match Service.cache_coherent s ~group with
      | Ok () -> ()
      | Error e -> Alcotest.failf "dc%d incoherent: %s" (Service.dc s) e)
    (Cluster.services cluster);
  Verify.check_exn cluster ~group

let test_torn_damage_quarantines_until_relearned () =
  (* The no-silent-re-vote rule: an acceptor whose durable vote row was
     torn must refuse Paxos messages for that position until the decided
     value is re-learned from peers. While every peer is down the ladder
     cannot complete and the position stays fenced; once peers return it
     is re-entered through the learner, never re-voted from the reverted
     state. *)
  let config = { Config.default with rpc_timeout = 0.3; max_rounds = 3 } in
  let cluster =
    Cluster.create ~seed:3 ~config ~storage:Store.Sync_explicit
      (Topology.ec2 "VVV")
  in
  let b = Mdds_paxos.Ballot.make ~round:2 ~proposer:0 in
  let entry =
    [
      Mdds_types.Txn.make_record ~txn_id:"victim" ~origin:0 ~read_position:0
        ~reads:[]
        ~writes:[ { Mdds_types.Txn.key = "x"; value = "decided" } ];
    ]
  in
  Cluster.spawn cluster (fun () ->
      (* Decide the entry at position 1 on the majority {0, 1}. *)
      List.iter
        (fun dc ->
          let s = Cluster.service cluster dc in
          (match
             Service.handle s ~src:0 (Messages.Prepare { group; pos = 1; ballot = b })
           with
          | Messages.Promise _ -> ()
          | _ -> Alcotest.fail "prepare refused");
          match
            Service.handle s ~src:0
              (Messages.Accept { group; pos = 1; ballot = b; entry; sequenced = None })
          with
          | Messages.Accept_reply { ok = true; _ } -> ()
          | _ -> Alcotest.fail "accept refused")
        [ 0; 1 ];
      (* dc1's durable vote row is torn; the storage crash takes the
         service down with it. The recovery scan must scrub the damage and
         quarantine the position. *)
      mangle_checksum (Service.store (Cluster.service cluster 1)) ("paxos/" ^ group ^ "/1");
      Cluster.dirty_restart cluster 1;
      let dc1 = Cluster.service cluster 1 in
      Alcotest.(check bool) "scrub counted" true
        ((Service.recovery_stats dc1).Service.scrubbed >= 1);
      (* Every peer down: the ladder cannot complete, the position must be
         refused — NOT answered from the reverted state. *)
      Cluster.take_down cluster 0;
      Cluster.take_down cluster 2;
      (match
         Service.handle dc1 ~src:2
           (Messages.Prepare
              { group; pos = 1; ballot = Mdds_paxos.Ballot.make ~round:1 ~proposer:2 })
       with
      | Messages.Failed msg ->
          Alcotest.(check string) "fenced while unlearnable" "position 1 recovering" msg
      | Messages.Promise _ -> Alcotest.fail "silent re-vote from reverted state"
      | r -> Alcotest.failf "unexpected reply: %a" Messages.pp_response r);
      (* Peers return: the decided value is re-learned and the position
         released. *)
      Cluster.bring_up cluster 0;
      Cluster.bring_up cluster 2;
      (match
         Service.handle dc1 ~src:2
           (Messages.Prepare
              { group; pos = 1; ballot = Mdds_paxos.Ballot.make ~round:9 ~proposer:2 })
       with
      | Messages.Promise _ | Messages.Prepare_reject _ -> ()
      | r -> Alcotest.failf "still refused after peers returned: %a" Messages.pp_response r);
      let stats = Service.recovery_stats dc1 in
      Alcotest.(check bool) "position re-entered via the learner" true
        (stats.Service.relearned >= 1);
      match Wal.entry (Service.wal dc1) ~group ~pos:1 with
      | Some e ->
          Alcotest.(check bool) "re-learned the decided entry, not a new vote" true
            (Mdds_types.Txn.equal_entry e entry)
      | None -> Alcotest.fail "entry missing after release");
  Cluster.run cluster;
  Verify.check_exn cluster ~group

let test_exhausted_recovery_ladder_aborts () =
  (* The end of the ladder: a datacenter holds a log gap and every peer is
     unreachable, so neither learning nor snapshot installation can fill
     it. The service must report failure — and the client must surface an
     abort — rather than hang. *)
  let config = { Config.default with rpc_timeout = 0.3; max_rounds = 2 } in
  let cluster = Cluster.create ~seed:12 ~config (Topology.ec2 "VVV") in
  let results = seq_writer cluster ~dc:0 ~txns:6 ~gap:0.4 in
  Engine.schedule (Cluster.engine cluster) ~at:0.2 (fun () ->
      Cluster.take_down cluster 2);
  Engine.schedule (Cluster.engine cluster) ~at:1.5 (fun () ->
      Cluster.bring_up cluster 2);
  Cluster.run cluster;
  Alcotest.(check int) "all committed" 6 (List.length (List.filter committed !results));
  let dc2 = Cluster.service cluster 2 in
  let head = Wal.last_position (Service.wal (Cluster.service cluster 0)) ~group in
  Alcotest.(check bool) "dc2 holds a gap from the outage" true
    (Wal.first_gap (Service.wal dc2) ~group ~upto:head <> None);
  Cluster.take_down cluster 0;
  Cluster.take_down cluster 1;
  let service_error = ref None in
  let client_aborted = ref false in
  Cluster.spawn cluster (fun () ->
      (* Service level: the ladder exhausts and reports the position it
         could not fill. *)
      (match
         Service.handle dc2 ~src:2 (Messages.Read { group; key = "k0-1"; position = head })
       with
      | Messages.Failed msg -> service_error := Some msg
      | _ -> Alcotest.fail "read served despite an unfillable gap");
      (* Client level: the failure surfaces as an abort, not a hang. *)
      try
        let client = Cluster.client cluster ~dc:2 in
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn "k0-1");
        ignore (Client.commit txn)
      with Client.Unavailable _ -> client_aborted := true);
  Cluster.run ~until:400.0 cluster;
  (match !service_error with
  | Some msg ->
      Alcotest.(check bool) "names the unlearnable position" true
        (String.starts_with ~prefix:"cannot learn log position" msg)
  | None -> Alcotest.fail "service never answered");
  Alcotest.(check bool) "client aborted rather than hanging" true !client_aborted;
  Cluster.bring_up cluster 0;
  Cluster.bring_up cluster 1;
  Verify.check_exn cluster ~group

let crash_recovery_prop =
  (* The acceptance property: for random dirty/torn crash points injected
     into a commit workload, recovery always yields a state from which the
     cluster reconverges — caches durably coherent, no position decided
     twice, no committed transaction lost (the full oracle suite). *)
  let open QCheck in
  let crash_gen = Gen.(triple (2 -- 40) (int_bound 2) bool) in
  Test.make
    ~name:"random crash points: recovery reconverges, commits survive"
    ~count:15
    (make
       ~print:Print.(pair int (list (triple int int bool)))
       Gen.(pair (int_bound 100_000) (list_size (1 -- 4) crash_gen)))
    (fun (seed, crashes) ->
      let config = { Config.default with rpc_timeout = 0.4; max_rounds = 5 } in
      let cluster =
        Cluster.create ~seed ~config ~storage:Store.Sync_explicit
          (Topology.ec2 "VVV")
      in
      let r0 = seq_writer cluster ~dc:0 ~txns:5 ~gap:0.5 in
      let r1 = seq_writer cluster ~dc:1 ~txns:5 ~gap:0.5 in
      List.iter
        (fun (tenths, dc, torn) ->
          Engine.schedule (Cluster.engine cluster)
            ~at:(float_of_int tenths /. 10.)
            (fun () ->
              if torn then Cluster.torn_restart cluster dc
              else Cluster.dirty_restart cluster dc))
        crashes;
      Cluster.run ~until:600.0 cluster;
      ignore (List.filter committed (!r0 @ !r1));
      List.iter
        (fun s ->
          match Service.cache_coherent s ~group with
          | Ok () -> ()
          | Error e -> Test.fail_reportf "dc%d incoherent: %s" (Service.dc s) e)
        (Cluster.services cluster);
      Verify.check cluster ~group = Ok ())

let () =
  Alcotest.run "failures"
    [
      ( "outage",
        [
          Alcotest.test_case "minority outage keeps committing" `Quick
            test_minority_outage_keeps_committing;
          Alcotest.test_case "majority outage blocks safely" `Quick
            test_majority_outage_blocks;
          Alcotest.test_case "recovery and catch-up" `Quick test_recovery_and_catchup;
          Alcotest.test_case "client fallback" `Quick test_client_fallback_when_local_down;
        ] );
      ( "partition-loss",
        [
          Alcotest.test_case "partition semantics" `Quick
            test_partition_minority_blocks_majority_proceeds;
          Alcotest.test_case "heavy loss still serializable" `Quick
            test_heavy_loss_still_serializable;
          Alcotest.test_case "orphaned instance completed" `Quick
            test_incomplete_instance_completed_by_learner;
          Alcotest.test_case "compaction + snapshot catch-up" `Quick
            test_compaction_snapshot_catchup;
          Alcotest.test_case "multiple groups independent" `Quick
            test_multiple_groups_independent;
          QCheck_alcotest.to_alcotest chaos_prop;
        ] );
      ( "restart-compact",
        [
          Alcotest.test_case "restarts racing in-flight commits" `Quick
            test_restart_racing_inflight;
          Alcotest.test_case "promises survive restart race" `Quick
            test_restart_preserves_promises_under_race;
          Alcotest.test_case "compact while down, archive-verified catch-up"
            `Quick test_compact_while_down_then_catchup;
          Alcotest.test_case "compacted claim never re-granted" `Quick
            test_compacted_claim_not_regranted;
        ] );
      ( "crash-consistency",
        [
          Alcotest.test_case "dirty crashes racing commits" `Quick
            test_dirty_crashes_racing_commits;
          Alcotest.test_case "torn vote quarantined until re-learned" `Quick
            test_torn_damage_quarantines_until_relearned;
          Alcotest.test_case "exhausted ladder aborts, never hangs" `Quick
            test_exhausted_recovery_ladder_aborts;
          QCheck_alcotest.to_alcotest crash_recovery_prop;
        ] );
    ]
