(* Unit tests for the transaction tier: service request handling
   (Algorithm 1), the combination search, configuration, and audit. *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Verify = Mdds_core.Verify
module Service = Mdds_core.Service
module Messages = Mdds_core.Messages
module Config = Mdds_core.Config
module Combine = Mdds_core.Combine
module Audit = Mdds_core.Audit
module Proposer = Mdds_core.Proposer
module Rtt = Mdds_core.Rtt
module Ballot = Mdds_paxos.Ballot
module Acceptor = Mdds_paxos.Acceptor
module Topology = Mdds_net.Topology
module Txn = Mdds_types.Txn

let record ?(reads = []) ?(writes = []) ?(rp = 0) ?(origin = 0) txn_id =
  Txn.make_record ~txn_id ~origin ~read_position:rp ~reads
    ~writes:(List.map (fun (key, value) -> { Txn.key; value }) writes)

(* Drive one service directly inside a running engine. *)
let with_service f =
  let cluster = Cluster.create ~seed:3 (Topology.ec2 "VVV") in
  let service = Cluster.service cluster 0 in
  let result = ref None in
  Cluster.spawn cluster (fun () -> result := Some (f cluster service));
  Cluster.run cluster;
  Option.get !result

let b round proposer = Ballot.make ~round ~proposer

let group = "g"

(* ------------------------------------------------------------------ *)
(* Service: Paxos message handling against persisted state.             *)

let test_service_prepare_promise_reject () =
  with_service (fun _cluster service ->
      (match Service.handle service ~src:1 (Messages.Prepare { group; pos = 1; ballot = b 2 1 }) with
      | Messages.Promise { vote = None } -> ()
      | _ -> Alcotest.fail "expected null promise");
      (* Lower ballot now rejected, with the promised ballot as hint. *)
      (match Service.handle service ~src:2 (Messages.Prepare { group; pos = 1; ballot = b 1 2 }) with
      | Messages.Prepare_reject { next_bal } ->
          Alcotest.(check bool) "hint" true (Ballot.equal next_bal (b 2 1))
      | _ -> Alcotest.fail "expected reject");
      (* State persisted in the KV store. *)
      let state = Service.acceptor_state service ~group ~pos:1 in
      Alcotest.(check bool) "persisted nextBal" true
        (Ballot.equal state.Acceptor.next_bal (b 2 1)))

let test_service_accept_and_vote () =
  with_service (fun _cluster service ->
      let entry = [ record "t1" ~writes:[ ("x", "1") ] ] in
      ignore (Service.handle service ~src:1 (Messages.Prepare { group; pos = 1; ballot = b 1 1 }));
      (match
         Service.handle service ~src:1
           (Messages.Accept { group; pos = 1; ballot = b 1 1; entry; sequenced = None })
       with
      | Messages.Accept_reply { ok = true; _ } -> ()
      | _ -> Alcotest.fail "accept at promised ballot");
      (* The vote is returned by a later prepare. *)
      (match Service.handle service ~src:2 (Messages.Prepare { group; pos = 1; ballot = b 5 2 }) with
      | Messages.Promise { vote = Some (bv, e) } ->
          Alcotest.(check bool) "vote ballot" true (Ballot.equal bv (b 1 1));
          Alcotest.(check bool) "vote value" true (Txn.equal_entry e entry)
      | _ -> Alcotest.fail "vote not carried");
      (* Stale accept refused. *)
      match
        Service.handle service ~src:1
          (Messages.Accept { group; pos = 1; ballot = b 2 1; entry; sequenced = None })
      with
      | Messages.Accept_reply { ok = false; _ } -> ()
      | _ -> Alcotest.fail "stale accept must fail")

let test_service_fast_accept () =
  with_service (fun _cluster service ->
      let entry = [ record "fast" ] in
      match
        Service.handle service ~src:0
          (Messages.Accept { group; pos = 1; ballot = Ballot.fast ~proposer:0; entry; sequenced = None })
      with
      | Messages.Accept_reply { ok = true; _ } -> ()
      | _ -> Alcotest.fail "round-0 accept on fresh position must succeed")

let test_service_apply_and_read_position () =
  with_service (fun _cluster service ->
      (match Service.handle service ~src:0 (Messages.Get_read_position { group }) with
      | Messages.Read_position { position = 0; leader = None } -> ()
      | _ -> Alcotest.fail "empty log");
      let entry = [ record "t1" ~origin:2 ~writes:[ ("x", "1") ] ] in
      (match Service.handle service ~src:0 (Messages.Apply { group; pos = 1; entry }) with
      | Messages.Applied -> ()
      | _ -> Alcotest.fail "apply");
      match Service.handle service ~src:0 (Messages.Get_read_position { group }) with
      | Messages.Read_position { position = 1; leader = Some 2 } -> ()
      | Messages.Read_position { position; leader } ->
          Alcotest.failf "position %d leader %s" position
            (match leader with None -> "-" | Some d -> string_of_int d)
      | _ -> Alcotest.fail "read position")

let test_service_read_serves_versions () =
  with_service (fun _cluster service ->
      ignore
        (Service.handle service ~src:0
           (Messages.Apply { group; pos = 1; entry = [ record "t1" ~writes:[ ("x", "a") ] ] }));
      ignore
        (Service.handle service ~src:0
           (Messages.Apply { group; pos = 2; entry = [ record "t2" ~rp:1 ~writes:[ ("x", "b") ] ] }));
      (match Service.handle service ~src:0 (Messages.Read { group; key = "x"; position = 1 }) with
      | Messages.Value { value = Some "a" } -> ()
      | _ -> Alcotest.fail "snapshot read at 1");
      (match Service.handle service ~src:0 (Messages.Read { group; key = "x"; position = 2 }) with
      | Messages.Value { value = Some "b" } -> ()
      | _ -> Alcotest.fail "read at 2");
      match Service.handle service ~src:0 (Messages.Read { group; key = "nope"; position = 2 }) with
      | Messages.Value { value = None } -> ()
      | _ -> Alcotest.fail "missing key")

let test_service_claim () =
  with_service (fun _cluster service ->
      (match
         Service.handle service ~src:0
           (Messages.Claim_leadership { group; pos = 1; claimant = "alice" })
       with
      | Messages.Claim_reply { first = true } -> ()
      | _ -> Alcotest.fail "first claim");
      (match
         Service.handle service ~src:1
           (Messages.Claim_leadership { group; pos = 1; claimant = "bob" })
       with
      | Messages.Claim_reply { first = false } -> ()
      | _ -> Alcotest.fail "second claim");
      (* Re-claim by the original claimant is still first (idempotent). *)
      match
        Service.handle service ~src:0
          (Messages.Claim_leadership { group; pos = 1; claimant = "alice" })
      with
      | Messages.Claim_reply { first = true } -> ()
      | _ -> Alcotest.fail "idempotent claim")

let test_service_read_with_learn () =
  (* dc0 misses position 1 (only applied at dc1 and dc2); a read at 1 via
     dc0 must learn it from its peers. *)
  let cluster = Cluster.create ~seed:9 (Topology.ec2 "VVV") in
  let entry = [ record "t1" ~writes:[ ("x", "learned") ] ] in
  let done_ = ref false in
  Cluster.spawn cluster (fun () ->
      (* Drive a full Paxos instance against dc1 and dc2 only, bypassing
         dc0, by sending messages directly. *)
      List.iter
        (fun dc ->
          let service = Cluster.service cluster dc in
          ignore
            (Service.handle service ~src:1
               (Messages.Prepare { group; pos = 1; ballot = b 1 1 }));
          ignore
            (Service.handle service ~src:1
               (Messages.Accept { group; pos = 1; ballot = b 1 1; entry; sequenced = None }));
          ignore (Service.handle service ~src:1 (Messages.Apply { group; pos = 1; entry })))
        [ 1; 2 ];
      (* Now read through dc0 at position 1. *)
      (match
         Service.handle (Cluster.service cluster 0) ~src:0
           (Messages.Read { group; key = "x"; position = 1 })
       with
      | Messages.Value { value = Some "learned" } -> ()
      | Messages.Value { value } ->
          Alcotest.failf "got %s" (Option.value value ~default:"<none>")
      | _ -> Alcotest.fail "read failed");
      Alcotest.(check int) "one learn" 1 (Service.learns (Cluster.service cluster 0));
      done_ := true);
  Cluster.run cluster;
  Alcotest.(check bool) "ran" true !done_

let test_service_restart_keeps_promises () =
  with_service (fun _cluster service ->
      (* Promise ballot (5,1), vote at it, then restart. *)
      ignore (Service.handle service ~src:1 (Messages.Prepare { group; pos = 1; ballot = b 5 1 }));
      let entry = [ record "t1" ~writes:[ ("x", "1") ] ] in
      ignore
        (Service.handle service ~src:1
           (Messages.Accept { group; pos = 1; ballot = b 5 1; entry; sequenced = None }));
      ignore (Service.handle service ~src:0 (Messages.Claim_leadership { group; pos = 2; claimant = "a" }));
      Service.restart service;
      (* Durable: the promise still blocks lower ballots, and the vote is
         still reported. *)
      (match Service.handle service ~src:2 (Messages.Prepare { group; pos = 1; ballot = b 3 2 }) with
      | Messages.Prepare_reject { next_bal } ->
          Alcotest.(check bool) "promise survived restart" true
            (Ballot.equal next_bal (b 5 1))
      | _ -> Alcotest.fail "promise lost across restart");
      (match Service.handle service ~src:2 (Messages.Prepare { group; pos = 1; ballot = b 9 2 }) with
      | Messages.Promise { vote = Some (bv, _) } ->
          Alcotest.(check bool) "vote survived restart" true (Ballot.equal bv (b 5 1))
      | _ -> Alcotest.fail "vote lost across restart");
      (* Durable: leadership claims survive too. The fast path is only
         safe if at most one round-0 value ever exists per position, so a
         restart must not let a second claimant be "first" — a rival
         round-0 vote is exactly the split the chaos tests surface. *)
      (match
         Service.handle service ~src:1
           (Messages.Claim_leadership { group; pos = 2; claimant = "b" })
       with
      | Messages.Claim_reply { first = false } -> ()
      | _ -> Alcotest.fail "claims must be durable across restart");
      match
        Service.handle service ~src:0
          (Messages.Claim_leadership { group; pos = 2; claimant = "a" })
      with
      | Messages.Claim_reply { first = true } -> ()
      | _ -> Alcotest.fail "original claimant still first after restart")

(* ------------------------------------------------------------------ *)
(* Combination search.                                                  *)

let test_combine_includes_own () =
  let own = record "own" ~reads:[ "a" ] in
  let result = Combine.best ~own ~candidates:[] ~exhaustive_limit:4 () in
  Alcotest.(check bool) "own alone" true (Txn.equal_entry result [ own ])

let test_combine_compatible () =
  let own = record "own" ~reads:[ "a" ] ~writes:[ ("a", "1") ] in
  let c1 = record "c1" ~reads:[ "b" ] ~writes:[ ("b", "1") ] in
  let c2 = record "c2" ~reads:[ "c" ] ~writes:[ ("c", "1") ] in
  let result = Combine.best ~own ~candidates:[ c1; c2 ] ~exhaustive_limit:4 () in
  Alcotest.(check int) "all three" 3 (List.length result);
  Alcotest.(check bool) "valid" true (Txn.valid_combination result);
  Alcotest.(check bool) "contains own" true (Txn.mem_entry ~txn_id:"own" result)

let test_combine_ordering_matters () =
  (* c reads "a" which own writes: c must precede own; a greedy append
     would drop it, the exhaustive search keeps it by reordering. *)
  let own = record "own" ~writes:[ ("a", "1") ] in
  let c = record "c" ~reads:[ "a" ] ~writes:[ ("b", "1") ] in
  let result = Combine.best ~own ~candidates:[ c ] ~exhaustive_limit:4 () in
  Alcotest.(check int) "both kept" 2 (List.length result);
  match result with
  | [ first; second ] ->
      Alcotest.(check string) "reader first" "c" first.Txn.txn_id;
      Alcotest.(check string) "writer second" "own" second.Txn.txn_id
  | _ -> Alcotest.fail "unexpected shape"

let test_combine_conflicting_dropped () =
  (* Mutually incompatible candidates: both read what own writes AND own
     reads what they write — no valid two-element ordering. *)
  let own = record "own" ~reads:[ "x" ] ~writes:[ ("y", "1") ] in
  let cand = record "c" ~reads:[ "y" ] ~writes:[ ("x", "1") ] in
  let result = Combine.best ~own ~candidates:[ cand ] ~exhaustive_limit:4 () in
  Alcotest.(check bool) "own only" true (Txn.equal_entry result [ own ])

let test_combine_dedup () =
  let own = record "own" in
  let c = record "c" in
  let result =
    Combine.best ~own ~candidates:[ c; c; record "own" ] ~exhaustive_limit:4 ()
  in
  Alcotest.(check int) "deduplicated" 2 (List.length result)

let test_combine_greedy_beyond_limit () =
  let own = record "own" ~writes:[ ("o", "1") ] in
  let candidates =
    List.init 8 (fun i ->
        record (Printf.sprintf "c%d" i) ~writes:[ (Printf.sprintf "k%d" i, "1") ])
  in
  let result = Combine.best ~own ~candidates ~exhaustive_limit:4 () in
  Alcotest.(check int) "greedy keeps all disjoint" 9 (List.length result);
  Alcotest.(check bool) "valid" true (Txn.valid_combination result)

let test_combine_budget_cutover () =
  (* 8 independent candidates at a raised limit: the exhaustive planner's
     tree is ~10^6 probes, far past any sane budget, so [best] must abandon
     it, count the cutover, and answer with the greedy pass — which keeps
     every disjoint candidate here, so the answer is still maximal. *)
  let own = record "own" ~writes:[ ("o", "1") ] in
  let candidates =
    List.init 8 (fun i ->
        record (Printf.sprintf "c%d" i) ~writes:[ (Printf.sprintf "k%d" i, "1") ])
  in
  let before = Combine.cutovers () in
  let budgeted =
    Combine.best ~probe_budget:100 ~own ~candidates ~exhaustive_limit:8 ()
  in
  Alcotest.(check int) "cutover counted" (before + 1) (Combine.cutovers ());
  Alcotest.(check bool) "budgeted answer = greedy answer" true
    (Txn.equal_entry budgeted
       (* greedy == best at limit 0 (candidates always exceed it) *)
       (Combine.best ~own ~candidates ~exhaustive_limit:0 ()));
  Alcotest.(check bool) "still valid" true (Txn.valid_combination budgeted);
  Alcotest.(check int) "still maximal here" 9 (List.length budgeted);
  (* The default budget is sized to never trigger at the production
     exhaustive limit (worst case 3536 probes vs 8192): the same shape at
     limit 4 — four independent candidates, the most expensive shape —
     must stay on the exhaustive path. *)
  let at_default = Combine.cutovers () in
  ignore
    (Combine.best ~own
       ~candidates:(List.filteri (fun i _ -> i < 4) candidates)
       ~exhaustive_limit:4 ());
  Alcotest.(check int) "no cutover at the default limit" at_default
    (Combine.cutovers ())

let test_candidates_of_votes () =
  let own = record "own" in
  let e1 = [ record "a"; record "b" ] in
  let e2 = [ record "b"; record "own"; record "c" ] in
  let candidates = Combine.candidates_of_votes ~own [ e1; e2 ] in
  Alcotest.(check (list string)) "dedup, own excluded, order kept"
    [ "a"; "b"; "c" ]
    (List.map (fun (r : Txn.record) -> r.Txn.txn_id) candidates)

(* Brute-force oracle: the true maximum-length valid ordering of own +
   any subset of candidates, by enumerating all permutations of all
   subsets. Only usable for tiny candidate sets. *)
let brute_force_best ~own ~candidates =
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun l -> x :: l) s
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y != x) l in
            List.map (fun p -> x :: p) (permutations rest))
          l
  in
  let best = ref 1 in
  List.iter
    (fun subset ->
      List.iter
        (fun perm ->
          (* own inserted at every slot *)
          let n = List.length perm in
          for at = 0 to n do
            let ordering =
              List.filteri (fun i _ -> i < at) perm
              @ [ own ]
              @ List.filteri (fun i _ -> i >= at) perm
            in
            if Txn.valid_combination ordering then
              best := max !best (List.length ordering)
          done)
        (permutations subset))
    (subsets candidates);
  !best

let prop_combine_exhaustive_is_optimal =
  let open QCheck in
  let key_gen = Gen.oneofl [ "a"; "b"; "c" ] in
  let rec_gen i =
    Gen.(
      map2
        (fun reads writes ->
          record (Printf.sprintf "r%d" i) ~reads
            ~writes:(List.map (fun k -> (k, "v")) writes))
        (list_size (0 -- 2) key_gen)
        (list_size (0 -- 2) key_gen))
  in
  Test.make ~name:"exhaustive combination matches brute force" ~count:150
    (make Gen.(flatten_l (List.init 4 rec_gen)))
    (fun records ->
      match records with
      | [] -> true
      | own :: candidates ->
          let result = Combine.best ~own ~candidates ~exhaustive_limit:4 () in
          List.length result = brute_force_best ~own ~candidates)

let prop_combine_always_valid =
  let open QCheck in
  let key_gen = Gen.oneofl [ "a"; "b"; "c" ] in
  let rec_gen i =
    Gen.(
      map2
        (fun reads writes ->
          record (Printf.sprintf "r%d" i) ~reads
            ~writes:(List.map (fun k -> (k, "v")) writes))
        (list_size (0 -- 2) key_gen)
        (list_size (0 -- 2) key_gen))
  in
  Test.make ~name:"combination output is always valid and contains own" ~count:300
    (make Gen.(flatten_l (List.init 5 rec_gen)))
    (fun records ->
      match records with
      | [] -> true
      | own :: candidates ->
          let result = Combine.best ~own ~candidates ~exhaustive_limit:3 () in
          Txn.valid_combination result
          && Txn.mem_entry ~txn_id:own.Txn.txn_id result)

(* Reference implementation of the pre-planner combination search: the
   old list-based code, validity re-derived from scratch per probe. The
   incremental matrix planner must return the *identical ordering* — not
   just one of equal length — because the chosen entry is figure output. *)
let ref_valid_combination entry =
  let rset (r : Txn.record) = List.sort_uniq String.compare r.Txn.reads in
  let wset (r : Txn.record) =
    List.sort_uniq String.compare (List.map (fun w -> w.Txn.key) r.Txn.writes)
  in
  let rec go preceding_writes = function
    | [] -> true
    | r :: rest ->
        let stale = List.exists (fun k -> List.mem k preceding_writes) (rset r) in
        (not stale) && go (List.rev_append (wset r) preceding_writes) rest
  in
  go [] entry

let ref_exhaustive ~own candidates =
  let best = ref [ own ] in
  let consider ordering =
    if List.length ordering > List.length !best then best := ordering
  in
  let rec insert_everywhere x prefix = function
    | [] -> [ List.rev_append prefix [ x ] ]
    | y :: rest as suffix ->
        List.rev_append prefix (x :: suffix)
        :: insert_everywhere x (y :: prefix) rest
  in
  let rec go ordering remaining =
    consider ordering;
    List.iteri
      (fun i candidate ->
        let rest = List.filteri (fun j _ -> j <> i) remaining in
        List.iter
          (fun ordering' ->
            if ref_valid_combination ordering' then go ordering' rest)
          (insert_everywhere candidate [] ordering))
      remaining
  in
  go [ own ] candidates;
  !best

let ref_greedy ~own candidates =
  List.fold_left
    (fun acc candidate ->
      let attempt = acc @ [ candidate ] in
      if ref_valid_combination attempt then attempt else acc)
    [ own ] candidates

let ref_best ~own ~candidates ~exhaustive_limit =
  let candidates =
    let seen = Hashtbl.create 8 in
    Hashtbl.replace seen own.Txn.txn_id ();
    List.filter
      (fun (r : Txn.record) ->
        if Hashtbl.mem seen r.txn_id then false
        else begin
          Hashtbl.replace seen r.txn_id ();
          true
        end)
      candidates
  in
  if List.length candidates <= exhaustive_limit then ref_exhaustive ~own candidates
  else ref_greedy ~own candidates

let combine_case_gen n_max =
  let open QCheck.Gen in
  let key_gen = oneofl [ "a"; "b"; "c"; "d" ] in
  let rec_gen i =
    map2
      (fun reads writes ->
        record (Printf.sprintf "r%d" i) ~reads
          ~writes:(List.map (fun k -> (k, "v")) writes))
      (list_size (0 -- 2) key_gen)
      (list_size (0 -- 2) key_gen)
  in
  let* n = 1 -- n_max in
  (* Duplicate ids on purpose (modulo wraps the id space): the shared
     dedup helper must behave as the old copy-pasted one did. *)
  let* ids = list_size (return n) (int_bound (n - 1)) in
  flatten_l (List.map rec_gen ids)

let ordering_ids entry = List.map (fun (r : Txn.record) -> r.Txn.txn_id) entry

let prop_combine_identical_ordering =
  (* Candidate sets 0-10 with exhaustive_limit 4: sizes <= 4 take the
     incremental matrix planner, larger ones the footprint greedy pass;
     both must reproduce the old implementation's ordering exactly. *)
  QCheck.Test.make ~name:"planner returns the identical ordering (limit 4, 0-10 candidates)"
    ~count:400
    (QCheck.make (combine_case_gen 11))
    (fun records ->
      match records with
      | [] -> true
      | own :: candidates ->
          ordering_ids (Combine.best ~own ~candidates ~exhaustive_limit:4 ())
          = ordering_ids (ref_best ~own ~candidates ~exhaustive_limit:4))

let prop_combine_identical_ordering_deep =
  (* A higher limit keeps even 6-candidate sets on the exhaustive planner,
     exercising deep insertion/pruning paths against the reference. *)
  QCheck.Test.make ~name:"planner returns the identical ordering (limit 6, exhaustive)"
    ~count:100
    (QCheck.make (combine_case_gen 7))
    (fun records ->
      match records with
      | [] -> true
      | own :: candidates ->
          ordering_ids (Combine.best ~probe_budget:max_int ~own ~candidates ~exhaustive_limit:6 ())
          = ordering_ids (ref_best ~own ~candidates ~exhaustive_limit:6))

(* ------------------------------------------------------------------ *)
(* Proposer driven directly against live services.                      *)

let test_proposer_adopts_existing_vote () =
  (* An acceptor already voted for value A at some ballot; a new proposer
     with its own value B must adopt A (findWinningVal). Drive it through
     the service handles. *)
  let cluster = Cluster.create ~seed:31 (Topology.ec2 "VVV") in
  let a_entry = [ record "A" ~writes:[ ("x", "A") ] ] in
  let done_ = ref false in
  Cluster.spawn cluster (fun () ->
      (* Seed votes for A at two services (a majority). *)
      List.iter
        (fun dc ->
          let s = Cluster.service cluster dc in
          ignore (Service.handle s ~src:0 (Messages.Prepare { group; pos = 1; ballot = b 1 0 }));
          ignore
            (Service.handle s ~src:0
               (Messages.Accept { group; pos = 1; ballot = b 1 0; entry = a_entry; sequenced = None })))
        [ 0; 1 ];
      (* Now a fresh basic-protocol client tries to commit B at position 1:
         it must lose to A (the value is adopted and driven to a decision)
         and the log must hold A, not B. *)
      let client = Cluster.client cluster ~dc:2 in
      let txn = Client.begin_ client ~group in
      Client.write txn "x" "B";
      (match Client.commit txn with
      | Audit.Committed { position = 1; _ } -> Alcotest.fail "B must not win position 1"
      | _ -> ());
      (* The promoted client stopped early at position 1 (§5); a read at
         the head completes the orphaned instance via the learner. *)
      let txn2 = Client.begin_ client ~group in
      ignore (Client.read txn2 "x");
      ignore (Client.commit txn2);
      done_ := true);
  Cluster.run cluster;
  Alcotest.(check bool) "ran" true !done_;
  let log = Cluster.committed_log cluster ~group in
  (match List.assoc_opt 1 log with
  | Some entry -> Alcotest.(check bool) "A decided" true (Txn.mem_entry ~txn_id:"A" entry)
  | None -> Alcotest.fail "position 1 empty");
  Verify.check_exn cluster ~group

let test_fast_path_falls_back () =
  (* A round-0 fast accept arriving after a higher prepare is refused;
     the claimaint client still commits via the full protocol. *)
  let cluster = Cluster.create ~seed:33 (Topology.ec2 "VVV") in
  Cluster.spawn cluster (fun () ->
      (* Poison every acceptor with a high promise for position 1. *)
      List.iter
        (fun dc ->
          ignore
            (Service.handle (Cluster.service cluster dc) ~src:0
               (Messages.Prepare { group; pos = 1; ballot = b 7 0 })))
        [ 0; 1; 2 ];
      let client = Cluster.client cluster ~dc:0 in
      let txn = Client.begin_ client ~group in
      Client.write txn "x" "v";
      match Client.commit txn with
      | Audit.Committed { position = 1; _ } -> ()
      | _ -> Alcotest.fail "full protocol fallback failed");
  Cluster.run cluster;
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Config and audit.                                                    *)

let test_config () =
  Alcotest.(check string) "names" "paxos" (Config.protocol_name Config.Basic);
  Alcotest.(check string) "names cp" "paxos-cp" (Config.protocol_name Config.Cp);
  Alcotest.(check bool) "basic variant" true (Config.basic.Config.protocol = Config.Basic);
  let c = Config.with_protocol Config.Basic Config.default in
  Alcotest.(check bool) "with_protocol" true (c.Config.protocol = Config.Basic)

let test_audit_aggregates () =
  let audit = Audit.create () in
  let ev outcome =
    {
      Audit.group = "g";
      record = record "t";
      observed = [];
      outcome;
      began_at = 0.0;
      committed_at = 2.0;
      commit_started_at = 1.0;
      client_dc = 0;
      stats = Audit.no_stats;
    }
  in
  Audit.record audit (ev (Audit.Committed { position = 1; promotions = 0; combined = false }));
  Audit.record audit (ev (Audit.Committed { position = 2; promotions = 2; combined = true }));
  Audit.record audit (ev (Audit.Aborted { reason = Audit.Conflict; promotions = 1 }));
  Audit.record audit (ev Audit.Read_only_committed);
  Alcotest.(check int) "total" 4 (Audit.total audit);
  Alcotest.(check int) "commits" 3 (Audit.commits audit);
  Alcotest.(check int) "aborts" 1 (Audit.aborts audit);
  Alcotest.(check int) "round 0" 1 (Audit.commits_with_promotions audit 0);
  Alcotest.(check int) "round 2" 1 (Audit.commits_with_promotions audit 2);
  Alcotest.(check int) "max promotions" 2 (Audit.max_promotions_seen audit);
  Alcotest.(check int) "conflict aborts" 1 (Audit.abort_count audit Audit.Conflict);
  Alcotest.(check int) "latencies all" 2
    (List.length (Audit.commit_latencies audit ~promotions:None));
  Alcotest.(check int) "latencies round 2" 1
    (List.length (Audit.commit_latencies audit ~promotions:(Some 2)));
  Alcotest.(check int) "txn latencies" 4 (List.length (Audit.txn_latencies audit))

(* ------------------------------------------------------------------ *)
(* Adaptive timeouts and duplicate-delivery idempotence.                *)

let prop_rtt_bounded =
  (* Whatever samples the estimator sees — including samples for
     out-of-range destinations, which it must ignore — every derived
     timeout stays inside [floor, rpc_timeout]. *)
  QCheck.Test.make ~name:"adaptive timeout stays within [floor, cap]" ~count:300
    QCheck.(list (pair (int_bound 4) (float_range 0.0 10.0)))
    (fun samples ->
      let floor = 0.05 and cap = 2.0 in
      let rtt = Rtt.create ~floor ~cap ~dcs:3 () in
      List.iter (fun (dst, s) -> Rtt.observe rtt ~dst s) samples;
      let dsts = [ 0; 1; 2 ] in
      let bounded t = t >= floor && t <= cap in
      List.for_all (fun dst -> bounded (Rtt.timeout rtt ~dst)) dsts
      && bounded (Rtt.broadcast_timeout rtt ~dsts))

let prop_rtt_monotone =
  (* The timeout moves toward the evidence: a sample above the current
     estimate never lowers it, a sample below never raises it (clamping
     preserves monotonicity). *)
  QCheck.Test.make ~name:"ewma timeout moves toward the samples" ~count:300
    QCheck.(pair (list (float_range 0.001 5.0)) (float_range 0.001 5.0))
    (fun (warmup, sample) ->
      let rtt = Rtt.create ~floor:0.01 ~cap:10.0 ~dcs:1 () in
      List.iter (fun s -> Rtt.observe rtt ~dst:0 s) warmup;
      let before = Rtt.timeout rtt ~dst:0 in
      let est = Rtt.estimate rtt ~dst:0 in
      Rtt.observe rtt ~dst:0 sample;
      let after = Rtt.timeout rtt ~dst:0 in
      match est with
      | None -> after <= before (* first sample only tightens from cap *)
      | Some e -> if sample >= e then after >= before else after <= before)

let test_timeout_fallback_exact () =
  (* With the flags off the client must behave byte-identically to the
     paper's fixed timeout: no estimator is built and [timeout_for]
     returns [rpc_timeout] exactly. *)
  let engine = Mdds_sim.Engine.create ~seed:1 () in
  let net = Mdds_net.Network.create engine (Topology.ec2 "VVV") in
  let rpc = Mdds_net.Rpc.create net in
  let mk config =
    Proposer.make_env ~rpc ~config ~dc:0 ~dcs:[ 0; 1; 2 ]
      ~rng:(Mdds_sim.Rng.create 1)
      ~trace:(Mdds_sim.Trace.create engine)
  in
  let off = mk Config.default in
  Alcotest.(check bool) "no estimator when flags off" true (off.Proposer.rtt = None);
  Alcotest.(check (float 0.0)) "timeout_for is exactly rpc_timeout"
    Config.default.Config.rpc_timeout
    (Proposer.timeout_for off ~dst:1);
  Alcotest.(check (float 0.0)) "broadcast_timeout is exactly rpc_timeout"
    Config.default.Config.rpc_timeout
    (Proposer.broadcast_timeout off);
  let on = mk { Config.default with Config.adaptive_timeouts = true } in
  (match on.Proposer.rtt with
  | None -> Alcotest.fail "estimator missing with flag on"
  | Some rtt ->
      (* No samples yet: still the full rpc_timeout. *)
      Alcotest.(check (float 0.0)) "unsampled destination gets the cap"
        Config.default.Config.rpc_timeout
        (Proposer.timeout_for on ~dst:1);
      (* Fast observed RTTs tighten the timeout below the fixed one. *)
      for _ = 1 to 50 do
        Rtt.observe rtt ~dst:1 0.01
      done;
      Alcotest.(check bool) "samples tighten the timeout" true
        (Proposer.timeout_for on ~dst:1 < Config.default.Config.rpc_timeout);
      Alcotest.(check bool) "never below the floor" true
        (Proposer.timeout_for on ~dst:1 >= Config.default.Config.adaptive_floor));
  Alcotest.check_raises "floor > cap rejected"
    (Invalid_argument "Rtt.create: need 0 < floor <= cap") (fun () ->
      ignore (Rtt.create ~floor:3.0 ~cap:2.0 ~dcs:3 ()))

let test_service_duplicate_apply_idempotent () =
  (* A duplicated or replayed apply for an already-recorded position is
     absorbed and counted, never applied twice. *)
  with_service (fun _cluster service ->
      let entry = [ record "t1" ~writes:[ ("x", "1") ] ] in
      let apply () =
        match Service.handle service ~src:1 (Messages.Apply { group; pos = 1; entry }) with
        | Messages.Applied -> ()
        | _ -> Alcotest.fail "apply"
      in
      apply ();
      apply ();
      apply ();
      Alcotest.(check int) "replays counted" 2
        (Service.dedup_stats service).Service.dup_applies;
      (match Service.handle service ~src:0 (Messages.Get_read_position { group }) with
      | Messages.Read_position { position = 1; _ } -> ()
      | _ -> Alcotest.fail "log advanced past the duplicate");
      match Service.handle service ~src:0 (Messages.Read { group; key = "x"; position = 1 }) with
      | Messages.Value { value = Some "1" } -> ()
      | _ -> Alcotest.fail "value applied once")

let test_service_duplicate_submit_same_position () =
  (* A duplicated or replayed submission (duplicating link, client retry
     under the leader protocol) is answered with the position the
     transaction already holds — sequencing it twice is an L2 violation
     (found by gray-failure chaos seed 2). *)
  with_service (fun _cluster service ->
      let r = record "t1" ~writes:[ ("x", "1") ] in
      let submit () =
        match
          Service.handle service ~src:0 (Messages.Submit { group; record = r })
        with
        | Messages.Submit_reply { result = Messages.Accepted_at pos } -> pos
        | _ -> Alcotest.fail "submit accepted"
      in
      let first = submit () in
      let replay = submit () in
      Alcotest.(check int) "same position, not a second slot" first replay;
      Alcotest.(check int) "replay counted" 1
        (Service.dedup_stats service).Service.dup_submits)

let test_service_duplicate_claim_first_wins () =
  (* The leadership claim is a durable first-wins register: a replayed
     claim from the registered owner gets the original grant back (and is
     counted), a rival is still refused. *)
  with_service (fun _cluster service ->
      let claim claimant =
        match
          Service.handle service ~src:1
            (Messages.Claim_leadership { group; pos = 1; claimant })
        with
        | Messages.Claim_reply { first } -> first
        | _ -> Alcotest.fail "claim reply"
      in
      Alcotest.(check bool) "first claim granted" true (claim "dc1");
      Alcotest.(check bool) "replayed claim re-granted, not re-won" true (claim "dc1");
      Alcotest.(check bool) "rival refused" false (claim "dc2");
      let stats = Service.dedup_stats service in
      Alcotest.(check int) "replay counted" 1 stats.Service.dup_claims)

let () =
  Alcotest.run "core"
    [
      ( "service",
        [
          Alcotest.test_case "prepare promise/reject" `Quick test_service_prepare_promise_reject;
          Alcotest.test_case "accept and vote" `Quick test_service_accept_and_vote;
          Alcotest.test_case "fast accept" `Quick test_service_fast_accept;
          Alcotest.test_case "apply and read position" `Quick test_service_apply_and_read_position;
          Alcotest.test_case "versioned reads" `Quick test_service_read_serves_versions;
          Alcotest.test_case "leadership claims" `Quick test_service_claim;
          Alcotest.test_case "read triggers learn" `Quick test_service_read_with_learn;
          Alcotest.test_case "restart keeps promises" `Quick test_service_restart_keeps_promises;
          Alcotest.test_case "proposer adopts existing vote" `Quick test_proposer_adopts_existing_vote;
          Alcotest.test_case "fast path falls back" `Quick test_fast_path_falls_back;
        ] );
      ( "combine",
        [
          Alcotest.test_case "own alone" `Quick test_combine_includes_own;
          Alcotest.test_case "compatible candidates" `Quick test_combine_compatible;
          Alcotest.test_case "ordering matters" `Quick test_combine_ordering_matters;
          Alcotest.test_case "conflicting dropped" `Quick test_combine_conflicting_dropped;
          Alcotest.test_case "dedup" `Quick test_combine_dedup;
          Alcotest.test_case "greedy beyond limit" `Quick test_combine_greedy_beyond_limit;
          Alcotest.test_case "budget cutover to greedy" `Quick test_combine_budget_cutover;
          Alcotest.test_case "candidates of votes" `Quick test_candidates_of_votes;
          QCheck_alcotest.to_alcotest prop_combine_always_valid;
          QCheck_alcotest.to_alcotest prop_combine_exhaustive_is_optimal;
          QCheck_alcotest.to_alcotest prop_combine_identical_ordering;
          QCheck_alcotest.to_alcotest prop_combine_identical_ordering_deep;
        ] );
      ( "config-audit",
        [
          Alcotest.test_case "config" `Quick test_config;
          Alcotest.test_case "audit aggregates" `Quick test_audit_aggregates;
        ] );
      ( "adaptive-timeouts",
        [
          QCheck_alcotest.to_alcotest prop_rtt_bounded;
          QCheck_alcotest.to_alcotest prop_rtt_monotone;
          Alcotest.test_case "exact fallback with flags off" `Quick
            test_timeout_fallback_exact;
        ] );
      ( "duplicate-delivery",
        [
          Alcotest.test_case "replayed apply absorbed" `Quick
            test_service_duplicate_apply_idempotent;
          Alcotest.test_case "replayed submit keeps its position" `Quick
            test_service_duplicate_submit_same_position;
          Alcotest.test_case "replayed claim re-granted" `Quick
            test_service_duplicate_claim_first_wins;
        ] );
    ]
