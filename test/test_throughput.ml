(* Tests for throughput mode (DESIGN.md §14): transaction batching and
   k-deep pipelined log positions. The mode is opt-in
   ({!Config.throughput}); everything here runs the batched/pipelined
   submit path and checks it against the same oracles as the default
   path — plus equivalence against the default path itself. *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Service = Mdds_core.Service
module Messages = Mdds_core.Messages
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Checker = Mdds_serial.Checker
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng
module Txn = Mdds_types.Txn

let group = "g"

let committed = function
  | Audit.Committed _ | Audit.Read_only_committed -> true
  | Audit.Aborted _ | Audit.Unknown -> false

let make ?(seed = 42) ?(spec = "VVV") ?(batch_max = 8) ?(pipeline_depth = 4)
    ?batch_fill () =
  let config = Config.throughput ~batch_max ~pipeline_depth Config.leader in
  let config =
    match batch_fill with
    | Some batch_fill -> { config with Config.batch_fill }
    | None -> config
  in
  Cluster.create ~seed ~config (Topology.ec2 spec)

let total_stats cluster =
  List.fold_left
    (fun (b, t, p, s) svc ->
      let st = Service.throughput_stats svc in
      ( b + st.Service.batches,
        t + st.Service.batched_txns,
        p + st.Service.pipelined_rounds,
        s + st.Service.pipeline_stalls ))
    (0, 0, 0, 0) (Cluster.services cluster)

(* ------------------------------------------------------------------ *)
(* Batching.                                                            *)

(* Satellite regression (notify-on-batched-commit): three clients whose
   transactions are combined into ONE batch proposed by the manager's
   drainer — not by any of their own submit handlers — must each still
   learn the outcome and the position. *)
let test_batched_commit_same_position () =
  (* A fill window wider than the per-request processing jitter, so all
     three submissions deterministically land in one batch. *)
  let cluster = make ~batch_fill:0.15 () in
  let outcomes = ref [] in
  for i = 0 to 2 do
    (* All in the manager's own datacenter so the three submissions land
       within one fill window deterministically. *)
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let positions =
    List.filter_map
      (function Audit.Committed { position; _ } -> Some position | _ -> None)
      !outcomes
  in
  Alcotest.(check int) "all three commit" 3 (List.length positions);
  (match positions with
  | [ a; b; c ] ->
      Alcotest.(check bool) "one shared position" true (a = b && b = c)
  | _ -> assert false);
  let log = Cluster.committed_log cluster ~group in
  (match log with
  | [ (_, entry) ] -> Alcotest.(check int) "one entry of 3" 3 (List.length entry)
  | _ -> Alcotest.failf "expected one log entry, got %d" (List.length log));
  let batches, batched_txns, _, _ = total_stats cluster in
  Alcotest.(check int) "one batch" 1 batches;
  Alcotest.(check int) "three batched txns" 3 batched_txns;
  Verify.check_exn cluster ~group

let test_batched_conflicting_rmw () =
  (* Two read-modify-writes of the same key arriving in the same fill
     window: Combine admission defers the second out of the batch, and the
     retry sees the first's committed write — one commit, one conflict
     abort, exactly the unbatched semantics. *)
  let cluster = make () in
  let outcomes = ref [] in
  for _ = 0 to 1 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn "counter");
        Client.write txn "counter" (Client.txn_id txn);
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let commits = List.length (List.filter committed !outcomes) in
  let conflicts =
    List.length
      (List.filter
         (function
           | Audit.Aborted { reason = Audit.Conflict; _ } -> true | _ -> false)
         !outcomes)
  in
  Alcotest.(check int) "one commits" 1 commits;
  Alcotest.(check int) "one conflict" 1 conflicts;
  Verify.check_exn cluster ~group

let test_batched_disjoint_reads_commit () =
  (* Reads of keys nobody overwrote stay fresh through batching: mixed
     read/write transactions over disjoint keys all commit. *)
  let cluster = make () in
  let outcomes = ref [] in
  for i = 0 to 4 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn (Printf.sprintf "k%d" i));
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  Alcotest.(check int) "all commit" 5
    (List.length (List.filter committed !outcomes));
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Pipelining.                                                          *)

let test_pipeline_overlaps_positions () =
  (* batch_max 1 forces one transaction per position; six concurrent
     submissions must still drain through overlapping in-flight positions
     (sequenced rounds), not one round-trip each. *)
  let cluster = make ~batch_max:1 ~pipeline_depth:4 () in
  let outcomes = ref [] in
  for i = 0 to 5 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let positions =
    List.filter_map
      (function Audit.Committed { position; _ } -> Some position | _ -> None)
      !outcomes
  in
  Alcotest.(check int) "all six commit" 6 (List.length positions);
  Alcotest.(check int) "six distinct positions" 6
    (List.length (List.sort_uniq Int.compare positions));
  let _, _, pipelined, _ = total_stats cluster in
  Alcotest.(check bool) "sequenced rounds actually overlapped" true
    (pipelined > 0);
  Verify.check_exn cluster ~group

let test_pipeline_resolves_after_storm () =
  (* Degrade the network so some round-0 rounds time out mid-window: the
     failed rounds must stall the pipeline and resolve in log order, with
     honest outcomes and a serializable log — never a silent gap. *)
  let cluster = make ~seed:7 ~batch_max:1 ~pipeline_depth:4 () in
  for i = 0 to 7 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        Engine.sleep (0.01 *. float_of_int i);
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        try ignore (Client.commit txn) with Client.Unavailable _ -> ())
  done;
  Engine.schedule (Cluster.engine cluster) ~at:0.02 (fun () ->
      Cluster.storm cluster ~loss:0.6 ~jitter:0.5);
  Engine.schedule (Cluster.engine cluster) ~at:8.0 (fun () ->
      Cluster.calm cluster);
  Cluster.run cluster;
  Verify.check_exn cluster ~group

let test_restart_orphans_batchers () =
  (* A manager restart mid-batch orphans the queued submissions: their
     clients may end Unknown (like any down-manager window), but nothing
     dishonest is reported and the manager keeps serving afterwards. *)
  let cluster = make ~seed:5 () in
  let late_outcome = ref None in
  for i = 0 to 2 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        try ignore (Client.commit txn) with Client.Unavailable _ -> ())
  done;
  Engine.schedule (Cluster.engine cluster) ~at:0.004 (fun () ->
      Cluster.restart cluster 0);
  let late = Cluster.client cluster ~dc:0 in
  Cluster.spawn ~at:15.0 cluster (fun () ->
      let txn = Client.begin_ late ~group in
      Client.write txn "late" "v";
      late_outcome := Some (Client.commit txn));
  Cluster.run cluster;
  (match !late_outcome with
  | Some o -> Alcotest.(check bool) "manager serves after restart" true (committed o)
  | None -> Alcotest.fail "late transaction never ran");
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Duplicate submissions (the PR-6 dedup rule on the batched path).      *)

let test_dup_submit_while_batched () =
  let cluster = make () in
  let service = Cluster.service cluster 0 in
  let r1 = ref None and r2 = ref None and r3 = ref None in
  let record =
    Txn.make_record ~txn_id:"dup" ~origin:0 ~read_position:0 ~reads:[]
      ~writes:[ { Txn.key = "x"; value = "1" } ]
  in
  let submit () =
    Service.handle service ~src:0 (Messages.Submit { group; record })
  in
  Cluster.spawn cluster (fun () -> r1 := Some (submit ()));
  Cluster.spawn cluster (fun () ->
      (* Arrives while the original is still queued in the fill window:
         must attach to the same pending, not sequence a second copy. *)
      Engine.sleep 0.001;
      r2 := Some (submit ()));
  Cluster.spawn ~at:20.0 cluster (fun () ->
      (* Replay long after commit: answered from the log. *)
      r3 := Some (submit ()));
  Cluster.run cluster;
  let position = function
    | Some (Messages.Submit_reply { result = Messages.Accepted_at p }) -> p
    | _ -> Alcotest.fail "expected Accepted_at"
  in
  let p1 = position !r1 and p2 = position !r2 and p3 = position !r3 in
  Alcotest.(check int) "dup learns the same position" p1 p2;
  Alcotest.(check int) "post-commit replay answered from log" p1 p3;
  Alcotest.(check int) "both dups counted" 2
    (Service.dedup_stats service).Service.dup_submits;
  let log = Cluster.committed_log cluster ~group in
  Alcotest.(check int) "sequenced exactly once" 1
    (List.length (List.concat_map snd log));
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Equivalence with the unbatched path (QCheck).                        *)

(* A workload of [n] transactions: per txn a home datacenter, a start
   delay, its own private key (written; sometimes read first). Private
   keys make the workload conflict-free, so batched and unbatched
   executions must produce *identical* outcomes, not merely equivalent
   ones. *)
type disjoint_txn = { dc : int; delay : float; read_first : bool }

let disjoint_gen =
  QCheck.Gen.(
    list_size (int_range 2 10)
      (map3
         (fun dc d read_first ->
           { dc; delay = 0.002 *. float_of_int d; read_first })
         (int_range 0 2) (int_range 0 20) bool))

let run_workload config ~seed txns =
  let cluster = Cluster.create ~seed ~config (Topology.ec2 "VVV") in
  let outcomes = Array.make (List.length txns) None in
  List.iteri
    (fun i { dc; delay; read_first } ->
      let client = Cluster.client cluster ~id:(Printf.sprintf "c%d" i) ~dc in
      Cluster.spawn cluster (fun () ->
          Engine.sleep delay;
          let txn = Client.begin_ client ~group in
          let key = Printf.sprintf "k%d" i in
          if read_first then ignore (Client.read txn key);
          Client.write txn key (Printf.sprintf "v%d" i);
          outcomes.(i) <- Some (Client.commit txn)))
    txns;
  Cluster.run cluster;
  Verify.check_exn cluster ~group;
  let log = Cluster.committed_log cluster ~group in
  (match Checker.check_log log with
  | Ok () -> ()
  | Error v -> Alcotest.failf "serial checker: %a" Checker.pp_violation v);
  let final = Hashtbl.create 16 in
  List.iter
    (fun (_, entry) ->
      List.iter
        (fun (r : Txn.record) ->
          List.iter
            (fun (w : Txn.write) -> Hashtbl.replace final w.Txn.key w.Txn.value)
            r.Txn.writes)
        entry)
    log;
  let committed_ids =
    List.concat_map (fun (_, e) -> List.map (fun r -> r.Txn.txn_id) e) log
    |> List.sort String.compare
  in
  let states =
    Array.to_list outcomes |> List.map (Option.map committed)
  in
  (states, committed_ids, Hashtbl.fold (fun k v acc -> (k, v) :: acc) final []
                          |> List.sort compare)

let prop_disjoint_equivalence =
  QCheck.Test.make ~name:"batched path = unbatched path on disjoint workloads"
    ~count:30
    (QCheck.make disjoint_gen)
    (fun txns ->
      let baseline = run_workload Config.leader ~seed:9 txns in
      let batched =
        run_workload (Config.throughput Config.leader) ~seed:9 txns
      in
      let b_states, b_ids, b_final = baseline in
      let t_states, t_ids, t_final = batched in
      b_states = t_states && b_ids = t_ids && b_final = t_final)

(* Conflicting workloads: outcomes may legitimately differ from the
   unbatched run (ordering differs), but the batched history must always
   be accepted by the one-copy-serializability checker, with honest
   audit outcomes — and must actually commit something. *)
let test_conflicting_workload_serializable () =
  List.iter
    (fun seed ->
      let config = Config.throughput ~batch_max:4 ~pipeline_depth:2 Config.leader in
      let cluster = Cluster.create ~seed ~config (Topology.ec2 "VOC") in
      let commits = ref 0 in
      for dc = 0 to 2 do
        let client = Cluster.client cluster ~dc in
        let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
        Cluster.spawn cluster (fun () ->
            for _ = 1 to 6 do
              let txn = Client.begin_ client ~group in
              for _ = 1 to 3 do
                let key = Printf.sprintf "k%d" (Rng.int rng 4) in
                if Rng.bool rng 0.5 then ignore (Client.read txn key)
                else Client.write txn key (Client.txn_id txn)
              done;
              if committed (Client.commit txn) then incr commits;
              Engine.sleep (Rng.uniform rng 0.0 0.2)
            done)
      done;
      Cluster.run cluster;
      (match Verify.check cluster ~group with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m);
      (match Checker.check_log (Cluster.committed_log cluster ~group) with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "seed %d serial checker: %a" seed Checker.pp_violation v);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d commits something" seed)
        true (!commits > 0))
    [ 1; 2; 3; 4; 5 ]

(* Figures stay byte-identical with the mode off: the config helpers do
   not perturb the default. *)
let test_mode_off_by_default () =
  Alcotest.(check bool) "default off" false (Config.throughput_mode Config.default);
  Alcotest.(check bool) "leader preset off" false
    (Config.throughput_mode Config.leader);
  Alcotest.(check bool) "helper turns it on" true
    (Config.throughput_mode (Config.throughput Config.default))

let () =
  Alcotest.run "throughput"
    [
      ( "batching",
        [
          Alcotest.test_case "three txns, one position" `Quick
            test_batched_commit_same_position;
          Alcotest.test_case "conflicting RMWs serialized" `Quick
            test_batched_conflicting_rmw;
          Alcotest.test_case "disjoint read/writes all commit" `Quick
            test_batched_disjoint_reads_commit;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "overlapping in-flight positions" `Quick
            test_pipeline_overlaps_positions;
          Alcotest.test_case "window resolves under storm" `Quick
            test_pipeline_resolves_after_storm;
          Alcotest.test_case "restart orphans batchers" `Quick
            test_restart_orphans_batchers;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "duplicate Submit of a batched txn" `Quick
            test_dup_submit_while_batched;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_disjoint_equivalence;
          Alcotest.test_case "conflicting workloads stay 1SR" `Quick
            test_conflicting_workload_serializable;
          Alcotest.test_case "mode off by default" `Quick
            test_mode_off_by_default;
        ] );
    ]
