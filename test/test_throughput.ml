(* Tests for throughput mode (DESIGN.md §14): transaction batching and
   k-deep pipelined log positions. The mode is opt-in
   ({!Config.throughput}); everything here runs the batched/pipelined
   submit path and checks it against the same oracles as the default
   path — plus equivalence against the default path itself. *)

module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Service = Mdds_core.Service
module Messages = Mdds_core.Messages
module Audit = Mdds_core.Audit
module Verify = Mdds_core.Verify
module Checker = Mdds_serial.Checker
module Topology = Mdds_net.Topology
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng
module Txn = Mdds_types.Txn
module Ballot = Mdds_paxos.Ballot

let group = "g"

let committed = function
  | Audit.Committed _ | Audit.Read_only_committed -> true
  | Audit.Aborted _ | Audit.Unknown -> false

let make ?(seed = 42) ?(spec = "VVV") ?(batch_max = 8) ?(pipeline_depth = 4)
    ?batch_fill ?epoch_interval () =
  let config = Config.throughput ~batch_max ~pipeline_depth Config.leader in
  let config =
    match batch_fill with
    | Some batch_fill -> { config with Config.batch_fill }
    | None -> config
  in
  let config =
    match epoch_interval with
    | Some epoch_interval -> { config with Config.epoch_interval }
    | None -> config
  in
  Cluster.create ~seed ~config (Topology.ec2 spec)

let total_stats cluster =
  List.fold_left
    (fun (b, t, p, s, e, et) svc ->
      let st = Service.throughput_stats svc in
      ( b + st.Service.batches,
        t + st.Service.batched_txns,
        p + st.Service.pipelined_rounds,
        s + st.Service.pipeline_stalls,
        e + st.Service.epochs_sealed,
        et + st.Service.epoch_txns ))
    (0, 0, 0, 0, 0, 0) (Cluster.services cluster)

(* ------------------------------------------------------------------ *)
(* Batching.                                                            *)

(* Satellite regression (notify-on-batched-commit): three clients whose
   transactions are combined into ONE batch proposed by the manager's
   drainer — not by any of their own submit handlers — must each still
   learn the outcome and the position. *)
let test_batched_commit_same_position () =
  (* A fill window wider than the per-request processing jitter, so all
     three submissions deterministically land in one batch. *)
  let cluster = make ~batch_fill:0.15 () in
  let outcomes = ref [] in
  for i = 0 to 2 do
    (* All in the manager's own datacenter so the three submissions land
       within one fill window deterministically. *)
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let positions =
    List.filter_map
      (function Audit.Committed { position; _ } -> Some position | _ -> None)
      !outcomes
  in
  Alcotest.(check int) "all three commit" 3 (List.length positions);
  (match positions with
  | [ a; b; c ] ->
      Alcotest.(check bool) "one shared position" true (a = b && b = c)
  | _ -> assert false);
  let log = Cluster.committed_log cluster ~group in
  (match log with
  | [ (_, entry) ] -> Alcotest.(check int) "one entry of 3" 3 (List.length entry)
  | _ -> Alcotest.failf "expected one log entry, got %d" (List.length log));
  let batches, batched_txns, _, _, _, _ = total_stats cluster in
  Alcotest.(check int) "one batch" 1 batches;
  Alcotest.(check int) "three batched txns" 3 batched_txns;
  Verify.check_exn cluster ~group

let test_batched_conflicting_rmw () =
  (* Two read-modify-writes of the same key arriving in the same fill
     window: Combine admission defers the second out of the batch, and the
     retry sees the first's committed write — one commit, one conflict
     abort, exactly the unbatched semantics. *)
  let cluster = make () in
  let outcomes = ref [] in
  for _ = 0 to 1 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn "counter");
        Client.write txn "counter" (Client.txn_id txn);
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let commits = List.length (List.filter committed !outcomes) in
  let conflicts =
    List.length
      (List.filter
         (function
           | Audit.Aborted { reason = Audit.Conflict; _ } -> true | _ -> false)
         !outcomes)
  in
  Alcotest.(check int) "one commits" 1 commits;
  Alcotest.(check int) "one conflict" 1 conflicts;
  Verify.check_exn cluster ~group

let test_batched_disjoint_reads_commit () =
  (* Reads of keys nobody overwrote stay fresh through batching: mixed
     read/write transactions over disjoint keys all commit. *)
  let cluster = make () in
  let outcomes = ref [] in
  for i = 0 to 4 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        ignore (Client.read txn (Printf.sprintf "k%d" i));
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  Alcotest.(check int) "all commit" 5
    (List.length (List.filter committed !outcomes));
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Pipelining.                                                          *)

let test_pipeline_overlaps_positions () =
  (* batch_max 1 forces one transaction per position; six concurrent
     submissions must still drain through overlapping in-flight positions
     (sequenced rounds), not one round-trip each. *)
  let cluster = make ~batch_max:1 ~pipeline_depth:4 () in
  let outcomes = ref [] in
  for i = 0 to 5 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let positions =
    List.filter_map
      (function Audit.Committed { position; _ } -> Some position | _ -> None)
      !outcomes
  in
  Alcotest.(check int) "all six commit" 6 (List.length positions);
  Alcotest.(check int) "six distinct positions" 6
    (List.length (List.sort_uniq Int.compare positions));
  let _, _, pipelined, _, _, _ = total_stats cluster in
  Alcotest.(check bool) "sequenced rounds actually overlapped" true
    (pipelined > 0);
  Verify.check_exn cluster ~group

let test_pipeline_resolves_after_storm () =
  (* Degrade the network so some round-0 rounds time out mid-window: the
     failed rounds must stall the pipeline and resolve in log order, with
     honest outcomes and a serializable log — never a silent gap. *)
  let cluster = make ~seed:7 ~batch_max:1 ~pipeline_depth:4 () in
  for i = 0 to 7 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        Engine.sleep (0.01 *. float_of_int i);
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        try ignore (Client.commit txn) with Client.Unavailable _ -> ())
  done;
  Engine.schedule (Cluster.engine cluster) ~at:0.02 (fun () ->
      Cluster.storm cluster ~loss:0.6 ~jitter:0.5);
  Engine.schedule (Cluster.engine cluster) ~at:8.0 (fun () ->
      Cluster.calm cluster);
  Cluster.run cluster;
  Verify.check_exn cluster ~group

(* Review fix (1SR violation): a sequenced grant must match the
   predecessor ENTRY, not just the round-0 ballot. Ballot 0 is reused at
   a position across attempts (a given-up exposed round, lingering
   pre-restart accepts), so ballot-equal votes for different entries can
   coexist at pos−1; granting on ballot equality alone would let a
   sequenced quorum at pos "prove" a predecessor chosen that never was. *)
let test_sequenced_entry_mismatch_refused () =
  let cluster = make () in
  let service = Cluster.service cluster 0 in
  let record id =
    Txn.make_record ~txn_id:id ~origin:0 ~read_position:0 ~reads:[]
      ~writes:[ { Txn.key = "k-" ^ id; value = "1" } ]
  in
  let entry_a = [ record "a" ]
  and entry_b = [ record "b" ]
  and entry_c = [ record "c" ] in
  let fast = Ballot.fast ~proposer:0 in
  let accept ~pos ~entry ~sequenced =
    match
      Service.handle service ~src:0
        (Messages.Accept { group; pos; ballot = fast; entry; sequenced })
    with
    | Messages.Accept_reply { ok; _ } -> ok
    | _ -> Alcotest.fail "expected Accept_reply"
  in
  let granted_1 = ref false and wrong_prev = ref true and right_prev = ref false in
  Cluster.spawn cluster (fun () ->
      (* Round-0 vote at pos 1 for entry_a. *)
      granted_1 := accept ~pos:1 ~entry:entry_a ~sequenced:None;
      (* Sequenced accept at pos 2 claiming entry_b as predecessor: the
         ballot at pos 1 matches but the entry does not — refused. *)
      wrong_prev := accept ~pos:2 ~entry:entry_c ~sequenced:(Some entry_b);
      (* Same accept carrying the true predecessor entry: granted. *)
      right_prev := accept ~pos:2 ~entry:entry_c ~sequenced:(Some entry_a));
  Cluster.run cluster;
  Alcotest.(check bool) "round-0 vote at pos 1 granted" true !granted_1;
  Alcotest.(check bool) "predecessor-entry mismatch refused" false !wrong_prev;
  Alcotest.(check bool) "matching predecessor granted" true !right_prev

(* Review fix: a restart during the drainer's fill sleep must (a) resolve
   every orphaned pending so its submit-handler fiber unwinds — before
   the fix they stayed suspended in await_pending forever — and (b) stop
   the old drainer from launching one more batch from the pre-restart
   queues, which would race the post-restart batcher for the same
   positions at the same round-0 ballot. *)
let test_restart_during_fill_window () =
  let cluster = make ~batch_fill:0.2 () in
  let service = Cluster.service cluster 0 in
  let replies = Array.make 3 None in
  for i = 0 to 2 do
    let record =
      Txn.make_record ~txn_id:(Printf.sprintf "t%d" i) ~origin:0
        ~read_position:0 ~reads:[]
        ~writes:[ { Txn.key = Printf.sprintf "k%d" i; value = "v" } ]
    in
    Cluster.spawn cluster (fun () ->
        replies.(i) <-
          Some (Service.handle service ~src:0 (Messages.Submit { group; record })))
  done;
  (* Lands inside the 0.2 s fill sleep, before any launch. *)
  Engine.schedule (Cluster.engine cluster) ~at:0.05 (fun () ->
      Cluster.restart cluster 0);
  let late_outcome = ref None in
  let late = Cluster.client cluster ~dc:0 in
  Cluster.spawn ~at:5.0 cluster (fun () ->
      let txn = Client.begin_ late ~group in
      Client.write txn "late" "v";
      late_outcome := Some (Client.commit txn));
  Cluster.run cluster;
  Array.iteri
    (fun i reply ->
      match reply with
      | Some
          (Messages.Submit_reply
             { result = Messages.No_quorum | Messages.In_doubt }) ->
          ()
      | Some _ -> Alcotest.failf "submission %d: dishonest orphan outcome" i
      | None -> Alcotest.failf "submission %d never resolved" i)
    replies;
  (match !late_outcome with
  | Some o ->
      Alcotest.(check bool) "manager serves after restart" true (committed o)
  | None -> Alcotest.fail "late transaction never ran");
  (* Only the post-restart submission was ever proposed: the orphaned
     drainer launched nothing from the pre-restart queues. *)
  let batches, batched_txns, _, _, _, _ = total_stats cluster in
  Alcotest.(check int) "no orphan launch after restart" 1 batches;
  Alcotest.(check int) "only the late txn batched" 1 batched_txns;
  Verify.check_exn cluster ~group

let test_restart_orphans_batchers () =
  (* A manager restart mid-batch orphans the queued submissions: their
     clients may end Unknown (like any down-manager window), but nothing
     dishonest is reported and the manager keeps serving afterwards. *)
  let cluster = make ~seed:5 () in
  let late_outcome = ref None in
  for i = 0 to 2 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        try ignore (Client.commit txn) with Client.Unavailable _ -> ())
  done;
  Engine.schedule (Cluster.engine cluster) ~at:0.004 (fun () ->
      Cluster.restart cluster 0);
  let late = Cluster.client cluster ~dc:0 in
  Cluster.spawn ~at:15.0 cluster (fun () ->
      let txn = Client.begin_ late ~group in
      Client.write txn "late" "v";
      late_outcome := Some (Client.commit txn));
  Cluster.run cluster;
  (match !late_outcome with
  | Some o -> Alcotest.(check bool) "manager serves after restart" true (committed o)
  | None -> Alcotest.fail "late transaction never ran");
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Duplicate submissions (the PR-6 dedup rule on the batched path).      *)

let test_dup_submit_while_batched () =
  let cluster = make () in
  let service = Cluster.service cluster 0 in
  let r1 = ref None and r2 = ref None and r3 = ref None in
  let record =
    Txn.make_record ~txn_id:"dup" ~origin:0 ~read_position:0 ~reads:[]
      ~writes:[ { Txn.key = "x"; value = "1" } ]
  in
  let submit () =
    Service.handle service ~src:0 (Messages.Submit { group; record })
  in
  Cluster.spawn cluster (fun () -> r1 := Some (submit ()));
  Cluster.spawn cluster (fun () ->
      (* Arrives while the original is still queued in the fill window:
         must attach to the same pending, not sequence a second copy. *)
      Engine.sleep 0.001;
      r2 := Some (submit ()));
  Cluster.spawn ~at:20.0 cluster (fun () ->
      (* Replay long after commit: answered from the log. *)
      r3 := Some (submit ()));
  Cluster.run cluster;
  let position = function
    | Some (Messages.Submit_reply { result = Messages.Accepted_at p }) -> p
    | _ -> Alcotest.fail "expected Accepted_at"
  in
  let p1 = position !r1 and p2 = position !r2 and p3 = position !r3 in
  Alcotest.(check int) "dup learns the same position" p1 p2;
  Alcotest.(check int) "post-commit replay answered from log" p1 p3;
  Alcotest.(check int) "both dups counted" 2
    (Service.dedup_stats service).Service.dup_submits;
  let log = Cluster.committed_log cluster ~group in
  Alcotest.(check int) "sequenced exactly once" 1
    (List.length (List.concat_map snd log));
  Verify.check_exn cluster ~group

(* ------------------------------------------------------------------ *)
(* Equivalence with the unbatched path (QCheck).                        *)

(* A workload of [n] transactions: per txn a home datacenter, a start
   delay, its own private key (written; sometimes read first). Private
   keys make the workload conflict-free, so batched and unbatched
   executions must produce *identical* outcomes, not merely equivalent
   ones. *)
type disjoint_txn = { dc : int; delay : float; read_first : bool }

let disjoint_gen =
  QCheck.Gen.(
    list_size (int_range 2 10)
      (map3
         (fun dc d read_first ->
           { dc; delay = 0.002 *. float_of_int d; read_first })
         (int_range 0 2) (int_range 0 20) bool))

let run_workload config ~seed txns =
  let cluster = Cluster.create ~seed ~config (Topology.ec2 "VVV") in
  let outcomes = Array.make (List.length txns) None in
  List.iteri
    (fun i { dc; delay; read_first } ->
      let client = Cluster.client cluster ~id:(Printf.sprintf "c%d" i) ~dc in
      Cluster.spawn cluster (fun () ->
          Engine.sleep delay;
          let txn = Client.begin_ client ~group in
          let key = Printf.sprintf "k%d" i in
          if read_first then ignore (Client.read txn key);
          Client.write txn key (Printf.sprintf "v%d" i);
          outcomes.(i) <- Some (Client.commit txn)))
    txns;
  Cluster.run cluster;
  Verify.check_exn cluster ~group;
  let log = Cluster.committed_log cluster ~group in
  (match Checker.check_log log with
  | Ok () -> ()
  | Error v -> Alcotest.failf "serial checker: %a" Checker.pp_violation v);
  let final = Hashtbl.create 16 in
  List.iter
    (fun (_, entry) ->
      List.iter
        (fun (r : Txn.record) ->
          List.iter
            (fun (w : Txn.write) -> Hashtbl.replace final w.Txn.key w.Txn.value)
            r.Txn.writes)
        entry)
    log;
  let committed_ids =
    List.concat_map (fun (_, e) -> List.map (fun r -> r.Txn.txn_id) e) log
    |> List.sort String.compare
  in
  let states =
    Array.to_list outcomes |> List.map (Option.map committed)
  in
  (states, committed_ids, Hashtbl.fold (fun k v acc -> (k, v) :: acc) final []
                          |> List.sort compare)

let prop_disjoint_equivalence =
  QCheck.Test.make ~name:"batched path = unbatched path on disjoint workloads"
    ~count:30
    (QCheck.make disjoint_gen)
    (fun txns ->
      let baseline = run_workload Config.leader ~seed:9 txns in
      let batched =
        run_workload (Config.throughput Config.leader) ~seed:9 txns
      in
      let b_states, b_ids, b_final = baseline in
      let t_states, t_ids, t_final = batched in
      b_states = t_states && b_ids = t_ids && b_final = t_final)

(* Conflicting workloads: outcomes may legitimately differ from the
   unbatched run (ordering differs), but the batched history must always
   be accepted by the one-copy-serializability checker, with honest
   audit outcomes — and must actually commit something. *)
let test_conflicting_workload_serializable () =
  List.iter
    (fun seed ->
      let config = Config.throughput ~batch_max:4 ~pipeline_depth:2 Config.leader in
      let cluster = Cluster.create ~seed ~config (Topology.ec2 "VOC") in
      let commits = ref 0 in
      for dc = 0 to 2 do
        let client = Cluster.client cluster ~dc in
        let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
        Cluster.spawn cluster (fun () ->
            for _ = 1 to 6 do
              let txn = Client.begin_ client ~group in
              for _ = 1 to 3 do
                let key = Printf.sprintf "k%d" (Rng.int rng 4) in
                if Rng.bool rng 0.5 then ignore (Client.read txn key)
                else Client.write txn key (Client.txn_id txn)
              done;
              if committed (Client.commit txn) then incr commits;
              Engine.sleep (Rng.uniform rng 0.0 0.2)
            done)
      done;
      Cluster.run cluster;
      (match Verify.check cluster ~group with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m);
      (match Checker.check_log (Cluster.committed_log cluster ~group) with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "seed %d serial checker: %a" seed Checker.pp_violation v);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d commits something" seed)
        true (!commits > 0))
    [ 1; 2; 3; 4; 5 ]

(* Figures stay byte-identical with the mode off: the config helpers do
   not perturb the default. *)
let test_mode_off_by_default () =
  Alcotest.(check bool) "default off" false (Config.throughput_mode Config.default);
  Alcotest.(check bool) "leader preset off" false
    (Config.throughput_mode Config.leader);
  Alcotest.(check bool) "helper turns it on" true
    (Config.throughput_mode (Config.throughput Config.default));
  Alcotest.(check bool) "epoch off by default" false
    (Config.epoch_mode Config.default);
  Alcotest.(check bool) "epoch helper turns both on" true
    (let c = Config.epoch Config.leader in
     Config.epoch_mode c && Config.throughput_mode c);
  Alcotest.check_raises "negative interval rejected"
    (Invalid_argument
       "Config.make: epoch_interval = -0.1 (must be >= 0; 0 disables epoch \
        sealing)") (fun () ->
      ignore (Config.make ~epoch_interval:(-0.1) ()))

(* ------------------------------------------------------------------ *)
(* Epoch-sealed commit (PROTOCOL.md §11).                               *)

(* Three submissions inside one epoch interval seal into ONE multi-record
   log entry at one position — one consensus round for the window. *)
let test_epoch_seals_one_entry () =
  let cluster = make ~batch_max:64 ~epoch_interval:0.15 () in
  let outcomes = ref [] in
  for i = 0 to 2 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  let positions =
    List.filter_map
      (function Audit.Committed { position; _ } -> Some position | _ -> None)
      !outcomes
  in
  Alcotest.(check int) "all three commit" 3 (List.length positions);
  (match positions with
  | [ a; b; c ] ->
      Alcotest.(check bool) "one shared position" true (a = b && b = c)
  | _ -> assert false);
  (match Cluster.committed_log cluster ~group with
  | [ (_, entry) ] ->
      Alcotest.(check int) "one epoch entry of 3" 3 (List.length entry)
  | log -> Alcotest.failf "expected one log entry, got %d" (List.length log));
  let _, _, _, _, epochs, epoch_txns = total_stats cluster in
  Alcotest.(check int) "one epoch sealed" 1 epochs;
  Alcotest.(check int) "the epoch carried all three" 3 epoch_txns;
  Verify.check_exn cluster ~group

(* The epoch fill bound: a full window seals early, the overflow rides
   the next epoch — positions stay dense and everything commits. *)
let test_epoch_fill_bound_seals_early () =
  let cluster = make ~batch_max:2 ~epoch_interval:0.15 () in
  let outcomes = ref [] in
  for i = 0 to 4 do
    let client = Cluster.client cluster ~dc:0 in
    Cluster.spawn cluster (fun () ->
        let txn = Client.begin_ client ~group in
        Client.write txn (Printf.sprintf "k%d" i) "v";
        let outcome = Client.commit txn in
        outcomes := outcome :: !outcomes)
  done;
  Cluster.run cluster;
  Alcotest.(check int) "all five commit" 5
    (List.length (List.filter committed !outcomes));
  let _, _, _, _, epochs, epoch_txns = total_stats cluster in
  Alcotest.(check bool)
    (Printf.sprintf "fill bound 2 forces >= 3 epochs (got %d)" epochs)
    true (epochs >= 3);
  Alcotest.(check int) "epochs carried all five" 5 epoch_txns;
  Verify.check_exn cluster ~group

(* Mirror of test_restart_during_fill_window for the epoch discipline: a
   restart inside the epoch interval must resolve every orphaned pending
   honestly (queued -> No_quorum, exposed -> In_doubt) and never let the
   orphaned drainer seal one more epoch from the pre-restart queues. *)
let test_restart_mid_epoch () =
  let cluster = make ~batch_max:64 ~epoch_interval:0.2 () in
  let service = Cluster.service cluster 0 in
  let replies = Array.make 3 None in
  for i = 0 to 2 do
    let record =
      Txn.make_record ~txn_id:(Printf.sprintf "t%d" i) ~origin:0
        ~read_position:0 ~reads:[]
        ~writes:[ { Txn.key = Printf.sprintf "k%d" i; value = "v" } ]
    in
    Cluster.spawn cluster (fun () ->
        replies.(i) <-
          Some (Service.handle service ~src:0 (Messages.Submit { group; record })))
  done;
  (* Lands inside the 0.2 s epoch interval, before the seal. *)
  Engine.schedule (Cluster.engine cluster) ~at:0.05 (fun () ->
      Cluster.restart cluster 0);
  let late_outcome = ref None in
  let late = Cluster.client cluster ~dc:0 in
  Cluster.spawn ~at:5.0 cluster (fun () ->
      let txn = Client.begin_ late ~group in
      Client.write txn "late" "v";
      late_outcome := Some (Client.commit txn));
  Cluster.run cluster;
  Array.iteri
    (fun i reply ->
      match reply with
      | Some
          (Messages.Submit_reply
             { result = Messages.No_quorum | Messages.In_doubt }) ->
          ()
      | Some _ -> Alcotest.failf "submission %d: dishonest orphan outcome" i
      | None -> Alcotest.failf "submission %d never resolved" i)
    replies;
  (match !late_outcome with
  | Some o ->
      Alcotest.(check bool) "manager serves after restart" true (committed o)
  | None -> Alcotest.fail "late transaction never ran");
  let _, _, _, _, epochs, epoch_txns = total_stats cluster in
  Alcotest.(check int) "no orphan epoch sealed after restart" 1 epochs;
  Alcotest.(check int) "only the late txn in an epoch" 1 epoch_txns;
  Verify.check_exn cluster ~group

(* Epoch mode must be outcome-IDENTICAL to the unbatched path on
   disjoint workloads, exactly like the batched path (same property, new
   discipline): same commit/abort states, same committed ids, same final
   store. *)
let prop_epoch_disjoint_equivalence =
  QCheck.Test.make ~name:"epoch path = unbatched path on disjoint workloads"
    ~count:30
    (QCheck.make disjoint_gen)
    (fun txns ->
      let baseline = run_workload Config.leader ~seed:9 txns in
      let sealed = run_workload (Config.epoch Config.leader) ~seed:9 txns in
      let b_states, b_ids, b_final = baseline in
      let e_states, e_ids, e_final = sealed in
      b_states = e_states && b_ids = e_ids && b_final = e_final)

(* Conflicting workloads under epoch sealing: a txn's home dc, delay and
   three ops over a 4-key space (read or write per coin). Admission must
   defer intra-epoch conflicts, so the epoch history is always accepted
   by the one-copy-serializability checker with honest audit outcomes —
   the QCheck mirror of test_conflicting_workload_serializable. *)
type conflicting_txn = { cdc : int; cdelay : float; ops : (int * bool) list }

let conflicting_gen =
  QCheck.Gen.(
    list_size (int_range 4 12)
      (map3
         (fun cdc d ops -> { cdc; cdelay = 0.01 *. float_of_int d; ops })
         (int_range 0 2) (int_range 0 30)
         (list_size (int_range 1 3) (pair (int_range 0 3) bool))))

let prop_epoch_conflicting_serializable =
  QCheck.Test.make
    ~name:"epoch histories stay 1SR on conflicting workloads" ~count:25
    (QCheck.make conflicting_gen)
    (fun txns ->
      let config = Config.epoch ~fill:8 ~interval:0.05 Config.leader in
      let cluster = Cluster.create ~seed:11 ~config (Topology.ec2 "VVV") in
      List.iteri
        (fun i { cdc; cdelay; ops } ->
          let client =
            Cluster.client cluster ~id:(Printf.sprintf "c%d" i) ~dc:cdc
          in
          Cluster.spawn cluster (fun () ->
              Engine.sleep cdelay;
              let txn = Client.begin_ client ~group in
              List.iter
                (fun (k, read) ->
                  let key = Printf.sprintf "k%d" k in
                  if read then ignore (Client.read txn key)
                  else Client.write txn key (Client.txn_id txn))
                ops;
              ignore (Client.commit txn)))
        txns;
      Cluster.run cluster;
      Verify.check_exn cluster ~group;
      match Checker.check_log (Cluster.committed_log cluster ~group) with
      | Ok () -> true
      | Error v -> QCheck.Test.fail_reportf "%a" Checker.pp_violation v)

(* The seeds battery of test_conflicting_workload_serializable, run under
   the epoch discipline (including pipelined epochs). *)
let test_epoch_conflicting_workload_serializable () =
  List.iter
    (fun seed ->
      let config =
        Config.epoch ~fill:4 ~pipeline_depth:2 ~interval:0.08 Config.leader
      in
      let cluster = Cluster.create ~seed ~config (Topology.ec2 "VOC") in
      let commits = ref 0 in
      for dc = 0 to 2 do
        let client = Cluster.client cluster ~dc in
        let rng = Rng.split (Engine.rng (Cluster.engine cluster)) in
        Cluster.spawn cluster (fun () ->
            for _ = 1 to 6 do
              let txn = Client.begin_ client ~group in
              for _ = 1 to 3 do
                let key = Printf.sprintf "k%d" (Rng.int rng 4) in
                if Rng.bool rng 0.5 then ignore (Client.read txn key)
                else Client.write txn key (Client.txn_id txn)
              done;
              if committed (Client.commit txn) then incr commits;
              Engine.sleep (Rng.uniform rng 0.0 0.2)
            done)
      done;
      Cluster.run cluster;
      (match Verify.check cluster ~group with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m);
      (match Checker.check_log (Cluster.committed_log cluster ~group) with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "seed %d serial checker: %a" seed Checker.pp_violation v);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d commits something" seed)
        true (!commits > 0))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "throughput"
    [
      ( "batching",
        [
          Alcotest.test_case "three txns, one position" `Quick
            test_batched_commit_same_position;
          Alcotest.test_case "conflicting RMWs serialized" `Quick
            test_batched_conflicting_rmw;
          Alcotest.test_case "disjoint read/writes all commit" `Quick
            test_batched_disjoint_reads_commit;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "overlapping in-flight positions" `Quick
            test_pipeline_overlaps_positions;
          Alcotest.test_case "window resolves under storm" `Quick
            test_pipeline_resolves_after_storm;
          Alcotest.test_case "sequenced grant matches predecessor entry" `Quick
            test_sequenced_entry_mismatch_refused;
          Alcotest.test_case "restart during fill window" `Quick
            test_restart_during_fill_window;
          Alcotest.test_case "restart orphans batchers" `Quick
            test_restart_orphans_batchers;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "duplicate Submit of a batched txn" `Quick
            test_dup_submit_while_batched;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_disjoint_equivalence;
          Alcotest.test_case "conflicting workloads stay 1SR" `Quick
            test_conflicting_workload_serializable;
          Alcotest.test_case "mode off by default" `Quick
            test_mode_off_by_default;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "epoch seals one multi-record entry" `Quick
            test_epoch_seals_one_entry;
          Alcotest.test_case "fill bound seals early" `Quick
            test_epoch_fill_bound_seals_early;
          Alcotest.test_case "restart mid-epoch" `Quick test_restart_mid_epoch;
          QCheck_alcotest.to_alcotest prop_epoch_disjoint_equivalence;
          QCheck_alcotest.to_alcotest prop_epoch_conflicting_serializable;
          Alcotest.test_case "epoch conflicting workloads stay 1SR" `Quick
            test_epoch_conflicting_workload_serializable;
        ] );
    ]
