(* Tests for the discrete-event simulation engine: heap, RNG, engine
   scheduling semantics, mailboxes. *)

module Heap = Mdds_sim.Heap
module Rng = Mdds_sim.Rng
module Engine = Mdds_sim.Engine
module Mailbox = Mdds_sim.Mailbox

(* ------------------------------------------------------------------ *)
(* Heap.                                                                *)

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~time:2.0 ~seq:1 "b";
  Heap.push h ~time:1.0 ~seq:2 "a";
  Heap.push h ~time:3.0 ~seq:3 "c";
  Alcotest.(check int) "length" 3 (Heap.length h);
  (match Heap.peek h with
  | Some (t, _, v) ->
      Alcotest.(check (float 0.0)) "peek time" 1.0 t;
      Alcotest.(check string) "peek item" "a" v
  | None -> Alcotest.fail "peek");
  let order = List.init 3 (fun _ -> match Heap.pop h with Some (_, _, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "pop order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~time:5.0 ~seq:i i
  done;
  let order = List.init 10 (fun _ -> match Heap.pop h with Some (_, _, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "FIFO at equal time" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] order

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~time:1.0 ~seq:1 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap pops in nondecreasing (time, seq) order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i i) entries;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (t, s, _) -> (
            match prev with
            | Some (pt, ps) when t < pt || (t = pt && s < ps) -> false
            | _ -> drain (Some (t, s)))
      in
      drain None)

let heap_interleaved_prop =
  (* Interleaved push/pop: the popped sequence is exactly the sorted
     permutation of everything pushed — nothing lost, nothing duplicated,
     nothing resurrected from a vacated slot. Pops mid-stream exercise the
     slot-clearing path (a popped slot must not retain its old entry). *)
  QCheck.Test.make ~name:"heap interleaved push/pop is a sorted permutation"
    ~count:200
    QCheck.(list (option (float_bound_inclusive 1000.0)))
    (fun script ->
      let h = Heap.create () in
      let seq = ref 0 in
      let pushed = ref [] in
      let popped = ref [] in
      List.iter
        (fun op ->
          match op with
          | Some t ->
              incr seq;
              Heap.push h ~time:t ~seq:!seq !seq;
              pushed := (t, !seq) :: !pushed
          | None -> (
              match Heap.pop h with
              | Some (t, s, v) ->
                  popped := (t, s) :: !popped;
                  if v <> s then QCheck.Test.fail_report "payload mismatch"
              | None -> ()))
        script;
      let rec drain () =
        match Heap.pop h with
        | Some (t, s, _) ->
            popped := (t, s) :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      let sorted =
        List.sort
          (fun (t, s) (t', s') ->
            match Float.compare t t' with 0 -> Int.compare s s' | c -> c)
          !pushed
      in
      (* Each pop run emits a nondecreasing subsequence; the multiset of
         all pops must equal the multiset pushed. Sorting the pops and
         comparing to the sorted pushes checks exactly that. *)
      List.equal
        (fun (t, s) (t', s') -> Float.equal t t' && s = s')
        sorted
        (List.sort
           (fun (t, s) (t', s') ->
             match Float.compare t t' with 0 -> Int.compare s s' | c -> c)
           !popped))

(* ------------------------------------------------------------------ *)
(* RNG.                                                                 *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seed differs" true (Rng.int64 a <> Rng.int64 c)

let test_rng_split () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  (* Child and parent streams must not be identical. *)
  let same = ref true in
  for _ = 1 to 20 do
    if Rng.int64 parent <> Rng.int64 child then same := false
  done;
  Alcotest.(check bool) "split independent" false !same

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_rng_ranges () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let n = Rng.int rng 10 in
    if n < 0 || n >= 10 then Alcotest.failf "int out of range: %d" n;
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of range: %f" f;
    let u = Rng.uniform rng 5.0 6.0 in
    if u < 5.0 || u >= 6.0 then Alcotest.failf "uniform out of range: %f" u;
    let e = Rng.exponential rng 1.0 in
    if e < 0.0 then Alcotest.failf "exponential negative: %f" e
  done

let test_rng_bool_bias () =
  let rng = Rng.create 5 in
  let hits = ref 0 in
  let n = 10000 in
  for _ = 1 to n do
    if Rng.bool rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if p < 0.27 || p > 0.33 then Alcotest.failf "bool(0.3) frequency %f" p

let test_rng_shuffle_pick () =
  let rng = Rng.create 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id);
  Alcotest.(check bool) "pick member" true (Array.mem (Rng.pick rng a) a);
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

(* ------------------------------------------------------------------ *)
(* Engine.                                                              *)

let test_engine_time_and_order () =
  let engine = Engine.create () in
  let log = ref [] in
  let note tag = log := (tag, Engine.now engine) :: !log in
  Engine.spawn engine (fun () ->
      note "start";
      Engine.sleep 2.0;
      note "after2");
  Engine.spawn engine (fun () ->
      Engine.sleep 1.0;
      note "after1");
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "ordering"
    [ ("start", 0.0); ("after1", 1.0); ("after2", 2.0) ]
    (List.rev !log)

let test_engine_spawn_at () =
  let engine = Engine.create () in
  let seen = ref (-1.0) in
  Engine.spawn ~at:5.5 engine (fun () -> seen := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "spawn at" 5.5 !seen

let test_engine_run_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.schedule engine ~at:1.0 (fun () -> incr fired);
  Engine.schedule engine ~at:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 engine;
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock clamped" 5.0 (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "resumed" 2 !fired

let test_engine_timer_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let timer = Engine.after engine 1.0 (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run engine;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_engine_pending_excludes_cancelled () =
  (* [pending] counts live events only: a cancelled timer's heap slot
     lingers (lazy deletion keeps event order stable) but must not be
     reported, and double-cancel must not double-count. *)
  let engine = Engine.create () in
  let t1 = Engine.after engine 1.0 (fun () -> ()) in
  let _t2 = Engine.after engine 2.0 (fun () -> ()) in
  Alcotest.(check int) "two live" 2 (Engine.pending engine);
  Engine.cancel t1;
  Alcotest.(check int) "one live" 1 (Engine.pending engine);
  Engine.cancel t1;
  Alcotest.(check int) "double cancel counted once" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "drained" 0 (Engine.pending engine);
  (* Cancelling after the fact stays harmless. *)
  Engine.cancel t1;
  Alcotest.(check int) "still drained" 0 (Engine.pending engine)

let test_engine_suspend_wake () =
  let engine = Engine.create () in
  let waker = ref None in
  let got = ref 0 in
  Engine.spawn engine (fun () -> got := Engine.suspend (fun w -> waker := Some w));
  Engine.schedule engine ~at:3.0 (fun () ->
      match !waker with Some w -> w 42 | None -> Alcotest.fail "not suspended");
  Engine.run engine;
  Alcotest.(check int) "woken with value" 42 !got

let test_engine_yield_interleaves () =
  let engine = Engine.create () in
  let log = ref [] in
  let worker tag =
    Engine.spawn engine (fun () ->
        log := (tag ^ "1") :: !log;
        Engine.yield ();
        log := (tag ^ "2") :: !log)
  in
  worker "a";
  worker "b";
  Engine.run engine;
  Alcotest.(check (list string)) "yield interleaving" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let test_engine_exception_propagates () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () -> failwith "boom");
  Alcotest.check_raises "process exception" (Failure "boom") (fun () ->
      Engine.run engine)

let test_engine_past_schedule_clamps () =
  (* Scheduling into the past executes at the current time instead of
     rewinding the clock. *)
  let engine = Engine.create () in
  let seen = ref (-1.0) in
  Engine.spawn engine (fun () ->
      Engine.sleep 5.0;
      Engine.schedule engine ~at:1.0 (fun () -> seen := Engine.now engine));
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "clamped to now" 5.0 !seen

let test_engine_zero_sleep_runs_later_events_first () =
  (* sleep 0 yields to already-queued same-time events (FIFO). *)
  let engine = Engine.create () in
  let log = ref [] in
  Engine.spawn engine (fun () ->
      log := "a1" :: !log;
      Engine.sleep 0.0;
      log := "a2" :: !log);
  Engine.schedule engine ~at:0.0 (fun () -> log := "b" :: !log);
  Engine.run engine;
  Alcotest.(check (list string)) "fifo" [ "a1"; "b"; "a2" ] (List.rev !log)

let test_engine_processed_counter () =
  let engine = Engine.create () in
  for i = 1 to 5 do
    Engine.schedule engine ~at:(float_of_int i) (fun () -> ())
  done;
  Engine.run engine;
  Alcotest.(check int) "events processed" 5 (Engine.processed engine)

(* ------------------------------------------------------------------ *)
(* Mailbox.                                                             *)

let test_mailbox_fifo () =
  let engine = Engine.create () in
  let mb = Mailbox.create engine in
  let got = ref [] in
  Engine.spawn engine (fun () ->
      for _ = 1 to 3 do
        let msg = Mailbox.recv mb in
        got := msg :: !got
      done);
  Engine.spawn engine (fun () ->
      Mailbox.push mb 1;
      Mailbox.push mb 2;
      Engine.sleep 1.0;
      Mailbox.push mb 3);
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout_expires () =
  let engine = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create engine in
  let result = ref (Some 0) and finished_at = ref 0.0 in
  Engine.spawn engine (fun () ->
      result := Mailbox.recv_timeout mb ~timeout:2.0;
      finished_at := Engine.now engine);
  Engine.run engine;
  Alcotest.(check bool) "timed out" true (!result = None);
  Alcotest.(check (float 1e-9)) "at timeout" 2.0 !finished_at

let test_mailbox_timeout_delivery () =
  let engine = Engine.create () in
  let mb = Mailbox.create engine in
  let result = ref None in
  Engine.spawn engine (fun () -> result := Mailbox.recv_timeout mb ~timeout:5.0);
  Engine.schedule engine ~at:1.0 (fun () -> Mailbox.push mb "msg");
  Engine.run engine;
  Alcotest.(check (option string)) "delivered before timeout" (Some "msg") !result

let test_mailbox_late_push_not_lost () =
  (* After a timeout fires, a later push must go to the queue, not to the
     dead waiter. *)
  let engine = Engine.create () in
  let mb = Mailbox.create engine in
  let first = ref (Some "sentinel") and second = ref None in
  Engine.spawn engine (fun () ->
      first := Mailbox.recv_timeout mb ~timeout:1.0;
      Engine.sleep 2.0;
      second := Mailbox.recv_timeout mb ~timeout:1.0);
  Engine.schedule engine ~at:1.5 (fun () -> Mailbox.push mb "late");
  Engine.run engine;
  Alcotest.(check (option string)) "first timed out" None !first;
  Alcotest.(check (option string)) "second got queued msg" (Some "late") !second

let test_mailbox_poll_and_clear () =
  let engine = Engine.create () in
  let mb = Mailbox.create engine in
  Alcotest.(check (option int)) "poll empty" None (Mailbox.poll mb);
  Mailbox.push mb 9;
  Alcotest.(check int) "length" 1 (Mailbox.length mb);
  Alcotest.(check (option int)) "poll" (Some 9) (Mailbox.poll mb);
  Mailbox.push mb 1;
  Mailbox.clear mb;
  Alcotest.(check int) "cleared" 0 (Mailbox.length mb)

let test_mailbox_multiple_waiters () =
  let engine = Engine.create () in
  let mb = Mailbox.create engine in
  let got = ref [] in
  for i = 1 to 2 do
    Engine.spawn engine (fun () ->
        let msg = Mailbox.recv mb in
        got := (i, msg) :: !got)
  done;
  Engine.schedule engine ~at:1.0 (fun () ->
      Mailbox.push mb "x";
      Mailbox.push mb "y");
  Engine.run engine;
  (* Oldest waiter served first. *)
  Alcotest.(check (list (pair int string)))
    "waiters FIFO"
    [ (1, "x"); (2, "y") ]
    (List.sort compare !got)

let determinism_prop =
  QCheck.Test.make ~name:"identical seeds give identical executions" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let trace seed =
        let engine = Engine.create ~seed () in
        let rng = Rng.split (Engine.rng engine) in
        let log = Buffer.create 64 in
        for i = 1 to 20 do
          Engine.spawn engine (fun () ->
              Engine.sleep (Rng.float rng 10.0);
              Buffer.add_string log
                (Printf.sprintf "%d@%.6f;" i (Engine.now engine)))
        done;
        Engine.run engine;
        Buffer.contents log
      in
      trace seed = trace seed)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest heap_sorted_prop;
          QCheck_alcotest.to_alcotest heap_interleaved_prop;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
          Alcotest.test_case "shuffle and pick" `Quick test_rng_shuffle_pick;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time and order" `Quick test_engine_time_and_order;
          Alcotest.test_case "spawn at" `Quick test_engine_spawn_at;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "timer cancel" `Quick test_engine_timer_cancel;
          Alcotest.test_case "pending excludes cancelled" `Quick
            test_engine_pending_excludes_cancelled;
          Alcotest.test_case "suspend/wake" `Quick test_engine_suspend_wake;
          Alcotest.test_case "yield interleaves" `Quick test_engine_yield_interleaves;
          Alcotest.test_case "exceptions propagate" `Quick test_engine_exception_propagates;
          Alcotest.test_case "past schedule clamps" `Quick test_engine_past_schedule_clamps;
          Alcotest.test_case "zero sleep yields" `Quick test_engine_zero_sleep_runs_later_events_first;
          Alcotest.test_case "processed counter" `Quick test_engine_processed_counter;
          QCheck_alcotest.to_alcotest determinism_prop;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "timeout expires" `Quick test_mailbox_timeout_expires;
          Alcotest.test_case "timeout delivery" `Quick test_mailbox_timeout_delivery;
          Alcotest.test_case "late push not lost" `Quick test_mailbox_late_push_not_lost;
          Alcotest.test_case "poll and clear" `Quick test_mailbox_poll_and_clear;
          Alcotest.test_case "multiple waiters" `Quick test_mailbox_multiple_waiters;
        ] );
    ]
