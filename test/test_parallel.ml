(* Tests for the domain pool and the domain-safety of the simulator:
   ordering and exception contracts of Pool.map, nested use, engines
   running concurrently on separate domains, and byte-identical figure
   output whatever the domain count. *)

module Pool = Mdds_parallel.Pool
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng
module Figures = Mdds_harness.Figures

(* ------------------------------------------------------------------ *)
(* Pool.map contracts.                                                  *)

let test_map_ordering () =
  let xs = List.init 200 Fun.id in
  let f x = (x * x) + 7 in
  Alcotest.(check (list int)) "matches List.map" (List.map f xs)
    (Pool.map ~domains:7 f xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 f []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~domains:4 f [ 0 ]);
  Alcotest.(check (list int)) "more domains than elements"
    (List.map f [ 1; 2; 3 ])
    (Pool.map ~domains:16 f [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "domains=0 falls back to sequential"
    (List.map f xs) (Pool.map ~domains:0 f xs)

let test_map_exception () =
  let f x = if x = 57 || x = 80 then failwith (Printf.sprintf "boom%d" x) else x in
  (match Pool.map ~domains:4 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m ->
      (* The smallest failing index wins: the exception a sequential
         List.map would have raised. *)
      Alcotest.(check string) "smallest failing index" "boom57" m);
  (* The pool stays usable after a failure. *)
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 4 ]
    (Pool.map ~domains:2 (fun x -> 2 * x) [ 1; 2 ])

let test_map_nested () =
  (* A map inside a pool worker must not spawn recursively; it degrades to
     a sequential map with identical results. *)
  let inner x = Pool.map ~domains:2 (fun y -> (x * 10) + y) [ 1; 2; 3 ] in
  Alcotest.(check (list (list int))) "nested map"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ] ]
    (Pool.map ~domains:2 inner [ 1; 2; 3 ])

let test_pool_reuse () =
  (* The pool is persistent: consecutive maps at the same width reuse the
     worker domains instead of spawning fresh ones per call. *)
  Pool.shutdown ();
  Pool.reset_stats ();
  let spawned0 = (Pool.stats ()).Pool.spawned in
  let r1 = Pool.map ~domains:4 (fun x -> x + 1) (List.init 50 Fun.id) in
  let after_first = (Pool.stats ()).Pool.spawned in
  let r2 = Pool.map ~domains:4 (fun x -> x * 2) (List.init 50 Fun.id) in
  let r3 = Pool.map ~domains:4 (fun x -> x - 3) (List.init 50 Fun.id) in
  let after_third = (Pool.stats ()).Pool.spawned in
  Alcotest.(check (list int)) "first map" (List.init 50 (fun x -> x + 1)) r1;
  Alcotest.(check (list int)) "second map" (List.init 50 (fun x -> x * 2)) r2;
  Alcotest.(check (list int)) "third map" (List.init 50 (fun x -> x - 3)) r3;
  Alcotest.(check int) "first map spawned the workers" (spawned0 + 3) after_first;
  Alcotest.(check int) "later maps spawned none" after_first after_third;
  Alcotest.(check int) "workers stay parked between maps" 3 (Pool.worker_count ())

let test_pool_failure_not_poisoned () =
  (* An exception in one batch must not kill or wedge the parked workers:
     the same domains serve the next batch. *)
  ignore (Pool.map ~domains:4 Fun.id [ 0; 1 ]);
  let before = (Pool.stats ()).Pool.spawned in
  (try ignore (Pool.map ~domains:4 (fun _ -> failwith "boom") (List.init 20 Fun.id))
   with Failure _ -> ());
  let r = Pool.map ~domains:4 (fun x -> x + 10) (List.init 20 Fun.id) in
  Alcotest.(check (list int)) "map after failure" (List.init 20 (fun x -> x + 10)) r;
  Alcotest.(check int) "no respawn after failure" before (Pool.stats ()).Pool.spawned

let test_shutdown_idempotent () =
  ignore (Pool.map ~domains:3 Fun.id [ 1; 2; 3; 4 ]);
  Pool.shutdown ();
  Alcotest.(check int) "workers joined" 0 (Pool.worker_count ());
  Pool.shutdown ();
  Pool.shutdown ();
  Alcotest.(check int) "shutdown idempotent" 0 (Pool.worker_count ());
  (* And the pool restarts on the next map. *)
  Alcotest.(check (list int)) "restart after shutdown" [ 2; 3; 4; 5 ]
    (Pool.map ~domains:3 (fun x -> x + 1) [ 1; 2; 3; 4 ])

let test_cost_hint_equivalence () =
  (* A cost estimate reorders dispatch only; results are input-ordered and
     identical whatever the estimate says — including adversarial ones. *)
  let xs = List.init 100 Fun.id in
  let f x = (x * 3) mod 17 in
  let expected = List.map f xs in
  List.iter
    (fun cost ->
      Alcotest.(check (list int)) "cost hint does not change results" expected
        (Pool.map ~domains:5 ~cost f xs))
    [
      (fun x -> float_of_int x) (* cheap-first input order reversed *);
      (fun x -> -.float_of_int x) (* already longest-first *);
      (fun _ -> 1.0) (* all ties: input order *);
      (fun x -> float_of_int (x mod 3)) (* many ties *);
    ]

let test_jobs_knob () =
  Pool.set_jobs (Some 3);
  Alcotest.(check int) "set_jobs wins" 3 (Pool.get_jobs ());
  Pool.set_jobs (Some 0);
  Alcotest.(check int) "clamped to 1" 1 (Pool.get_jobs ());
  Pool.set_jobs None;
  Alcotest.(check bool) "default is positive" true (Pool.get_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Engines on separate domains.                                         *)

(* One self-contained trial: processes, sleeps and RNG draws, returning a
   digest of everything the engine did. Pure function of the seed. *)
let engine_trial seed =
  let engine = Engine.create ~seed () in
  let rng = Engine.rng engine in
  let acc = ref 0 in
  for _i = 1 to 50 do
    Engine.spawn engine (fun () ->
        Engine.sleep (Rng.float rng 1.0);
        acc := !acc + Rng.int rng 1000;
        Engine.yield ();
        acc := !acc + 1)
  done;
  Engine.run engine;
  (!acc, Engine.now engine, Engine.processed engine)

let test_engines_in_domains () =
  let seq1 = engine_trial 1 and seq2 = engine_trial 2 in
  let d1 = Domain.spawn (fun () -> engine_trial 1) in
  let d2 = Domain.spawn (fun () -> engine_trial 2) in
  let par1 = Domain.join d1 and par2 = Domain.join d2 in
  Alcotest.(check bool) "seed 1 unaffected by concurrent engine" true (seq1 = par1);
  Alcotest.(check bool) "seed 2 unaffected by concurrent engine" true (seq2 = par2);
  (* And through the pool, which also interleaves with the caller domain. *)
  let pooled = Pool.map ~domains:4 engine_trial [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "pooled trials = sequential trials" true
    (pooled = List.map engine_trial [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Byte-identical figures.                                              *)

let with_captured_stdout f =
  let tmp = Filename.temp_file "mdds_parallel" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f;
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let test_figures_byte_identical () =
  (* A full figure (both protocols, four topologies) on a reduced seed set,
     rendered with one domain and with four: the printed tables must match
     byte for byte. *)
  let render jobs =
    Pool.set_jobs (Some jobs);
    Fun.protect
      ~finally:(fun () -> Pool.set_jobs None)
      (fun () -> with_captured_stdout (fun () -> Figures.fig4a ~seeds:[ 5 ] ()))
  in
  let seq = render 1 in
  let par = render 4 in
  let par8 = render 8 in
  Alcotest.(check bool) "figure actually rendered" true (String.length seq > 100);
  Alcotest.(check string) "jobs=1 and jobs=4 tables identical" seq par;
  Alcotest.(check string) "jobs=1 and jobs=8 tables identical" seq par8

let test_chaos_byte_identical () =
  (* A chaos battery (mixed durations, so the cost-aware dispatch actually
     reorders) printed at one domain and at eight: identical reports. *)
  let module Runner = Mdds_chaos.Runner in
  let specs =
    List.concat_map
      (fun seed ->
        [
          Runner.spec ~seed ~duration:6.0 "VVV";
          Runner.spec ~seed ~duration:12.0 "VVVOC";
        ])
      [ 3; 4 ]
  in
  let render jobs =
    Pool.set_jobs (Some jobs);
    Fun.protect
      ~finally:(fun () -> Pool.set_jobs None)
      (fun () ->
        with_captured_stdout (fun () ->
            List.iter
              (fun report ->
                Format.printf "%a@." Runner.pp_report report;
                Format.printf "  %a" Runner.pp_timeline report)
              (Runner.run_many specs)))
  in
  let seq = render 1 in
  let par = render 8 in
  Alcotest.(check bool) "reports actually rendered" true (String.length seq > 100);
  Alcotest.(check string) "jobs=1 and jobs=8 chaos reports identical" seq par

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "exception propagation" `Quick test_map_exception;
          Alcotest.test_case "nested use" `Quick test_map_nested;
          Alcotest.test_case "worker reuse across maps" `Quick test_pool_reuse;
          Alcotest.test_case "failure does not poison workers" `Quick
            test_pool_failure_not_poisoned;
          Alcotest.test_case "shutdown idempotent and restartable" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "cost hint preserves results" `Quick
            test_cost_hint_equivalence;
          Alcotest.test_case "jobs knob" `Quick test_jobs_knob;
        ] );
      ( "engines",
        [ Alcotest.test_case "independent engines per domain" `Quick test_engines_in_domains ] );
      ( "figures",
        [ Alcotest.test_case "byte-identical output" `Slow test_figures_byte_identical ] );
      ( "chaos",
        [ Alcotest.test_case "byte-identical reports" `Slow test_chaos_byte_identical ] );
    ]
